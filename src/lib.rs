#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `learning-everywhere-repro` — glue for the examples, integration tests,
//! and benches: adapters that plug the workspace's simulation substrates
//! into the [`learning_everywhere::Simulator`] trait.

use learning_everywhere::{LeError, Simulator};

/// Adapter: the nanoconfinement MD scenario as a framework [`Simulator`].
///
/// Input features are `[h, z_p, z_n, c, d]` (the D = 5 of paper ref [26]);
/// outputs are `[contact, mid, peak]` cation densities.
#[derive(Debug, Clone)]
pub struct NanoSimulator {
    sim: le_mdsim::NanoSim,
}

impl NanoSimulator {
    /// Wrap a configured [`le_mdsim::NanoSim`].
    pub fn new(config: le_mdsim::SimConfig) -> Self {
        Self {
            sim: le_mdsim::NanoSim::new(config),
        }
    }

    /// Test-speed preset.
    pub fn fast() -> Self {
        Self::new(le_mdsim::SimConfig::fast())
    }

    /// The wrapped simulator.
    pub fn inner(&self) -> &le_mdsim::NanoSim {
        &self.sim
    }
}

impl Simulator for NanoSimulator {
    fn input_dim(&self) -> usize {
        5
    }

    fn output_dim(&self) -> usize {
        3
    }

    fn simulate(&self, input: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let params = le_mdsim::nanoconfinement::NanoParams::from_features(input)
            .map_err(|e| LeError::Simulation(e.to_string()))?;
        let (out, _) = self
            .sim
            .run(&params, seed)
            .map_err(|e| LeError::Simulation(e.to_string()))?;
        Ok(out.to_vec())
    }

    fn name(&self) -> &str {
        "nanoconfinement-md"
    }
}

/// Adapter: the tissue fine-transport burst as a framework [`Simulator`].
/// Input is the coarse-grained field concatenated with the coarse sources;
/// output is the coarse-grained advanced field.
#[derive(Debug, Clone)]
pub struct TransportSimulator {
    solver: le_tissue::DiffusionSolver,
    /// Fine lattice shape.
    pub shape: (usize, usize),
    /// Coarse-graining factor.
    pub factor: usize,
    /// Fine steps per call.
    pub fine_steps: usize,
}

impl TransportSimulator {
    /// Build around a stable solver.
    pub fn new(
        solver: le_tissue::DiffusionSolver,
        shape: (usize, usize),
        factor: usize,
        fine_steps: usize,
    ) -> Self {
        Self {
            solver,
            shape,
            factor,
            fine_steps,
        }
    }

    fn coarse_len(&self) -> usize {
        (self.shape.0 / self.factor) * (self.shape.1 / self.factor)
    }
}

impl Simulator for TransportSimulator {
    fn input_dim(&self) -> usize {
        2 * self.coarse_len()
    }

    fn output_dim(&self) -> usize {
        self.coarse_len()
    }

    fn simulate(&self, input: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let n = self.coarse_len();
        if input.len() != 2 * n {
            return Err(LeError::InvalidConfig(format!(
                "expected {} inputs, got {}",
                2 * n,
                input.len()
            )));
        }
        let (w, h) = self.shape;
        let cw = w / self.factor;
        let ch = h / self.factor;
        let field = le_tissue::Field::from_vec(cw, ch, input[..n].to_vec())
            .map_err(|e| LeError::Simulation(e.to_string()))?
            .upsample(self.factor);
        let sources = le_tissue::Field::from_vec(cw, ch, input[n..].to_vec())
            .map_err(|e| LeError::Simulation(e.to_string()))?
            .upsample(self.factor);
        let advanced = self
            .solver
            .advance(&field, &sources, self.fine_steps)
            .map_err(|e| LeError::Simulation(e.to_string()))?;
        Ok(advanced
            .downsample(self.factor)
            .map_err(|e| LeError::Simulation(e.to_string()))?
            .as_slice()
            .to_vec())
    }

    fn name(&self) -> &str {
        "tissue-transport"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nano_adapter_roundtrip() {
        let sim = NanoSimulator::fast();
        assert_eq!(sim.input_dim(), 5);
        assert_eq!(sim.output_dim(), 3);
        let out = sim.simulate(&[3.0, 1.0, 1.0, 0.5, 0.6], 1).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // Invalid physics rejected through the adapter.
        assert!(sim.simulate(&[0.1, 1.0, 1.0, 0.5, 0.6], 1).is_err());
        assert!(sim.simulate(&[3.0, 1.0], 1).is_err());
    }

    #[test]
    fn transport_adapter_shapes() {
        let solver = le_tissue::DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        let sim = TransportSimulator::new(solver, (16, 16), 4, 10);
        assert_eq!(sim.input_dim(), 32);
        assert_eq!(sim.output_dim(), 16);
        let input = vec![1.0; 32];
        let out = sim.simulate(&input, 0).unwrap();
        assert_eq!(out.len(), 16);
        assert!(sim.simulate(&[0.0; 5], 0).is_err());
    }
}
