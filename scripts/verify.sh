#!/usr/bin/env sh
# The repo's single verification gate: hermetic build, full test suite,
# and the workspace lint rules. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo run -p le-lint -- check"
cargo run -q -p le-lint --offline -- check

echo "verify: OK"
