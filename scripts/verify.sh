#!/usr/bin/env sh
# The repo's single verification gate: hermetic build, full test suite,
# and the workspace lint rules. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo run -p le-lint -- check"
cargo run -q -p le-lint --offline -- check

# Golden trajectories must reproduce bit-identically under a serial pool
# and the machine-default worker count: the committed hashes in
# tests/golden_trajectories.rs pin both the numerics and the pool's
# deterministic chunking.
echo "==> golden trajectories (LE_POOL_THREADS=1 and default)"
LE_POOL_THREADS=1 cargo test -q --offline --test golden_trajectories
cargo test -q --offline --test golden_trajectories

# Bench smoke: one timed sample through the two pool-parallelized hot paths
# (cell-list neighbor search, NN potential). --json exercises the
# results/BENCH_*.json writer end to end; a sanity grep confirms it wrote,
# and each json bench must also have exported its OBS metrics snapshot.
echo "==> cargo bench smoke (celllist, nn_potential; 1 sample, json)"
cargo bench -q --offline -p le-bench --bench celllist -- --samples 1 --json
cargo bench -q --offline -p le-bench --bench nn_potential -- --samples 1 --json
grep -q '"bench": "celllist"' results/BENCH_celllist.json
grep -q '"bench": "nn_potential"' results/BENCH_nn_potential.json
grep -q '"spans"' results/OBS_bench_celllist.json
grep -q '"spans"' results/OBS_bench_nn_potential.json

echo "verify: OK"
