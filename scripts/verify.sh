#!/usr/bin/env sh
# The repo's single verification gate: hermetic build, full test suite,
# and the workspace lint rules. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo run -p le-lint -- check"
cargo run -q -p le-lint --offline -- check

# Bench smoke: one timed sample through the two pool-parallelized hot paths
# (cell-list neighbor search, NN potential). --json exercises the
# results/BENCH_*.json writer end to end; a sanity grep confirms it wrote.
echo "==> cargo bench smoke (celllist, nn_potential; 1 sample, json)"
cargo bench -q --offline -p le-bench --bench celllist -- --samples 1 --json
cargo bench -q --offline -p le-bench --bench nn_potential -- --samples 1 --json
grep -q '"bench": "celllist"' results/BENCH_celllist.json
grep -q '"bench": "nn_potential"' results/BENCH_nn_potential.json

echo "verify: OK"
