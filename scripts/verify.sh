#!/usr/bin/env sh
# The repo's single verification gate: hermetic build, full test suite,
# and the workspace lint rules. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo run -p le-lint -- check"
cargo run -q -p le-lint --offline -- check

# Golden trajectories must reproduce bit-identically under a serial pool
# and the machine-default worker count: the committed hashes in
# tests/golden_trajectories.rs pin both the numerics and the pool's
# deterministic chunking.
echo "==> golden trajectories (LE_POOL_THREADS=1 and default)"
LE_POOL_THREADS=1 cargo test -q --offline --test golden_trajectories
cargo test -q --offline --test golden_trajectories

# Bench smoke: one timed sample through the two pool-parallelized hot paths
# (cell-list neighbor search, NN potential). --json exercises the
# results/BENCH_*.json writer end to end; a sanity grep confirms it wrote,
# and each json bench must also have exported its OBS metrics snapshot.
echo "==> cargo bench smoke (celllist, nn_potential; 1 sample, json)"
cargo bench -q --offline -p le-bench --bench celllist -- --samples 1 --json
cargo bench -q --offline -p le-bench --bench nn_potential -- --samples 1 --json
grep -q '"bench": "celllist"' results/BENCH_celllist.json
grep -q '"bench": "nn_potential"' results/BENCH_nn_potential.json
grep -q '"spans"' results/OBS_bench_celllist.json
grep -q '"spans"' results/OBS_bench_nn_potential.json

# Batched-surrogate gate, part 1: the fused batch engine must beat the
# frozen replica of the pre-batching single-lookup path by >= 5x per
# lookup at batch 64 AND batch 256 on the E2 workload (the ISSUE
# acceptance floor, "batch >= 64"). The gated ratios are medians of the
# bench's interleaved A/B rounds, so scheduler noise hits both arms
# alike. The --json run also writes results/BENCH_surrogate_batch.json,
# which the obsctl diff below compares against the committed baseline.
echo "==> surrogate batch bench: >=5x batched throughput at 64 and 256 (3 samples, json)"
sb_out="$(cargo run -q --release --offline -p le-bench --bin surrogate_batch -- --samples 3 --json)"
printf '%s\n' "$sb_out" | grep -E '^(frozen single|per-lookup|mc per-lookup|interleaved|single_vs|mc_single_vs)' || true
for key in single_vs_batch64_ratio single_vs_batch256_ratio; do
  sb_ratio="$(printf '%s\n' "$sb_out" | sed -n "s/^$key //p")"
  [ -n "$sb_ratio" ] || { echo "surrogate_batch printed no $key" >&2; exit 1; }
  awk "BEGIN { exit !($sb_ratio >= 5.0) }" || {
    echo "batched surrogate speedup $key=${sb_ratio}x is below the 5x acceptance floor" >&2
    exit 1
  }
done
grep -q '"bench": "surrogate_batch"' results/BENCH_surrogate_batch.json

# Batched-surrogate gate, part 2: the engine's determinism contract. The
# bench's digest folds deterministic batch outputs and one fused MC-dropout
# evaluation; it must be byte-identical at any LE_POOL_THREADS, and the
# batched HybridEngine path must stay bit-identical to sequential queries
# at the same pool widths (tests/surrogate_batch_equivalence.rs).
echo "==> surrogate batch: digest invariance + query_batch equivalence at LE_POOL_THREADS=1/4/7"
sb_digest=""
for threads in 1 4 7; do
  out="$(LE_POOL_THREADS=$threads cargo run -q --release --offline -p le-bench --bin surrogate_batch -- --samples 1 2>/dev/null)"
  d="$(printf '%s\n' "$out" | sed -n 's/^digest //p')"
  [ -n "$d" ] || { echo "surrogate_batch printed no digest at LE_POOL_THREADS=$threads" >&2; exit 1; }
  if [ -z "$sb_digest" ]; then
    sb_digest="$d"
  elif [ "$d" != "$sb_digest" ]; then
    echo "surrogate batch digest diverged: $sb_digest vs $d (LE_POOL_THREADS=$threads)" >&2
    exit 1
  fi
  LE_POOL_THREADS=$threads cargo test -q --offline --test surrogate_batch_equivalence
done
echo "    digest $sb_digest at all thread counts"

# Observability regression gate: regenerate the deterministic OBS snapshots
# with a pinned pool, then diff them — plus the bench medians written just
# above — against the committed reference copies in results/baselines/.
# Counter values, span counts, and histogram buckets must replicate
# exactly; timings get a generous one-sided tolerance (the tight-tolerance
# detection paths are pinned by le-obs's diff unit tests). The two
# worker-schedule span counts are the only non-deterministic metrics and
# are excluded by name.
echo "==> observability baseline + obsctl diff gate"
LE_POOL_THREADS=4 cargo run -q --release --offline -p le-bench --bin obs_baseline
LE_POOL_THREADS=4 cargo run -q --release --offline --example quickstart >/dev/null
cargo run -q --release --offline -p le-obs --bin obsctl -- diff \
  --tolerance 100 \
  --ignore le_pool.queue_wait --ignore le_pool.worker_busy

# Fault-campaign gate: a seeded campaign with injected simulator errors,
# NaN outputs, a worker panic, and DES stalls must complete (every query
# served), produce a byte-identical digest at any LE_POOL_THREADS, and
# replicate the committed degradation counters exactly (the thread-variant
# pool-schedule metrics are excluded by prefix).
echo "==> fault campaign: digest invariance at LE_POOL_THREADS=1/4/7 + obsctl diff"
fault_digest=""
for threads in 1 4 7; do
  out="$(LE_POOL_THREADS=$threads cargo run -q --release --offline -p le-bench --bin fault_campaign 2>/dev/null)"
  d="$(printf '%s\n' "$out" | sed -n 's/^digest //p')"
  [ -n "$d" ] || { echo "fault_campaign printed no digest at LE_POOL_THREADS=$threads" >&2; exit 1; }
  if [ -z "$fault_digest" ]; then
    fault_digest="$d"
  elif [ "$d" != "$fault_digest" ]; then
    echo "fault campaign digest diverged: $fault_digest vs $d (LE_POOL_THREADS=$threads)" >&2
    exit 1
  fi
done
echo "    digest $fault_digest at all thread counts"
cargo run -q --release --offline -p le-obs --bin obsctl -- diff \
  --baseline results/baselines/faults --current results \
  --tolerance 100 --ignore le_pool.

# Serving gate: the le-serve frontend must push >= 1M rows through the
# batched waves, reproduce a byte-identical digest (workload identity,
# every served output bit, every typed rejection, serve/engine counters)
# at any LE_POOL_THREADS, stay bitwise-equivalent to the direct engine
# path at every pool width (tests/serve_equivalence.rs + the crate's own
# queue/loadgen/admission suites), keep tail latency under the ceiling,
# and replicate the committed serve counters exactly (thread-variant
# pool metrics and the wall-clock serve.latency histograms are excluded).
echo "==> serve campaign: digest invariance + equivalence at LE_POOL_THREADS=1/4/7"
serve_digest=""
for threads in 1 4 7; do
  out="$(LE_POOL_THREADS=$threads cargo run -q --release --offline -p le-bench --bin serve_campaign 2>/dev/null)"
  d="$(printf '%s\n' "$out" | sed -n 's/^digest //p')"
  [ -n "$d" ] || { echo "serve_campaign printed no digest at LE_POOL_THREADS=$threads" >&2; exit 1; }
  if [ -z "$serve_digest" ]; then
    serve_digest="$d"
    rows="$(printf '%s\n' "$out" | sed -n 's/^rows_served //p')"
    [ -n "$rows" ] || { echo "serve_campaign printed no rows_served" >&2; exit 1; }
    awk "BEGIN { exit !($rows >= 1000000) }" || {
      echo "serve campaign served only $rows rows (acceptance floor: 1000000)" >&2
      exit 1
    }
    p99="$(printf '%s\n' "$out" | sed -n 's/.* p99_us \([0-9.]*\).*/\1/p')"
    [ -n "$p99" ] || { echo "serve_campaign printed no p99" >&2; exit 1; }
    awk "BEGIN { exit !($p99 <= 250000.0) }" || {
      echo "serve campaign p99 latency ${p99}us exceeds the 250ms ceiling" >&2
      exit 1
    }
  elif [ "$d" != "$serve_digest" ]; then
    echo "serve campaign digest diverged: $serve_digest vs $d (LE_POOL_THREADS=$threads)" >&2
    exit 1
  fi
  LE_POOL_THREADS=$threads cargo test -q --offline --test serve_equivalence
  LE_POOL_THREADS=$threads cargo test -q --offline -p le-serve
done
echo "    digest $serve_digest at all thread counts"
cargo run -q --release --offline -p le-obs --bin obsctl -- diff \
  --baseline results/baselines/serve --current results \
  --tolerance 100 --ignore le_pool. --ignore serve.latency

# Drift gate: a seeded distribution-drift campaign must show the frozen
# surrogate degrading >= 3x in RMSE while the rolling-retrain engine holds
# accuracy without ever pausing serving, then survive a chaos arm that
# composes fault injection with saturated le-serve traffic over a drifting
# pool. The whole campaign folds into one digest that must be
# byte-identical at any LE_POOL_THREADS, and the committed drift/staleness/
# rolling counters must replicate exactly (thread-variant pool metrics and
# wall-clock serve.latency histograms are excluded).
echo "==> drift campaign: digest invariance at LE_POOL_THREADS=1/4/7 + obsctl diff"
drift_digest=""
for threads in 1 4 7; do
  out="$(LE_POOL_THREADS=$threads cargo run -q --release --offline -p le-bench --bin drift_campaign 2>/dev/null)"
  d="$(printf '%s\n' "$out" | sed -n 's/^digest //p')"
  [ -n "$d" ] || { echo "drift_campaign printed no digest at LE_POOL_THREADS=$threads" >&2; exit 1; }
  if [ -z "$drift_digest" ]; then
    drift_digest="$d"
  elif [ "$d" != "$drift_digest" ]; then
    echo "drift campaign digest diverged: $drift_digest vs $d (LE_POOL_THREADS=$threads)" >&2
    exit 1
  fi
done
echo "    digest $drift_digest at all thread counts"
cargo run -q --release --offline -p le-obs --bin obsctl -- diff \
  --baseline results/baselines/drift --current results \
  --tolerance 100 --ignore le_pool. --ignore serve.latency

# Trace-overhead smoke: journaling the MD step loop (spans + per-chunk pool
# tasks) must stay within a few percent of the untraced run. The binary
# interleaves journal-on/off reps and compares medians; gate via
# LE_TRACE_OVERHEAD_PCT (default 5).
echo "==> trace overhead smoke (journal on vs off)"
cargo run -q --release --offline -p le-bench --bin trace_overhead

echo "verify: OK"
