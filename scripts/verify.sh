#!/usr/bin/env sh
# The repo's single verification gate: hermetic build, full test suite,
# and the workspace lint rules. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo run -p le-lint -- check"
cargo run -q -p le-lint --offline -- check

# Golden trajectories must reproduce bit-identically under a serial pool
# and the machine-default worker count: the committed hashes in
# tests/golden_trajectories.rs pin both the numerics and the pool's
# deterministic chunking.
echo "==> golden trajectories (LE_POOL_THREADS=1 and default)"
LE_POOL_THREADS=1 cargo test -q --offline --test golden_trajectories
cargo test -q --offline --test golden_trajectories

# Bench smoke: one timed sample through the two pool-parallelized hot paths
# (cell-list neighbor search, NN potential). --json exercises the
# results/BENCH_*.json writer end to end; a sanity grep confirms it wrote,
# and each json bench must also have exported its OBS metrics snapshot.
echo "==> cargo bench smoke (celllist, nn_potential; 1 sample, json)"
cargo bench -q --offline -p le-bench --bench celllist -- --samples 1 --json
cargo bench -q --offline -p le-bench --bench nn_potential -- --samples 1 --json
grep -q '"bench": "celllist"' results/BENCH_celllist.json
grep -q '"bench": "nn_potential"' results/BENCH_nn_potential.json
grep -q '"spans"' results/OBS_bench_celllist.json
grep -q '"spans"' results/OBS_bench_nn_potential.json

# Observability regression gate: regenerate the deterministic OBS snapshots
# with a pinned pool, then diff them — plus the bench medians written just
# above — against the committed reference copies in results/baselines/.
# Counter values, span counts, and histogram buckets must replicate
# exactly; timings get a generous one-sided tolerance (the tight-tolerance
# detection paths are pinned by le-obs's diff unit tests). The two
# worker-schedule span counts are the only non-deterministic metrics and
# are excluded by name.
echo "==> observability baseline + obsctl diff gate"
LE_POOL_THREADS=4 cargo run -q --release --offline -p le-bench --bin obs_baseline
LE_POOL_THREADS=4 cargo run -q --release --offline --example quickstart >/dev/null
cargo run -q --release --offline -p le-obs --bin obsctl -- diff \
  --tolerance 100 \
  --ignore le_pool.queue_wait --ignore le_pool.worker_busy

# Fault-campaign gate: a seeded campaign with injected simulator errors,
# NaN outputs, a worker panic, and DES stalls must complete (every query
# served), produce a byte-identical digest at any LE_POOL_THREADS, and
# replicate the committed degradation counters exactly (the thread-variant
# pool-schedule metrics are excluded by prefix).
echo "==> fault campaign: digest invariance at LE_POOL_THREADS=1/4/7 + obsctl diff"
fault_digest=""
for threads in 1 4 7; do
  out="$(LE_POOL_THREADS=$threads cargo run -q --release --offline -p le-bench --bin fault_campaign 2>/dev/null)"
  d="$(printf '%s\n' "$out" | sed -n 's/^digest //p')"
  [ -n "$d" ] || { echo "fault_campaign printed no digest at LE_POOL_THREADS=$threads" >&2; exit 1; }
  if [ -z "$fault_digest" ]; then
    fault_digest="$d"
  elif [ "$d" != "$fault_digest" ]; then
    echo "fault campaign digest diverged: $fault_digest vs $d (LE_POOL_THREADS=$threads)" >&2
    exit 1
  fi
done
echo "    digest $fault_digest at all thread counts"
cargo run -q --release --offline -p le-obs --bin obsctl -- diff \
  --baseline results/baselines/faults --current results \
  --tolerance 100 --ignore le_pool.

# Trace-overhead smoke: journaling the MD step loop (spans + per-chunk pool
# tasks) must stay within a few percent of the untraced run. The binary
# interleaves journal-on/off reps and compares medians; gate via
# LE_TRACE_OVERHEAD_PCT (default 5).
echo "==> trace overhead smoke (journal on vs off)"
cargo run -q --release --offline -p le-bench --bin trace_overhead

echo "verify: OK"
