#!/usr/bin/env bash
# Regenerate every experiment table in results/ (see EXPERIMENTS.md).
# Usage: scripts/run_experiments.sh [results_dir]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-results}"
mkdir -p "$OUT"

cargo build --release -p le-bench --bins

for exp in \
    e1_effective_speedup \
    e2_nanoconfinement \
    e3_autotune \
    e4_defsi \
    e5_active_learning \
    e6_nn_potential \
    e7_sync_models \
    e8_scheduling \
    e9_tissue \
    e10_solvent \
    e11_uq_ablation \
    e12_blocking \
    e13_mlcontrol; do
    echo "=== $exp ==="
    ./target/release/"$exp" > "$OUT/$exp.md" 2> "$OUT/$exp.log"
done

echo "All experiment tables written to $OUT/"
