//! The paper's flagship MLaroundHPC example (§II-C1, ref [26]): learn the
//! contact, mid-plane, and peak ionic densities of ions confined between
//! walls, as a function of (h, z_p, z_n, c, d), from completed MD runs —
//! then answer un-simulated statepoints from the network.
//!
//! ```sh
//! cargo run --release --example nanoconfinement_surrogate
//! ```

use le_linalg::{stats, Matrix, Rng};
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};
use learning_everywhere::surrogate::{NnSurrogate, SurrogateConfig};

fn main() {
    let sim = NanoSim::new(SimConfig::fast());
    let mut rng = Rng::new(2026);

    // Training campaign: random statepoints over the study's ranges.
    // (The companion paper ran 6864 simulations; scale with --release.)
    let n_train = 220;
    let n_test = 40;
    println!("running {n_train} training + {n_test} test MD simulations…");
    let params: Vec<NanoParams> = (0..n_train + n_test)
        .map(|_| NanoParams::sample(&mut rng))
        .collect();
    let t0 = std::time::Instant::now();
    let results: Vec<Vec<f64>> =
        le_mlkernels::pool::par_map_index(params.len(), |i| {
            sim.run(&params[i], 1000 + i as u64).expect("valid params").0.to_vec()
        });
    let sim_wall = t0.elapsed().as_secs_f64();
    let per_sim = sim_wall / (n_train + n_test) as f64;
    println!("  {sim_wall:.1}s total, {:.1} ms/simulation", per_sim * 1e3);

    // Train the surrogate (inputs D = 5, outputs 3 — exactly ref [26]).
    let mut x = Matrix::zeros(n_train, 5);
    let mut y = Matrix::zeros(n_train, 3);
    for i in 0..n_train {
        x.row_mut(i).copy_from_slice(&params[i].to_features());
        y.row_mut(i).copy_from_slice(&results[i]);
    }
    let t1 = std::time::Instant::now();
    let surrogate = NnSurrogate::fit(
        &x,
        &y,
        &SurrogateConfig {
            hidden: vec![64, 64],
            dropout: 0.05,
            epochs: 400,
            ..Default::default()
        },
    )
    .expect("training data is well-formed");
    println!("surrogate trained in {:.1}s", t1.elapsed().as_secs_f64());

    // Evaluate on held-out statepoints.
    let names = ["contact", "mid    ", "peak   "];
    let mut per_output: Vec<Vec<(f64, f64)>> = vec![Vec::new(); 3];
    for i in n_train..n_train + n_test {
        let pred = surrogate
            .predict(&params[i].to_features())
            .expect("5 features");
        for k in 0..3 {
            per_output[k].push((pred[k], results[i][k]));
        }
    }
    println!("\nheld-out accuracy (density units, 1/nm^3):");
    for (k, name) in names.iter().enumerate() {
        let (p, t): (Vec<f64>, Vec<f64>) = per_output[k].iter().cloned().unzip();
        let rmse = stats::rmse(&p, &t).expect("non-empty");
        let r2 = stats::r2(&p, &t).expect("non-empty");
        println!("  {name}: RMSE {rmse:.4}, R² {r2:.3}");
    }

    // Lookup-vs-simulation speed.
    let probe = params[0].to_features();
    let t2 = std::time::Instant::now();
    let lookups = 10_000;
    for _ in 0..lookups {
        let _ = surrogate.predict(&probe).expect("probe");
    }
    let per_lookup = t2.elapsed().as_secs_f64() / lookups as f64;
    println!(
        "\nper-simulation {:.2e}s vs per-lookup {:.2e}s — surrogate is {:.0}x faster",
        per_sim,
        per_lookup,
        per_sim / per_lookup
    );
    println!("(the paper's production-scale runs reached ~1e5x)");
}
