//! Virtual-tissue short-circuiting (§II-B): replace the computationally
//! costly fine-timescale advection–diffusion module with a learned
//! analogue, and compare accuracy and speed over a coupled tissue
//! simulation.
//!
//! ```sh
//! cargo run --release --example tissue_shortcircuit
//! ```

use le_tissue::surrogate_grid::{SurrogateTrainConfig, TransportSurrogate};
use le_tissue::vt::{TissueConfig, TissueModel};

fn main() {
    let config = TissueConfig {
        width: 32,
        height: 32,
        fine_steps_per_tissue_step: 40,
        initial_cells: 24,
        ..Default::default()
    };

    // Train the transport surrogate on *on-trajectory* data: runs of the
    // coupled model with the full solver, plus random-field augmentation.
    println!("training the transport surrogate (32x32 → 8x8 coarse)…");
    let t0 = std::time::Instant::now();
    let surrogate = TransportSurrogate::train_on_trajectories(
        &config,
        4,
        &[1, 2, 3, 4, 5, 6, 7, 8],
        40,
        0.25,
        &SurrogateTrainConfig {
            n_samples: 400,
            hidden: vec![96, 96],
            epochs: 200,
            seed: 7,
        },
    )
    .expect("trains");
    println!("  trained in {:.1}s", t0.elapsed().as_secs_f64());

    // Run the coupled model both ways from the same initial state.
    let steps = 30;
    let mut full = TissueModel::new(config, 99).expect("valid");
    let mut fast = TissueModel::new(config, 99).expect("valid");
    let solver = *full.solver();
    let fine = config.fine_steps_per_tissue_step;

    let t1 = std::time::Instant::now();
    for _ in 0..steps {
        full.step_full().expect("stable");
    }
    let t_full = t1.elapsed().as_secs_f64();

    let t2 = std::time::Instant::now();
    for _ in 0..steps {
        fast.step_with_transport(|f, s| surrogate.advance(f, s))
            .expect("surrogate ok");
    }
    let t_fast = t2.elapsed().as_secs_f64();

    let full_stats = full.stats();
    let fast_stats = fast.stats();
    // Compare nutrient fields at the surrogate's native resolution.
    let f_coarse = full.nutrient.downsample(4).expect("divides");
    let s_coarse = fast.nutrient.downsample(4).expect("divides");
    let rmse = f_coarse.rmse(&s_coarse).expect("same shape");
    let scale = f_coarse.total() / (f_coarse.width() * f_coarse.height()) as f64;

    println!("\nafter {steps} tissue steps ({} fine steps each):", fine);
    println!(
        "  full solver:  {:4} cells, nutrient mass {:8.1}, {:.2}s",
        full_stats.n_cells, full_stats.nutrient_mass, t_full
    );
    println!(
        "  surrogate:    {:4} cells, nutrient mass {:8.1}, {:.2}s",
        fast_stats.n_cells, fast_stats.nutrient_mass, t_fast
    );
    println!(
        "  coarse-field RMSE {rmse:.3} (mean level {scale:.3}) — relative {:.1}%",
        100.0 * rmse / scale
    );
    println!(
        "  transport speedup: {:.1}x (replacing {} fine steps per tissue step)",
        t_full / t_fast,
        fine
    );
    let solver_check = solver; // the solver remains available for validation runs
    let _ = solver_check;
}
