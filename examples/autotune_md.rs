//! MLautotuning (§I + §III-D, ref [9]): learn the largest stable MD
//! timestep as a function of the physical parameters, so production runs
//! execute "at the optimal speed while retaining the accuracy of the final
//! result". The expensive label generator — a stability search over
//! timesteps, each probe a real MD run — is exactly what the trained net
//! amortizes away.
//!
//! ```sh
//! cargo run --release --example autotune_md
//! ```

use le_linalg::Rng;
use le_mdsim::nanoconfinement::{NanoParams, SimConfig};
use le_mdsim::NanoSim;
use learning_everywhere::autotune::{label_examples, Autotuner, TuningProblem};
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::Result;

/// The tuning problem: parameters (h, z_p, z_n, c, d) → max stable dt.
struct MdTimestepTuning {
    /// Candidate timesteps, descending.
    dt_grid: Vec<f64>,
}

impl MdTimestepTuning {
    fn new() -> Self {
        Self {
            dt_grid: vec![0.04, 0.03, 0.02, 0.015, 0.01, 0.007, 0.005],
        }
    }

    fn probe_config(dt: f64) -> SimConfig {
        SimConfig {
            dt,
            equil_steps: 150,
            prod_steps: 400,
            ..SimConfig::fast()
        }
    }
}

impl TuningProblem for MdTimestepTuning {
    fn param_dim(&self) -> usize {
        5
    }

    fn config_dim(&self) -> usize {
        1
    }

    fn search_optimal(&self, params: &[f64]) -> Result<Vec<f64>> {
        let p = NanoParams::from_features(params)
            .map_err(|e| learning_everywhere::LeError::Simulation(e.to_string()))?;
        // Walk the grid from aggressive to conservative; first stable probe
        // wins. Each probe is a real (short) MD run.
        for &dt in &self.dt_grid {
            let sim = NanoSim::new(Self::probe_config(dt));
            if sim.run(&p, 99).is_ok() {
                return Ok(vec![dt]);
            }
        }
        Ok(vec![*self.dt_grid.last().expect("non-empty grid")])
    }

    fn safe_default(&self) -> Vec<f64> {
        vec![*self.dt_grid.last().expect("non-empty grid")]
    }
}

fn main() {
    let problem = MdTimestepTuning::new();
    let mut rng = Rng::new(4242);

    // Offline labelling campaign (parallel; this is the expensive part the
    // paper's 28M-CPU-hour anecdote refers to).
    let n_labels = 60;
    println!("labelling {n_labels} parameter points by stability search…");
    let params: Vec<Vec<f64>> = (0..n_labels)
        .map(|_| NanoParams::sample(&mut rng).to_features().to_vec())
        .collect();
    let t0 = std::time::Instant::now();
    let examples = label_examples(&problem, &params).expect("searches run");
    let search_time = t0.elapsed().as_secs_f64() / n_labels as f64;
    println!("  {:.2}s per label (includes several probe MD runs)", search_time);

    // Train the autotuner.
    let mut tuner = Autotuner::fit(
        &examples,
        problem.safe_default(),
        &SurrogateConfig {
            hidden: vec![30, 48], // the companion paper's architecture
            dropout: 0.05,
            epochs: 300,
            mc_samples: 25,
            ..Default::default()
        },
        0.02,
    )
    .expect("enough examples");

    // Compare against the search on fresh points.
    println!("\nparams (h, zp, zn, c, d)        searched dt   suggested dt   learned?");
    let mut suggest_time = 0.0;
    let mut n_eval = 0;
    let mut agreements = 0;
    for _ in 0..10 {
        let p = NanoParams::sample(&mut rng);
        let feats = p.to_features().to_vec();
        let truth = problem.search_optimal(&feats).expect("search")[0];
        let t1 = std::time::Instant::now();
        let s = tuner.suggest(&feats).expect("5 features");
        suggest_time += t1.elapsed().as_secs_f64();
        n_eval += 1;
        let close = (s.config[0] - truth).abs() <= 0.012;
        if close {
            agreements += 1;
        }
        println!(
            "  ({:.2}, {}, {}, {:.2}, {:.2})      {:>8.3}      {:>8.3}       {}",
            p.h, p.z_p, p.z_n, p.c, p.d, truth, s.config[0], s.learned
        );
    }
    println!(
        "\n{agreements}/{n_eval} suggestions within one grid step of the searched optimum"
    );
    println!(
        "search {:.2e}s vs suggestion {:.2e}s per point — {:.0}x faster",
        search_time,
        suggest_time / n_eval as f64,
        search_time / (suggest_time / n_eval as f64)
    );
}
