//! Quickstart: wrap an expensive computation in the Learning-Everywhere
//! hybrid engine and watch the effective speedup grow.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use learning_everywhere::accounting::summarize;
use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::{HybridConfig, HybridEngine, QuerySource};
use learning_everywhere::surrogate::SurrogateConfig;
use le_linalg::Rng;

fn main() {
    // 1. An "expensive simulation": any type implementing `Simulator`.
    //    Here: a synthetic analytic model with ~5 ms of artificial work.
    let simulator = SyntheticSimulator::new(2, 1, 2_000_000, 0.0);

    // 2. Wrap it in the MLaroundHPC hybrid engine. Queries are served from
    //    a learned surrogate whenever its MC-dropout uncertainty passes
    //    the gate; otherwise the simulator runs and the result becomes
    //    training data ("no run is wasted").
    let mut engine = HybridEngine::new(
        simulator,
        HybridConfig {
            uncertainty_threshold: 0.35,
            min_training_runs: 48,
            retrain_growth: 2.0,
            surrogate: SurrogateConfig {
                hidden: vec![64, 64],
                dropout: 0.1,
                epochs: 150,
                mc_samples: 20,
                ..Default::default()
            },
        },
    )
    .expect("valid config");

    // 3. Fire queries at it.
    let mut rng = Rng::new(7);
    let n_queries = 400;
    let mut simulated = 0;
    let mut looked_up = 0;
    for i in 0..n_queries {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        let result = engine.query(&x).expect("query");
        match result.source {
            QuerySource::Simulated => simulated += 1,
            QuerySource::Lookup => looked_up += 1,
        }
        if (i + 1) % 100 == 0 {
            println!(
                "after {:4} queries: {:3} simulated, {:3} served by the surrogate ({:.0}% lookups)",
                i + 1,
                simulated,
                looked_up,
                100.0 * engine.lookup_fraction()
            );
        }
    }

    // 4. The effective-performance accounting (paper §III-D).
    let speedup = engine
        .accounting()
        .effective_speedup()
        .expect("campaign ran");
    println!("\n{}", summarize(&speedup));
    println!(
        "direct measured speedup vs all-simulation: {:.1}x",
        engine.accounting().direct_speedup().expect("ran")
    );

    // 5. Every phase above was recorded through le-obs spans — the same
    //    measurements the accounting consumed. Export the snapshot.
    match le_obs::write_snapshot("quickstart") {
        Ok(path) => println!("observability snapshot: {}", path.display()),
        Err(e) => eprintln!("warning: could not write OBS snapshot: {e}"),
    }

    // 6. …and every phase also landed in the causal event journal. Export
    //    it as Chrome trace_event JSON: load it in Perfetto / about:tracing
    //    or render it with `cargo run -p le-obs --bin obsctl -- timeline`.
    match le_obs::write_trace("quickstart") {
        Ok(path) => println!("causal trace: {}", path.display()),
        Err(e) => eprintln!("warning: could not write trace: {e}"),
    }
}
