//! MLControl (§I, ref [12]): an objective-driven computational campaign.
//! Given a *target* simulation output, invert the surrogate to find inputs
//! that achieve it, verifying candidates with real simulations.
//!
//! ```sh
//! cargo run --release --example control_campaign
//! ```

use learning_everywhere::control::{run_campaign, ControlConfig};
use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;

fn main() {
    // The "experiment" we control: a 3-input, 2-output simulation with
    // ~2 ms of artificial cost per run.
    let sim = SyntheticSimulator::new(3, 2, 800_000, 0.0);

    // The experimental goal: outputs observed at a hidden operating point.
    let hidden = [0.35, -0.6, 0.8];
    let target = sim.truth(&hidden);
    println!("target outputs: {target:?} (from a hidden operating point)");

    let t0 = std::time::Instant::now();
    let outcome = run_campaign(
        &sim,
        &target,
        &[(-1.0, 1.0), (-1.0, 1.0), (-1.0, 1.0)],
        &ControlConfig {
            initial_runs: 48,
            scan_size: 5000,
            verify_per_round: 6,
            rounds: 5,
            surrogate: SurrogateConfig {
                hidden: vec![64, 64],
                dropout: 0.05,
                epochs: 250,
                ..Default::default()
            },
            seed: 77,
        },
    )
    .expect("campaign runs");

    println!("\nround-by-round best verified |error|:");
    for (i, e) in outcome.error_history.iter().enumerate() {
        println!("  round {}: {e:.4}", i + 1);
    }
    println!(
        "\nbest input found: [{:.3}, {:.3}, {:.3}]",
        outcome.best_input[0], outcome.best_input[1], outcome.best_input[2]
    );
    println!("verified output:  {:?}", outcome.best_output);
    println!("final |error|:    {:.4}", outcome.best_error);
    println!(
        "real simulations: {} (the surrogate screened {} candidates per round)",
        outcome.simulations_used, 5000
    );
    println!("campaign wall time: {:.1}s", t0.elapsed().as_secs_f64());
    println!(
        "\nA grid scan at the surrogate's resolution would have cost {}+ real runs.",
        5000 * 5
    );
}
