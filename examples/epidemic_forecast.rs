//! DEFSI-style epidemic forecasting (§II-A, ref [19]): train a two-branch
//! network on *simulation-generated synthetic data* and forecast county-
//! level incidence from state-level surveillance, against mechanistic and
//! pure-data baselines.
//!
//! ```sh
//! cargo run --release --example epidemic_forecast
//! ```

use le_netdyn::baselines::{uniform_county_split, ArModel};
use le_netdyn::defsi::{
    estimate_tau_distribution, generate_synthetic_seasons, score_forecaster, DefsiTrainConfig,
    TwoBranchNet,
};
use le_netdyn::epifast::{hidden_truth_season, EpiFast};
use le_netdyn::seir::SeirConfig;
use le_netdyn::surveillance::Surveillance;
use le_netdyn::{Population, PopulationConfig};

fn main() {
    // A synthetic state of 8 counties.
    let pop = Population::generate(
        &PopulationConfig {
            county_sizes: vec![400; 8],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        },
        42,
    )
    .expect("valid population");
    println!(
        "population: {} people, {} counties, {} contacts",
        pop.size(),
        pop.n_counties,
        pop.contacts.n_edges()
    );

    let base = SeirConfig {
        transmissibility: 0.0, // set per season
        days: 112,             // 16 weeks
        ..Default::default()
    };
    let surveillance = Surveillance {
        reporting_fraction: 0.3,
        noise: 0.08,
        delay_weeks: 1,
    };

    // The "real" season the forecasters must predict (hidden parameters).
    let hidden_tau = 0.075;
    let truth = hidden_truth_season(&pop, hidden_tau, &base, 777).expect("runs");
    println!(
        "hidden truth: attack rate {:.1}%, peak on day {}",
        100.0 * truth.attack_rate,
        truth.peak_day
    );
    let observed = surveillance.observe_state(&truth, 778);

    // DEFSI step 1: calibrate a parameter distribution from coarse data.
    let epifast = EpiFast::new(base, surveillance.reporting_fraction);
    let (tau_mean, tau_std) =
        estimate_tau_distribution(&epifast, &pop, &observed, 779).expect("calibrates");
    println!("calibrated transmissibility: {tau_mean:.3} ± {tau_std:.3} (hidden {hidden_tau})");

    // Step 2: simulation-generated synthetic training seasons.
    let seasons =
        generate_synthetic_seasons(&pop, &base, &surveillance, tau_mean, tau_std, 40, 780)
            .expect("simulations run");
    println!("generated {} synthetic seasons for training", seasons.len());

    // Step 3: the two-branch network.
    let window = 4;
    let defsi = TwoBranchNet::train(
        &seasons,
        pop.n_counties,
        &DefsiTrainConfig {
            window,
            epochs: 120,
            ..Default::default()
        },
    )
    .expect("enough rows");

    // Baselines that only see observed (coarse) data.
    let historical: Vec<Vec<f64>> = (0..4)
        .map(|i| {
            let s = hidden_truth_season(&pop, 0.06 + 0.01 * i as f64, &base, 900 + i).expect("runs");
            Surveillance {
                delay_weeks: 0,
                ..surveillance
            }
            .observe_state(&s, 901 + i)
        })
        .collect();
    let ar = ArModel::fit(&historical, 2).expect("enough history");
    let n_counties = pop.n_counties;
    let rf = surveillance.reporting_fraction;

    // Score everything on the truth season.
    let defsi_score = score_forecaster(&truth, &surveillance, window, 555, |obs| {
        defsi.forecast_counties(obs, 16)
    })
    .expect("scores");
    let ar_score = score_forecaster(&truth, &surveillance, window, 555, |obs| {
        let state = ar.forecast(obs)? / rf;
        Ok(uniform_county_split(state, n_counties))
    })
    .expect("scores");
    let naive_score = score_forecaster(&truth, &surveillance, window, 555, |obs| {
        let state = obs.last().copied().unwrap_or(0.0) / rf;
        Ok(uniform_county_split(state, n_counties))
    })
    .expect("scores");
    let ef_score = score_forecaster(&truth, &surveillance, window, 555, |obs| {
        let (_, county) = epifast.forecast(&pop, obs, 1, 556)?;
        Ok(county.iter().map(|c| c[0]).collect())
    })
    .expect("scores");

    println!("\n1-week-ahead forecast RMSE (lower is better):");
    println!("  method            state     county");
    println!(
        "  DEFSI            {:7.2}   {:7.2}",
        defsi_score.state_rmse, defsi_score.county_rmse
    );
    println!(
        "  EpiFast          {:7.2}   {:7.2}",
        ef_score.state_rmse, ef_score.county_rmse
    );
    println!(
        "  AR(2)            {:7.2}   {:7.2}   (county = uniform split)",
        ar_score.state_rmse, ar_score.county_rmse
    );
    println!(
        "  naive            {:7.2}   {:7.2}   (county = uniform split)",
        naive_score.state_rmse, naive_score.county_rmse
    );
    println!(
        "\npaper claim: DEFSI comparable or better at state level, better at county level."
    );
}
