//! Property-based tests on cross-crate invariants.
//!
//! These were originally `proptest` cases; the hermetic workspace replaces
//! the shrinking framework with seeded-loop property checks: each property
//! is exercised over `CASES` deterministic pseudo-random parameter draws,
//! so failures are reproducible from the printed case seed alone.

use le_linalg::{stats, Matrix, Rng};
use le_nn::Scaler;
use le_perfmodel::speedup::{effective_speedup, lookup_limit, SpeedupTimes};

/// Number of random parameter draws per property.
const CASES: u64 = 64;

/// Per-case generator: distinct, deterministic stream per (property, case).
fn case_rng(property: u64, case: u64) -> Rng {
    Rng::new(0x5EED_0000u64 ^ (property << 32) ^ case)
}

/// The effective speedup always lies between min and max of its two
/// degenerate "pure" rates, for any positive times and counts.
#[test]
fn effective_speedup_is_bounded_by_pure_rates() {
    for case in 0..CASES {
        let mut g = case_rng(1, case);
        let times = SpeedupTimes {
            t_seq: g.uniform_in(1e-3, 1e3),
            t_train: g.uniform_in(1e-3, 1e3),
            t_learn: g.uniform_in(0.0, 10.0),
            t_lookup: g.uniform_in(1e-9, 1.0),
        };
        let n_lookup = g.uniform_in(0.0, 1e6);
        let n_train = g.uniform_in(1.0, 1e4);
        let s = effective_speedup(&times, n_lookup, n_train).unwrap().speedup;
        let pure_train = times.t_seq / (times.t_train + times.t_learn);
        let pure_lookup = lookup_limit(&times).unwrap();
        let lo = pure_train.min(pure_lookup) * (1.0 - 1e-9);
        let hi = pure_train.max(pure_lookup) * (1.0 + 1e-9);
        assert!(s >= lo && s <= hi, "case {case}: S = {s} outside [{lo}, {hi}]");
    }
}

/// Speedup is monotone in N_lookup when lookups are cheaper than
/// simulations.
#[test]
fn effective_speedup_monotone_when_lookup_cheaper() {
    for case in 0..CASES {
        let mut g = case_rng(2, case);
        let t_seq = g.uniform_in(0.1, 100.0);
        let ratio = g.uniform_in(1.01, 1e6);
        let n1 = g.uniform_in(0.0, 1e5);
        let extra = g.uniform_in(1.0, 1e5);
        let t_train = t_seq;
        let t_lookup = t_train / ratio;
        let times = SpeedupTimes { t_seq, t_train, t_learn: 0.0, t_lookup };
        let s1 = effective_speedup(&times, n1, 100.0).unwrap().speedup;
        let s2 = effective_speedup(&times, n1 + extra, 100.0).unwrap().speedup;
        assert!(s2 >= s1 * (1.0 - 1e-12), "case {case}: {s2} < {s1}");
    }
}

/// Scaler round-trip is the identity for any well-conditioned data.
#[test]
fn scaler_roundtrip_identity() {
    for case in 0..CASES {
        let mut g = case_rng(3, case);
        let rows = 2 + g.below(28);
        let cols = 1 + g.below(5);
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, g.uniform_in(-100.0, 100.0));
            }
        }
        let scaler = Scaler::fit(&m).unwrap();
        let back = scaler.inverse_transform(&scaler.transform(&m).unwrap()).unwrap();
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            assert!(
                (a - b).abs() < 1e-9 * (1.0 + b.abs()),
                "case {case}: {a} != {b}"
            );
        }
    }
}

/// Matrix multiplication is associative (within tolerance).
#[test]
fn matmul_associative() {
    for case in 0..CASES {
        let mut g = case_rng(4, case);
        let a = Matrix::he_uniform(4, 3, 4, &mut g);
        let b = Matrix::he_uniform(3, 5, 3, &mut g);
        let c = Matrix::he_uniform(5, 2, 5, &mut g);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-10, "case {case}: {x} != {y}");
        }
    }
}

/// Welford accumulation matches batch statistics for arbitrary data.
#[test]
fn welford_matches_batch() {
    for case in 0..CASES {
        let mut g = case_rng(5, case);
        let n = 2 + g.below(198);
        let values: Vec<f64> = (0..n).map(|_| g.uniform_in(-1e4, 1e4)).collect();
        let mut w = stats::Welford::new();
        for &v in &values {
            w.push(v);
        }
        let mean = stats::mean(&values).unwrap();
        let std = stats::sample_std(&values).unwrap();
        assert!(
            (w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "case {case}: mean"
        );
        assert!(
            (w.sample_std() - std).abs() < 1e-6 * (1.0 + std),
            "case {case}: std"
        );
    }
}

/// The RNG's uniform_in always lands inside the interval.
#[test]
fn uniform_in_respects_bounds() {
    for case in 0..CASES {
        let mut g = case_rng(6, case);
        let lo = g.uniform_in(-1e6, 1e6);
        let width = g.uniform_in(1e-6, 1e6);
        let hi = lo + width;
        let mut rng = Rng::new(case);
        for _ in 0..100 {
            let v = rng.uniform_in(lo, hi);
            assert!(
                (lo..hi).contains(&v) || v == lo,
                "case {case}: {v} outside [{lo}, {hi})"
            );
        }
    }
}

/// The cell list finds exactly the brute-force neighbor pairs for
/// arbitrary particle configurations and cutoffs.
#[test]
fn celllist_matches_brute_force() {
    use le_mdsim::celllist::CellList;
    use le_mdsim::system::SlabBox;
    for case in 0..CASES {
        let mut g = case_rng(7, case);
        let n = 2 + g.below(58);
        let cutoff = g.uniform_in(0.5, 3.0);
        let lx = g.uniform_in(4.0, 12.0);
        let h = g.uniform_in(2.0, 8.0);
        let bbox = SlabBox::new(lx, lx, h).unwrap();
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    g.uniform_in(0.0, lx),
                    g.uniform_in(0.0, lx),
                    g.uniform_in(0.0, h),
                ]
            })
            .collect();
        let mut brute = std::collections::HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                let d = bbox.min_image(&pos[i], &pos[j]);
                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                    brute.insert((i, j));
                }
            }
        }
        let cl = CellList::build(bbox, cutoff, &pos);
        let mut found = std::collections::HashSet::new();
        cl.for_each_pair(|i, j| {
            let d = bbox.min_image(&pos[i], &pos[j]);
            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                found.insert((i.min(j), i.max(j)));
            }
        });
        assert_eq!(found, brute, "case {case}");
    }
}

/// No-flux diffusion conserves mass for arbitrary fields and stable
/// solver parameters.
#[test]
fn diffusion_conserves_mass() {
    use le_tissue::{DiffusionSolver, Field};
    for case in 0..CASES {
        let mut g = case_rng(8, case);
        let w = 4 + g.below(16);
        let h = 4 + g.below(16);
        let d = g.uniform_in(0.1, 1.0);
        let steps = 1 + g.below(39);
        let dt = 0.9 * 1.0 / (4.0 * d); // just inside the CFL bound
        let solver = DiffusionSolver::diffusion_only(d, 1.0, dt).unwrap();
        let data: Vec<f64> = (0..w * h).map(|_| g.uniform_in(0.0, 5.0)).collect();
        let field = Field::from_vec(w, h, data).unwrap();
        let sources = Field::zeros(w, h);
        let advanced = solver.advance(&field, &sources, steps).unwrap();
        assert!(
            (advanced.total() - field.total()).abs() < 1e-8 * field.total().max(1.0),
            "case {case}: mass"
        );
        assert!(advanced.min() >= 0.0, "case {case}: negativity");
    }
}

/// SEIR bookkeeping: attack rate bounded by 1, incidence non-negative,
/// and total incidence consistent with the attack rate.
#[test]
fn seir_invariants() {
    use le_netdyn::seir::{simulate, SeirConfig};
    use le_netdyn::{Population, PopulationConfig};
    for case in 0..CASES {
        let mut g = case_rng(9, case);
        let tau = g.uniform_in(0.0, 0.3);
        let seeds_n = 1 + g.below(9);
        let pop = Population::generate(&PopulationConfig::uniform(3, 120), case).unwrap();
        let cfg = SeirConfig {
            transmissibility: tau,
            initial_infections: seeds_n,
            days: 60,
            ..Default::default()
        };
        let out = simulate(&pop, &cfg, case ^ 0xF00D).unwrap();
        assert!(
            out.attack_rate >= 0.0 && out.attack_rate <= 1.0,
            "case {case}: attack rate"
        );
        assert!(
            out.incidence.iter().all(|c| c.iter().all(|&v| v >= 0.0)),
            "case {case}: negative incidence"
        );
        let total: f64 = out.state_incidence().iter().sum();
        let expected = out.attack_rate * pop.size() as f64 - seeds_n as f64;
        assert!((total - expected).abs() < 1e-9, "case {case}: totals");
    }
}

/// Allreduce algorithms agree for arbitrary participant counts and
/// vector lengths.
#[test]
fn allreduce_algorithms_agree() {
    use le_mlkernels::collective::{allreduce_flat, allreduce_ring, allreduce_tree};
    for case in 0..CASES {
        let mut g = case_rng(10, case);
        let p = 1 + g.below(9);
        let n = 1 + g.below(39);
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| g.uniform_in(-10.0, 10.0)).collect())
            .collect();
        let flat = allreduce_flat(&inputs);
        let tree = allreduce_tree(&inputs);
        let ring = allreduce_ring(&inputs);
        for i in 0..n {
            assert!((flat[i] - tree[i]).abs() < 1e-9, "case {case}: tree[{i}]");
            assert!((flat[i] - ring[i]).abs() < 1e-9, "case {case}: ring[{i}]");
        }
    }
}

/// Scheduler work conservation holds for arbitrary workloads.
#[test]
fn scheduler_conserves_work() {
    use le_sched::{simulate, Policy, Workload, WorkloadConfig};
    for case in 0..CASES {
        let mut g = case_rng(11, case);
        let n_workers = 1 + g.below(7);
        let learnt_frac = g.uniform_in(0.0, 1.0);
        let w = Workload::generate(
            &WorkloadConfig {
                n_tasks: 200,
                mean_interarrival: 0.1,
                sim_service: 1.0,
                learnt_speedup: 100.0,
                learnt_fraction_start: learnt_frac,
                learnt_fraction_end: learnt_frac,
            },
            case,
        )
        .unwrap();
        let m = simulate(&w, n_workers, Policy::SingleQueue).unwrap();
        assert_eq!(m.n_completed, 200, "case {case}");
        assert!(
            (m.total_busy - w.total_service()).abs() < 1e-6,
            "case {case}: busy time"
        );
        assert!(m.utilization <= 1.0 + 1e-9, "case {case}: utilization");
    }
}
