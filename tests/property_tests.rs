//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;

use le_linalg::{stats, Matrix, Rng};
use le_nn::Scaler;
use le_perfmodel::speedup::{effective_speedup, lookup_limit, SpeedupTimes};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The effective speedup always lies between min and max of its two
    /// degenerate "pure" rates, for any positive times and counts.
    #[test]
    fn effective_speedup_is_bounded_by_pure_rates(
        t_seq in 1e-3f64..1e3,
        t_train in 1e-3f64..1e3,
        t_learn in 0.0f64..10.0,
        t_lookup in 1e-9f64..1.0,
        n_lookup in 0.0f64..1e6,
        n_train in 1.0f64..1e4,
    ) {
        let times = SpeedupTimes { t_seq, t_train, t_learn, t_lookup };
        let s = effective_speedup(&times, n_lookup, n_train).unwrap().speedup;
        let pure_train = t_seq / (t_train + t_learn);
        let pure_lookup = lookup_limit(&times).unwrap();
        let lo = pure_train.min(pure_lookup) * (1.0 - 1e-9);
        let hi = pure_train.max(pure_lookup) * (1.0 + 1e-9);
        prop_assert!(s >= lo && s <= hi, "S = {s} outside [{lo}, {hi}]");
    }

    /// Speedup is monotone in N_lookup when lookups are cheaper than
    /// simulations.
    #[test]
    fn effective_speedup_monotone_when_lookup_cheaper(
        t_seq in 0.1f64..100.0,
        ratio in 1.01f64..1e6,
        n1 in 0.0f64..1e5,
        extra in 1.0f64..1e5,
    ) {
        let t_train = t_seq;
        let t_lookup = t_train / ratio;
        let times = SpeedupTimes { t_seq, t_train, t_learn: 0.0, t_lookup };
        let s1 = effective_speedup(&times, n1, 100.0).unwrap().speedup;
        let s2 = effective_speedup(&times, n1 + extra, 100.0).unwrap().speedup;
        prop_assert!(s2 >= s1 * (1.0 - 1e-12));
    }

    /// Scaler round-trip is the identity for any well-conditioned data.
    #[test]
    fn scaler_roundtrip_identity(
        rows in 2usize..30,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::new(seed);
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, rng.uniform_in(-100.0, 100.0));
            }
        }
        let scaler = Scaler::fit(&m).unwrap();
        let back = scaler.inverse_transform(&scaler.transform(&m).unwrap()).unwrap();
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Matrix multiplication is associative (within tolerance).
    #[test]
    fn matmul_associative(seed in 0u64..500) {
        let mut rng = Rng::new(seed);
        let a = Matrix::he_uniform(4, 3, 4, &mut rng);
        let b = Matrix::he_uniform(3, 5, 3, &mut rng);
        let c = Matrix::he_uniform(5, 2, 5, &mut rng);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// Welford accumulation matches batch statistics for arbitrary data.
    #[test]
    fn welford_matches_batch(values in prop::collection::vec(-1e4f64..1e4, 2..200)) {
        let mut w = stats::Welford::new();
        for &v in &values {
            w.push(v);
        }
        let mean = stats::mean(&values).unwrap();
        let std = stats::sample_std(&values).unwrap();
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.sample_std() - std).abs() < 1e-6 * (1.0 + std));
    }

    /// The RNG's uniform_in always lands inside the interval.
    #[test]
    fn uniform_in_respects_bounds(seed in 0u64..1000, lo in -1e6f64..1e6, width in 1e-6f64..1e6) {
        let hi = lo + width;
        let mut rng = Rng::new(seed);
        for _ in 0..100 {
            let v = rng.uniform_in(lo, hi);
            prop_assert!((lo..hi).contains(&v) || v == lo);
        }
    }

    /// The cell list finds exactly the brute-force neighbor pairs for
    /// arbitrary particle configurations and cutoffs.
    #[test]
    fn celllist_matches_brute_force(
        seed in 0u64..200,
        n in 2usize..60,
        cutoff in 0.5f64..3.0,
        lx in 4.0f64..12.0,
        h in 2.0f64..8.0,
    ) {
        use le_mdsim::celllist::CellList;
        use le_mdsim::system::SlabBox;
        let bbox = SlabBox::new(lx, lx, h).unwrap();
        let mut rng = Rng::new(seed);
        let pos: Vec<[f64; 3]> = (0..n)
            .map(|_| {
                [
                    rng.uniform_in(0.0, lx),
                    rng.uniform_in(0.0, lx),
                    rng.uniform_in(0.0, h),
                ]
            })
            .collect();
        let mut brute = std::collections::HashSet::new();
        for i in 0..n {
            for j in i + 1..n {
                let d = bbox.min_image(&pos[i], &pos[j]);
                if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                    brute.insert((i, j));
                }
            }
        }
        let cl = CellList::build(bbox, cutoff, &pos);
        let mut found = std::collections::HashSet::new();
        cl.for_each_pair(|i, j| {
            let d = bbox.min_image(&pos[i], &pos[j]);
            if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                found.insert((i.min(j), i.max(j)));
            }
        });
        prop_assert_eq!(found, brute);
    }

    /// No-flux diffusion conserves mass for arbitrary fields and stable
    /// solver parameters.
    #[test]
    fn diffusion_conserves_mass(
        seed in 0u64..200,
        w in 4usize..20,
        h in 4usize..20,
        d in 0.1f64..1.0,
        steps in 1usize..40,
    ) {
        use le_tissue::{DiffusionSolver, Field};
        let dt = 0.9 * 1.0 / (4.0 * d); // just inside the CFL bound
        let solver = DiffusionSolver::diffusion_only(d, 1.0, dt).unwrap();
        let mut rng = Rng::new(seed);
        let data: Vec<f64> = (0..w * h).map(|_| rng.uniform_in(0.0, 5.0)).collect();
        let field = Field::from_vec(w, h, data).unwrap();
        let sources = Field::zeros(w, h);
        let advanced = solver.advance(&field, &sources, steps).unwrap();
        prop_assert!((advanced.total() - field.total()).abs() < 1e-8 * field.total().max(1.0));
        prop_assert!(advanced.min() >= 0.0);
    }

    /// SEIR bookkeeping: attack rate bounded by 1, incidence non-negative,
    /// and total incidence consistent with the attack rate.
    #[test]
    fn seir_invariants(
        seed in 0u64..100,
        tau in 0.0f64..0.3,
        seeds_n in 1usize..10,
    ) {
        use le_netdyn::seir::{simulate, SeirConfig};
        use le_netdyn::{Population, PopulationConfig};
        let pop = Population::generate(&PopulationConfig::uniform(3, 120), seed).unwrap();
        let cfg = SeirConfig {
            transmissibility: tau,
            initial_infections: seeds_n,
            days: 60,
            ..Default::default()
        };
        let out = simulate(&pop, &cfg, seed ^ 0xF00D).unwrap();
        prop_assert!(out.attack_rate >= 0.0 && out.attack_rate <= 1.0);
        prop_assert!(out
            .incidence
            .iter()
            .all(|c| c.iter().all(|&v| v >= 0.0)));
        let total: f64 = out.state_incidence().iter().sum();
        let expected = out.attack_rate * pop.size() as f64 - seeds_n as f64;
        prop_assert!((total - expected).abs() < 1e-9);
    }

    /// Allreduce algorithms agree for arbitrary participant counts and
    /// vector lengths.
    #[test]
    fn allreduce_algorithms_agree(
        p in 1usize..10,
        n in 1usize..40,
        seed in 0u64..200,
    ) {
        use le_mlkernels::collective::{allreduce_flat, allreduce_ring, allreduce_tree};
        let mut rng = Rng::new(seed);
        let inputs: Vec<Vec<f64>> = (0..p)
            .map(|_| (0..n).map(|_| rng.uniform_in(-10.0, 10.0)).collect())
            .collect();
        let flat = allreduce_flat(&inputs);
        let tree = allreduce_tree(&inputs);
        let ring = allreduce_ring(&inputs);
        for i in 0..n {
            prop_assert!((flat[i] - tree[i]).abs() < 1e-9);
            prop_assert!((flat[i] - ring[i]).abs() < 1e-9);
        }
    }

    /// Scheduler work conservation holds for arbitrary workloads.
    #[test]
    fn scheduler_conserves_work(
        seed in 0u64..200,
        n_workers in 1usize..8,
        learnt_frac in 0.0f64..1.0,
    ) {
        use le_sched::{simulate, Policy, Workload, WorkloadConfig};
        let w = Workload::generate(
            &WorkloadConfig {
                n_tasks: 200,
                mean_interarrival: 0.1,
                sim_service: 1.0,
                learnt_speedup: 100.0,
                learnt_fraction_start: learnt_frac,
                learnt_fraction_end: learnt_frac,
            },
            seed,
        )
        .unwrap();
        let m = simulate(&w, n_workers, Policy::SingleQueue).unwrap();
        prop_assert_eq!(m.n_completed, 200);
        prop_assert!((m.total_busy - w.total_service()).abs() < 1e-6);
        prop_assert!(m.utilization <= 1.0 + 1e-9);
    }
}
