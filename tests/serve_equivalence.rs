//! Serving-path equivalence: a workload answered through the full
//! `le-serve` frontend — concurrent client threads, the seq-ordered
//! ingress ring, admission, and size/deadline wave formation — must be
//! **bitwise identical** to driving the same logical row sequence through
//! `HybridEngine` directly. The frontend adds concurrency and batching
//! policy, never numerics.
//!
//! `scripts/verify.sh` runs this suite at `LE_POOL_THREADS` ∈ {1, 4, 7}:
//! the equivalence must hold at any pool width and any client
//! interleaving.

use le_serve::{
    serve, Arrival, LoadConfig, LoopMode, ServeConfig, SizeClass, TenantQuota, Workload,
};
use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine};

/// A small mixed-regime engine: tight enough gate that waves mix lookups
/// with simulations (and trigger mid-run retrains), so equivalence is
/// checked across every engine state transition, not just the warm path.
fn engine() -> HybridEngine<SyntheticSimulator> {
    HybridEngine::new(
        SyntheticSimulator::new(2, 1, 5, 0.0),
        HybridConfig {
            uncertainty_threshold: 0.25,
            min_training_runs: 16,
            retrain_growth: 1.5,
            surrogate: SurrogateConfig {
                hidden: vec![12],
                epochs: 15,
                mc_samples: 6,
                seed: 4,
                ..Default::default()
            },
        },
    )
    .expect("valid config")
}

fn workload(seed: u64) -> Workload {
    le_serve::loadgen::generate(&LoadConfig {
        seed,
        requests: 400,
        input_dim: 2,
        domain: (-1.0, 1.0),
        payload_pool: 128,
        tenants: vec![0.6, 0.4],
        sizes: vec![
            SizeClass { rows: 1, weight: 0.5 },
            SizeClass { rows: 3, weight: 0.3 },
            SizeClass { rows: 9, weight: 0.2 },
        ],
        arrival: Arrival::Poisson { rate: 5000.0 },
    })
    .expect("valid workload")
}

/// The direct path: the same logical row order, one `query_each` call.
fn direct_rows(w: &Workload) -> Vec<learning_everywhere::hybrid::QueryResult> {
    let mut eng = engine();
    let inputs: Vec<&[f64]> = w
        .specs
        .iter()
        .flat_map(|s| (s.row_start..s.row_start + s.rows).map(|r| w.row(r)))
        .collect();
    eng.query_each(&inputs)
        .expect("direct path serves")
        .into_iter()
        .map(|r| r.expect("no per-row failures in this workload"))
        .collect()
}

fn assert_bitwise_equal(
    w: &Workload,
    report: &le_serve::ServeReport,
    direct: &[learning_everywhere::hybrid::QueryResult],
) {
    assert_eq!(report.responses.len(), w.specs.len());
    let mut cursor = 0usize;
    for (spec, resp) in w.specs.iter().zip(&report.responses) {
        assert_eq!(resp.seq, spec.seq);
        assert_eq!(resp.tenant, spec.tenant);
        let rows = resp.outcome.as_ref().expect("unlimited quotas admit all");
        assert_eq!(rows.len(), spec.rows);
        for row in rows {
            let got = row.as_ref().expect("row served");
            let want = &direct[cursor];
            cursor += 1;
            assert_eq!(got.output.len(), want.output.len());
            for (a, b) in got.output.iter().zip(&want.output) {
                assert_eq!(a.to_bits(), b.to_bits(), "output bits diverged");
            }
            assert_eq!(got.source, want.source, "gate decision diverged");
            assert_eq!(
                got.gate_std.map(f64::to_bits),
                want.gate_std.map(f64::to_bits),
                "gate uncertainty diverged"
            );
        }
    }
    assert_eq!(cursor, direct.len(), "every direct row matched");
}

#[test]
fn open_loop_serving_is_bitwise_identical_to_the_direct_path() {
    let w = workload(0xE0);
    let direct = direct_rows(&w);
    let mut eng = engine();
    let report = serve(
        &mut eng,
        &w,
        &ServeConfig {
            clients: 5,
            queue_capacity: 32,
            batch_max_rows: 24,
            deadline: 0.004,
            mode: LoopMode::Open,
            quotas: vec![TenantQuota::unlimited(); 2],
        },
    )
    .expect("serve run completes");
    assert_bitwise_equal(&w, &report, &direct);
    assert!(report.waves > 1, "the workload actually batched into waves");

    // The engines walked the same state trajectory.
    let mut reference = engine();
    let inputs: Vec<&[f64]> = w
        .specs
        .iter()
        .flat_map(|s| (s.row_start..s.row_start + s.rows).map(|r| w.row(r)))
        .collect();
    reference.query_each(&inputs).expect("reference serves");
    assert_eq!(eng.n_lookups(), reference.n_lookups());
    assert_eq!(eng.n_simulations(), reference.n_simulations());
    assert_eq!(eng.buffered_runs(), reference.buffered_runs());
}

#[test]
fn closed_loop_serving_is_bitwise_identical_to_the_direct_path() {
    let w = workload(0xE1);
    let direct = direct_rows(&w);
    let mut eng = engine();
    let report = serve(
        &mut eng,
        &w,
        &ServeConfig {
            clients: 3,
            queue_capacity: 8,
            batch_max_rows: 16,
            deadline: 1.0,
            mode: LoopMode::Closed,
            quotas: vec![TenantQuota::unlimited(); 2],
        },
    )
    .expect("serve run completes");
    assert_bitwise_equal(&w, &report, &direct);
}

#[test]
fn client_count_and_queue_capacity_do_not_change_a_single_bit() {
    // The frontend's concurrency knobs are pure performance knobs: every
    // (clients, capacity, batch) combination must reproduce the same
    // response stream.
    let w = workload(0xE2);
    let runs: Vec<Vec<u64>> = [(1usize, 4usize, 8usize), (4, 16, 32), (9, 64, 64)]
        .iter()
        .map(|&(clients, capacity, batch)| {
            let mut eng = engine();
            let report = serve(
                &mut eng,
                &w,
                &ServeConfig {
                    clients,
                    queue_capacity: capacity,
                    batch_max_rows: batch,
                    deadline: 0.01,
                    mode: LoopMode::Open,
                    quotas: vec![TenantQuota::unlimited(); 2],
                },
            )
            .expect("serve run completes");
            report
                .responses
                .iter()
                .flat_map(|r| {
                    r.outcome
                        .as_ref()
                        .expect("admitted")
                        .iter()
                        .flat_map(|row| {
                            row.as_ref().expect("served").output.iter().map(|v| v.to_bits())
                        })
                        .collect::<Vec<u64>>()
                })
                .collect()
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
    assert!(!runs[0].is_empty());
}

#[test]
fn serve_rejects_mismatched_dimensions_and_tenants_up_front() {
    let w = workload(0xE3); // input_dim 2, 2 tenants
    let mut eng = engine();
    // Too few tenant quotas.
    let err = serve(
        &mut eng,
        &w,
        &ServeConfig {
            quotas: vec![TenantQuota::unlimited()],
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, learning_everywhere::LeError::InvalidConfig(_)));

    // Engine with the wrong input dimensionality.
    let mut wrong = HybridEngine::new(
        SyntheticSimulator::new(3, 1, 5, 0.0),
        HybridConfig::default(),
    )
    .expect("valid config");
    let err = serve(
        &mut wrong,
        &w,
        &ServeConfig {
            quotas: vec![TenantQuota::unlimited(); 2],
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(matches!(err, learning_everywhere::LeError::InvalidConfig(_)));
}
