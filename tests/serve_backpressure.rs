//! Backpressure and admission-accounting properties of the `le-serve`
//! frontend, checked over seeded workload sweeps:
//!
//! * quota accounting is conserved per tenant
//!   (`admitted + rejected == submitted`), and every submitted request is
//!   answered exactly once — nothing is dropped silently;
//! * rejections are typed [`LeError::Backpressure`] values, never panics
//!   or truncated responses;
//! * a saturated ingress ring (tiny capacity, many clients) parks
//!   producers instead of deadlocking or dropping;
//! * admission decisions are a pure function of the stream — replays are
//!   identical, and unlimited quotas never reject.

use le_serve::{
    serve, Arrival, LoadConfig, LoopMode, ServeConfig, SizeClass, TenantQuota, Workload,
};
use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, LeError};

/// A warm, generous-gate engine so these tests spend their time in the
/// admission/queue logic, not in simulation.
fn engine() -> HybridEngine<SyntheticSimulator> {
    let mut eng = HybridEngine::new(
        SyntheticSimulator::new(2, 1, 0, 0.0),
        HybridConfig {
            uncertainty_threshold: 10.0,
            min_training_runs: 16,
            retrain_growth: 8.0,
            surrogate: SurrogateConfig {
                hidden: vec![8],
                epochs: 10,
                mc_samples: 4,
                seed: 2,
                ..Default::default()
            },
        },
    )
    .expect("valid config");
    let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
    let mut rng = le_linalg::Rng::new(99);
    let x: Vec<Vec<f64>> = (0..24)
        .map(|_| vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)])
        .collect();
    let y: Vec<Vec<f64>> = x.iter().map(|v| sim.truth(v)).collect();
    eng.seed_training(&x, &y).expect("warmup trains");
    eng
}

fn workload(seed: u64, requests: usize) -> Workload {
    le_serve::loadgen::generate(&LoadConfig {
        seed,
        requests,
        input_dim: 2,
        domain: (-1.0, 1.0),
        payload_pool: 96,
        tenants: vec![0.4, 0.4, 0.2],
        sizes: vec![
            SizeClass { rows: 1, weight: 0.5 },
            SizeClass { rows: 4, weight: 0.3 },
            SizeClass { rows: 12, weight: 0.2 },
        ],
        arrival: Arrival::Poisson { rate: 3000.0 },
    })
    .expect("valid workload")
}

/// Tenant 2 gets a bucket far below its offered rate, so it must shed.
fn tight_quotas() -> Vec<TenantQuota> {
    vec![
        TenantQuota::unlimited(),
        TenantQuota { rate: 5_000.0, burst: 64.0 },
        TenantQuota { rate: 300.0, burst: 8.0 },
    ]
}

#[test]
fn accounting_is_conserved_and_every_request_is_answered() {
    for seed in [1u64, 2, 3, 4, 5] {
        let w = workload(seed, 500);
        let mut eng = engine();
        let report = serve(
            &mut eng,
            &w,
            &ServeConfig {
                clients: 4,
                queue_capacity: 64,
                batch_max_rows: 48,
                deadline: 0.01,
                mode: LoopMode::Open,
                quotas: tight_quotas(),
            },
        )
        .expect("serve run completes");

        // Exactly one response per request, in sequence order.
        assert_eq!(report.responses.len(), w.specs.len());
        for (i, r) in report.responses.iter().enumerate() {
            assert_eq!(r.seq, i as u64, "responses are seq-indexed");
        }

        // Per-tenant conservation against the schedule's own census.
        let mut expected = vec![0u64; w.tenants];
        for s in &w.specs {
            expected[s.tenant] += 1;
        }
        let mut answered_rejects = vec![0u64; w.tenants];
        for r in &report.responses {
            if r.outcome.is_err() {
                answered_rejects[r.tenant] += 1;
            }
        }
        for t in 0..w.tenants {
            assert_eq!(report.submitted[t], expected[t], "tenant {t} census");
            assert_eq!(
                report.admitted[t] + report.rejected[t],
                report.submitted[t],
                "tenant {t} conservation"
            );
            assert_eq!(
                report.rejected[t], answered_rejects[t],
                "tenant {t}: every rejection is an answered response"
            );
        }
        let rejected: u64 = report.rejected.iter().sum();
        assert!(rejected > 0, "seed {seed}: the tight quota actually shed load");
        assert!(
            report.rejected[0] == 0,
            "unlimited tenant 0 is never rejected"
        );
    }
}

#[test]
fn rejections_are_typed_backpressure_errors() {
    let w = workload(7, 400);
    let mut eng = engine();
    let report = serve(
        &mut eng,
        &w,
        &ServeConfig {
            clients: 3,
            queue_capacity: 32,
            batch_max_rows: 32,
            deadline: 0.01,
            mode: LoopMode::Open,
            quotas: tight_quotas(),
        },
    )
    .expect("serve run completes");
    let mut saw_reject = false;
    for r in &report.responses {
        match &r.outcome {
            Ok(rows) => {
                assert!(!rows.is_empty(), "admitted requests carry their rows");
                for row in rows {
                    assert!(row.is_ok(), "this simulator never fails a row");
                }
            }
            Err(e) => {
                saw_reject = true;
                assert!(
                    matches!(e, LeError::Backpressure(_)),
                    "rejection must be typed backpressure, got: {e}"
                );
                assert!(e.to_string().contains("over quota"));
            }
        }
    }
    assert!(saw_reject);
}

#[test]
fn saturated_ring_parks_producers_without_deadlock_or_loss() {
    // Capacity 2 with 8 clients: producers spend the whole run parked on
    // the saturation window. Both loop modes must still answer everything.
    for mode in [LoopMode::Open, LoopMode::Closed] {
        let w = workload(11, 600);
        let mut eng = engine();
        let report = serve(
            &mut eng,
            &w,
            &ServeConfig {
                clients: 8,
                queue_capacity: 2,
                batch_max_rows: 16,
                deadline: 0.002,
                mode,
                quotas: tight_quotas(),
            },
        )
        .expect("saturated run still completes");
        assert_eq!(report.responses.len(), 600, "mode {mode:?}: nothing dropped");
        let submitted: u64 = report.submitted.iter().sum();
        assert_eq!(submitted, 600);
    }
}

#[test]
fn admission_decisions_replay_bit_identically() {
    let decisions = |clients: usize| -> Vec<bool> {
        let w = workload(17, 500);
        let mut eng = engine();
        let report = serve(
            &mut eng,
            &w,
            &ServeConfig {
                clients,
                queue_capacity: 16,
                batch_max_rows: 40,
                deadline: 0.005,
                mode: LoopMode::Open,
                quotas: tight_quotas(),
            },
        )
        .expect("serve run completes");
        report.responses.iter().map(|r| r.outcome.is_ok()).collect()
    };
    let a = decisions(1);
    let b = decisions(6);
    let c = decisions(6);
    assert_eq!(a, b, "client count must not change admission");
    assert_eq!(b, c, "replays are identical");
    assert!(a.iter().any(|&x| !x), "the sweep actually exercised rejection");
}

#[test]
fn unlimited_quotas_never_reject() {
    let w = workload(23, 400);
    let mut eng = engine();
    let report = serve(
        &mut eng,
        &w,
        &ServeConfig {
            clients: 4,
            queue_capacity: 32,
            batch_max_rows: 64,
            deadline: 0.01,
            mode: LoopMode::Open,
            quotas: vec![TenantQuota::unlimited(); 3],
        },
    )
    .expect("serve run completes");
    assert_eq!(report.rejected.iter().sum::<u64>(), 0);
    assert_eq!(
        report.admitted.iter().sum::<u64>(),
        report.responses.len() as u64
    );
    assert_eq!(report.rows_served as usize, w.total_rows());
    assert_eq!(report.row_errors, 0);
}
