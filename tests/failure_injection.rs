//! Failure-injection tests: the framework must degrade cleanly when the
//! wrapped simulator fails, returns garbage, or the configuration is
//! hostile — errors propagate as typed errors, never panics or silent
//! corruption. The supervisor's degradation ladder (retry → quarantine →
//! Degraded) is exercised rung by rung.

use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{
    HybridConfig, HybridEngine, LeError, QuerySource, Simulator, SupervisorConfig, SupervisorState,
};

/// A simulator that fails on a configurable subset of inputs.
struct FlakySimulator {
    /// Fail when the first input exceeds this.
    fail_above: f64,
}

impl Simulator for FlakySimulator {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        if x[0] > self.fail_above {
            return Err(LeError::Simulation(format!(
                "diverged at x0 = {}",
                x[0]
            )));
        }
        Ok(vec![x[0] + x[1]])
    }
    fn name(&self) -> &str {
        "flaky"
    }
}

/// A simulator that returns non-finite outputs sometimes.
struct NanSimulator;

impl Simulator for NanSimulator {
    fn input_dim(&self) -> usize {
        1
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        Ok(vec![if x[0] > 0.5 { f64::NAN } else { x[0] }])
    }
    fn name(&self) -> &str {
        "nan-producer"
    }
}

#[test]
fn simulator_failure_propagates_as_typed_error() {
    let mut engine = HybridEngine::new(
        FlakySimulator { fail_above: 0.5 },
        HybridConfig {
            min_training_runs: 8,
            ..Default::default()
        },
    )
    .expect("valid config");
    // A failing query returns Err, does not panic, does not pollute state.
    // The supervisor retries with fresh seeds first — an input-determined
    // failure exhausts the budget — and the simulator's own message
    // surfaces undecorated in the typed error.
    let before = engine.buffered_runs();
    let err = engine.query(&[0.9, 0.0]).expect_err("must fail");
    assert_eq!(err, LeError::Simulation("diverged at x0 = 0.9".into()));
    assert_eq!(engine.buffered_runs(), before, "failed run must not be buffered");
    assert_eq!(
        engine.supervisor().retries(),
        engine.supervisor().config().max_retries as u64,
        "every retry in the budget was spent before giving up"
    );
    // Subsequent good queries still work.
    let ok = engine.query(&[0.1, 0.2]).expect("good input works");
    assert!((ok.output[0] - 0.3).abs() < 1e-12);
}

/// A simulator that fails unless the attempt seed is even — a transient
/// fault from the retry ladder's point of view.
struct SeedFlaky;

impl Simulator for SeedFlaky {
    fn input_dim(&self) -> usize {
        1
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        if seed % 2 == 1 {
            return Err(LeError::Simulation(format!("transient glitch, seed {seed}")));
        }
        Ok(vec![x[0] * 2.0])
    }
    fn name(&self) -> &str {
        "seed-flaky"
    }
}

#[test]
fn transient_faults_are_recovered_by_seeded_retry() {
    // The engine's serial seed counter keeps advancing across attempts, so
    // a seed-dependent fault clears on the retry: odd first-attempt seeds
    // fail, the even retry succeeds, and the caller never sees an error.
    let mut engine = HybridEngine::new(
        SeedFlaky,
        HybridConfig {
            min_training_runs: 64, // never retrain in this test
            ..Default::default()
        },
    )
    .expect("valid config");
    for q in 0..6 {
        let r = engine.query(&[q as f64]).expect("retry recovers");
        assert_eq!(r.source, QuerySource::Simulated);
        assert!((r.output[0] - 2.0 * q as f64).abs() < 1e-12);
    }
    // Each query burned exactly one retry (odd seed, then even seed).
    assert_eq!(engine.supervisor().retries(), 6);
    assert_eq!(engine.n_simulations(), 6);
    assert_eq!(engine.supervisor().state(), SupervisorState::Normal);
}

#[test]
fn retry_exhaustion_surfaces_typed_error_and_counts() {
    let mut engine = HybridEngine::with_supervisor(
        FlakySimulator { fail_above: -2.0 }, // always fails
        HybridConfig {
            min_training_runs: 8,
            ..Default::default()
        },
        SupervisorConfig {
            max_retries: 3,
            ..Default::default()
        },
    )
    .expect("valid config");
    let err = engine.query(&[0.0, 0.0]).expect_err("budget exhausts");
    assert!(matches!(err, LeError::Simulation(_)));
    assert_eq!(engine.supervisor().retries(), 3, "3 retries after the first attempt");
    assert_eq!(engine.n_simulations(), 0, "no attempt is counted as success");
    // Failures don't touch the ladder state: retries are per-query.
    assert_eq!(engine.supervisor().state(), SupervisorState::Normal);
}

#[test]
fn engine_survives_many_interleaved_failures() {
    let mut engine = HybridEngine::new(
        FlakySimulator { fail_above: 0.0 },
        HybridConfig {
            min_training_runs: 16,
            surrogate: SurrogateConfig {
                epochs: 30,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("valid config");
    let mut rng = le_linalg::Rng::new(3);
    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..120 {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        match engine.query(&x) {
            Ok(_) => ok += 1,
            Err(LeError::Simulation(_)) => failed += 1,
            Err(other) => panic!("unexpected error type: {other}"),
        }
    }
    assert!(ok > 0 && failed > 0, "both paths exercised: {ok} ok, {failed} failed");
    // Accounting only counts successful work.
    assert_eq!(
        engine.accounting().n_train() + engine.n_lookups(),
        ok as u64
    );
}

#[test]
fn nan_outputs_are_rejected_at_the_query_layer() {
    // A diverged run reporting success (finite inputs, NaN output) is
    // rejected by the finiteness guard before it can reach the training
    // buffer: the query errors after the retry budget, nothing non-finite
    // is ever buffered, and the surrogate that eventually forms from the
    // clean runs serves only finite lookups.
    let mut engine = HybridEngine::new(
        NanSimulator,
        HybridConfig {
            min_training_runs: 8,
            surrogate: SurrogateConfig {
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("valid config");
    let mut rng = le_linalg::Rng::new(5);
    let mut rejected = 0;
    let mut served = 0;
    for _ in 0..40 {
        let x = [rng.uniform_in(0.0, 1.0)];
        match engine.query(&x) {
            Ok(r) => {
                served += 1;
                assert!(r.output[0].is_finite(), "served answers are always finite");
            }
            Err(e) => {
                rejected += 1;
                assert!(matches!(e, LeError::Simulation(_)));
            }
        }
    }
    assert!(rejected > 0 && served > 0, "both paths hit: {served} ok, {rejected} rejected");
    // The guard kept the buffer clean, so retraining never saw NaN.
    assert_eq!(engine.failed_retrains(), 0, "poison never reaches the trainer");
    assert_eq!(engine.buffered_runs() as u64, engine.n_simulations());
    assert!(engine.has_surrogate(), "clean runs still train a surrogate");
}

#[test]
fn quarantine_round_trip_benches_and_readmits_the_surrogate() {
    // Entry: consecutive gate anomalies (a NaN query input makes the
    // surrogate prediction non-finite) bench the surrogate. While benched,
    // every query is simulator-only. Exit: a successful retrain re-admits.
    let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
    let mut engine = HybridEngine::with_supervisor(
        sim.clone(),
        HybridConfig {
            uncertainty_threshold: 1e6, // gate always admits: gate path runs
            min_training_runs: 8,
            retrain_growth: 100.0, // no automatic retrain after warmup
            surrogate: SurrogateConfig {
                epochs: 20,
                seed: 17,
                ..Default::default()
            },
            ..Default::default()
        },
        SupervisorConfig {
            max_retries: 0,
            quarantine_after: 3,
            degrade_after: 3,
        },
    )
    .expect("valid config");
    // Warm up a trusted surrogate from clean seeded runs.
    let mut rng = le_linalg::Rng::new(19);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..12 {
        let x = vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        let y = sim.truth(&x);
        xs.push(x);
        ys.push(y);
    }
    engine.seed_training(&xs, &ys).expect("clean seed data trains");
    assert!(engine.has_surrogate());
    assert!(engine.supervisor().trusts_surrogate());

    // Three NaN-input queries: each is a gate anomaly (non-finite
    // prediction), then the simulation fallback also fails (NaN output) —
    // the query errors, and the anomaly streak climbs to quarantine.
    for _ in 0..3 {
        assert!(engine.query(&[f64::NAN, 0.0]).is_err());
    }
    assert_eq!(engine.supervisor().state(), SupervisorState::Quarantined);
    assert_eq!(engine.supervisor().quarantines(), 1);

    // Benched: the surrogate still exists but is never consulted — every
    // query simulates, and the gate reports no uncertainty.
    let r = engine.query(&[0.3, 0.1]).expect("simulation still serves");
    assert_eq!(r.source, QuerySource::Simulated);
    assert!(r.gate_std.is_none(), "benched surrogate is not consulted");
    assert!(engine.has_surrogate());

    // A successful retrain (the buffer holds only clean runs) re-admits.
    engine.retrain().expect("clean buffer retrains fine");
    assert_eq!(engine.supervisor().state(), SupervisorState::Normal);
    assert_eq!(engine.supervisor().readmissions(), 1);
    let r = engine.query(&[0.2, 0.2]).expect("back to normal");
    assert!(r.gate_std.is_some(), "re-admitted surrogate is consulted again");
}

#[test]
fn degraded_mode_serves_every_query_and_keeps_accounting_exact() {
    // Repeated retrain failures (the seed buffer is NaN-poisoned, which
    // `seed_training` deliberately tolerates and `NnSurrogate::fit`
    // rejects) walk Quarantined → Degraded. A Degraded engine is terminal
    // simulator-only: it stops retraining, serves every query, and the
    // §III-D accounting identity still holds.
    let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
    let mut engine = HybridEngine::with_supervisor(
        sim,
        HybridConfig {
            min_training_runs: 64, // seed_training below stays sub-threshold
            ..Default::default()
        },
        SupervisorConfig {
            max_retries: 1,
            quarantine_after: 3,
            degrade_after: 2,
        },
    )
    .expect("valid config");
    let poisoned_x = vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![0.2, 0.2], vec![0.3, 0.3]];
    let poisoned_y = vec![vec![f64::NAN]; 4];
    engine
        .seed_training(&poisoned_x, &poisoned_y)
        .expect("sub-threshold seeding does not train");

    // First failed retrain: the stale surrogate must not stay silently
    // trusted — quarantine immediately, with the typed detail surfaced.
    assert!(engine.retrain().is_err());
    assert_eq!(engine.supervisor().state(), SupervisorState::Quarantined);
    assert!(matches!(
        engine.supervisor().last_retrain_error(),
        Some(LeError::Model(_))
    ));
    // Second consecutive failure: terminal.
    assert!(engine.retrain().is_err());
    assert_eq!(engine.supervisor().state(), SupervisorState::Degraded);
    assert_eq!(engine.failed_retrains(), 2);
    assert!(!engine.supervisor().wants_retrain());

    // The Degraded campaign still serves everything, simulator-only.
    let mut rng = le_linalg::Rng::new(23);
    let n = 80;
    for _ in 0..n {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        let r = engine.query(&x).expect("Degraded mode still serves");
        assert_eq!(r.source, QuerySource::Simulated);
        assert!(r.output[0].is_finite());
    }
    assert_eq!(engine.n_lookups(), 0);
    assert_eq!(engine.n_simulations(), n);
    // Accounting identity: every served query is either trained-on
    // simulation or lookup; Degraded mode never trains again.
    assert_eq!(engine.accounting().n_train(), n);
    assert_eq!(engine.accounting().n_lookup(), 0);
    assert_eq!(engine.failed_retrains(), 2, "no further retrain attempts");
}

#[test]
fn active_learning_aborts_on_simulator_failure() {
    use learning_everywhere::active::{run_active_learning, ActiveConfig, UqBackend};
    use le_uq::AcquisitionStrategy;

    let sim = FlakySimulator { fail_above: -2.0 }; // always fails
    let pool: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
    let val: Vec<Vec<f64>> = vec![vec![0.0, 0.0]];
    let val_y: Vec<Vec<f64>> = vec![vec![0.0]];
    let result = run_active_learning(
        &sim,
        &pool,
        &val,
        &val_y,
        &ActiveConfig {
            initial: 8,
            batch: 8,
            budget: 24,
            strategy: AcquisitionStrategy::Random,
            backend: UqBackend::McDropout,
            surrogate: SurrogateConfig::default(),
            seed: 1,
        },
    );
    assert!(matches!(result, Err(LeError::Simulation(_))));
}

#[test]
fn control_campaign_aborts_on_simulator_failure() {
    use learning_everywhere::control::{run_campaign, ControlConfig};
    let sim = FlakySimulator { fail_above: -2.0 };
    let result = run_campaign(
        &sim,
        &[0.0],
        &[(-1.0, 1.0), (-1.0, 1.0)],
        &ControlConfig::default(),
    );
    assert!(matches!(result, Err(LeError::Simulation(_))));
}

#[test]
fn failing_simulator_still_exports_valid_obs_snapshot() {
    // The observability layer must survive error paths untouched: failed
    // simulations increment `hybrid.sim_errors`, leave no phantom span
    // records, and the registry stays exportable (no poison, no panic).
    let errors_before = le_obs::snapshot().counter("hybrid.sim_errors").unwrap_or(0);
    let mut engine = HybridEngine::new(
        FlakySimulator { fail_above: -2.0 }, // always fails
        HybridConfig {
            min_training_runs: 4,
            ..Default::default()
        },
    )
    .expect("valid config");
    let n_failures = 12;
    for i in 0..n_failures {
        let x = [0.1 * i as f64, 0.0];
        assert!(engine.query(&x).is_err(), "every query must fail");
    }

    let snap = le_obs::snapshot();
    let errors_after = snap.counter("hybrid.sim_errors").unwrap_or(0);
    assert!(
        errors_after >= errors_before + n_failures,
        "each failed simulation must be counted ({errors_before} -> {errors_after})"
    );
    // Failed runs record nothing in accounting, so the simulate span (one
    // record per *successful* simulation, process-wide) cannot exceed the
    // successes other tests in this binary produced; our 12 failures add 0.
    assert_eq!(engine.accounting().n_train(), 0);

    // The registry still snapshots and the export parses as JSON.
    let path = le_obs::write_snapshot("failure_injection").expect("snapshot after errors");
    let body = std::fs::read_to_string(&path).expect("snapshot readable");
    let doc = le_bench::json::parse(&body).expect("valid JSON after failure paths");
    assert!(doc.get("counters").is_some());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("txt"));
}

#[test]
fn hostile_configurations_rejected_up_front() {
    let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
    // NaN threshold.
    assert!(HybridEngine::new(
        sim.clone(),
        HybridConfig {
            uncertainty_threshold: f64::NAN,
            ..Default::default()
        }
    )
    .is_err() || {
        // NaN < x is false for all x, so a NaN gate would never serve
        // lookups; constructor may accept it only if the comparison is
        // conservative. Verify conservativeness:
        let mut e = HybridEngine::new(
            sim.clone(),
            HybridConfig {
                uncertainty_threshold: f64::NAN,
                ..Default::default()
            },
        )
        .unwrap();
        let r = e.query(&[0.0, 0.0]).unwrap();
        r.source == learning_everywhere::QuerySource::Simulated
    });
}

#[test]
fn serving_path_walks_the_degradation_ladder_like_the_direct_path() {
    // Drive a `FaultySimulator` through the full `le-serve` frontend with
    // a NaN-poisoned training buffer: the auto-retrains that fire inside
    // serving waves must fail, walk Quarantined → Degraded mid-campaign,
    // and land on *exactly* the same engine/supervisor counters — and the
    // same served bits — as the identical campaign run directly through
    // `query_each`. Supervision is engine-level; the frontend must
    // neither mask nor duplicate any rung of the ladder.
    use le_faults::{FaultPlan, FaultRates, FaultySimulator};
    use le_serve::{serve, LoopMode, ServeConfig, TenantQuota};

    let plan = FaultPlan::new(
        0xFA_5E,
        FaultRates {
            sim_error: 0.08,
            nonfinite: 0.04,
            stall: 0.0,
        },
    )
    .expect("valid fault plan");

    let build = |plan: FaultPlan| -> HybridEngine<FaultySimulator<SyntheticSimulator>> {
        let mut engine = HybridEngine::with_supervisor(
            FaultySimulator::new(SyntheticSimulator::new(2, 1, 0, 0.0), plan),
            HybridConfig {
                uncertainty_threshold: 0.3,
                min_training_runs: 16,
                retrain_growth: 1.25,
                surrogate: SurrogateConfig {
                    hidden: vec![8],
                    epochs: 10,
                    mc_samples: 4,
                    seed: 6,
                    ..Default::default()
                },
            },
            SupervisorConfig {
                max_retries: 2,
                quarantine_after: 3,
                degrade_after: 2,
            },
        )
        .expect("valid config");
        // Sub-threshold poisoned seeding: tolerated by `seed_training`,
        // fatal to every later `NnSurrogate::fit`.
        let poisoned_x = vec![vec![0.0, 0.0], vec![0.1, 0.1], vec![0.2, 0.2], vec![0.3, 0.3]];
        engine
            .seed_training(&poisoned_x, &vec![vec![f64::NAN]; 4])
            .expect("sub-threshold seeding does not train");
        engine
    };

    let workload = le_serve::loadgen::generate(&le_serve::LoadConfig {
        seed: 0xFA_5E,
        requests: 120,
        input_dim: 2,
        domain: (-1.0, 1.0),
        payload_pool: 64,
        tenants: vec![1.0],
        sizes: vec![
            le_serve::SizeClass { rows: 1, weight: 0.6 },
            le_serve::SizeClass { rows: 4, weight: 0.4 },
        ],
        arrival: le_serve::Arrival::Poisson { rate: 2000.0 },
    })
    .expect("valid workload");

    // Direct path: same logical row order, one query_each call.
    let mut direct = build(plan.clone());
    let inputs: Vec<&[f64]> = workload
        .specs
        .iter()
        .flat_map(|s| (s.row_start..s.row_start + s.rows).map(|r| workload.row(r)))
        .collect();
    let direct_rows = direct.query_each(&inputs).expect("direct path serves");

    // Serving path: concurrent clients, tiny waves, unlimited quota.
    let mut served = build(plan);
    let report = serve(
        &mut served,
        &workload,
        &ServeConfig {
            clients: 4,
            queue_capacity: 16,
            batch_max_rows: 12,
            deadline: 0.01,
            mode: LoopMode::Open,
            quotas: vec![TenantQuota::unlimited()],
        },
    )
    .expect("serve run completes under fault injection");

    // The ladder fired — and fired identically.
    assert_eq!(served.supervisor().state(), SupervisorState::Degraded);
    assert_eq!(served.supervisor().state(), direct.supervisor().state());
    assert_eq!(served.failed_retrains(), direct.failed_retrains());
    assert!(served.failed_retrains() >= 2, "both retrain attempts failed");
    assert_eq!(
        served.supervisor().quarantines(),
        direct.supervisor().quarantines()
    );
    assert_eq!(served.supervisor().retries(), direct.supervisor().retries());
    assert_eq!(served.n_lookups(), direct.n_lookups());
    assert_eq!(served.n_simulations(), direct.n_simulations());
    assert_eq!(served.simulator().calls(), direct.simulator().calls());

    // Served bits match the direct campaign row for row (including which
    // rows exhausted their retries and failed with typed errors).
    let mut cursor = 0usize;
    for resp in &report.responses {
        for row in resp.outcome.as_ref().expect("unlimited quota admits all") {
            let want = &direct_rows[cursor];
            cursor += 1;
            match (row, want) {
                (Ok(a), Ok(b)) => {
                    for (x, y) in a.output.iter().zip(&b.output) {
                        assert_eq!(x.to_bits(), y.to_bits());
                    }
                    assert_eq!(a.source, b.source);
                }
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
                (a, b) => panic!("row {cursor} diverged: {a:?} vs {b:?}"),
            }
        }
    }
    assert_eq!(cursor, direct_rows.len());
}

