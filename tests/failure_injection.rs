//! Failure-injection tests: the framework must degrade cleanly when the
//! wrapped simulator fails, returns garbage, or the configuration is
//! hostile — errors propagate as typed errors, never panics or silent
//! corruption.

use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, LeError, Simulator};

/// A simulator that fails on a configurable subset of inputs.
struct FlakySimulator {
    /// Fail when the first input exceeds this.
    fail_above: f64,
}

impl Simulator for FlakySimulator {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        if x[0] > self.fail_above {
            return Err(LeError::Simulation(format!(
                "diverged at x0 = {}",
                x[0]
            )));
        }
        Ok(vec![x[0] + x[1]])
    }
    fn name(&self) -> &str {
        "flaky"
    }
}

/// A simulator that returns non-finite outputs sometimes.
struct NanSimulator;

impl Simulator for NanSimulator {
    fn input_dim(&self) -> usize {
        1
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        Ok(vec![if x[0] > 0.5 { f64::NAN } else { x[0] }])
    }
    fn name(&self) -> &str {
        "nan-producer"
    }
}

#[test]
fn simulator_failure_propagates_as_typed_error() {
    let mut engine = HybridEngine::new(
        FlakySimulator { fail_above: 0.5 },
        HybridConfig {
            min_training_runs: 8,
            ..Default::default()
        },
    )
    .expect("valid config");
    // A failing query returns Err, does not panic, does not pollute state.
    let before = engine.buffered_runs();
    let err = engine.query(&[0.9, 0.0]).expect_err("must fail");
    assert!(matches!(err, LeError::Simulation(_)));
    assert_eq!(engine.buffered_runs(), before, "failed run must not be buffered");
    // Subsequent good queries still work.
    let ok = engine.query(&[0.1, 0.2]).expect("good input works");
    assert!((ok.output[0] - 0.3).abs() < 1e-12);
}

#[test]
fn engine_survives_many_interleaved_failures() {
    let mut engine = HybridEngine::new(
        FlakySimulator { fail_above: 0.0 },
        HybridConfig {
            min_training_runs: 16,
            surrogate: SurrogateConfig {
                epochs: 30,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("valid config");
    let mut rng = le_linalg::Rng::new(3);
    let mut ok = 0;
    let mut failed = 0;
    for _ in 0..120 {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        match engine.query(&x) {
            Ok(_) => ok += 1,
            Err(LeError::Simulation(_)) => failed += 1,
            Err(other) => panic!("unexpected error type: {other}"),
        }
    }
    assert!(ok > 0 && failed > 0, "both paths exercised: {ok} ok, {failed} failed");
    // Accounting only counts successful work.
    assert_eq!(
        engine.accounting().n_train() + engine.n_lookups(),
        ok as u64
    );
}

#[test]
fn nan_outputs_do_not_poison_lookups_silently() {
    // The engine buffers what the simulator returns; training on NaN must
    // fail loudly at retrain time (the scaler rejects non-finite stds),
    // not produce a quietly-NaN surrogate.
    let mut engine = HybridEngine::new(
        NanSimulator,
        HybridConfig {
            min_training_runs: 8,
            surrogate: SurrogateConfig {
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("valid config");
    let mut rng = le_linalg::Rng::new(5);
    let mut saw_error = false;
    for _ in 0..30 {
        let x = [rng.uniform_in(0.0, 1.0)];
        match engine.query(&x) {
            Ok(r) => {
                // Any served answer from the surrogate must be finite.
                if r.source == learning_everywhere::QuerySource::Lookup {
                    assert!(r.output[0].is_finite(), "lookup must never serve NaN");
                }
            }
            Err(_) => saw_error = true,
        }
    }
    // The poisoned buffer must have produced counted retrain failures (the
    // surrogate refuses non-finite data), never NaN lookups.
    let _ = saw_error;
    assert!(
        engine.failed_retrains() > 0,
        "retraining on NaN-poisoned data must fail and be counted"
    );
    assert!(!engine.has_surrogate(), "no surrogate can form from NaN data");
}

#[test]
fn active_learning_aborts_on_simulator_failure() {
    use learning_everywhere::active::{run_active_learning, ActiveConfig, UqBackend};
    use le_uq::AcquisitionStrategy;

    let sim = FlakySimulator { fail_above: -2.0 }; // always fails
    let pool: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
    let val: Vec<Vec<f64>> = vec![vec![0.0, 0.0]];
    let val_y: Vec<Vec<f64>> = vec![vec![0.0]];
    let result = run_active_learning(
        &sim,
        &pool,
        &val,
        &val_y,
        &ActiveConfig {
            initial: 8,
            batch: 8,
            budget: 24,
            strategy: AcquisitionStrategy::Random,
            backend: UqBackend::McDropout,
            surrogate: SurrogateConfig::default(),
            seed: 1,
        },
    );
    assert!(matches!(result, Err(LeError::Simulation(_))));
}

#[test]
fn control_campaign_aborts_on_simulator_failure() {
    use learning_everywhere::control::{run_campaign, ControlConfig};
    let sim = FlakySimulator { fail_above: -2.0 };
    let result = run_campaign(
        &sim,
        &[0.0],
        &[(-1.0, 1.0), (-1.0, 1.0)],
        &ControlConfig::default(),
    );
    assert!(matches!(result, Err(LeError::Simulation(_))));
}

#[test]
fn failing_simulator_still_exports_valid_obs_snapshot() {
    // The observability layer must survive error paths untouched: failed
    // simulations increment `hybrid.sim_errors`, leave no phantom span
    // records, and the registry stays exportable (no poison, no panic).
    let errors_before = le_obs::snapshot().counter("hybrid.sim_errors").unwrap_or(0);
    let mut engine = HybridEngine::new(
        FlakySimulator { fail_above: -2.0 }, // always fails
        HybridConfig {
            min_training_runs: 4,
            ..Default::default()
        },
    )
    .expect("valid config");
    let n_failures = 12;
    for i in 0..n_failures {
        let x = [0.1 * i as f64, 0.0];
        assert!(engine.query(&x).is_err(), "every query must fail");
    }

    let snap = le_obs::snapshot();
    let errors_after = snap.counter("hybrid.sim_errors").unwrap_or(0);
    assert!(
        errors_after >= errors_before + n_failures,
        "each failed simulation must be counted ({errors_before} -> {errors_after})"
    );
    // Failed runs record nothing in accounting, so the simulate span (one
    // record per *successful* simulation, process-wide) cannot exceed the
    // successes other tests in this binary produced; our 12 failures add 0.
    assert_eq!(engine.accounting().n_train(), 0);

    // The registry still snapshots and the export parses as JSON.
    let path = le_obs::write_snapshot("failure_injection").expect("snapshot after errors");
    let body = std::fs::read_to_string(&path).expect("snapshot readable");
    let doc = le_bench::json::parse(&body).expect("valid JSON after failure paths");
    assert!(doc.get("counters").is_some());
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("txt"));
}

#[test]
fn hostile_configurations_rejected_up_front() {
    let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
    // NaN threshold.
    assert!(HybridEngine::new(
        sim.clone(),
        HybridConfig {
            uncertainty_threshold: f64::NAN,
            ..Default::default()
        }
    )
    .is_err() || {
        // NaN < x is false for all x, so a NaN gate would never serve
        // lookups; constructor may accept it only if the comparison is
        // conservative. Verify conservativeness:
        let mut e = HybridEngine::new(
            sim.clone(),
            HybridConfig {
                uncertainty_threshold: f64::NAN,
                ..Default::default()
            },
        )
        .unwrap();
        let r = e.query(&[0.0, 0.0]).unwrap();
        r.source == learning_everywhere::QuerySource::Simulated
    });
}
