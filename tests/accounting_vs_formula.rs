//! Cross-crate check promised in DESIGN.md: the hybrid engine's live
//! accounting, fed to the analytic §III-D formula, agrees with the direct
//! total-time speedup measurement.

use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine};
use le_linalg::Rng;

#[test]
fn measured_effective_speedup_matches_direct_ratio() {
    let sim = SyntheticSimulator::new(2, 1, 1_000_000, 0.0);
    let mut engine = HybridEngine::new(
        sim,
        HybridConfig {
            uncertainty_threshold: 0.6,
            min_training_runs: 40,
            retrain_growth: 2.0,
            surrogate: SurrogateConfig {
                epochs: 60,
                dropout: 0.1,
                mc_samples: 10,
                seed: 5,
                ..Default::default()
            },
        },
    )
    .expect("valid config");
    let mut rng = Rng::new(6);
    for _ in 0..160 {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        engine.query(&x).expect("query succeeds");
    }
    assert!(engine.n_lookups() > 0, "campaign must warm up");

    let acc = engine.accounting();
    let analytic = acc.effective_speedup().expect("has data").speedup;
    let direct = acc.direct_speedup().expect("has data");
    // t_seq defaults to mean t_train and every phase is recorded, so the
    // two views must agree up to floating-point noise.
    let rel = (analytic - direct).abs() / direct;
    assert!(
        rel < 1e-9,
        "analytic {analytic} vs direct {direct} (rel {rel})"
    );
}

#[test]
fn formula_limits_bracket_the_measured_campaign() {
    use le_perfmodel::speedup::{lookup_limit, no_ml_limit};

    let sim = SyntheticSimulator::new(2, 1, 1_000_000, 0.0);
    let mut engine = HybridEngine::new(
        sim,
        HybridConfig {
            uncertainty_threshold: 0.6,
            min_training_runs: 40,
            retrain_growth: 2.5,
            surrogate: SurrogateConfig {
                epochs: 60,
                dropout: 0.1,
                mc_samples: 10,
                seed: 7,
                ..Default::default()
            },
        },
    )
    .expect("valid config");
    let mut rng = Rng::new(8);
    for _ in 0..200 {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        engine.query(&x).expect("query succeeds");
    }
    let times = engine.accounting().times().expect("has data");
    let s = engine
        .accounting()
        .effective_speedup()
        .expect("has data")
        .speedup;
    let lo = no_ml_limit(&times).expect("valid") * 0.99;
    let hi = lookup_limit(&times).expect("t_lookup > 0") * 1.01;
    assert!(
        s >= lo && s <= hi,
        "measured speedup {s} must lie between the no-ML limit {lo} and the lookup limit {hi}"
    );
}
