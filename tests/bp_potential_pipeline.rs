//! End-to-end NN-potential pipeline (E6 in miniature): train a
//! Behler–Parrinello network on the expensive reference, verify accuracy on
//! held-out clusters and a large per-evaluation speedup.

use le_linalg::Rng;
use le_mdsim::bp::{generate_training_set, BpPotential, SymmetryFunctions};
use le_mdsim::reference::{random_cluster, ReferencePotential};
use le_nn::TrainConfig;

#[test]
fn bp_potential_learns_and_accelerates_the_reference() {
    let reference = ReferencePotential::default();
    let sf = SymmetryFunctions::standard(reference.rc);

    // Label a training campaign (parallel).
    let data = generate_training_set(&sf, &reference, 200, 10, 77);
    assert_eq!(data.features.rows(), 2000);

    let pot = BpPotential::train(
        sf,
        &data,
        &[32, 32],
        TrainConfig {
            epochs: 200,
            patience: Some(40),
            ..Default::default()
        },
        8,
    )
    .expect("trains");

    // Held-out accuracy: per-atom normalized error.
    let mut rng = Rng::new(9);
    let mut rel_errs = Vec::new();
    for _ in 0..30 {
        let pos = random_cluster(10, reference.r0, 1.4, &mut rng);
        let e_ref = reference.energy(&pos).total;
        let e_nn = pot.energy(&pos);
        rel_errs.push((e_nn - e_ref).abs() / (e_ref.abs() + 1.0));
    }
    let mean_rel = rel_errs.iter().sum::<f64>() / rel_errs.len() as f64;
    assert!(
        mean_rel < 0.2,
        "held-out relative energy error {mean_rel} too large"
    );

    // Per-evaluation speedup: the NN must be faster even in an unoptimized
    // build, where its matmuls lose most of their advantage; the E6 bench
    // measures the release-mode factor (≫ 2x). The debug-mode margin is
    // deliberately thin — see EXPERIMENTS.md "bp pipeline tolerance" — so
    // the two arms are timed interleaved (a scheduler stall lands on both)
    // and the gate is the median of per-round ratios, not one mean that a
    // single load spike can sink.
    let pos = random_cluster(16, reference.r0, 1.3, &mut rng);
    let (rounds, reps) = (5, 4);
    let mut ratios = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            let _ = reference.energy(&pos);
        }
        let t_ref = t0.elapsed().as_secs_f64() / reps as f64;
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            let _ = pot.energy(&pos);
        }
        let t_nn = t1.elapsed().as_secs_f64() / reps as f64;
        ratios.push(t_ref / t_nn);
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    assert!(
        median > 1.1,
        "NN should be faster: median reference/NN ratio {median:.2} (rounds: {ratios:?})"
    );
}
