//! Satellite hardening for the supervisor ladder: re-admission must work
//! under *repeated* quarantine cycles, with counter conservation between
//! the in-process supervisor totals and the le-obs registry.
//!
//! One test function on purpose: the counters live in the process-global
//! registry, and a single test (in its own test binary, hence its own
//! process) owns the whole delta.

use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{
    HybridConfig, HybridEngine, QuerySource, SupervisorConfig, SupervisorState,
};

#[test]
fn repeated_quarantine_cycles_readmit_every_time_and_conserve_counters() {
    // Satellite hardening for the ladder: quarantine → re-admission is not
    // a one-shot path. K full cycles must each bench and then re-admit the
    // surrogate, with the supervisor's in-process counters and the le-obs
    // counters agreeing exactly (counter conservation: quarantines ==
    // readmissions == K, and the OBS deltas match the in-process totals).
    const CYCLES: u64 = 4;
    let obs_before_q = le_obs::snapshot().counter("supervisor.quarantine").unwrap_or(0);
    let obs_before_r = le_obs::snapshot().counter("supervisor.readmit").unwrap_or(0);

    let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
    let mut engine = HybridEngine::with_supervisor(
        sim.clone(),
        HybridConfig {
            uncertainty_threshold: 1e6, // gate always admits: gate path runs
            min_training_runs: 8,
            retrain_growth: 100.0, // no automatic retrain mid-cycle
            surrogate: SurrogateConfig {
                epochs: 20,
                seed: 29,
                ..Default::default()
            },
            ..Default::default()
        },
        SupervisorConfig {
            max_retries: 0,
            quarantine_after: 3,
            degrade_after: 100, // failed retrains never go terminal here
        },
    )
    .expect("valid config");

    let mut rng = le_linalg::Rng::new(31);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..12 {
        let x = vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        let y = sim.truth(&x);
        xs.push(x);
        ys.push(y);
    }
    engine.seed_training(&xs, &ys).expect("clean seed data trains");

    for cycle in 1..=CYCLES {
        assert_eq!(engine.supervisor().state(), SupervisorState::Normal);
        // Three NaN-input queries: anomaly streak climbs to quarantine.
        for _ in 0..3 {
            assert!(engine.query(&[f64::NAN, 0.0]).is_err());
        }
        assert_eq!(engine.supervisor().state(), SupervisorState::Quarantined);
        assert_eq!(engine.supervisor().quarantines(), cycle);
        // Benched serving still works, simulator-only.
        let r = engine.query(&[0.1, 0.2]).expect("benched engine serves");
        assert_eq!(r.source, QuerySource::Simulated);
        assert!(r.gate_std.is_none());
        // A clean retrain re-admits — every cycle, not just the first.
        engine.retrain().expect("clean buffer retrains");
        assert_eq!(engine.supervisor().state(), SupervisorState::Normal);
        assert_eq!(engine.supervisor().readmissions(), cycle);
        // The re-admitted surrogate really is consulted again.
        let r = engine.query(&[0.0, 0.1]).expect("normal serving resumed");
        assert!(r.gate_std.is_some());
    }

    // Conservation: every quarantine was matched by exactly one
    // re-admission, in process and in the OBS registry.
    assert_eq!(engine.supervisor().quarantines(), CYCLES);
    assert_eq!(engine.supervisor().readmissions(), CYCLES);
    let snap = le_obs::snapshot();
    assert_eq!(
        snap.counter("supervisor.quarantine").unwrap_or(0) - obs_before_q,
        CYCLES,
        "OBS quarantine counter must match the in-process total"
    );
    assert_eq!(
        snap.counter("supervisor.readmit").unwrap_or(0) - obs_before_r,
        CYCLES,
        "OBS readmit counter must match the in-process total"
    );
}
