//! Golden-trajectory regression tests: bit-exact hashes of seeded kernel
//! runs, committed as constants. Any change to the MD integrator, force
//! loop, cell list, pool chunking, or the SEIR dynamics that perturbs a
//! single bit of output fails here — including nondeterminism introduced
//! by the worker pool, because `scripts/verify.sh` runs this suite at
//! `LE_POOL_THREADS=1` *and* the machine default and both must reproduce
//! the same committed hash.
//!
//! To re-baseline after an *intentional* numerical change, run with
//! `--nocapture` and copy the printed hashes.

use le_mdsim::forces::ForceField;
use le_mdsim::integrate::{run, Integrator};
use le_mdsim::system::{SlabBox, Species, System};
use le_netdyn::seir::{simulate, SeirConfig};
use le_netdyn::{Population, PopulationConfig};
use le_linalg::Rng;

/// FNV-1a over a stream of 64-bit words (little-endian byte order). Stable,
/// dependency-free, and sensitive to every bit of every f64 fed in.
fn fnv1a<I: IntoIterator<Item = u64>>(words: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn f64_bits<'a, I: IntoIterator<Item = &'a f64>>(vals: I) -> impl Iterator<Item = u64> {
    vals.into_iter().map(|v| v.to_bits()).collect::<Vec<_>>().into_iter()
}

/// 200 Langevin (BAOAB) steps of a 48-ion slab system, seeded; hash of the
/// final positions + velocities and every sampled energy.
fn md_trajectory_hash() -> u64 {
    let bbox = SlabBox::new(4.0, 4.0, 3.0).expect("valid box");
    let mut sys = System::new(bbox);
    let mut rng = Rng::new(42);
    sys.insert_species(
        Species { valency: 1, diameter: 0.5, mass: 1.0 },
        24,
        1.0,
        &mut rng,
    )
    .expect("cations fit");
    sys.insert_species(
        Species { valency: -1, diameter: 0.5, mass: 1.0 },
        24,
        1.0,
        &mut rng,
    )
    .expect("anions fit");
    sys.zero_momentum();

    let ff = ForceField { kappa: 1.0, wall_sigma: 0.25, ..Default::default() };
    let dt = 0.002;
    let integ = Integrator {
        dt,
        gamma: 2.0,
        temperature: 1.0,
        // Insertion overlaps relax under a speed limit instead of
        // detonating (the same idiom NanoSim uses for equilibration).
        max_speed: 0.02 / dt,
        max_ke_per_particle: f64::INFINITY,
        ..Default::default()
    };
    let traj = run(&mut sys, &ff, &integ, 200, 20, &mut rng, |_, _| {}).expect("stable run");

    let mut words: Vec<u64> = Vec::new();
    for p in &sys.pos {
        words.extend(p.iter().map(|v| v.to_bits()));
    }
    for v in &sys.vel {
        words.extend(v.iter().map(|x| x.to_bits()));
    }
    words.extend(f64_bits(&traj.potential));
    words.extend(f64_bits(&traj.kinetic));
    words.extend(f64_bits(&traj.temperature));
    fnv1a(words)
}

/// One seeded stochastic SEIR realization on a 4-county block-model
/// population; hash of the full county-by-day incidence plus the summary
/// statistics.
fn epidemic_curve_hash() -> u64 {
    let pop = Population::generate(&PopulationConfig::uniform(4, 250), 7).expect("population");
    let out = simulate(&pop, &SeirConfig::default(), 11).expect("epidemic");
    let mut words: Vec<u64> = Vec::new();
    for county in &out.incidence {
        words.extend(f64_bits(county));
    }
    words.push(out.attack_rate.to_bits());
    words.push(out.peak_day as u64);
    fnv1a(words)
}

/// Committed baseline: 200-step nanoconfinement-style MD trajectory.
const GOLDEN_MD_HASH: u64 = 0x0987_f3ad_7767_956c;

/// Committed baseline: seeded SEIR epidemic curve.
const GOLDEN_EPIDEMIC_HASH: u64 = 0x65d2_c945_05f1_c856;

#[test]
fn md_trajectory_matches_golden_hash() {
    let h = md_trajectory_hash();
    println!("md trajectory hash: {h:#018x}");
    assert_eq!(
        h, GOLDEN_MD_HASH,
        "MD trajectory diverged from the committed baseline (got {h:#018x}); \
         if the numerical change is intentional, re-baseline GOLDEN_MD_HASH"
    );
}

#[test]
fn md_trajectory_hash_is_reproducible_in_process() {
    assert_eq!(md_trajectory_hash(), md_trajectory_hash());
}

#[test]
fn epidemic_curve_matches_golden_hash() {
    let h = epidemic_curve_hash();
    println!("epidemic curve hash: {h:#018x}");
    assert_eq!(
        h, GOLDEN_EPIDEMIC_HASH,
        "SEIR epidemic curve diverged from the committed baseline (got {h:#018x}); \
         if the change is intentional, re-baseline GOLDEN_EPIDEMIC_HASH"
    );
}

#[test]
fn epidemic_curve_hash_is_reproducible_in_process() {
    assert_eq!(epidemic_curve_hash(), epidemic_curve_hash());
}
