//! Worker-panic injection: an armed `le-pool` panic fired inside a
//! simulator's parallel dispatch must be absorbed by the engine's retry
//! ladder, and the pool must remain fully usable afterwards.
//!
//! This is deliberately a single `#[test]` in its own binary: the armed
//! countdown is process-global and decrements on *every* pool task, so it
//! must not share a process with unrelated concurrently-running tests.

use learning_everywhere::{HybridConfig, HybridEngine, QuerySource, Simulator};

/// A simulator whose work is a 16-wide pool fan-out — the surface the
/// armed worker panic fires on.
struct PoolFanout;

impl Simulator for PoolFanout {
    fn input_dim(&self) -> usize {
        1
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let parts = le_pool::par_map_index(16, |i| x[0] + (i as f64) * 1e-3 + seed as f64 * 1e-9);
        Ok(vec![parts.iter().sum::<f64>() / 16.0])
    }
    fn name(&self) -> &str {
        "pool-fanout"
    }
}

#[test]
fn injected_worker_panic_is_retried_and_pool_stays_usable() {
    let snap_before = le_obs::snapshot();
    let panics_before = snap_before.counter("faults.injected.worker_panic").unwrap_or(0);
    let respawn_before = snap_before.counter("pool.task_respawn").unwrap_or(0);

    let mut engine = HybridEngine::new(
        PoolFanout,
        HybridConfig {
            min_training_runs: 64, // no retrain in this test
            ..Default::default()
        },
    )
    .expect("valid config");

    // Arm: the 6th pool task panics — inside the first query's dispatch.
    le_pool::fault::arm_worker_panic(5);
    assert!(le_pool::fault::armed());
    let r = engine.query(&[0.5]).expect("retry absorbs the worker panic");
    assert_eq!(r.source, QuerySource::Simulated);
    assert!(r.output[0].is_finite());
    assert!(!le_pool::fault::armed(), "the injection disarms after firing");
    assert_eq!(engine.supervisor().retries(), 1, "exactly one respawn attempt");

    // The pool is fully reusable: further engine queries and direct
    // dispatches complete normally.
    for q in 0..4 {
        let r = engine.query(&[q as f64 * 0.1]).expect("pool survives the panic");
        assert!(r.output[0].is_finite());
    }
    let direct = le_pool::par_map_index(64, |i| i as f64);
    assert_eq!(direct.len(), 64);
    assert!((direct[63] - 63.0).abs() < 1e-12);

    // The injection and the respawn were both counted.
    let snap = le_obs::snapshot();
    assert_eq!(
        snap.counter("faults.injected.worker_panic").unwrap_or(0),
        panics_before + 1
    );
    assert_eq!(snap.counter("pool.task_respawn").unwrap_or(0), respawn_before + 1);

    // Arming and disarming without firing leaves no residue.
    le_pool::fault::arm_worker_panic(1_000_000);
    le_pool::fault::disarm();
    assert!(!le_pool::fault::armed());
    let ok = le_pool::par_map_index(8, |i| i as f64 * 2.0);
    assert_eq!(ok.len(), 8);
}
