//! The batched query path's determinism contract: `query_batch` over N
//! inputs is **bit-identical** to N sequential `query` calls — same
//! outputs, same sources, same gate stds, same lookup/simulation counts,
//! same accounting event counts, same supervisor state — including when a
//! retrain fires in the middle of the batch and invalidates the wave.
//!
//! This holds by construction (stateless per-consult mask substreams; see
//! the determinism contract in `le_nn::batch`), and this suite pins it at
//! the engine's public surface.

use le_linalg::Rng;
use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine};

/// A fresh engine over the deterministic synthetic simulator. The small
/// `min_training_runs` and `retrain_growth` make retrains land *inside*
/// the batches the tests below issue.
fn engine(seed: u64) -> HybridEngine<SyntheticSimulator> {
    HybridEngine::new(
        SyntheticSimulator::new(2, 1, 20_000, 0.0),
        HybridConfig {
            uncertainty_threshold: 0.35,
            min_training_runs: 16,
            retrain_growth: 1.5,
            surrogate: SurrogateConfig {
                hidden: vec![16, 16],
                epochs: 40,
                mc_samples: 8,
                dropout: 0.1,
                seed,
                ..Default::default()
            },
        },
    )
    .expect("valid config")
}

fn inputs(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)])
        .collect()
}

#[test]
fn query_batch_is_bitwise_identical_to_sequential_queries() {
    let xs = inputs(140, 77);

    let mut sequential = engine(5);
    let seq: Vec<_> = xs
        .iter()
        .map(|x| sequential.query(x).expect("synthetic sim cannot fail"))
        .collect();

    let mut batched = engine(5);
    // One call covering the whole campaign: the first `min_training_runs`
    // rows simulate and trigger the initial fit mid-batch, later retrains
    // (growth 1.5) invalidate in-flight waves, and the admitted rows in
    // between ride fused evaluations.
    let bat = batched.query_batch(&xs).expect("synthetic sim cannot fail");

    assert_eq!(seq.len(), bat.len());
    for (q, (s, b)) in seq.iter().zip(bat.iter()).enumerate() {
        assert_eq!(s.source, b.source, "query {q} source");
        assert_eq!(
            s.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "query {q} output bits"
        );
        assert_eq!(
            s.gate_std.map(f64::to_bits),
            b.gate_std.map(f64::to_bits),
            "query {q} gate std bits"
        );
    }

    // Counters and accounting *counts* are bitwise-equal (timings are
    // wall-clock and amortized differently by design, so only event
    // counts are compared).
    assert_eq!(sequential.n_lookups(), batched.n_lookups(), "n_lookups");
    assert_eq!(
        sequential.n_simulations(),
        batched.n_simulations(),
        "n_simulations"
    );
    assert!(batched.n_lookups() > 0, "campaign must serve lookups");
    assert!(
        batched.n_simulations() >= 16,
        "campaign must simulate the seed design"
    );
    assert_eq!(
        sequential.accounting().n_train(),
        batched.accounting().n_train(),
        "accounting train events"
    );
    assert_eq!(
        sequential.accounting().n_lookup(),
        batched.accounting().n_lookup(),
        "accounting lookup events"
    );
    assert_eq!(
        sequential.accounting().learn_events(),
        batched.accounting().learn_events(),
        "accounting learn events (mid-batch retrains)"
    );
    assert!(
        batched.accounting().learn_events() >= 2,
        "a retrain must have fired inside the batch for this test to bite"
    );
    assert_eq!(
        sequential.failed_retrains(),
        batched.failed_retrains(),
        "failed retrains"
    );

    // Supervisor trajectories match.
    assert_eq!(
        sequential.supervisor().state(),
        batched.supervisor().state(),
        "supervisor state"
    );
    assert_eq!(
        sequential.supervisor().retries(),
        batched.supervisor().retries(),
        "supervisor retries"
    );
    assert_eq!(
        sequential.supervisor().quarantines(),
        batched.supervisor().quarantines(),
        "supervisor quarantines"
    );
}

#[test]
fn splitting_a_batch_does_not_change_results() {
    // Chunked batches ≡ one big batch ≡ singles: the wave machinery must
    // be invisible at every split granularity.
    let xs = inputs(96, 31);

    let mut whole = engine(9);
    let a = whole.query_batch(&xs).expect("synthetic sim cannot fail");

    let mut chunked = engine(9);
    let mut b = Vec::new();
    for chunk in xs.chunks(13) {
        b.extend(chunked.query_batch(chunk).expect("synthetic sim cannot fail"));
    }

    assert_eq!(a.len(), b.len());
    for (q, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.source, y.source, "query {q} source");
        assert_eq!(
            x.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "query {q} output bits"
        );
    }
    assert_eq!(whole.n_lookups(), chunked.n_lookups());
    assert_eq!(whole.n_simulations(), chunked.n_simulations());
}

#[test]
fn fused_uncertainty_evaluation_is_replicable() {
    // Two engines with identical seeds answer an identical batch with
    // bit-identical gate decisions — the fused MC-dropout pass draws its
    // masks from stateless substreams, never from shared mutable state.
    let xs = inputs(64, 123);
    let mut a = engine(21);
    let mut b = engine(21);
    let ra = a.query_batch(&xs).expect("synthetic sim cannot fail");
    let rb = b.query_batch(&xs).expect("synthetic sim cannot fail");
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert_eq!(x.source, y.source);
        assert_eq!(x.gate_std.map(f64::to_bits), y.gate_std.map(f64::to_bits));
        assert_eq!(
            x.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            y.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }
}
