//! End-to-end MLaroundHPC over the real MD substrate: the hybrid engine
//! wraps the nanoconfinement simulator, warms up, and serves accurate
//! lookups for un-simulated statepoints (the E2 pipeline in miniature).

use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, QuerySource, Simulator};
use learning_everywhere_repro::NanoSimulator;
use le_linalg::Rng;
use le_mdsim::nanoconfinement::NanoParams;

#[test]
fn hybrid_engine_over_md_serves_accurate_lookups() {
    let sim = NanoSimulator::fast();
    let mut engine = HybridEngine::new(
        sim,
        HybridConfig {
            // Densities are O(0.1–2 /nm³); τ = 0.25 is a loose gate that
            // lets the engine switch to lookups once trained.
            uncertainty_threshold: 0.25,
            min_training_runs: 60,
            retrain_growth: 2.0,
            surrogate: SurrogateConfig {
                hidden: vec![48, 48],
                dropout: 0.08,
                epochs: 200,
                mc_samples: 15,
                seed: 3,
                ..Default::default()
            },
        },
    )
    .expect("valid config");

    let mut rng = Rng::new(4);
    let mut lookups = 0;
    let mut sims = 0;
    for _ in 0..110 {
        let p = NanoParams::sample(&mut rng);
        let r = engine.query(&p.to_features()).expect("query");
        match r.source {
            QuerySource::Lookup => lookups += 1,
            QuerySource::Simulated => sims += 1,
        }
        // Densities are physical.
        assert!(r.output.iter().all(|&v| v.is_finite() && v >= -0.5));
    }
    assert!(
        lookups > 0,
        "engine should serve some lookups after warmup ({sims} sims)"
    );

    // Accuracy: compare lookups against fresh simulations. Individual MD
    // runs are noisy and the surrogate has only ~10² training points over
    // a 5-D space, so the meaningful check is statistical: the mean
    // absolute error of lookup-served answers stays within the gate's
    // scale, and predictions correlate with the simulated truth.
    let reference = NanoSimulator::fast();
    let mut lookup_mids = Vec::new();
    let mut truth_mids = Vec::new();
    for trial in 0..25 {
        let p = NanoParams::sample(&mut rng);
        let feats = p.to_features();
        let r = engine.query(&feats).expect("query");
        if r.source == QuerySource::Lookup {
            let truth = reference.simulate(&feats, 5000 + trial).expect("simulate");
            lookup_mids.push(r.output[1]);
            truth_mids.push(truth[1]);
        }
    }
    assert!(
        lookup_mids.len() >= 5,
        "need several lookups to check, got {}",
        lookup_mids.len()
    );
    let mae = lookup_mids
        .iter()
        .zip(truth_mids.iter())
        .map(|(&a, &b)| (a - b).abs())
        .sum::<f64>()
        / lookup_mids.len() as f64;
    assert!(mae < 0.5, "lookup mid-density MAE {mae} too large");
    let corr = le_linalg::stats::pearson(&lookup_mids, &truth_mids).expect("non-empty");
    assert!(
        corr > 0.5,
        "lookups should track the simulated truth, correlation {corr}"
    );
}
