//! Observability conformance: the span telemetry the hybrid engine emits
//! and the `CampaignAccounting` it feeds must be two views of the *same*
//! measurements — same event counts, same phase totals (up to the 1 ns
//! truncation each span record applies). The speedup numbers in
//! EXPERIMENTS.md and the OBS snapshots cannot disagree.
//!
//! One test function on purpose: the spans live in the process-global
//! registry, and a single test owns the whole delta.

use le_bench::json as benchjson;
use le_linalg::Rng;
use learning_everywhere::simulator::SyntheticSimulator;
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine};

/// Per-event tolerance: each span record truncates the shared `Duration`
/// to whole nanoseconds, while accounting keeps the f64 seconds. Over `n`
/// events the totals can drift by at most `n` ns (plus f64 rounding dust).
fn tol(events: u64) -> f64 {
    1e-9 * (events as f64 + 1.0)
}

#[test]
fn span_telemetry_agrees_with_accounting() {
    let mut engine = HybridEngine::new(
        SyntheticSimulator::new(2, 1, 50_000, 0.0),
        HybridConfig {
            uncertainty_threshold: 0.5,
            min_training_runs: 16,
            retrain_growth: 2.0,
            surrogate: SurrogateConfig {
                hidden: vec![16, 16],
                epochs: 40,
                mc_samples: 8,
                ..Default::default()
            },
        },
    )
    .expect("valid config");

    let mut rng = Rng::new(11);
    for _ in 0..150 {
        let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
        engine.query(&x).expect("synthetic sim cannot fail");
    }

    let acct = engine.accounting();
    assert!(acct.n_train() > 0, "campaign must have simulated");
    assert!(acct.n_lookup() > 0, "campaign must have served lookups");
    assert!(acct.learn_events() > 0, "campaign must have retrained");

    let snap = le_obs::snapshot();

    // Event counts: spans and counters mirror the accounting exactly.
    let sim = snap.span("hybrid.simulate").expect("simulate span");
    let retrain = snap.span("hybrid.retrain").expect("retrain span");
    let lookup = snap.span("hybrid.lookup").expect("lookup span");
    assert_eq!(sim.count, acct.n_train(), "simulate span vs n_train");
    assert_eq!(retrain.count, acct.learn_events(), "retrain span vs learn_events");
    assert_eq!(lookup.count, acct.n_lookup(), "lookup span vs n_lookup");
    assert_eq!(snap.counter("hybrid.simulations"), Some(acct.n_train()));
    assert_eq!(snap.counter("hybrid.lookups"), Some(acct.n_lookup()));

    // Phase totals: identical clock reads, so only ns truncation apart.
    let d_sim = (sim.total_secs() - acct.train_sim_seconds()).abs();
    assert!(
        d_sim <= tol(sim.count),
        "simulate total drifted: span {} vs accounting {}",
        sim.total_secs(),
        acct.train_sim_seconds()
    );
    let d_learn = (retrain.total_secs() - acct.learn_seconds()).abs();
    assert!(
        d_learn <= tol(retrain.count),
        "retrain total drifted: span {} vs accounting {}",
        retrain.total_secs(),
        acct.learn_seconds()
    );
    let d_lookup = (lookup.total_secs() - acct.lookup_seconds()).abs();
    assert!(
        d_lookup <= tol(lookup.count),
        "lookup total drifted: span {} vs accounting {}",
        lookup.total_secs(),
        acct.lookup_seconds()
    );

    // The exported snapshot is valid JSON carrying the same numbers.
    let path = le_obs::write_snapshot("conformance").expect("snapshot writes");
    let body = std::fs::read_to_string(&path).expect("snapshot readable");
    let doc = benchjson::parse(&body).expect("OBS snapshot is valid JSON");
    let spans = doc.get("spans").and_then(|s| s.as_arr()).expect("spans array");
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.get("name").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("span {name} missing from JSON"))
    };
    let json_sim = find("hybrid.simulate");
    assert_eq!(
        json_sim.get("count").and_then(|v| v.as_usize()),
        Some(sim.count as usize)
    );
    assert_eq!(
        json_sim.get("total_ns").and_then(|v| v.as_f64()),
        Some(sim.total_ns as f64)
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("txt"));
}
