//! Integration check of the paper's scheduling claims (research issues
//! 7–8): with a 10⁵× learnt/unlearnt service-time ratio, separating the
//! classes collapses learnt-task latency without sacrificing overall
//! throughput; and the advantage persists as the learnt fraction ramps.

use le_sched::{simulate, Policy, TaskClass, Workload, WorkloadConfig};

fn workload(learnt_fraction: f64, seed: u64) -> Workload {
    Workload::generate(
        &WorkloadConfig {
            n_tasks: 2500,
            mean_interarrival: 0.3,
            sim_service: 8.0,
            learnt_speedup: 1e5,
            learnt_fraction_start: learnt_fraction,
            learnt_fraction_end: learnt_fraction,
        },
        seed,
    )
    .expect("valid workload")
}

#[test]
fn split_pools_collapse_learnt_latency_at_scale() {
    let w = workload(0.6, 21);
    let n_workers = 6;
    let single = simulate(&w, n_workers, Policy::SingleQueue).expect("runs");
    let split = simulate(&w, n_workers, Policy::DedicatedSplit { learnt_workers: 1 })
        .expect("runs");
    let single_learnt = single.mean_latency(TaskClass::Learnt).expect("has learnt");
    let split_learnt = split.mean_latency(TaskClass::Learnt).expect("has learnt");
    assert!(
        split_learnt < 0.1 * single_learnt,
        "split should collapse learnt latency ≥10x: {split_learnt} vs {single_learnt}"
    );
    // Throughput (makespan) is not materially sacrificed: one worker
    // removed from the simulation pool stretches the makespan by at most
    // ~n/(n-1) plus queueing slack.
    assert!(
        split.makespan < single.makespan * 1.5,
        "split makespan {} vs single {}",
        split.makespan,
        single.makespan
    );
}

#[test]
fn learnt_priority_also_helps_without_dedicated_hardware() {
    let w = workload(0.6, 22);
    let single = simulate(&w, 6, Policy::SingleQueue).expect("runs");
    let prio = simulate(&w, 6, Policy::LearntPriority).expect("runs");
    let s = single.mean_latency(TaskClass::Learnt).expect("has learnt");
    let p = prio.mean_latency(TaskClass::Learnt).expect("has learnt");
    assert!(
        p < s,
        "priority queueing must reduce learnt latency: {p} vs {s}"
    );
}

#[test]
fn advantage_grows_with_learnt_fraction() {
    // As the surrogate takes over (learnt fraction ramps 0.2 → 0.9), the
    // latency gap between single-queue and split widens in relative terms.
    let mut gaps = Vec::new();
    for (i, &frac) in [0.2, 0.5, 0.9].iter().enumerate() {
        let w = workload(frac, 30 + i as u64);
        let single = simulate(&w, 6, Policy::SingleQueue).expect("runs");
        let split = simulate(&w, 6, Policy::DedicatedSplit { learnt_workers: 1 })
            .expect("runs");
        let s = single.mean_latency(TaskClass::Learnt).expect("learnt exist");
        let p = split.mean_latency(TaskClass::Learnt).expect("learnt exist");
        gaps.push(s / p);
    }
    // All regimes benefit.
    assert!(gaps.iter().all(|&g| g > 1.0), "gaps {gaps:?}");
}

#[test]
fn work_conservation_across_policies_at_scale() {
    let w = workload(0.5, 23);
    let demand = w.total_service();
    for policy in [
        Policy::SingleQueue,
        Policy::DedicatedSplit { learnt_workers: 2 },
        Policy::ShortestQueue,
        Policy::WorkStealing,
        Policy::LearntPriority,
    ] {
        let m = simulate(&w, 6, policy).expect("runs");
        assert_eq!(m.n_completed, 2500, "{}", policy.name());
        assert!(
            (m.total_busy - demand).abs() < 1e-6,
            "{}: work not conserved",
            policy.name()
        );
    }
}
