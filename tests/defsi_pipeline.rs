//! End-to-end DEFSI pipeline (E4 in miniature): calibrate → simulate
//! synthetic seasons → train the two-branch net → forecast a hidden truth
//! season, beating at least the naive baseline at both resolutions.

use le_netdyn::baselines::{naive_forecast, uniform_county_split};
use le_netdyn::defsi::{
    estimate_tau_distribution, generate_synthetic_seasons, score_forecaster, DefsiTrainConfig,
    TwoBranchNet,
};
use le_netdyn::epifast::{hidden_truth_season, EpiFast};
use le_netdyn::seir::SeirConfig;
use le_netdyn::surveillance::Surveillance;
use le_netdyn::{Population, PopulationConfig};

#[test]
fn defsi_pipeline_beats_naive_baseline() {
    let pop = Population::generate(
        &PopulationConfig {
            county_sizes: vec![300; 6],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        },
        11,
    )
    .expect("valid population");
    let base = SeirConfig {
        transmissibility: 0.0,
        days: 98, // 14 weeks
        ..Default::default()
    };
    let surveillance = Surveillance {
        reporting_fraction: 0.3,
        noise: 0.08,
        delay_weeks: 1,
    };
    let hidden_tau = 0.08;
    let truth = hidden_truth_season(&pop, hidden_tau, &base, 12).expect("runs");
    let observed = surveillance.observe_state(&truth, 13);

    // Module 1: calibrate.
    let epifast = EpiFast::new(base, surveillance.reporting_fraction);
    let (tau_mean, tau_std) =
        estimate_tau_distribution(&epifast, &pop, &observed, 14).expect("calibrates");
    assert!(
        (tau_mean - hidden_tau).abs() <= 0.04,
        "calibration should land near {hidden_tau}, got {tau_mean}"
    );

    // Module 2: synthetic seasons.
    let seasons = generate_synthetic_seasons(&pop, &base, &surveillance, tau_mean, tau_std, 24, 15)
        .expect("simulations run");

    // Module 3: the two-branch net.
    let window = 4;
    let net = TwoBranchNet::train(
        &seasons,
        pop.n_counties,
        &DefsiTrainConfig {
            window,
            epochs: 80,
            ..Default::default()
        },
    )
    .expect("trains");

    let defsi = score_forecaster(&truth, &surveillance, window, 99, |obs| {
        net.forecast_counties(obs, 14)
    })
    .expect("scores");
    let rf = surveillance.reporting_fraction;
    let n_c = pop.n_counties;
    let naive = score_forecaster(&truth, &surveillance, window, 99, |obs| {
        let state = naive_forecast(obs)? / rf;
        Ok(uniform_county_split(state, n_c))
    })
    .expect("scores");

    assert!(
        defsi.state_rmse < naive.state_rmse,
        "DEFSI state RMSE {} must beat naive {}",
        defsi.state_rmse,
        naive.state_rmse
    );
    assert!(
        defsi.county_rmse < naive.county_rmse,
        "DEFSI county RMSE {} must beat naive {}",
        defsi.county_rmse,
        naive.county_rmse
    );
    assert_eq!(defsi.n_points, naive.n_points);
}
