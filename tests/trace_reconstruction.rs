//! End-to-end causal-trace reconstruction over the exported Chrome JSON:
//! a hybrid-engine campaign whose simulator fans out onto `le-pool` must
//! produce a `TRACE_*.json` where **every** `pool.task` event carries the
//! `trace_id` of the `hybrid.query` root that (transitively) submitted it,
//! and where every parent chain resolves back to that root.
//!
//! Single `#[test]` on purpose: the trace journal is process-global, and a
//! dedicated test binary is the cheapest way to keep event counts exact.

use std::collections::HashMap;

use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, Simulator};

/// A simulator that provably dispatches pool tasks: its "physics" is a
/// parallel map over 64 indices.
struct FanoutSimulator;

impl Simulator for FanoutSimulator {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, input: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let parts = le_pool::par_map_index(64, |i| {
            let x = input[0] + input[1] * (i as f64 + seed as f64 * 1e-6);
            (x * 0.01).sin()
        });
        Ok(vec![parts.iter().sum::<f64>() / 64.0])
    }
}

#[test]
fn exported_trace_links_every_pool_task_to_its_query_root() {
    le_obs::trace::set_enabled(true);
    let mut engine = HybridEngine::new(
        FanoutSimulator,
        HybridConfig {
            uncertainty_threshold: 1e-12, // never trust the surrogate:
            // every query simulates, so every query fans out pool tasks
            min_training_runs: 8,
            retrain_growth: 4.0,
            surrogate: SurrogateConfig {
                hidden: vec![8],
                epochs: 5,
                mc_samples: 4,
                seed: 1,
                ..Default::default()
            },
        },
    )
    .expect("valid config");
    for q in 0..12 {
        let x = [0.1 * q as f64, 0.2];
        engine.query(&x).expect("query succeeds");
    }

    let path = le_obs::write_trace("reconstruction_test").expect("trace export");
    let body = std::fs::read_to_string(&path).expect("trace file readable");
    let doc = le_obs::json::parse(&body).expect("exported trace is valid JSON");
    assert_eq!(
        doc.get("otherData").and_then(|o| o.get("dropped")).and_then(|d| d.as_f64()),
        Some(0.0),
        "this workload must fit the default ring capacity"
    );
    let events = doc
        .get("traceEvents")
        .and_then(|t| t.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Index the span forest from Begin events.
    let arg = |e: &le_obs::json::Value, key: &str| -> u64 {
        e.get("args")
            .and_then(|a| a.get(key))
            .and_then(|v| v.as_f64())
            .map(|v| v as u64)
            .unwrap_or(0)
    };
    let mut span_parent: HashMap<u64, u64> = HashMap::new();
    let mut span_name: HashMap<u64, String> = HashMap::new();
    let mut span_trace: HashMap<u64, u64> = HashMap::new();
    let mut query_roots: Vec<u64> = Vec::new();
    let mut pool_tasks: Vec<u64> = Vec::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) != Some("B") {
            continue;
        }
        let name = e.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        let span = arg(e, "span_id");
        span_parent.insert(span, arg(e, "parent_span_id"));
        span_name.insert(span, name.to_string());
        span_trace.insert(span, arg(e, "trace_id"));
        match name {
            "hybrid.query" => {
                assert_eq!(
                    span,
                    arg(e, "trace_id"),
                    "a root span's span_id is its trace_id"
                );
                assert_eq!(arg(e, "parent_span_id"), 0, "roots have no parent");
                query_roots.push(span);
            }
            "pool.task" => pool_tasks.push(span),
            _ => {}
        }
    }
    assert_eq!(query_roots.len(), 12, "one root per engine query");
    assert!(
        pool_tasks.len() >= 12 * 32,
        "every simulated query fans out pool tasks (got {})",
        pool_tasks.len()
    );

    // The acceptance property: each pool.task carries the trace_id of a
    // hybrid.query root, and its parent chain reaches that very root.
    for &task in &pool_tasks {
        let trace = span_trace[&task];
        assert!(
            query_roots.contains(&trace),
            "pool.task {task} has trace_id {trace}, not a hybrid.query root"
        );
        let mut cur = task;
        let mut hops = 0;
        loop {
            let parent = span_parent[&cur];
            if parent == 0 {
                break;
            }
            cur = parent;
            assert!(
                span_parent.contains_key(&cur),
                "broken parent chain at span {cur}"
            );
            hops += 1;
            assert!(hops < 64, "parent chain too deep — cycle?");
        }
        assert_eq!(cur, trace, "parent chain must end at the trace root");
        assert_eq!(
            span_name[&cur], "hybrid.query",
            "chain root must be the engine phase"
        );
    }

    // Every Begin has a matching End per thread (the exporters rely on it).
    let mut depth_by_tid: HashMap<u64, i64> = HashMap::new();
    for e in events {
        let tid = e.get("tid").and_then(|t| t.as_f64()).unwrap_or(0.0) as u64;
        match e.get("ph").and_then(|p| p.as_str()) {
            Some("B") => *depth_by_tid.entry(tid).or_insert(0) += 1,
            Some("E") => *depth_by_tid.entry(tid).or_insert(0) -= 1,
            _ => {}
        }
    }
    assert!(
        depth_by_tid.values().all(|&d| d == 0),
        "unbalanced B/E events: {depth_by_tid:?}"
    );

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(path.with_extension("txt"));
}
