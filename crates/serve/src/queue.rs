//! The seq-ordered MPMC ingress ring.
//!
//! Clients are handed *pre-assigned* global sequence numbers (client `c`
//! of `C` owns `c, c + C, c + 2C, …`), so the set of in-flight requests
//! at any instant is a contiguous window of the logical stream. The queue
//! is a bounded reorder ring of `capacity` slots — one small mutex per
//! slot, so concurrent producers land on disjoint locks and the hot path
//! performs no allocation — plus one control mutex holding the window
//! base for blocking flow control:
//!
//! * a producer publishing `seq` parks (condvar, cold path) while
//!   `seq >= base + capacity` — saturation back-pressures *submission*
//!   without dropping or reordering anything;
//! * the single consumer takes slot `base % capacity` as soon as it is
//!   filled and advances `base`, yielding requests in strict sequence
//!   order no matter how the producer threads interleave.
//!
//! Deadlock freedom under saturation: the producer owning `base` is by
//! definition inside the window, so it can always publish, and the
//! consumer can always advance. Every request is delivered exactly once;
//! `pop` returns `None` only after every registered producer called
//! [`IngressQueue::producer_done`] and the ring is drained.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Recover a usable guard from a poisoned lock: the queue holds plain
/// data, so the invariant cannot be torn by an unwinding holder.
fn relock<'a, T>(r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Window base + liveness, behind the control mutex.
struct State {
    /// The next sequence number the consumer will deliver.
    base: u64,
    /// Producers registered and not yet done.
    producers: usize,
}

/// Bounded seq-ordered MPMC ingress queue (see module docs).
pub struct IngressQueue<T> {
    slots: Vec<Mutex<Option<T>>>,
    state: Mutex<State>,
    not_full: Condvar,
    not_empty: Condvar,
}

impl<T> IngressQueue<T> {
    /// A ring of `capacity` slots (the saturation window). `capacity`
    /// must be at least 1.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            state: Mutex::new(State {
                base: 0,
                producers: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
        }
    }

    /// The saturation window size.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Announce a producer thread. Must be balanced by
    /// [`IngressQueue::producer_done`].
    pub fn register_producer(&self) {
        relock(self.state.lock()).producers += 1;
    }

    /// A producer finished submitting; when the last one leaves and the
    /// ring drains, `pop` starts returning `None`.
    pub fn producer_done(&self) {
        let mut st = relock(self.state.lock());
        st.producers = st.producers.saturating_sub(1);
        drop(st);
        self.not_empty.notify_all();
    }

    /// Publish the request owning global sequence number `seq`. Blocks
    /// (cold path) while the ring is saturated. Each `seq` must be
    /// published exactly once and each producer must publish its own
    /// sequence numbers in increasing order.
    pub fn push(&self, seq: u64, item: T) {
        let cap = self.slots.len() as u64;
        let mut st = relock(self.state.lock());
        while seq >= st.base + cap {
            st = relock(self.not_full.wait(st));
        }
        drop(st);
        // Disjoint slot locks: concurrent producers in the window do not
        // contend with each other here, and nothing allocates.
        let idx = (seq % cap) as usize;
        *relock(self.slots[idx].lock()) = Some(item);
        // Re-acquire the control lock before signalling so a consumer
        // that just found the slot empty is guaranteed to be parked (or
        // past its recheck) — no lost wakeup.
        drop(relock(self.state.lock()));
        self.not_empty.notify_all();
    }

    /// Take the next request in sequence order. Blocks until slot `base`
    /// fills; returns `None` once all producers are done and the ring is
    /// drained. Single-consumer by convention (the serving loop).
    pub fn pop(&self) -> Option<T> {
        let cap = self.slots.len() as u64;
        let mut st = relock(self.state.lock());
        loop {
            let idx = (st.base % cap) as usize;
            let taken = relock(self.slots[idx].lock()).take();
            if let Some(item) = taken {
                st.base += 1;
                drop(st);
                self.not_full.notify_all();
                return Some(item);
            }
            if st.producers == 0 {
                return None;
            }
            st = relock(self.not_empty.wait(st));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_fifo_roundtrip() {
        let q: IngressQueue<u64> = IngressQueue::new(4);
        q.register_producer();
        for seq in 0..4 {
            q.push(seq, seq * 10);
        }
        for seq in 0..4 {
            assert_eq!(q.pop(), Some(seq * 10));
        }
        q.producer_done();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_producers_reassemble_in_sequence_order() {
        // 3 producers own residue classes of 0..300; a tiny ring forces
        // constant saturation parking. The consumer must still see
        // 0, 1, 2, … 299 exactly.
        let q: IngressQueue<u64> = IngressQueue::new(4);
        let n: u64 = 300;
        let clients: u64 = 3;
        std::thread::scope(|scope| {
            for c in 0..clients {
                q.register_producer();
                let q = &q;
                scope.spawn(move || {
                    let mut seq = c;
                    while seq < n {
                        q.push(seq, seq);
                        seq += clients;
                    }
                    q.producer_done();
                });
            }
            for expect in 0..n {
                assert_eq!(q.pop(), Some(expect));
            }
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn saturated_window_parks_but_never_drops() {
        // Window of 2, one producer racing far ahead of a slow consumer.
        let q: IngressQueue<u64> = IngressQueue::new(2);
        let n: u64 = 50;
        std::thread::scope(|scope| {
            q.register_producer();
            let q = &q;
            scope.spawn(move || {
                for seq in 0..n {
                    q.push(seq, seq + 1);
                }
                q.producer_done();
            });
            let mut got = Vec::new();
            while let Some(v) = q.pop() {
                got.push(v);
            }
            let want: Vec<u64> = (1..=n).collect();
            assert_eq!(got, want);
        });
    }

    #[test]
    fn pop_drains_the_ring_after_producers_leave() {
        let q: IngressQueue<&'static str> = IngressQueue::new(8);
        q.register_producer();
        q.push(0, "a");
        q.push(1, "b");
        q.producer_done();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "None is sticky");
    }
}
