//! The hermetic, seeded load generator.
//!
//! Modeled on the cached-context trick of the azure-openai-benchmark
//! generator: payloads are synthesized **once** into a shared pool and
//! every request references a contiguous row range of that pool, so the
//! submit path reuses cached payloads instead of allocating fresh ones.
//! Arrival times, tenant assignment, and request sizes are drawn from
//! stateless [`Rng::substream`]s of one seed, making the whole schedule a
//! pure function of the configuration: deterministic per seed, identical
//! at any thread count (generation never touches the worker pool), and
//! different seeds produce different streams.
//!
//! The generated [`Workload`] carries *logical* arrival timestamps. In
//! open-loop mode the server uses them for admission accounting and
//! deadline-triggered batching — they are never compared against a wall
//! clock, which is what keeps a serve run bit-replayable.

use le_linalg::Rng;
use learning_everywhere::{LeError, Result};

/// The arrival process of the open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals: exponential inter-arrival gaps at `rate`
    /// requests per logical second.
    Poisson {
        /// Mean arrival rate (requests / logical second).
        rate: f64,
    },
    /// A fixed inter-arrival gap (deterministic pacing).
    Uniform {
        /// Gap between consecutive requests (logical seconds).
        interval: f64,
    },
}

/// One weighted request-size class (rows per request).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeClass {
    /// Rows (engine queries) per request in this class.
    pub rows: usize,
    /// Relative selection weight.
    pub weight: f64,
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Master seed; every stream below is a substream of it.
    pub seed: u64,
    /// Number of requests to schedule.
    pub requests: usize,
    /// Input dimensionality of each payload row.
    pub input_dim: usize,
    /// Payload component range (uniform per component).
    pub domain: (f64, f64),
    /// Rows in the shared cached payload pool.
    pub payload_pool: usize,
    /// Per-tenant selection weights; `tenants.len()` is the tenant count.
    pub tenants: Vec<f64>,
    /// Request-size distribution.
    pub sizes: Vec<SizeClass>,
    /// Arrival process.
    pub arrival: Arrival,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            requests: 1024,
            input_dim: 4,
            domain: (-1.0, 1.0),
            payload_pool: 512,
            tenants: vec![1.0],
            sizes: vec![SizeClass {
                rows: 1,
                weight: 1.0,
            }],
            arrival: Arrival::Poisson { rate: 1000.0 },
        }
    }
}

/// One scheduled request: global sequence number, tenant, logical arrival
/// time, and the payload-pool row range it references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpec {
    /// Global sequence number (== index in [`Workload::specs`]).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// Logical arrival time (seconds since campaign start).
    pub arrival: f64,
    /// First payload row.
    pub row_start: usize,
    /// Number of payload rows (engine queries) in the request.
    pub rows: usize,
}

/// A generated schedule plus its cached payload pool.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Flat payload pool: `payload_pool × input_dim`, row-major.
    pub pool: Vec<f64>,
    /// Components per payload row.
    pub input_dim: usize,
    /// Tenant count (`max(spec.tenant) + 1` by construction).
    pub tenants: usize,
    /// The schedule, in sequence (= arrival) order.
    pub specs: Vec<RequestSpec>,
}

impl Workload {
    /// Payload row `i` of the pool.
    pub fn row(&self, i: usize) -> &[f64] {
        let lo = i * self.input_dim;
        &self.pool[lo..lo + self.input_dim]
    }

    /// Total engine queries (rows) across the whole schedule.
    pub fn total_rows(&self) -> usize {
        self.specs.iter().map(|s| s.rows).sum()
    }

    /// FNV-1a digest of the full schedule + payload pool: the bit-exact
    /// identity of the generated stream (pinned by tests to guard
    /// against constant-stream or thread-dependent regressions).
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        fold(self.input_dim as u64);
        fold(self.tenants as u64);
        for v in &self.pool {
            fold(v.to_bits());
        }
        for s in &self.specs {
            fold(s.seq);
            fold(s.tenant as u64);
            fold(s.arrival.to_bits());
            fold(s.row_start as u64);
            fold(s.rows as u64);
        }
        h
    }
}

/// Generate a seeded workload. Fails on degenerate configurations
/// (empty distributions, non-positive weights/rates, a payload pool
/// smaller than the largest request).
pub fn generate(cfg: &LoadConfig) -> Result<Workload> {
    if cfg.input_dim == 0 {
        return Err(LeError::InvalidConfig("input_dim must be positive".into()));
    }
    if cfg.tenants.is_empty() || cfg.tenants.iter().any(|&w| !(w > 0.0) || !w.is_finite()) {
        return Err(LeError::InvalidConfig(
            "tenant weights must be a non-empty list of positive finite values".into(),
        ));
    }
    if cfg.sizes.is_empty()
        || cfg
            .sizes
            .iter()
            .any(|s| s.rows == 0 || !(s.weight > 0.0) || !s.weight.is_finite())
    {
        return Err(LeError::InvalidConfig(
            "size classes must be non-empty with positive rows and weights".into(),
        ));
    }
    let max_rows = cfg.sizes.iter().map(|s| s.rows).max().unwrap_or(1);
    if cfg.payload_pool < max_rows {
        return Err(LeError::InvalidConfig(format!(
            "payload pool ({}) smaller than the largest request ({max_rows} rows)",
            cfg.payload_pool
        )));
    }
    if !(cfg.domain.0 < cfg.domain.1) {
        return Err(LeError::InvalidConfig("empty payload domain".into()));
    }
    match cfg.arrival {
        Arrival::Poisson { rate } => {
            if !(rate > 0.0) || !rate.is_finite() {
                return Err(LeError::InvalidConfig("arrival rate must be positive".into()));
            }
        }
        Arrival::Uniform { interval } => {
            if !(interval > 0.0) || !interval.is_finite() {
                return Err(LeError::InvalidConfig(
                    "arrival interval must be positive".into(),
                ));
            }
        }
    }

    // One stateless substream per decision kind: the streams cannot
    // alias, and adding a new decision kind never perturbs the others.
    let mut pool_rng = Rng::substream(cfg.seed, 0);
    let mut arrival_rng = Rng::substream(cfg.seed, 1);
    let mut tenant_rng = Rng::substream(cfg.seed, 2);
    let mut size_rng = Rng::substream(cfg.seed, 3);
    let mut offset_rng = Rng::substream(cfg.seed, 4);

    let mut pool = Vec::with_capacity(cfg.payload_pool * cfg.input_dim);
    for _ in 0..cfg.payload_pool * cfg.input_dim {
        pool.push(pool_rng.uniform_in(cfg.domain.0, cfg.domain.1));
    }

    let tenant_weights = &cfg.tenants;
    let size_weights: Vec<f64> = cfg.sizes.iter().map(|s| s.weight).collect();
    let mut specs = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    for seq in 0..cfg.requests {
        t += match cfg.arrival {
            Arrival::Poisson { rate } => arrival_rng.exponential(rate),
            Arrival::Uniform { interval } => interval,
        };
        let tenant = tenant_rng.categorical(tenant_weights);
        let rows = cfg.sizes[size_rng.categorical(&size_weights)].rows;
        let row_start = offset_rng.below(cfg.payload_pool - rows + 1);
        specs.push(RequestSpec {
            seq: seq as u64,
            tenant,
            arrival: t,
            row_start,
            rows,
        });
    }
    Ok(Workload {
        pool,
        input_dim: cfg.input_dim,
        tenants: cfg.tenants.len(),
        specs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> LoadConfig {
        LoadConfig {
            seed,
            requests: 500,
            input_dim: 3,
            domain: (-2.0, 2.0),
            payload_pool: 64,
            tenants: vec![0.6, 0.3, 0.1],
            sizes: vec![
                SizeClass { rows: 1, weight: 0.5 },
                SizeClass { rows: 4, weight: 0.3 },
                SizeClass { rows: 16, weight: 0.2 },
            ],
            arrival: Arrival::Poisson { rate: 2000.0 },
        }
    }

    #[test]
    fn same_seed_replays_bit_identically() {
        let a = generate(&cfg(7)).unwrap();
        let b = generate(&cfg(7)).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn different_seeds_produce_different_streams() {
        // Guards against a constant-stream regression: both the arrival
        // stream and the payload pool must move with the seed.
        let a = generate(&cfg(7)).unwrap();
        let b = generate(&cfg(8)).unwrap();
        assert_ne!(a.digest(), b.digest());
        let arrivals_a: Vec<f64> = a.specs.iter().map(|s| s.arrival).collect();
        let arrivals_b: Vec<f64> = b.specs.iter().map(|s| s.arrival).collect();
        assert_ne!(arrivals_a, arrivals_b);
        assert_ne!(a.pool, b.pool);
    }

    #[test]
    fn schedule_digest_is_pinned_and_pool_independent() {
        // The committed digest for this exact configuration. The
        // generator never touches the worker pool, so scripts/verify.sh
        // re-runs this test at LE_POOL_THREADS=1/4/7: any divergence —
        // across thread counts, platforms, or an accidental generator
        // edit — lands here.
        let w = generate(&cfg(42)).unwrap();
        assert_eq!(w.digest(), 0x377edd50f277f10b, "got 0x{:016x}", w.digest());
    }

    #[test]
    fn arrivals_are_strictly_increasing_and_finite() {
        let w = generate(&cfg(11)).unwrap();
        let mut prev = 0.0;
        for s in &w.specs {
            assert!(s.arrival.is_finite());
            assert!(s.arrival > prev, "arrival times must advance");
            prev = s.arrival;
        }
    }

    #[test]
    fn sizes_and_tenants_respect_the_configuration() {
        let c = cfg(13);
        let w = generate(&c).unwrap();
        let legal: Vec<usize> = c.sizes.iter().map(|s| s.rows).collect();
        let mut seen_sizes = std::collections::BTreeSet::new();
        let mut seen_tenants = std::collections::BTreeSet::new();
        for s in &w.specs {
            assert!(legal.contains(&s.rows));
            assert!(s.tenant < c.tenants.len());
            assert!(s.row_start + s.rows <= c.payload_pool);
            seen_sizes.insert(s.rows);
            seen_tenants.insert(s.tenant);
        }
        // With 500 draws every class and tenant should appear.
        assert_eq!(seen_sizes.len(), legal.len());
        assert_eq!(seen_tenants.len(), c.tenants.len());
    }

    #[test]
    fn uniform_arrival_is_an_exact_grid() {
        let mut c = cfg(17);
        c.arrival = Arrival::Uniform { interval: 0.25 };
        c.requests = 8;
        let w = generate(&c).unwrap();
        for (i, s) in w.specs.iter().enumerate() {
            le_linalg::assert_close!(s.arrival, 0.25 * (i + 1) as f64, 1e-12);
        }
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        let ok = cfg(1);
        for bad in [
            LoadConfig { input_dim: 0, ..ok.clone() },
            LoadConfig { tenants: vec![], ..ok.clone() },
            LoadConfig { tenants: vec![1.0, -1.0], ..ok.clone() },
            LoadConfig { sizes: vec![], ..ok.clone() },
            LoadConfig {
                sizes: vec![SizeClass { rows: 0, weight: 1.0 }],
                ..ok.clone()
            },
            LoadConfig { payload_pool: 4, ..ok.clone() },
            LoadConfig { domain: (1.0, 1.0), ..ok.clone() },
            LoadConfig {
                arrival: Arrival::Poisson { rate: 0.0 },
                ..ok.clone()
            },
            LoadConfig {
                arrival: Arrival::Uniform { interval: -1.0 },
                ..ok.clone()
            },
        ] {
            assert!(matches!(
                generate(&bad),
                Err(learning_everywhere::LeError::InvalidConfig(_))
            ));
        }
    }
}
