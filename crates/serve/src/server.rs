//! The serving loop: ingress reassembly → admission → wave formation →
//! `HybridEngine::query_each` → response delivery + telemetry.
//!
//! [`serve`] spawns `clients` producer threads over a generated
//! [`Workload`] (client `c` owns sequence numbers `c, c + clients, …`),
//! reassembles the stream in strict sequence order through the
//! [`IngressQueue`], and answers it on the calling thread:
//!
//! * **Admission** (sequence order, logical time): quota rejections are
//!   answered immediately with typed [`LeError::Backpressure`]; admitted
//!   requests join the open wave.
//! * **Wave formation** — open loop: a wave closes when adding the next
//!   request would exceed `batch_max_rows`, or when the next popped
//!   request's *logical* arrival falls outside the wave's `deadline`
//!   window (both triggers read the seeded schedule, never a clock). A
//!   single oversized request becomes its own wave. Closed loop: one
//!   in-flight request per client, served in lockstep rounds — a round
//!   collects exactly one request from every still-active client, serves
//!   the admitted ones (chunked to `batch_max_rows`), then releases the
//!   clients to submit their next requests.
//! * **Execution**: each wave is one `query_each` call — per-row results,
//!   so a request whose simulation fails is answered with its typed error
//!   while the rest of the wave is served normally.
//! * **Telemetry**: deterministic counters (`serve.submitted`,
//!   `serve.admitted`, `serve.rejected`, `serve.waves`,
//!   `serve.rows_served`, `serve.row_errors`, and per-tenant
//!   `serve.tenant<T>.…`) plus wall-clock latency histograms under the
//!   `serve.latency` prefix (excluded from snapshot diffing; summarized
//!   as p50/p99/p999 in the [`ServeReport`]).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

use le_obs::Stopwatch;
use learning_everywhere::hybrid::QueryResult;
use learning_everywhere::{HybridEngine, LeError, Result, Simulator};

use crate::admission::{AdmissionController, TenantQuota};
use crate::loadgen::Workload;
use crate::queue::IngressQueue;

/// Histogram bounds for the serve latency histograms (seconds): a
/// log-ish ladder from 10 µs to 10 s plus the implicit overflow bucket.
pub const LATENCY_BOUNDS: [f64; 19] = [
    1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3, 1e-2, 2e-2, 5e-2, 0.1, 0.2, 0.5, 1.0,
    2.0, 5.0, 10.0,
];

/// Open-loop (scheduled arrivals) or closed-loop (one in-flight request
/// per client) driving mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopMode {
    /// Clients submit on the generated schedule without waiting for
    /// responses; concurrency is bounded by the ingress ring.
    Open,
    /// Each client waits for its previous response before submitting the
    /// next request (lockstep rounds; classic closed-loop load).
    Closed,
}

/// Serving-frontend configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Producer (client) threads.
    pub clients: usize,
    /// Ingress ring capacity (the saturation window, in requests).
    pub queue_capacity: usize,
    /// Wave size trigger: close the wave rather than grow past this many
    /// rows.
    pub batch_max_rows: usize,
    /// Wave deadline trigger (open loop), in *logical* seconds: a wave
    /// never spans more than this much scheduled arrival time.
    pub deadline: f64,
    /// Driving mode.
    pub mode: LoopMode,
    /// Per-tenant quotas; must cover every tenant in the workload.
    pub quotas: Vec<TenantQuota>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            clients: 4,
            queue_capacity: 256,
            batch_max_rows: 256,
            deadline: 0.005,
            mode: LoopMode::Open,
            quotas: vec![TenantQuota::unlimited()],
        }
    }
}

/// One answered request, in sequence order.
#[derive(Debug, Clone)]
pub struct Response {
    /// Global sequence number (== index into [`ServeReport::responses`]).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: usize,
    /// `Err` means the request was rejected at admission
    /// ([`LeError::Backpressure`]) and never executed; `Ok` carries one
    /// result per payload row (a row's own simulation failure is that
    /// row's `Err` — the other rows of the request still served).
    pub outcome: Result<Vec<Result<QueryResult>>>,
    /// Submit-to-answer wall-clock latency (seconds). Real time — the
    /// only non-deterministic field of a serve run.
    pub latency: f64,
}

/// Wall-clock latency summary over every answered request (seconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

/// The outcome of a serve run. Everything here except `latency` (and the
/// per-response `latency` fields) is deterministic per workload seed.
#[derive(Debug)]
pub struct ServeReport {
    /// One response per request, indexed by sequence number.
    pub responses: Vec<Response>,
    /// Requests submitted, per tenant.
    pub submitted: Vec<u64>,
    /// Requests admitted, per tenant (`admitted + rejected == submitted`).
    pub admitted: Vec<u64>,
    /// Requests rejected at admission, per tenant.
    pub rejected: Vec<u64>,
    /// Waves dispatched to the engine.
    pub waves: u64,
    /// Rows answered with `Ok` across all served requests.
    pub rows_served: u64,
    /// Rows answered with a typed per-row error.
    pub row_errors: u64,
    /// Wall-clock latency summary (non-deterministic).
    pub latency: LatencySummary,
}

/// See [`relock`][crate::queue] — plain-data locks are safe to re-enter
/// after a poisoning unwind.
fn relock<'a, T>(
    r: std::result::Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Closed-loop completion board: clients park until their sequence
/// number is marked answered.
struct DoneBoard {
    flags: Mutex<Vec<bool>>,
    cv: Condvar,
}

impl DoneBoard {
    fn new(n: usize) -> Self {
        Self {
            flags: Mutex::new(vec![false; n]),
            cv: Condvar::new(),
        }
    }

    fn wait(&self, seq: usize) {
        let mut flags = relock(self.flags.lock());
        while !flags[seq] {
            flags = relock(self.cv.wait(flags));
        }
    }

    fn mark(&self, seqs: impl Iterator<Item = usize>) {
        let mut flags = relock(self.flags.lock());
        for s in seqs {
            flags[s] = true;
        }
        drop(flags);
        self.cv.notify_all();
    }
}

/// A request travelling through the ring: schedule fields plus the
/// wall-clock stopwatch started at submission.
struct Request {
    seq: u64,
    tenant: usize,
    arrival: f64,
    row_start: usize,
    rows: usize,
    sw: Stopwatch,
}

/// Pre-registered telemetry handles: one lookup per serve run, zero
/// allocation per request.
struct Telemetry {
    submitted: Vec<le_obs::Counter>,
    admitted: Vec<le_obs::Counter>,
    rejected: Vec<le_obs::Counter>,
    latency_all: le_obs::Histogram,
    latency_tenant: Vec<le_obs::Histogram>,
    waves: le_obs::Counter,
    rows_served: le_obs::Counter,
    row_errors: le_obs::Counter,
}

impl Telemetry {
    fn new(tenants: usize) -> Self {
        let g = le_obs::global();
        let per = |what: &str| -> Vec<le_obs::Counter> {
            (0..tenants)
                .map(|t| g.counter(&format!("serve.tenant{t}.{what}")))
                .collect()
        };
        Self {
            submitted: per("submitted"),
            admitted: per("admitted"),
            rejected: per("rejected"),
            latency_all: g.histogram("serve.latency", &LATENCY_BOUNDS),
            latency_tenant: (0..tenants)
                .map(|t| g.histogram(&format!("serve.latency.tenant{t}"), &LATENCY_BOUNDS))
                .collect(),
            waves: g.counter("serve.waves"),
            rows_served: g.counter("serve.rows_served"),
            row_errors: g.counter("serve.row_errors"),
        }
    }
}

/// Percentile from a sorted latency sample (nearest-rank).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summarize `bounds`/`counts` histogram data at quantile `q`: the upper
/// bound of the bucket where the cumulative count crosses, matching how
/// the campaign reports tail latency from an OBS snapshot. Overflow
/// resolves to infinity.
pub fn histogram_quantile(bounds: &[f64], counts: &[u64], q: f64) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let target = (q * total as f64).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= target {
            return bounds.get(i).copied().unwrap_or(f64::INFINITY);
        }
    }
    f64::INFINITY
}

/// The serving loop's mutable state while draining the stream.
struct Server<'a, S: Simulator> {
    engine: &'a mut HybridEngine<S>,
    workload: &'a Workload,
    cfg: &'a ServeConfig,
    adm: AdmissionController,
    obs: Telemetry,
    responses: Vec<Option<Response>>,
    submitted: Vec<u64>,
    admitted: Vec<u64>,
    rejected: Vec<u64>,
    waves: u64,
    rows_served: u64,
    row_errors: u64,
    latencies: Vec<f64>,
    /// The open wave: admitted requests not yet dispatched.
    wave: Vec<Request>,
    wave_rows: usize,
    wave_opened_at: f64,
}

impl<'a, S: Simulator> Server<'a, S> {
    fn new(
        engine: &'a mut HybridEngine<S>,
        workload: &'a Workload,
        cfg: &'a ServeConfig,
    ) -> Result<Self> {
        let tenants = cfg.quotas.len();
        let adm = AdmissionController::new(cfg.quotas.clone())?;
        let n = workload.specs.len();
        Ok(Self {
            engine,
            workload,
            cfg,
            adm,
            obs: Telemetry::new(tenants),
            responses: (0..n).map(|_| None).collect(),
            submitted: vec![0; tenants],
            admitted: vec![0; tenants],
            rejected: vec![0; tenants],
            waves: 0,
            rows_served: 0,
            row_errors: 0,
            latencies: Vec::with_capacity(n),
            wave: Vec::new(),
            wave_rows: 0,
            wave_opened_at: 0.0,
        })
    }

    /// Admission for one popped request: either queue it on the open
    /// wave or answer it with its rejection immediately.
    fn take(&mut self, req: Request) -> Result<()> {
        let t = req.tenant;
        self.submitted[t] += 1;
        self.obs.submitted[t].inc();
        le_obs::counter!("serve.submitted").inc();
        match self.adm.admit(t, req.rows, req.arrival) {
            Ok(()) => {
                self.admitted[t] += 1;
                self.obs.admitted[t].inc();
                le_obs::counter!("serve.admitted").inc();
                if self.wave.is_empty() {
                    self.wave_opened_at = req.arrival;
                }
                self.wave_rows += req.rows;
                self.wave.push(req);
                Ok(())
            }
            Err(e) => {
                self.rejected[t] += 1;
                self.obs.rejected[t].inc();
                le_obs::counter!("serve.rejected").inc();
                self.respond(req, Err(e));
                Ok(())
            }
        }
    }

    /// Whether the open-loop triggers close the wave *before* `next`
    /// joins it.
    fn wave_closes_before(&self, next: &Request) -> bool {
        if self.wave.is_empty() {
            return false;
        }
        self.wave_rows + next.rows > self.cfg.batch_max_rows
            || next.arrival > self.wave_opened_at + self.cfg.deadline
    }

    /// Dispatch the open wave as one `query_each` call and answer its
    /// requests.
    fn flush(&mut self) -> Result<()> {
        if self.wave.is_empty() {
            return Ok(());
        }
        let wave = std::mem::take(&mut self.wave);
        let wave_rows = self.wave_rows;
        self.wave_rows = 0;
        let mut inputs: Vec<&[f64]> = Vec::with_capacity(wave_rows);
        for req in &wave {
            for r in req.row_start..req.row_start + req.rows {
                inputs.push(self.workload.row(r));
            }
        }
        self.waves += 1;
        self.obs.waves.inc();
        let sp = le_obs::timed_span!("serve.wave");
        let mut results = self.engine.query_each(&inputs)?.into_iter();
        sp.finish_secs();
        for req in wave {
            let rows: Vec<Result<QueryResult>> = results.by_ref().take(req.rows).collect();
            for r in &rows {
                match r {
                    Ok(_) => {
                        self.rows_served += 1;
                        self.obs.rows_served.inc();
                    }
                    Err(_) => {
                        self.row_errors += 1;
                        self.obs.row_errors.inc();
                    }
                }
            }
            self.respond(req, Ok(rows));
        }
        Ok(())
    }

    /// Record latency telemetry and file the response under its seq.
    fn respond(&mut self, req: Request, outcome: Result<Vec<Result<QueryResult>>>) {
        let latency = req.sw.elapsed_secs();
        self.obs.latency_all.record(latency);
        self.obs.latency_tenant[req.tenant].record(latency);
        self.latencies.push(latency);
        self.responses[req.seq as usize] = Some(Response {
            seq: req.seq,
            tenant: req.tenant,
            outcome,
            latency,
        });
    }

    fn into_report(mut self) -> Result<ServeReport> {
        let mut responses = Vec::with_capacity(self.responses.len());
        for (i, r) in self.responses.drain(..).enumerate() {
            responses.push(r.ok_or_else(|| {
                LeError::Simulation(format!("request {i} was never answered"))
            })?);
        }
        self.latencies.sort_by(f64::total_cmp);
        let latency = LatencySummary {
            p50: percentile(&self.latencies, 0.50),
            p99: percentile(&self.latencies, 0.99),
            p999: percentile(&self.latencies, 0.999),
            max: self.latencies.last().copied().unwrap_or(0.0),
            mean: if self.latencies.is_empty() {
                0.0
            } else {
                self.latencies.iter().sum::<f64>() / self.latencies.len() as f64
            },
        };
        Ok(ServeReport {
            responses,
            submitted: self.submitted,
            admitted: self.admitted,
            rejected: self.rejected,
            waves: self.waves,
            rows_served: self.rows_served,
            row_errors: self.row_errors,
            latency,
        })
    }
}

/// Drive `workload` through `engine` under `cfg`. See the module docs
/// for the wave/admission semantics and the determinism contract.
pub fn serve<S: Simulator>(
    engine: &mut HybridEngine<S>,
    workload: &Workload,
    cfg: &ServeConfig,
) -> Result<ServeReport> {
    if cfg.clients == 0 {
        return Err(LeError::InvalidConfig("need at least one client".into()));
    }
    if cfg.batch_max_rows == 0 {
        return Err(LeError::InvalidConfig("batch_max_rows must be positive".into()));
    }
    if !(cfg.deadline > 0.0) || !cfg.deadline.is_finite() {
        return Err(LeError::InvalidConfig("deadline must be positive".into()));
    }
    if workload.input_dim != engine.simulator().input_dim() {
        return Err(LeError::InvalidConfig(format!(
            "workload rows have {} components, engine expects {}",
            workload.input_dim,
            engine.simulator().input_dim()
        )));
    }
    if workload.tenants > cfg.quotas.len() {
        return Err(LeError::InvalidConfig(format!(
            "workload uses {} tenants, quotas cover {}",
            workload.tenants,
            cfg.quotas.len()
        )));
    }

    let n = workload.specs.len();
    let clients = cfg.clients.min(n.max(1));
    let queue: IngressQueue<Request> = IngressQueue::new(cfg.queue_capacity);
    let done = DoneBoard::new(n);
    let closed = cfg.mode == LoopMode::Closed;

    std::thread::scope(|scope| {
        for c in 0..clients {
            queue.register_producer();
            let queue = &queue;
            let done = &done;
            let specs = &workload.specs;
            scope.spawn(move || {
                let mut seq = c;
                while seq < n {
                    let spec = specs[seq];
                    queue.push(
                        spec.seq,
                        Request {
                            seq: spec.seq,
                            tenant: spec.tenant,
                            arrival: spec.arrival,
                            row_start: spec.row_start,
                            rows: spec.rows,
                            sw: Stopwatch::start(),
                        },
                    );
                    if closed {
                        done.wait(seq);
                    }
                    seq += clients;
                }
                queue.producer_done();
            });
        }

        let mut server = Server::new(engine, workload, cfg)?;
        if closed {
            // Lockstep rounds: requests are popped in sequence order, so
            // round r is exactly the contiguous seq range [r·C, r·C + k)
            // where k counts the clients still holding requests.
            let mut answered = 0usize;
            while answered < n {
                let round = clients.min(n - answered);
                let lo = answered;
                for _ in 0..round {
                    let req = queue.pop().ok_or_else(|| {
                        LeError::Simulation("ingress closed before all requests arrived".into())
                    })?;
                    server.take(req)?;
                    // Size trigger still applies inside a round.
                    if server.wave_rows >= cfg.batch_max_rows {
                        server.flush()?;
                    }
                }
                server.flush()?;
                answered += round;
                done.mark(lo..answered);
            }
            // Producers have nothing left; drain the close handshake.
            while queue.pop().is_some() {}
        } else {
            while let Some(req) = queue.pop() {
                if server.wave_closes_before(&req) {
                    server.flush()?;
                }
                server.take(req)?;
                if server.wave_rows >= cfg.batch_max_rows {
                    server.flush()?;
                }
            }
            server.flush()?;
        }
        server.into_report()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        le_linalg::assert_close!(percentile(&xs, 0.50), 50.0, 1e-12);
        le_linalg::assert_close!(percentile(&xs, 0.99), 99.0, 1e-12);
        le_linalg::assert_close!(percentile(&xs, 0.999), 100.0, 1e-12);
        le_linalg::assert_close!(percentile(&[], 0.5), 0.0, 1e-12);
    }

    #[test]
    fn histogram_quantile_walks_buckets() {
        let bounds = [1.0, 2.0, 4.0];
        // 10 in (..1], 85 in (1..2], 5 in (2..4], 0 overflow.
        let counts = [10, 85, 5, 0];
        le_linalg::assert_close!(histogram_quantile(&bounds, &counts, 0.5), 2.0, 1e-12);
        le_linalg::assert_close!(histogram_quantile(&bounds, &counts, 0.05), 1.0, 1e-12);
        le_linalg::assert_close!(histogram_quantile(&bounds, &counts, 0.99), 4.0, 1e-12);
        assert_eq!(histogram_quantile(&bounds, &[0, 0, 0, 0], 0.5), 0.0);
        assert!(histogram_quantile(&bounds, &[0, 0, 0, 1], 0.5).is_infinite());
    }
}
