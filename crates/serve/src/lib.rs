#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `le-serve` — the batched surrogate-serving frontend over
//! [`learning_everywhere::HybridEngine`].
//!
//! The paper's MLaroundHPC vision only pays off when trained surrogates
//! *serve* queries at scale: many concurrent clients, multi-tenant
//! quotas, and batch formation that keeps the fused inference engine fed
//! with wide waves instead of single lookups. This crate is that layer:
//!
//! * [`queue`] — a bounded, seq-ordered MPMC ingress ring: N client
//!   threads publish pre-assigned sequence numbers into per-slot
//!   mutexes (allocation-free on the hot path) and one consumer drains
//!   them in strict sequence order, turning racy thread interleavings
//!   back into one deterministic logical request stream.
//! * [`admission`] — per-tenant token-bucket admission control evaluated
//!   in *logical arrival time* (carried by the seeded schedule, not read
//!   from any clock), so quota rejections are a pure function of the
//!   request stream: typed [`learning_everywhere::LeError::Backpressure`]
//!   rejections, bit-identical at any thread count.
//! * [`loadgen`] — a hermetic, seeded open/closed-loop load generator
//!   (configurable arrival processes, request-size distributions, and a
//!   cached payload pool that requests reference by range — no per-request
//!   payload synthesis on the submit path).
//! * [`server`] — the serving loop: drains the ingress queue, forms
//!   size/deadline-triggered waves, answers them through
//!   `HybridEngine::query_each`, and records per-tenant/per-wave `le-obs`
//!   counters plus wall-clock latency histograms (p50/p99/p999).
//!
//! ## Determinism contract
//!
//! Everything observable about a serve run **except wall-clock latency**
//! — which requests are admitted or rejected, wave boundaries, every
//! served output bit, every engine/supervisor counter — is a pure
//! function of the workload seed and the engine's initial state,
//! independent of `LE_POOL_THREADS`, the number of client threads, and
//! OS scheduling. The pre-assigned global sequence numbers give the
//! consumer a total order to reassemble; admission and batching decide
//! off logical arrival times; and `query_each` inherits the batch
//! engine's bit-identical wave semantics. `serve_campaign` digests this
//! whole surface and `scripts/verify.sh` replays it at 1/4/7 pool
//! threads. Latency histograms are real wall time (via the sanctioned
//! [`le_obs::Stopwatch`] shim) and are excluded from snapshot diffing by
//! the `serve.latency` name prefix.

pub mod admission;
pub mod loadgen;
pub mod queue;
pub mod server;

pub use admission::{AdmissionController, TenantQuota};
pub use loadgen::{Arrival, LoadConfig, RequestSpec, SizeClass, Workload};
pub use queue::IngressQueue;
pub use server::{serve, LatencySummary, LoopMode, Response, ServeConfig, ServeReport};
