//! Per-tenant token-bucket admission control in **logical time**.
//!
//! The controller is evaluated by the single consumer in sequence order,
//! and refills buckets from the *logical arrival timestamps* carried by
//! the seeded schedule — never from a wall clock. Admission is therefore
//! a pure function of the request stream: the same workload produces the
//! same admit/reject decisions at any thread count, which is what lets
//! `serve_campaign` fold rejection counts into its replayable digest.
//!
//! A rejected request is answered immediately with a typed
//! [`LeError::Backpressure`] and never reaches the engine; ring
//! saturation is handled separately (producers park — flow control, not
//! rejection), so `admitted + rejected == submitted` holds per tenant.

use learning_everywhere::{LeError, Result};

/// One tenant's token bucket: `rate` rows per logical second, holding at
/// most `burst` rows of credit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Sustained admission rate (rows / logical second).
    pub rate: f64,
    /// Bucket capacity (rows): the largest admissible burst.
    pub burst: f64,
}

impl TenantQuota {
    /// A quota that never rejects (infinite rate and burst).
    pub fn unlimited() -> Self {
        Self {
            rate: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }
}

/// The serving loop's admission controller (see module docs).
#[derive(Debug, Clone)]
pub struct AdmissionController {
    quotas: Vec<TenantQuota>,
    /// Current credit per tenant (rows).
    tokens: Vec<f64>,
    /// Logical time of each tenant's last refill.
    refilled_at: Vec<f64>,
}

impl AdmissionController {
    /// One bucket per tenant; buckets start full.
    pub fn new(quotas: Vec<TenantQuota>) -> Result<Self> {
        if quotas.is_empty() {
            return Err(LeError::InvalidConfig("no tenant quotas".into()));
        }
        for (t, q) in quotas.iter().enumerate() {
            if !(q.rate > 0.0) || q.rate.is_nan() || !(q.burst > 0.0) || q.burst.is_nan() {
                return Err(LeError::InvalidConfig(format!(
                    "tenant {t} quota must have positive rate and burst"
                )));
            }
        }
        let tokens = quotas.iter().map(|q| q.burst).collect();
        let refilled_at = vec![0.0; quotas.len()];
        Ok(Self {
            quotas,
            tokens,
            refilled_at,
        })
    }

    /// Number of tenants.
    pub fn tenants(&self) -> usize {
        self.quotas.len()
    }

    /// Decide one request: `rows` of work for `tenant` arriving at
    /// logical time `arrival`. Must be called in sequence order (the
    /// serving loop's order); arrival times are monotone within a
    /// tenant, so the refill never runs backwards.
    pub fn admit(
        &mut self,
        tenant: usize,
        rows: usize,
        arrival: f64,
    ) -> std::result::Result<(), LeError> {
        if tenant >= self.quotas.len() {
            return Err(LeError::Backpressure(format!(
                "unknown tenant {tenant} (quotas cover {})",
                self.quotas.len()
            )));
        }
        let q = self.quotas[tenant];
        let dt = (arrival - self.refilled_at[tenant]).max(0.0);
        self.refilled_at[tenant] = arrival;
        self.tokens[tenant] = (self.tokens[tenant] + dt * q.rate).min(q.burst);
        let cost = rows as f64;
        if cost <= self.tokens[tenant] {
            self.tokens[tenant] -= cost;
            Ok(())
        } else {
            Err(LeError::Backpressure(format!(
                "tenant {tenant} over quota: {rows} rows at t={arrival:.6}s, \
                 {:.3} tokens of {:.3} burst (rate {:.1} rows/s)",
                self.tokens[tenant], q.burst, q.rate
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_refills_and_caps() {
        let mut adm = AdmissionController::new(vec![TenantQuota {
            rate: 10.0,
            burst: 5.0,
        }])
        .unwrap();
        // Starts full: 5 rows admissible at t=0.
        assert!(adm.admit(0, 5, 0.0).is_ok());
        // Empty now; 0.2s refills 2 tokens.
        assert!(adm.admit(0, 3, 0.2).is_err());
        assert!(adm.admit(0, 2, 0.2).is_ok());
        // A long gap refills to the burst cap, not beyond.
        assert!(adm.admit(0, 6, 100.0).is_err());
        assert!(adm.admit(0, 5, 100.0).is_ok());
    }

    #[test]
    fn rejections_are_typed_backpressure() {
        let mut adm = AdmissionController::new(vec![TenantQuota {
            rate: 1.0,
            burst: 1.0,
        }])
        .unwrap();
        assert!(adm.admit(0, 1, 0.0).is_ok());
        let err = adm.admit(0, 1, 0.0).unwrap_err();
        assert!(matches!(err, LeError::Backpressure(_)));
        assert!(err.to_string().contains("over quota"));
        // Out-of-range tenants are backpressure too, not a panic.
        assert!(matches!(
            adm.admit(7, 1, 0.0),
            Err(LeError::Backpressure(_))
        ));
    }

    #[test]
    fn tenants_are_isolated() {
        let mut adm = AdmissionController::new(vec![
            TenantQuota { rate: 1.0, burst: 1.0 },
            TenantQuota::unlimited(),
        ])
        .unwrap();
        assert!(adm.admit(0, 1, 0.0).is_ok());
        assert!(adm.admit(0, 1, 0.0).is_err(), "tenant 0 exhausted");
        for _ in 0..100 {
            assert!(adm.admit(1, 1000, 0.0).is_ok(), "tenant 1 is unlimited");
        }
    }

    #[test]
    fn replaying_a_stream_reproduces_the_decisions() {
        let quotas = vec![
            TenantQuota { rate: 50.0, burst: 8.0 },
            TenantQuota { rate: 20.0, burst: 4.0 },
        ];
        let mut rng = le_linalg::Rng::new(3);
        let stream: Vec<(usize, usize, f64)> = (0..200)
            .map(|i| {
                (
                    rng.below(2),
                    1 + rng.below(6),
                    i as f64 * 0.01 + rng.uniform() * 0.005,
                )
            })
            .collect();
        let run = |quotas: Vec<TenantQuota>| -> Vec<bool> {
            let mut adm = AdmissionController::new(quotas).unwrap();
            stream
                .iter()
                .map(|&(t, r, at)| adm.admit(t, r, at).is_ok())
                .collect()
        };
        let a = run(quotas.clone());
        let b = run(quotas);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x) && a.iter().any(|&x| !x));
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(AdmissionController::new(vec![]).is_err());
        assert!(AdmissionController::new(vec![TenantQuota {
            rate: 0.0,
            burst: 1.0
        }])
        .is_err());
        assert!(AdmissionController::new(vec![TenantQuota {
            rate: 1.0,
            burst: f64::NAN
        }])
        .is_err());
    }
}
