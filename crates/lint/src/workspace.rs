//! The workspace walker and report: ties manifests + sources to rules.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::manifest;
use crate::rules;
use crate::scanner;
use crate::{
    json_escape, rel_to, Rule, Violation, SIM_KERNEL_CRATES, WALLCLOCK_AUTHORITY_CRATE,
    WALLCLOCK_EXEMPT_FILES,
};

/// The outcome of a full workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by file then line then rule.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Human-readable `file:line:rule: message` lines plus a summary.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "le-lint: {} violation(s) in {} source file(s), {} manifest(s)\n",
            self.violations.len(),
            self.files_scanned,
            self.manifests_scanned
        ));
        out
    }

    /// Machine-readable JSON (hand-rolled; no serde, by design).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
                json_escape(&v.file.display().to_string()),
                v.line,
                v.rule,
                json_escape(&v.message)
            ));
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"files_scanned\": {},\n  \"manifests_scanned\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.manifests_scanned,
            self.is_clean()
        ));
        out
    }
}

/// One workspace crate located during the walk.
struct Member {
    /// Package name from `[package] name`.
    name: String,
    /// Path to the crate's `Cargo.toml`.
    manifest: PathBuf,
    /// The crate's `src/` directory (may not exist for the root package).
    src: PathBuf,
}

/// Run all eight rules over the workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> io::Result<Report> {
    let members = locate_members(root)?;
    let names: BTreeSet<String> = members.iter().map(|m| m.name.clone()).collect();
    let mut report = Report::default();

    for member in &members {
        // L1: hermetic manifests.
        let toml = fs::read_to_string(&member.manifest)?;
        report.manifests_scanned += 1;
        for dep in manifest::foreign_deps(&toml, &names) {
            report.violations.push(Violation {
                file: rel_to(&member.manifest, root),
                line: dep.line,
                rule: Rule::Hermeticity,
                message: format!(
                    "dependency `{}` is not an in-tree crate — the workspace builds \
                     offline with no external crates",
                    dep.name
                ),
            });
        }

        // L2–L7 over the crate's sources.
        let is_sim = SIM_KERNEL_CRATES.contains(&member.name.as_str());
        let is_clock_authority = member.name == WALLCLOCK_AUTHORITY_CRATE;
        let root_file = member.src.join("lib.rs");
        for source in rust_sources(&member.src)? {
            let src = fs::read_to_string(&source)?;
            report.files_scanned += 1;
            let lines = scanner::scan(&src);
            let file = rel_to(&source, root);
            let exempt = is_bin_source(&member.src, &source);

            if !exempt {
                for (line, message) in rules::check_no_panic(&lines) {
                    report.violations.push(Violation {
                        file: file.clone(),
                        line,
                        rule: Rule::NoPanic,
                        message,
                    });
                }
                for (line, message) in rules::check_float_hygiene(&lines) {
                    report.violations.push(Violation {
                        file: file.clone(),
                        line,
                        rule: Rule::FloatHygiene,
                        message,
                    });
                }
                if is_sim {
                    for (line, message) in rules::check_determinism(&lines) {
                        report.violations.push(Violation {
                            file: file.clone(),
                            line,
                            rule: Rule::Determinism,
                            message,
                        });
                    }
                }
                if !is_clock_authority && !is_wallclock_exempt(&member.name, &member.src, &source)
                {
                    for (line, message) in rules::check_wallclock(&lines) {
                        report.violations.push(Violation {
                            file: file.clone(),
                            line,
                            rule: Rule::WallClock,
                            message,
                        });
                    }
                }
                // L7: `le-obs` is the trace authority too — only its own
                // sources may touch the journal backends directly.
                if !is_clock_authority {
                    for (line, message) in rules::check_trace_hygiene(&lines) {
                        report.violations.push(Violation {
                            file: file.clone(),
                            line,
                            rule: Rule::TraceHygiene,
                            message,
                        });
                    }
                }
            }

            // L8 applies to binary targets too (unlike L2): drivers are
            // exactly where `Result<_, LeError>` must be handled, not
            // panicked through.
            for (line, message) in rules::check_le_error_unwrap(&lines) {
                report.violations.push(Violation {
                    file: file.clone(),
                    line,
                    rule: Rule::LeErrorUnwrap,
                    message,
                });
            }

            if source == root_file {
                for (line, message) in rules::check_lint_headers(&lines) {
                    report.violations.push(Violation {
                        file: file.clone(),
                        line,
                        rule: Rule::LintHeaders,
                        message,
                    });
                }
            }
        }
    }

    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Find the root package plus every `crates/*` member.
fn locate_members(root: &Path) -> io::Result<Vec<Member>> {
    let mut members = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if !root_manifest.is_file() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no Cargo.toml under {}", root.display()),
        ));
    }
    // The root manifest is always checked (it may carry
    // `[workspace.dependencies]`) even when it declares no package; a
    // missing `src/` simply scans zero files.
    let toml = fs::read_to_string(&root_manifest)?;
    let name = manifest::package_name(&toml).unwrap_or_else(|| "(workspace)".to_string());
    members.push(Member {
        name,
        manifest: root_manifest,
        src: root.join("src"),
    });
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            let manifest_path = dir.join("Cargo.toml");
            if !manifest_path.is_file() {
                continue;
            }
            let toml = fs::read_to_string(&manifest_path)?;
            let name = manifest::package_name(&toml).unwrap_or_else(|| {
                dir.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default()
            });
            members.push(Member {
                name,
                manifest: manifest_path,
                src: dir.join("src"),
            });
        }
    }
    Ok(members)
}

/// Recursively collect `.rs` files under `src/` (sorted for stable output).
fn rust_sources(src: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    if !src.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![src.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Binary targets (`src/main.rs`, anything under `src/bin/`) are exempt
/// from the source rules L2–L4: they are drivers, not library kernels.
fn is_bin_source(src: &Path, source: &Path) -> bool {
    source == src.join("main.rs") || source.starts_with(src.join("bin"))
}

/// L6 structural allowlist: `(crate, file)` pairs from
/// [`WALLCLOCK_EXEMPT_FILES`] may read the clock directly.
fn is_wallclock_exempt(crate_name: &str, src: &Path, source: &Path) -> bool {
    WALLCLOCK_EXEMPT_FILES
        .iter()
        .any(|(name, file)| *name == crate_name && source == src.join(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bin_sources_are_classified() {
        let src = Path::new("/w/crates/x/src");
        assert!(is_bin_source(src, &src.join("main.rs")));
        assert!(is_bin_source(src, &src.join("bin/tool.rs")));
        assert!(!is_bin_source(src, &src.join("lib.rs")));
        assert!(!is_bin_source(src, &src.join("binary_ops.rs")));
    }

    #[test]
    fn wallclock_exemption_is_crate_and_file_scoped() {
        let src = Path::new("/w/crates/bench/src");
        assert!(is_wallclock_exempt("le-bench", src, &src.join("timing.rs")));
        assert!(!is_wallclock_exempt("le-bench", src, &src.join("lib.rs")));
        assert!(!is_wallclock_exempt("le-core", src, &src.join("timing.rs")));
    }

    #[test]
    fn json_report_shape() {
        let mut report = Report::default();
        report.files_scanned = 2;
        report.manifests_scanned = 1;
        let json = report.to_json();
        assert!(json.contains("\"clean\": true"));
        assert!(json.contains("\"violations\": []"));
        report.violations.push(Violation {
            file: PathBuf::from("a.rs"),
            line: 3,
            rule: Rule::NoPanic,
            message: "quote \" here".into(),
        });
        let json = report.to_json();
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("quote \\\" here"));
    }

    #[test]
    fn text_report_has_summary_line() {
        let report = Report {
            violations: vec![],
            files_scanned: 5,
            manifests_scanned: 2,
        };
        let text = report.to_text();
        assert!(text.contains("0 violation(s) in 5 source file(s), 2 manifest(s)"));
    }
}
