//! L1 hermeticity: line-oriented `Cargo.toml` scanning.
//!
//! A tiny TOML-subset reader — enough to find `[…dependencies…]` sections
//! and the dependency names they declare. No external TOML parser, by
//! design: the lint crate itself must satisfy the hermeticity rule.

use std::collections::BTreeSet;

/// A dependency declaration found in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// The dependency's package name (the key before `=` / `.`).
    pub name: String,
    /// 1-based line number of the declaration.
    pub line: usize,
}

/// Extract the `[package] name = "…"` value, if any.
pub fn package_name(toml: &str) -> Option<String> {
    let mut in_package = false;
    for raw in toml.lines() {
        let line = strip_toml_comment(raw).trim().to_string();
        if let Some(section) = section_header(&line) {
            in_package = section == "package";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(value) = rest.strip_prefix('=') {
                    return Some(value.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Collect every dependency name declared in any `*dependencies*` section
/// (`[dependencies]`, `[dev-dependencies]`, `[build-dependencies]`,
/// `[workspace.dependencies]`, `[target.'…'.dependencies]`, …).
pub fn dependencies(toml: &str) -> Vec<Dep> {
    let mut out = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(section) = section_header(&line) {
            // `[dependencies]`, `[dev-dependencies]`, and dotted forms like
            // `[workspace.dependencies]` or `[dependencies.rand]`.
            let parts: Vec<&str> = section.split('.').collect();
            if let Some(pos) = parts.iter().position(|p| p.ends_with("dependencies")) {
                if let Some(dep_name) = parts.get(pos + 1) {
                    // `[dependencies.rand]` names the dep in the header.
                    out.push(Dep {
                        name: (*dep_name).to_string(),
                        line: idx + 1,
                    });
                    in_deps = false;
                } else {
                    in_deps = true;
                }
            } else {
                in_deps = false;
            }
            continue;
        }
        if in_deps {
            if let Some(name) = dep_key(&line) {
                out.push(Dep {
                    name,
                    line: idx + 1,
                });
            }
        }
    }
    out
}

/// Check a manifest against the in-tree member set; returns offending deps.
pub fn foreign_deps(toml: &str, members: &BTreeSet<String>) -> Vec<Dep> {
    dependencies(toml)
        .into_iter()
        .filter(|d| !crate::is_in_tree_name(&d.name, members))
        .collect()
}

/// `[section.name]` → `section.name` (quotes in dotted keys tolerated).
fn section_header(line: &str) -> Option<String> {
    let line = line.strip_prefix('[')?;
    let line = line.strip_suffix(']')?;
    Some(line.trim().trim_matches('"').to_string())
}

/// The dependency name on a `name = …` or `name.workspace = true` line.
fn dep_key(line: &str) -> Option<String> {
    let key: String = line
        .chars()
        .take_while(|&c| c.is_alphanumeric() || c == '-' || c == '_')
        .collect();
    if key.is_empty() {
        return None;
    }
    let rest = line[key.len()..].trim_start();
    (rest.starts_with('=') || rest.starts_with('.')).then_some(key)
}

/// Remove a `#`-comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
[package]
name = "le-demo" # trailing comment
version = "0.1.0"

[dependencies]
le-linalg.workspace = true
rand = "0.8"
serde = { version = "1", features = ["derive"] }

[dev-dependencies]
proptest = "1.0"

[dependencies.rayon]
version = "1.8"

[lib]
bench = false
"#;

    #[test]
    fn finds_package_name() {
        assert_eq!(package_name(SAMPLE).as_deref(), Some("le-demo"));
    }

    #[test]
    fn finds_all_dependency_forms() {
        let names: Vec<String> = dependencies(SAMPLE).into_iter().map(|d| d.name).collect();
        assert_eq!(names, ["le-linalg", "rand", "serde", "proptest", "rayon"]);
    }

    #[test]
    fn foreign_deps_filters_in_tree() {
        let members: BTreeSet<String> = ["le-linalg".to_string()].into_iter().collect();
        let foreign: Vec<String> = foreign_deps(SAMPLE, &members)
            .into_iter()
            .map(|d| d.name)
            .collect();
        assert_eq!(foreign, ["rand", "serde", "proptest", "rayon"]);
    }

    #[test]
    fn lib_section_is_not_deps() {
        let toml = "[lib]\nbench = false\n[package]\nname = \"x\"";
        assert!(dependencies(toml).is_empty());
    }

    #[test]
    fn workspace_dependencies_section_is_checked() {
        let toml = "[workspace.dependencies]\nrand = \"0.8\"\nle-core = { path = \"crates/core\" }";
        let names: Vec<String> = dependencies(toml).into_iter().map(|d| d.name).collect();
        assert_eq!(names, ["rand", "le-core"]);
    }

    #[test]
    fn comments_and_strings_handled() {
        let toml = "[dependencies]\n# rand = \"0.8\"\nfoo = { path = \"a#b\" }";
        let names: Vec<String> = dependencies(toml).into_iter().map(|d| d.name).collect();
        assert_eq!(names, ["foo"]);
    }
}
