//! `le-lint` CLI: `cargo run -p le-lint -- check [--root PATH] [--format text|json]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use le_lint::check_workspace;

const USAGE: &str = "usage: le-lint check [--root PATH] [--format text|json]

Runs the workspace lint rules (hermeticity, no-panic, float-hygiene,
determinism, lint-headers, wallclock) over every crate. Exits 0 when
clean, 1 when violations are found, 2 on usage or I/O errors.";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("le-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut root: Option<PathBuf> = None;
    let mut format = "text".to_string();
    let mut command: Option<&str> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--root" => {
                root = Some(PathBuf::from(
                    it.next().ok_or("--root requires a path argument")?,
                ));
            }
            "--format" => {
                let f = it.next().ok_or("--format requires `text` or `json`")?;
                if f != "text" && f != "json" {
                    return Err(format!("unknown format `{f}` (expected text or json)"));
                }
                format = f.clone();
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(true);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    if command != Some("check") {
        return Err(format!("expected the `check` subcommand\n{USAGE}"));
    }

    let root = match root {
        Some(r) => r,
        None => find_workspace_root()?,
    };
    let report = check_workspace(&root).map_err(|e| format!("{}: {e}", root.display()))?;

    if format == "json" {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.to_text());
    }
    Ok(report.is_clean())
}

/// Walk up from the current directory to the first `Cargo.toml` that
/// declares a `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let toml = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if toml.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory; pass --root"
                .to_string());
        }
    }
}
