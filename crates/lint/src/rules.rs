//! The source-level rule matchers (L2, L3, L4, L5, L6, L7, L8).
//!
//! Each matcher takes scanned lines (see [`crate::scanner`]) and returns
//! findings as `(line_number, message)` pairs; the workspace driver
//! attaches file paths and filters by crate class.

use crate::scanner::Line;

/// L2: panicking calls forbidden in library code.
const PANIC_PATTERNS: [(&str, &str); 4] = [
    (".unwrap()", "`.unwrap()` in library code — return a `Result` or recover; `// lint:allow(no-panic): <why>` if the invariant is local and checked"),
    (".expect(", "`.expect(...)` in library code — return a `Result` or recover"),
    ("panic!", "`panic!` in library code — return an error instead"),
    ("unreachable!", "`unreachable!` in library code — encode the invariant in types or return an error"),
];

/// L4: ambient entropy / wall clock forbidden in simulation crates.
const DETERMINISM_PATTERNS: [(&str, &str); 5] = [
    ("SystemTime", "`SystemTime` in a simulation/kernel crate — results must not depend on wall-clock time"),
    ("Instant::now", "`Instant::now` in a simulation/kernel crate — timing belongs in the harness; `// lint:allow(determinism): <why>` for pure measurement"),
    ("thread_rng", "ambient RNG in a simulation/kernel crate — take a `u64` seed and use `le_linalg::rng`"),
    ("from_entropy", "entropy-seeded RNG in a simulation/kernel crate — take a `u64` seed and use `le_linalg::rng`"),
    ("rand::", "external `rand` usage — all randomness flows through `le_linalg::rng`"),
];

/// Check L2 over scanned lines.
pub fn check_no_panic(lines: &[Line]) -> Vec<(usize, String)> {
    check_patterns(lines, "no-panic", &PANIC_PATTERNS)
}

/// Check L4 over scanned lines.
pub fn check_determinism(lines: &[Line]) -> Vec<(usize, String)> {
    check_patterns(lines, "determinism", &DETERMINISM_PATTERNS)
}

/// L6: raw wall-clock reads anywhere outside the observability layer.
const WALLCLOCK_PATTERNS: [(&str, &str); 2] = [
    ("Instant::now", "raw `Instant::now` outside `le-obs` — use `le_obs::Stopwatch`, `le_obs::span!`, or `le_obs::timed_span!` so telemetry and accounting share one clock read"),
    ("SystemTime", "raw `SystemTime` outside `le-obs` — wall-clock reads flow through the observability layer"),
];

/// Check L6 over scanned lines. Unlike the other pattern rules this one has
/// **no** `lint:allow` escape: the allowlist is structural (the `le-obs`
/// crate and `le-bench`'s `timing.rs`), enforced by the workspace driver.
/// `#[cfg(test)]` modules remain exempt — tests may time themselves.
pub fn check_wallclock(lines: &[Line]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, msg) in &WALLCLOCK_PATTERNS {
            if line.code.contains(pat) {
                out.push((idx + 1, (*msg).to_string()));
            }
        }
    }
    out
}

/// L7: direct trace-journal mutation anywhere outside `le-obs`.
const TRACE_HYGIENE_PATTERNS: [(&str, &str); 6] = [
    ("trace::enter_span(", "raw `trace::enter_span` outside `le-obs` — use `le_obs::trace_root!` / `le_obs::trace_span!` so the interned name id is cached per call site"),
    ("trace::mark(", "raw `trace::mark` outside `le-obs` — use `le_obs::trace_instant!`"),
    ("trace::intern_name(", "raw `trace::intern_name` outside `le-obs` — the guard macros intern and cache names themselves"),
    ("trace::set_enabled", "`trace::set_enabled` outside `le-obs` — library code must not flip journaling; the `LE_OBS` gate and test/bench binaries own that decision"),
    ("trace::reset", "`trace::reset` outside `le-obs` — clearing the journal from library code would truncate the causal record mid-run"),
    ("global().set_enabled", "`global().set_enabled` outside `le-obs` — library code must not flip recording; the `LE_OBS` gate and test/bench binaries own that decision"),
];

/// Check L7 over scanned lines. Like L6 this rule has **no** `lint:allow`
/// escape: the allowlist is structural (the `le-obs` crate itself),
/// enforced by the workspace driver. `#[cfg(test)]` modules remain exempt —
/// tests may drive the journal directly.
pub fn check_trace_hygiene(lines: &[Line]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        for (pat, msg) in &TRACE_HYGIENE_PATTERNS {
            if line.code.contains(pat) {
                out.push((idx + 1, (*msg).to_string()));
            }
        }
    }
    out
}

/// L8: engine APIs whose `Result<_, LeError>` a caller might be tempted to
/// unwrap. A line is flagged when one of these co-occurs with a panicking
/// call — the typed error exists so the caller can degrade (retry,
/// quarantine, serve simulator-only), not panic the campaign.
const LE_ERROR_MARKERS: [&str; 5] = [
    ".query(",
    ".seed_training(",
    ".retrain(",
    ".calibrate_gate(",
    "LeError",
];

/// Check L8 over scanned lines. Unlike L2, the workspace driver applies
/// this to binary targets too: drivers are exactly where degradation must
/// be handled. `#[cfg(test)]` modules remain exempt, and a deliberate
/// invariant can be suppressed with `// lint:allow(le-error-unwrap): <why>`.
pub fn check_le_error_unwrap(lines: &[Line]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || line.allows_rule("le-error-unwrap") {
            continue;
        }
        let panicking = line.code.contains(".unwrap()") || line.code.contains(".expect(");
        if panicking && LE_ERROR_MARKERS.iter().any(|m| line.code.contains(m)) {
            out.push((
                idx + 1,
                "`.unwrap()`/`.expect(...)` on a `Result<_, LeError>` — match on the \
                 typed error and degrade (retry, fall back to simulation, exit with a \
                 message) instead of panicking; `// lint:allow(le-error-unwrap): <why>` \
                 if the invariant is local and checked"
                    .to_string(),
            ));
        }
    }
    out
}

fn check_patterns(
    lines: &[Line],
    rule: &str,
    patterns: &[(&str, &str)],
) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || line.allows_rule(rule) {
            continue;
        }
        for (pat, msg) in patterns {
            if line.code.contains(pat) {
                out.push((idx + 1, (*msg).to_string()));
            }
        }
    }
    out
}

/// Check L3: exact `==` / `!=` where either operand is a float literal or
/// an `f64`/`f32` path constant.
pub fn check_float_hygiene(lines: &[Line]) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        if line.in_test || line.allows_rule("float-hygiene") {
            continue;
        }
        let tokens = tokenize(&line.code);
        for (t, tok) in tokens.iter().enumerate() {
            if tok != "==" && tok != "!=" {
                continue;
            }
            let left = t.checked_sub(1).and_then(|k| tokens.get(k));
            let right = tokens.get(t + 1);
            let floaty = |o: Option<&String>| {
                o.map(|s| is_float_literal(s) || s == "f64" || s == "f32")
                    .unwrap_or(false)
            };
            if floaty(left) || floaty(right) {
                out.push((
                    idx + 1,
                    format!(
                        "exact float `{tok}` comparison — use `le_linalg::approx::approx_eq` \
                         / `le_linalg::assert_close!` (or `// lint:allow(float-hygiene): <why>` \
                         for true sentinel checks)"
                    ),
                ));
            }
        }
    }
    out
}

/// Check L5: crate-root files must carry the agreed header attributes.
pub fn check_lint_headers(lines: &[Line]) -> Vec<(usize, String)> {
    let mut missing = Vec::new();
    let has = |attr: &str| lines.iter().any(|l| l.code.contains(attr));
    if !has("#![forbid(unsafe_code)]") && !has("#![deny(unsafe_code)]") {
        missing.push((
            0,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
    if !has("#![warn(missing_docs)]") && !has("#![deny(missing_docs)]") {
        missing.push((
            0,
            "crate root is missing `#![warn(missing_docs)]`".to_string(),
        ));
    }
    missing
}

/// Split code text into coarse tokens: identifiers/numbers, multi-char
/// comparison operators, and single punctuation chars. Whitespace splits.
fn tokenize(code: &str) -> Vec<String> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let mut tok = String::new();
            while i < chars.len() {
                let k = chars[i];
                // Keep numeric literals glued: digits, `.`, `_`, exponent
                // signs directly after e/E.
                let numeric_dot = k == '.'
                    && tok.starts_with(|t: char| t.is_ascii_digit())
                    && chars.get(i + 1).is_none_or(|n| n.is_ascii_digit() || !n.is_alphanumeric());
                let exp_sign = (k == '+' || k == '-')
                    && tok.ends_with(['e', 'E'])
                    && tok.starts_with(|t: char| t.is_ascii_digit());
                if k.is_alphanumeric() || k == '_' || numeric_dot || exp_sign {
                    tok.push(k);
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(tok);
        } else if (c == '=' || c == '!' || c == '<' || c == '>')
            && chars.get(i + 1) == Some(&'=')
        {
            out.push(format!("{c}="));
            i += 2;
        } else {
            out.push(c.to_string());
            i += 1;
        }
    }
    out
}

/// True for `1.0`, `0.`, `1e-3`, `2.5f64`, `1f32`, `3.14_15` — not `1`,
/// `0x10`, `1u64`.
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32");
    let had_float_suffix = t.len() != tok.len();
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    if t.starts_with("0x") || t.starts_with("0b") || t.starts_with("0o") {
        return false;
    }
    let body: String = t.chars().filter(|&c| c != '_').collect();
    if had_float_suffix && body.chars().all(|c| c.is_ascii_digit()) {
        return true; // 1f64
    }
    let has_dot = body.contains('.');
    let has_exp = body
        .char_indices()
        .any(|(i, c)| (c == 'e' || c == 'E') && i > 0);
    if !has_dot && !has_exp {
        return false;
    }
    body.chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scanner::scan;

    #[test]
    fn no_panic_fires_on_each_pattern() {
        for snippet in [
            "let x = v.first().unwrap();",
            "let x = v.first().expect(\"non-empty\");",
            "panic!(\"boom\");",
            "unreachable!()",
        ] {
            let hits = check_no_panic(&scan(snippet));
            assert_eq!(hits.len(), 1, "no hit for {snippet}");
        }
    }

    #[test]
    fn no_panic_negative_cases() {
        for snippet in [
            "let x = v.first().unwrap_or(&0);",
            "let x = v.first().unwrap_or_else(|| &0);",
            "// a comment about .unwrap()",
            "let s = \"panic!\";",
            "debug_assert!(x > 0.0);",
            "m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)",
        ] {
            let hits = check_no_panic(&scan(snippet));
            assert!(hits.is_empty(), "false positive on {snippet}: {hits:?}");
        }
    }

    #[test]
    fn no_panic_allow_escape() {
        let hits = check_no_panic(&scan(
            "let x = v.first().unwrap(); // lint:allow(no-panic): checked above",
        ));
        assert!(hits.is_empty());
    }

    #[test]
    fn no_panic_exempts_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { v.unwrap(); }\n}";
        assert!(check_no_panic(&scan(src)).is_empty());
    }

    #[test]
    fn float_hygiene_fires_on_literals_and_consts() {
        for snippet in [
            "if x == 0.0 { }",
            "if 1e-9 != y { }",
            "if x == 1.5f64 { }",
            "if v == f64::INFINITY { }",
            "assert!(a.len() as f64 == 2.0);",
        ] {
            let hits = check_float_hygiene(&scan(snippet));
            assert_eq!(hits.len(), 1, "no hit for {snippet}");
        }
    }

    #[test]
    fn float_hygiene_negative_cases() {
        for snippet in [
            "if x == 0 { }",
            "if n != len { }",
            "if x <= 0.0 { }",
            "if x >= 1.0 { }",
            "let y = x == y;",
            "if mask == 0xFF { }",
            "for i in 0..10 { }",
        ] {
            let hits = check_float_hygiene(&scan(snippet));
            assert!(hits.is_empty(), "false positive on {snippet}: {hits:?}");
        }
    }

    #[test]
    fn float_hygiene_allow_escape() {
        let hits = check_float_hygiene(&scan(
            "if delta != 0.0 { } // lint:allow(float-hygiene): sentinel",
        ));
        assert!(hits.is_empty());
    }

    #[test]
    fn determinism_fires_on_entropy_and_clock() {
        for snippet in [
            "let t = std::time::Instant::now();",
            "let t = SystemTime::now();",
            "let mut rng = rand::thread_rng();",
            "let rng = StdRng::from_entropy();",
        ] {
            let hits = check_determinism(&scan(snippet));
            assert!(!hits.is_empty(), "no hit for {snippet}");
        }
    }

    #[test]
    fn determinism_allow_escape_and_seeded_rng_ok() {
        assert!(check_determinism(&scan("let mut rng = Rng::new(seed);")).is_empty());
        assert!(check_determinism(&scan(
            "let t = Instant::now(); // lint:allow(determinism): wall-clock report only"
        ))
        .is_empty());
    }

    #[test]
    fn wallclock_fires_and_has_no_allow_escape() {
        for snippet in [
            "let t = std::time::Instant::now();",
            "let t = SystemTime::now();",
            "let t = Instant::now(); // lint:allow(wallclock): no such escape",
            "let t = Instant::now(); // lint:allow(determinism): wrong rule",
        ] {
            let hits = check_wallclock(&scan(snippet));
            assert_eq!(hits.len(), 1, "expected one hit for {snippet}");
        }
    }

    #[test]
    fn wallclock_negative_cases() {
        for snippet in [
            "let sw = le_obs::Stopwatch::start();",
            "// a comment mentioning Instant::now",
            "let s = \"SystemTime\";",
        ] {
            let hits = check_wallclock(&scan(snippet));
            assert!(hits.is_empty(), "false positive on {snippet}: {hits:?}");
        }
    }

    #[test]
    fn wallclock_exempts_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); }\n}";
        assert!(check_wallclock(&scan(src)).is_empty());
    }

    #[test]
    fn trace_hygiene_fires_and_has_no_allow_escape() {
        for snippet in [
            "let g = le_obs::trace::enter_span(id, true);",
            "le_obs::trace::mark(id);",
            "let id = le_obs::trace::intern_name(\"x\");",
            "le_obs::trace::set_enabled(false);",
            "le_obs::trace::reset();",
            "le_obs::global().set_enabled(false);",
            "trace::reset(); // lint:allow(trace-hygiene): no such escape",
        ] {
            let hits = check_trace_hygiene(&scan(snippet));
            assert_eq!(hits.len(), 1, "expected one hit for {snippet}");
        }
    }

    #[test]
    fn trace_hygiene_negative_cases() {
        for snippet in [
            "let _t = le_obs::trace_span!(\"hybrid.simulate\");",
            "let _t = le_obs::trace_root!(\"hybrid.query\");",
            "le_obs::trace_instant!(\"sched.task.complete\");",
            "let ctx = le_obs::trace::current_ctx();",
            "let _g = ctx.adopt();",
            "// a comment about trace::reset",
            "let s = \"trace::set_enabled\";",
        ] {
            let hits = check_trace_hygiene(&scan(snippet));
            assert!(hits.is_empty(), "false positive on {snippet}: {hits:?}");
        }
    }

    #[test]
    fn trace_hygiene_exempts_cfg_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { le_obs::trace::reset(); }\n}";
        assert!(check_trace_hygiene(&scan(src)).is_empty());
    }

    #[test]
    fn le_error_unwrap_fires_on_engine_results() {
        for snippet in [
            "let r = engine.query(&x).unwrap();",
            "let r = engine.query(&x).expect(\"query succeeds\");",
            "engine.seed_training(&xs, &ys).unwrap();",
            "engine.retrain().expect(\"fits\");",
            "let t = engine.calibrate_gate(&vx, &vy, 0.1).unwrap();",
            "let v: Result<Vec<f64>, LeError> = sim(); v.unwrap();",
        ] {
            let hits = check_le_error_unwrap(&scan(snippet));
            assert_eq!(hits.len(), 1, "no hit for {snippet}");
        }
    }

    #[test]
    fn le_error_unwrap_negative_cases() {
        for snippet in [
            // Panicking call without an LeError API on the line.
            "let x = v.first().unwrap();",
            // Engine API handled properly.
            "let r = engine.query(&x)?;",
            "if let Err(e) = engine.query(&x) { eprintln!(\"{e}\"); }",
            "let r = engine.query(&x).unwrap_or_else(|_| fallback());",
            // Strings and comments don't count.
            "// engine.query(&x).unwrap() would defeat the ladder",
            "let s = \"engine.query(&x).unwrap()\";",
        ] {
            let hits = check_le_error_unwrap(&scan(snippet));
            assert!(hits.is_empty(), "false positive on {snippet}: {hits:?}");
        }
    }

    #[test]
    fn le_error_unwrap_allow_escape_and_test_exemption() {
        assert!(check_le_error_unwrap(&scan(
            "engine.query(&x).unwrap(); // lint:allow(le-error-unwrap): input validated"
        ))
        .is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { engine.query(&x).unwrap(); }\n}";
        assert!(check_le_error_unwrap(&scan(src)).is_empty());
    }

    #[test]
    fn lint_headers_detects_missing_and_present() {
        let bad = scan("//! docs\npub fn f() {}");
        assert_eq!(check_lint_headers(&bad).len(), 2);
        let good = scan("#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n//! docs");
        assert!(check_lint_headers(&good).is_empty());
        let half = scan("#![forbid(unsafe_code)]\npub fn f() {}");
        assert_eq!(check_lint_headers(&half).len(), 1);
    }

    #[test]
    fn float_literal_classifier() {
        for t in ["1.0", "0.", "1e-3", "2.5f64", "1f32", "3.14_15", "1E9"] {
            assert!(is_float_literal(t), "{t} should be float");
        }
        for t in ["1", "0x10", "0b01", "1u64", "len", "_x", "e3"] {
            assert!(!is_float_literal(t), "{t} should not be float");
        }
    }
}
