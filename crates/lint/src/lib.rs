#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `le-lint` — the workspace's from-scratch static-analysis driver.
//!
//! The paper's MLforHPC loops only produce trustworthy *effective speedup*
//! numbers if the simulation and training kernels are deterministic,
//! panic-free, and reproducible. This crate enforces that as a set of
//! repo-specific lint rules over every workspace source file and manifest,
//! with zero external dependencies (a lightweight line/token scanner, not a
//! full parser):
//!
//! * **L1 `hermeticity`** — no dependency outside the in-tree
//!   `le-*`/`learning-everywhere` set may appear in any `Cargo.toml`. The
//!   build must succeed offline, forever.
//! * **L2 `no-panic`** — `unwrap()` / `expect(` / `panic!` /
//!   `unreachable!` are forbidden in library code under `crates/*/src`
//!   (binaries, benches, and `#[cfg(test)]` modules are exempt).
//! * **L3 `float-hygiene`** — exact `==` / `!=` against float literals or
//!   `f64`/`f32` constants is flagged; use `le_linalg::approx::approx_eq`
//!   or `le_linalg::assert_close!` instead.
//! * **L4 `determinism`** — ambient entropy and wall-clock reads
//!   (`SystemTime`, `Instant::now`, `thread_rng`-style calls) are forbidden
//!   in the simulation/kernel crates; all randomness flows through
//!   `le_linalg::rng` seeds.
//! * **L5 `lint-headers`** — every crate root must carry the agreed
//!   `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` header.
//! * **L6 `wallclock`** — raw wall-clock reads (`Instant::now`,
//!   `SystemTime`) are forbidden in *every* library crate except the
//!   observability layer itself (`le-obs`) and the bench harness's
//!   calibration loop (`le-bench`'s `timing.rs`). All timing flows through
//!   `le_obs` spans/`Stopwatch`, so telemetry and accounting cannot
//!   disagree. This rule has **no** `lint:allow` escape.
//! * **L7 `trace-hygiene`** — outside `le-obs` itself, the trace journal
//!   may only be driven through the guard macros (`trace_root!`,
//!   `trace_span!`, `trace_instant!`, `TraceCtx::adopt`). Direct calls to
//!   the journal backends (`trace::enter_span`, `trace::mark`,
//!   `trace::intern_name`, `trace::set_enabled`, `trace::reset`) or to
//!   `global().set_enabled` would bypass per-call-site name caching and
//!   could desynchronize the causal structure the canonical timeline and
//!   `obsctl diff` rely on. Like L6, this rule has **no** `lint:allow`
//!   escape.
//! * **L8 `le-error-unwrap`** — `.unwrap()` / `.expect(` on a
//!   `Result<_, LeError>` (heuristic: a panicking call co-occurring with an
//!   engine API or an `LeError` mention on one line). The supervised engine
//!   returns typed errors precisely so callers can degrade; unlike L2 this
//!   rule applies to **binaries too** — drivers are exactly where
//!   degradation must be handled, not panicked through.
//!
//! Any finding except L6/L7 can be suppressed for one line with a trailing
//! `// lint:allow(<rule>)` comment (a justification after a `:` is
//! encouraged: `// lint:allow(no-panic): length checked above`).

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub mod manifest;
pub mod rules;
pub mod scanner;
pub mod workspace;

pub use workspace::{check_workspace, Report};

/// The eight workspace lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1: only in-tree dependencies in any manifest.
    Hermeticity,
    /// L2: no panicking calls in library code.
    NoPanic,
    /// L3: no exact float equality comparisons.
    FloatHygiene,
    /// L4: no ambient entropy / wall clock in simulation crates.
    Determinism,
    /// L5: crate roots carry the agreed lint header.
    LintHeaders,
    /// L6: raw wall-clock reads only inside `le-obs` and the bench
    /// harness's calibration loop.
    WallClock,
    /// L7: trace-journal mutation only through the `le-obs` guard macros
    /// outside the observability crate itself.
    TraceHygiene,
    /// L8: no `unwrap`/`expect` on `Result<_, LeError>` anywhere outside
    /// tests — binaries included; typed errors feed the degradation ladder.
    LeErrorUnwrap,
}

impl Rule {
    /// All rules, in L1..L8 order.
    pub const ALL: [Rule; 8] = [
        Rule::Hermeticity,
        Rule::NoPanic,
        Rule::FloatHygiene,
        Rule::Determinism,
        Rule::LintHeaders,
        Rule::WallClock,
        Rule::TraceHygiene,
        Rule::LeErrorUnwrap,
    ];

    /// The stable rule name used in diagnostics and `lint:allow(...)`.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Hermeticity => "hermeticity",
            Rule::NoPanic => "no-panic",
            Rule::FloatHygiene => "float-hygiene",
            Rule::Determinism => "determinism",
            Rule::LintHeaders => "lint-headers",
            Rule::WallClock => "wallclock",
            Rule::TraceHygiene => "trace-hygiene",
            Rule::LeErrorUnwrap => "le-error-unwrap",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One `file:line:rule` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Path of the offending file, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings such as L5).
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The package names allowed as dependencies: the in-tree crate set.
/// Collected from the workspace during the walk; this constant seeds the
/// prefix check so the rule works even on a partially broken tree.
pub fn is_in_tree_name(name: &str, members: &BTreeSet<String>) -> bool {
    members.contains(name)
        || name.starts_with("le-")
        || name == "learning-everywhere"
        || name == "learning-everywhere-repro"
}

/// Crates whose sources must be free of wall-clock and ambient entropy
/// (rule L4): the simulation and kernel substrates. Orchestration and
/// measurement crates (`core`, `perfmodel`, `sched`, `bench`) legitimately
/// read wall-clock time for effective-speedup accounting.
pub const SIM_KERNEL_CRATES: [&str; 10] = [
    "le-pool",
    "le-linalg",
    "le-nn",
    "le-mdsim",
    "le-netdyn",
    "le-tissue",
    "le-mlkernels",
    "le-faults",
    "le-serve",
    "le-drift",
];

/// The only crate allowed to read the wall clock directly (rule L6): the
/// observability layer everything else records timings through.
pub const WALLCLOCK_AUTHORITY_CRATE: &str = "le-obs";

/// `(crate, file-name)` pairs additionally exempt from L6: the bench
/// harness's calibration loop owns its clock reads (it feeds measurements
/// back into `le-obs` spans and `BENCH_*.json`).
pub const WALLCLOCK_EXEMPT_FILES: [(&str, &str); 1] = [("le-bench", "timing.rs")];

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Relativize `path` against `root` for display (falls back to `path`).
pub fn rel_to(path: &Path, root: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_are_stable() {
        let names: Vec<&str> = Rule::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            [
                "hermeticity",
                "no-panic",
                "float-hygiene",
                "determinism",
                "lint-headers",
                "wallclock",
                "trace-hygiene",
                "le-error-unwrap"
            ]
        );
    }

    #[test]
    fn violation_display_is_file_line_rule() {
        let v = Violation {
            file: PathBuf::from("crates/nn/src/layer.rs"),
            line: 42,
            rule: Rule::NoPanic,
            message: "`.unwrap()` in library code".into(),
        };
        assert_eq!(
            v.to_string(),
            "crates/nn/src/layer.rs:42:no-panic: `.unwrap()` in library code"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn determinism_audit_covers_the_batch_engine() {
        // The fused MC-dropout batch engine (`le_nn::batch`) promises
        // bit-identical output at any pool width; that promise is only
        // credible while the L4 determinism audit scans its crate. Pin
        // le-nn (and the pool it fans out over) in the audited set so a
        // future edit cannot silently drop the coverage.
        assert!(SIM_KERNEL_CRATES.contains(&"le-nn"));
        assert!(SIM_KERNEL_CRATES.contains(&"le-pool"));
    }

    #[test]
    fn determinism_audit_covers_the_serving_frontend() {
        // The serving layer promises bit-identical digests at any pool
        // width and client count; its admission/batching decisions must
        // therefore come from the seeded schedule, never ambient entropy
        // or a clock. Pin le-serve in the audited set (its only
        // sanctioned timing surface is the `le_obs::Stopwatch` shim for
        // latency histograms, which lives in the wall-clock authority
        // crate, not here).
        assert!(SIM_KERNEL_CRATES.contains(&"le-serve"));
    }

    #[test]
    fn determinism_audit_covers_the_drift_schedule() {
        // Drift schedules are the replay substrate for the staleness and
        // rolling-retrain campaigns: every offset must come from the
        // seeded splitmix64 stream so the drift-campaign digest stays
        // byte-identical at any pool width. Pin le-drift in the audited
        // set so its sources can never grow a clock read or ambient
        // entropy without tripping L4.
        assert!(SIM_KERNEL_CRATES.contains(&"le-drift"));
    }

    #[test]
    fn in_tree_name_check() {
        let members: BTreeSet<String> = ["le-linalg".to_string()].into_iter().collect();
        assert!(is_in_tree_name("le-linalg", &members));
        assert!(is_in_tree_name("le-anything", &members));
        assert!(is_in_tree_name("learning-everywhere", &members));
        assert!(!is_in_tree_name("rand", &members));
        assert!(!is_in_tree_name("rayon", &members));
    }
}
