//! String/comment-aware source scanning.
//!
//! The scanner reduces each source line to its *code text* — string and
//! character literal contents and comments blanked out with spaces — so the
//! rule matchers never fire on documentation, fixtures embedded in string
//! literals, or commented-out code. It also extracts `lint:allow(...)`
//! escape tags from line comments and marks lines inside `#[cfg(test)]`
//! modules as test-exempt.

/// One scanned source line.
#[derive(Debug, Clone)]
pub struct Line {
    /// The line's code text: literals and comments replaced by spaces,
    /// column positions preserved.
    pub code: String,
    /// Rule names allowed on this line via `// lint:allow(rule, ...)`.
    pub allows: Vec<String>,
    /// True if the line sits inside a `#[cfg(test)]` module.
    pub in_test: bool,
}

impl Line {
    /// True if this line suppresses `rule` (by name or `all`).
    pub fn allows_rule(&self, rule: &str) -> bool {
        self.allows.iter().any(|a| a == rule || a == "all")
    }
}

/// Multi-line lexer state carried across lines.
#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    /// Plain code.
    Code,
    /// Inside a (nestable) block comment at the given depth.
    Block(u32),
    /// Inside a normal `"…"` string literal.
    Str,
    /// Inside a raw string literal opened with this many `#`s.
    RawStr(u32),
}

/// Scan full source text into per-line code text + allow tags.
pub fn scan(src: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw in src.lines() {
        let (code, comment_text, next_state) = scan_line(raw, state);
        state = next_state;
        out.push(Line {
            code,
            allows: parse_allows(&comment_text),
            in_test: false,
        });
    }
    mark_test_regions(&mut out);
    out
}

/// Scan one line starting in `state`; returns (code text, comment text,
/// state at end of line).
fn scan_line(raw: &str, mut state: State) -> (String, String, State) {
    let bytes: Vec<char> = raw.chars().collect();
    let n = bytes.len();
    let mut code = String::with_capacity(n);
    let mut comments = String::new();
    let mut i = 0;
    while i < n {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match state {
            State::Block(depth) => {
                if c == '*' && next == Some('/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::Block(depth - 1)
                    };
                    comments.push(' ');
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comments.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code.push_str("  ");
                    i += 2; // skip the escaped char (may run past EOL)
                } else if c == '"' {
                    state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && raw_close_matches(&bytes, i + 1, hashes) {
                    state = State::Code;
                    code.push('"');
                    for _ in 0..hashes {
                        code.push(' ');
                    }
                    i += 1 + hashes as usize;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                if c == '/' && next == Some('/') {
                    // Line comment: capture for lint:allow parsing, done.
                    comments.push_str(&raw[char_index_to_byte(raw, i)..]);
                    while code.len() < n {
                        code.push(' ');
                    }
                    break;
                } else if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str;
                    code.push('"');
                    i += 1;
                } else if c == 'r' && matches!(next, Some('"') | Some('#')) {
                    if let Some(h) = raw_open_hashes(&bytes, i + 1) {
                        state = State::RawStr(h);
                        code.push(' ');
                        code.push('"');
                        for _ in 0..h {
                            code.push(' ');
                        }
                        i += 2 + h as usize;
                    } else {
                        code.push(c);
                        i += 1;
                    }
                } else if c == 'b' && next == Some('\'') {
                    // Byte literal b'x'.
                    let consumed = char_literal_len(&bytes, i + 1).unwrap_or(1);
                    for _ in 0..=consumed {
                        code.push(' ');
                    }
                    i += 1 + consumed;
                } else if c == '\'' {
                    // Char literal or lifetime.
                    match char_literal_len(&bytes, i) {
                        Some(len) => {
                            for _ in 0..len {
                                code.push(' ');
                            }
                            i += len;
                        }
                        None => {
                            // Lifetime: keep the tick, scan on.
                            code.push('\'');
                            i += 1;
                        }
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
        }
    }
    (code, comments, state)
}

/// If `bytes[start..]` opens a raw string (`"`, `#"`, `##"`, …), return the
/// number of hashes.
fn raw_open_hashes(bytes: &[char], start: usize) -> Option<u32> {
    let mut h = 0;
    let mut i = start;
    while bytes.get(i) == Some(&'#') {
        h += 1;
        i += 1;
    }
    (bytes.get(i) == Some(&'"')).then_some(h)
}

/// True if `bytes[start..]` is exactly `hashes` `#` characters (closing a
/// raw string whose `"` was just seen).
fn raw_close_matches(bytes: &[char], start: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| bytes.get(start + k) == Some(&'#'))
}

/// If a char literal starts at `bytes[i]` (which must be `'`), return its
/// total length in chars; `None` means it is a lifetime tick.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    if bytes.get(i) != Some(&'\'') {
        return None;
    }
    match bytes.get(i + 1) {
        Some('\\') => {
            // Escaped char: find the closing quote within a small window
            // (covers \n, \', \u{…} up to 8 digits).
            for k in (i + 3)..(i + 12).min(bytes.len()) {
                if bytes[k] == '\'' {
                    return Some(k - i + 1);
                }
            }
            None
        }
        Some(_) if bytes.get(i + 2) == Some(&'\'') => Some(3),
        _ => None, // lifetime
    }
}

/// Map a char index back to a byte index in the original line.
fn char_index_to_byte(s: &str, char_idx: usize) -> usize {
    s.char_indices()
        .nth(char_idx)
        .map(|(b, _)| b)
        .unwrap_or(s.len())
}

/// Extract rule names from `lint:allow(a, b)` tags in comment text.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        if let Some(end) = after.find(')') {
            for name in after[..end].split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    out.push(name.to_string());
                }
            }
            rest = &after[end..];
        } else {
            break;
        }
    }
    out
}

/// Mark lines inside `#[cfg(test)] mod … { … }` regions as test-exempt.
///
/// Walks forward from each `#[cfg(test)]` attribute: the gated item runs to
/// the close of its first brace group (or to the first `;` for brace-less
/// items like `#[cfg(test)] use …;`).
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        let start = lines[i]
            .code
            .find("#[cfg(test)]")
            .map(|p| p + "#[cfg(test)]".len())
            .unwrap_or(0);
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'region: while j < lines.len() {
            lines[j].in_test = true;
            let code = &lines[j].code;
            let skip = if j == i { start } else { 0 };
            for c in code.chars().skip(skip) {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => break 'region,
                    _ => {}
                }
                if opened && depth <= 0 {
                    break 'region;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_blanked() {
        let lines = scan(r#"let s = "x.unwrap()"; s.len();"#);
        assert_eq!(lines.len(), 1);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].code.contains("s.len()"));
    }

    #[test]
    fn line_comments_are_blanked_but_allows_parsed() {
        let lines = scan("foo(); // panic! here is fine // lint:allow(no-panic): reason");
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[0].allows_rule("no-panic"));
        assert!(!lines[0].allows_rule("determinism"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let src = "a();\n/* x.unwrap()\n /* nested */ still comment */\nb();";
        let lines = scan(src);
        assert!(lines[0].code.contains("a()"));
        assert!(!lines[1].code.contains("unwrap"));
        assert!(!lines[2].code.contains("comment"));
        assert!(lines[3].code.contains("b()"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"first .unwrap()\nsecond panic!\"#; tail();";
        let lines = scan(src);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(!lines[1].code.contains("panic!"));
        assert!(lines[1].code.contains("tail()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = scan("let c = '\"'; fn f<'a>(x: &'a str) {} let d = '\\n';");
        // The double-quote inside the char literal must not open a string.
        assert!(lines[0].code.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}";
        let lines = scan(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn allow_all_tag() {
        let lines = scan("x(); // lint:allow(all)");
        assert!(lines[0].allows_rule("no-panic"));
        assert!(lines[0].allows_rule("float-hygiene"));
    }

    #[test]
    fn multiple_allow_tags() {
        let lines = scan("x(); // lint:allow(no-panic, determinism)");
        assert!(lines[0].allows_rule("no-panic"));
        assert!(lines[0].allows_rule("determinism"));
        assert!(!lines[0].allows_rule("float-hygiene"));
    }
}
