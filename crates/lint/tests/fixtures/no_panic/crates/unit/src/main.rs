fn main() {
    let v = vec![1.0];
    println!("{}", v.first().unwrap());
}
