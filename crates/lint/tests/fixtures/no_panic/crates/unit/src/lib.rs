#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate.

/// Unchecked head.
pub fn head(v: &[f64]) -> f64 {
    *v.first().unwrap()
}
