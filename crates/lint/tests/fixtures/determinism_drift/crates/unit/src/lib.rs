#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate: a drift schedule that jitters its offsets from ambient
//! entropy instead of the seeded splitmix64 stream.

/// Computes a drift offset with an entropy-seeded jitter term — the exact
/// regression the drift determinism audit must catch (it would make the
/// drift-campaign digest differ between runs).
pub fn offset_at(t: u64) -> f64 {
    let rng = StdRng::from_entropy();
    let _ = rng;
    t as f64 * 0.01
}

/// Placeholder so the entropy line above has something to feed.
pub struct StdRng;

impl StdRng {
    /// Fixture stand-in for an entropy-seeded constructor.
    pub fn from_entropy() -> Self {
        StdRng
    }
}
