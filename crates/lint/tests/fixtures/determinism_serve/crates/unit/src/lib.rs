#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate: a serving frontend that seeds its batch formation from
//! ambient entropy instead of the seeded schedule.

/// Picks a wave size from ambient entropy — the exact regression the
/// serving determinism audit must catch.
pub fn wave_size() -> usize {
    let rng = StdRng::from_entropy();
    let _ = rng;
    8
}

/// Placeholder so the entropy line above has something to feed.
pub struct StdRng;

impl StdRng {
    /// Fixture stand-in for an entropy-seeded constructor.
    pub fn from_entropy() -> Self {
        StdRng
    }
}
