//! Fixture crate without headers.

pub fn ok() {}
