#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate.

/// Converged?
pub fn converged(delta: f64) -> bool {
    delta == 0.0
}
