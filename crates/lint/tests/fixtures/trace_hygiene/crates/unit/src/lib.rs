#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate: a non-`le-obs` crate poking the trace journal backends
//! directly instead of going through the guard macros. Every raw call
//! below must trip L7, and the `lint:allow` must NOT suppress it.

/// Drives the journal raw — three L7 findings expected in this body.
pub fn sneaky_trace(name_id: u32) {
    le_obs::trace::set_enabled(true); // lint:allow(trace-hygiene): no such escape exists
    let _guard = le_obs::trace::enter_span(name_id, true);
    le_obs::trace::mark(name_id);
}

/// The guard macros are the sanctioned surface; these must NOT fire.
pub fn sanctioned_trace() {
    let _root = le_obs::trace_root!("fixture.root");
    let _span = le_obs::trace_span!("fixture.child");
    le_obs::trace_instant!("fixture.mark");
    let ctx = le_obs::trace::current_ctx();
    let _adopted = ctx.adopt();
}

#[cfg(test)]
mod tests {
    /// Tests may reset and snapshot the journal freely.
    #[test]
    fn test_code_is_exempt() {
        le_obs::trace::reset();
        le_obs::trace::set_enabled(false);
    }
}
