#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate.

/// Adds one.
pub fn add_one(x: f64) -> f64 {
    x + 1.0
}

/// Checked head with a justified allow.
pub fn head(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    *v.first().unwrap() // lint:allow(no-panic): emptiness checked above
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        assert!((0.1_f64 + 0.2 - 0.3).abs() < 1e-12);
        Some(1).unwrap();
    }
}
