fn main() {
    // Binaries are exempt from L2 but NOT from L8: a driver panicking
    // through a typed LeError defeats the degradation ladder.
    let mut engine = Engine::default();
    let r = engine.query(&[0.0]).expect("query succeeds");
    println!("{}", r.output[0]);
}
