#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate: L8 `le-error-unwrap` findings.

/// Swallows the engine's typed error — the L8 hit (the L2 allow keeps the
/// rule isolation clean; L8 fires regardless).
pub fn bad(engine: &mut Engine, x: &[f64]) -> f64 {
    engine.query(x).unwrap().output[0] // lint:allow(no-panic): fixture isolates L8
}

/// Handled properly: no finding.
pub fn good(engine: &mut Engine, x: &[f64]) -> Option<f64> {
    engine.query(x).ok().map(|r| r.output[0])
}

/// Suppressed with the L8 escape: no finding.
pub fn allowed(engine: &mut Engine, x: &[f64]) -> f64 {
    engine.query(x).unwrap().output[0] // lint:allow(le-error-unwrap, no-panic): input validated above
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let mut engine = Engine::default();
        let _ = engine.query(&[0.0]).unwrap();
    }
}
