#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate.

/// Steps and times a fake kernel.
pub fn step() -> f64 {
    let t = std::time::Instant::now();
    t.elapsed().as_secs_f64()
}
