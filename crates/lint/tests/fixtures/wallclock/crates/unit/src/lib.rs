#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate: a non-sim orchestration crate reading the clock raw.
//! `le-core` is outside the L4 sim set, so only L6 should fire here —
//! and the `lint:allow` below must NOT suppress it.

/// Times a fake phase without going through `le-obs`.
pub fn phase_seconds() -> f64 {
    let t = std::time::Instant::now(); // lint:allow(wallclock): no such escape exists
    t.elapsed().as_secs_f64()
}
