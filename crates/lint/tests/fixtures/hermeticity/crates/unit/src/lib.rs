#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture crate.

pub fn ok() {}
