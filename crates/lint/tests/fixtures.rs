//! Integration tests: each rule against its fixture mini-workspace, the CLI
//! exit codes, and a smoke test over the real workspace.

use std::path::{Path, PathBuf};
use std::process::Command;

use le_lint::{check_workspace, Rule};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The real workspace root (two levels above this crate).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the root")
        .to_path_buf()
}

fn rules_fired(dir: &Path) -> Vec<Rule> {
    let report = check_workspace(dir).expect("fixture should scan");
    let mut rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    rules.dedup();
    rules
}

#[test]
fn clean_fixture_has_no_violations() {
    let report = check_workspace(&fixture("clean")).expect("scan");
    assert!(
        report.is_clean(),
        "clean fixture flagged:\n{}",
        report.to_text()
    );
    assert_eq!(report.manifests_scanned, 2);
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn hermeticity_fixture_flags_foreign_dep() {
    let rules = rules_fired(&fixture("hermeticity"));
    assert_eq!(rules, [Rule::Hermeticity]);
    let report = check_workspace(&fixture("hermeticity")).expect("scan");
    assert!(report.violations[0].message.contains("rand"));
}

#[test]
fn no_panic_fixture_flags_lib_but_not_bin() {
    let report = check_workspace(&fixture("no_panic")).expect("scan");
    let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, [Rule::NoPanic]);
    // The same unwrap in src/main.rs must not be flagged.
    assert!(report
        .violations
        .iter()
        .all(|v| v.file.ends_with("lib.rs")));
}

#[test]
fn float_hygiene_fixture_flags_exact_comparison() {
    assert_eq!(rules_fired(&fixture("float_hygiene")), [Rule::FloatHygiene]);
}

#[test]
fn determinism_fixture_flags_wall_clock_in_sim_crate() {
    // The sim-crate clock read now trips both the sim-scoped L4 rule and
    // the workspace-wide L6 wallclock rule.
    assert_eq!(
        rules_fired(&fixture("determinism")),
        [Rule::Determinism, Rule::WallClock]
    );
}

#[test]
fn determinism_serve_fixture_flags_ambient_entropy_in_serving_crate() {
    // The serving frontend is part of the audited sim-kernel set: an
    // entropy-seeded RNG on its batch-formation path (which would break
    // the bit-identical serve digest) must trip L4 — and only L4, since
    // no clock is read.
    assert_eq!(rules_fired(&fixture("determinism_serve")), [Rule::Determinism]);
}

#[test]
fn determinism_drift_fixture_flags_ambient_entropy_in_drift_crate() {
    // Drift schedules feed the staleness/rolling-retrain campaigns and
    // must replay byte-identically: an entropy-seeded jitter source in
    // le-drift would break the drift-campaign digest, so it must trip
    // L4 — and only L4, since no clock is read.
    assert_eq!(rules_fired(&fixture("determinism_drift")), [Rule::Determinism]);
}

#[test]
fn wallclock_fixture_flags_clock_read_despite_allow_comment() {
    let report = check_workspace(&fixture("wallclock")).expect("scan");
    let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, [Rule::WallClock], "{}", report.to_text());
    assert!(report.violations[0].message.contains("le-obs"));
}

#[test]
fn trace_hygiene_fixture_flags_raw_backends_despite_allow_comment() {
    let report = check_workspace(&fixture("trace_hygiene")).expect("scan");
    let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    // Three raw backend calls in the non-test body; the guard-macro calls
    // and the `#[cfg(test)]` reset must stay silent.
    assert_eq!(
        rules,
        [Rule::TraceHygiene, Rule::TraceHygiene, Rule::TraceHygiene],
        "{}",
        report.to_text()
    );
    assert!(report.violations[0].message.contains("le-obs"));
}

#[test]
fn lint_headers_fixture_flags_missing_headers() {
    let report = check_workspace(&fixture("lint_headers")).expect("scan");
    let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    assert_eq!(rules, [Rule::LintHeaders, Rule::LintHeaders]);
}

#[test]
fn le_error_unwrap_fixture_flags_lib_and_bin() {
    let report = check_workspace(&fixture("le_error_unwrap")).expect("scan");
    let rules: Vec<Rule> = report.violations.iter().map(|v| v.rule).collect();
    // One hit in lib.rs, one in the binary — unlike L2, drivers are not
    // exempt. The allowed line and the `#[cfg(test)]` unwrap stay silent.
    assert_eq!(
        rules,
        [Rule::LeErrorUnwrap, Rule::LeErrorUnwrap],
        "{}",
        report.to_text()
    );
    assert!(report.violations.iter().any(|v| v.file.ends_with("lib.rs")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.file.ends_with("driver.rs")));
}

#[test]
fn real_workspace_is_clean() {
    let report = check_workspace(&workspace_root()).expect("workspace scans");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.to_text()
    );
    // All 17 crates plus the root package.
    assert_eq!(report.manifests_scanned, 18);
    assert!(report.files_scanned > 50);
}

#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_le-lint");
    let clean = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("spawn le-lint");
    assert_eq!(clean.status.code(), Some(0), "clean fixture should exit 0");

    for name in [
        "hermeticity",
        "no_panic",
        "float_hygiene",
        "determinism",
        "determinism_serve",
        "determinism_drift",
        "lint_headers",
        "wallclock",
        "trace_hygiene",
        "le_error_unwrap",
    ] {
        let out = Command::new(bin)
            .args(["check", "--root"])
            .arg(fixture(name))
            .output()
            .expect("spawn le-lint");
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} fixture should exit 1, stdout:\n{}",
            String::from_utf8_lossy(&out.stdout)
        );
    }

    let bad = Command::new(bin)
        .arg("frobnicate")
        .output()
        .expect("spawn le-lint");
    assert_eq!(bad.status.code(), Some(2), "bad usage should exit 2");
}

#[test]
fn cli_json_output_is_parseable_shape() {
    let bin = env!("CARGO_BIN_EXE_le-lint");
    let out = Command::new(bin)
        .args(["check", "--format", "json", "--root"])
        .arg(fixture("no_panic"))
        .output()
        .expect("spawn le-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"no-panic\""));
    assert!(stdout.contains("\"clean\": false"));
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.trim_end().ends_with('}'));
}
