//! E1 bench: cost of evaluating the effective-speedup formula and the full
//! ratio sweep (the analytics themselves must be negligible next to any
//! simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use le_perfmodel::scaling::sweep_ratio;
use le_perfmodel::speedup::{effective_speedup, SpeedupTimes};

fn times() -> SpeedupTimes {
    SpeedupTimes {
        t_seq: 100.0,
        t_train: 10.0,
        t_learn: 0.1,
        t_lookup: 1e-3,
    }
}

fn bench_formula(c: &mut Criterion) {
    let t = times();
    c.bench_function("e1/formula_single_eval", |b| {
        b.iter(|| effective_speedup(black_box(&t), black_box(1e6), black_box(100.0)).unwrap())
    });
    c.bench_function("e1/ratio_sweep_8_decades", |b| {
        b.iter(|| sweep_ratio(black_box(&t), 100.0, -2, 6, 8).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_formula
}
criterion_main!(benches);
