//! E1 bench: cost of evaluating the effective-speedup formula and the full
//! ratio sweep (the analytics themselves must be negligible next to any
//! simulation).

use std::hint::black_box;

use le_bench::timing::Harness;
use le_perfmodel::scaling::sweep_ratio;
use le_perfmodel::speedup::{effective_speedup, SpeedupTimes};

fn times() -> SpeedupTimes {
    SpeedupTimes {
        t_seq: 100.0,
        t_train: 10.0,
        t_learn: 0.1,
        t_lookup: 1e-3,
    }
}

fn main() {
    let t = times();
    let h = Harness::new();
    h.bench("e1/formula_single_eval", || {
        effective_speedup(black_box(&t), black_box(1e6), black_box(100.0)).unwrap()
    });
    h.bench("e1/ratio_sweep_8_decades", || {
        sweep_ratio(black_box(&t), 100.0, -2, 6, 8).unwrap()
    });
    h.finish("effective_speedup");
}
