//! E9 bench: the fine diffusion burst versus its learned analogue — the
//! short-circuiting speedup of §II-B.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_tissue::surrogate_grid::{SurrogateTrainConfig, TransportSurrogate};
use le_tissue::vt::{TissueConfig, TissueModel};

fn main() {
    let config = TissueConfig {
        width: 32,
        height: 32,
        fine_steps_per_tissue_step: 40,
        initial_cells: 24,
        ..Default::default()
    };
    let model = TissueModel::new(config, BENCH_SEED).expect("valid");
    let solver = *model.solver();
    let (sources, _) = model.current_sources();
    let field = model.nutrient.clone();

    let h = Harness::new();
    h.bench("e9/full_fine_burst_40_steps", || {
        solver.advance(black_box(&field), black_box(&sources), 40).unwrap()
    });

    let surrogate = TransportSurrogate::train_on_trajectories(
        &config,
        4,
        &[1, 2, 3],
        30,
        0.3,
        &SurrogateTrainConfig {
            hidden: vec![96],
            epochs: 80,
            seed: BENCH_SEED,
            ..Default::default()
        },
    )
    .expect("trains");
    h.bench("e9/surrogate_burst", || {
        surrogate.advance(black_box(&field), black_box(&sources)).unwrap()
    });
    h.finish("tissue");
}
