//! E7 bench: one SGD epoch (and one k-means Lloyd sweep) under each of the
//! four synchronization models at a fixed thread count — the
//! synchronization *overhead* comparison of §III-A.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_mlkernels::kmeans::{synthetic_blobs, train as kmeans_train, KmeansConfig};
use le_mlkernels::sgd::{synthetic_dataset, train as sgd_train, SgdConfig};
use le_mlkernels::SyncModel;

fn main() {
    let h = Harness::new();
    let (x, y, _) = synthetic_dataset(2000, 16, 0.05, BENCH_SEED);
    for model in SyncModel::ALL {
        h.bench(&format!("e7_sgd_epoch/{}", model.name()), || {
            sgd_train(
                black_box(&x),
                black_box(&y),
                model,
                &SgdConfig {
                    epochs: 1,
                    threads: 4,
                    seed: BENCH_SEED,
                    ..Default::default()
                },
            )
            .unwrap()
        });
    }

    let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-5.0, 5.0], vec![5.0, -5.0]];
    let data = synthetic_blobs(500, &centers, 0.4, BENCH_SEED);
    for model in SyncModel::ALL {
        h.bench(&format!("e7_kmeans_sweep/{}", model.name()), || {
            kmeans_train(
                black_box(&data),
                model,
                &KmeansConfig {
                    k: 4,
                    iterations: 1,
                    threads: 4,
                    seed: BENCH_SEED,
                },
            )
            .unwrap()
        });
    }

    bench_collectives(&h);
}

fn bench_collectives(h: &Harness) {
    use le_linalg::Rng;
    use le_mlkernels::collective::{allreduce_flat, allreduce_ring, allreduce_tree};
    // 8 workers × 100k-element model vector (a realistic gradient size).
    let mut rng = Rng::new(BENCH_SEED);
    let inputs: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..100_000).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
        .collect();
    h.bench("e7_allreduce_8x100k/flat", || allreduce_flat(black_box(&inputs)));
    h.bench("e7_allreduce_8x100k/tree", || allreduce_tree(black_box(&inputs)));
    h.bench("e7_allreduce_8x100k/ring", || allreduce_ring(black_box(&inputs)));
    h.finish("sync_models");
}
