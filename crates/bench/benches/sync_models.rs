//! E7 bench: one SGD epoch (and one k-means Lloyd sweep) under each of the
//! four synchronization models at a fixed thread count — the
//! synchronization *overhead* comparison of §III-A.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use le_bench::BENCH_SEED;
use le_mlkernels::kmeans::{synthetic_blobs, train as kmeans_train, KmeansConfig};
use le_mlkernels::sgd::{synthetic_dataset, train as sgd_train, SgdConfig};
use le_mlkernels::SyncModel;

fn bench_sync_models(c: &mut Criterion) {
    let (x, y, _) = synthetic_dataset(2000, 16, 0.05, BENCH_SEED);
    let mut group = c.benchmark_group("e7_sgd_epoch");
    for model in SyncModel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &model,
            |b, &model| {
                b.iter(|| {
                    sgd_train(
                        black_box(&x),
                        black_box(&y),
                        model,
                        &SgdConfig {
                            epochs: 1,
                            threads: 4,
                            seed: BENCH_SEED,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();

    let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-5.0, 5.0], vec![5.0, -5.0]];
    let data = synthetic_blobs(500, &centers, 0.4, BENCH_SEED);
    let mut group = c.benchmark_group("e7_kmeans_sweep");
    for model in SyncModel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &model,
            |b, &model| {
                b.iter(|| {
                    kmeans_train(
                        black_box(&data),
                        model,
                        &KmeansConfig {
                            k: 4,
                            iterations: 1,
                            threads: 4,
                            seed: BENCH_SEED,
                        },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_collectives(c: &mut Criterion) {
    use le_mlkernels::collective::{allreduce_flat, allreduce_ring, allreduce_tree};
    use le_linalg::Rng;
    // 8 workers × 100k-element model vector (a realistic gradient size).
    let mut rng = Rng::new(BENCH_SEED);
    let inputs: Vec<Vec<f64>> = (0..8)
        .map(|_| (0..100_000).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
        .collect();
    let mut group = c.benchmark_group("e7_allreduce_8x100k");
    group.bench_function("flat", |b| b.iter(|| allreduce_flat(black_box(&inputs))));
    group.bench_function("tree", |b| b.iter(|| allreduce_tree(black_box(&inputs))));
    group.bench_function("ring", |b| b.iter(|| allreduce_ring(black_box(&inputs))));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sync_models, bench_collectives
}
criterion_main!(benches);
