//! E6 bench: reference (DFT stand-in) energy versus Behler–Parrinello NN
//! energy at increasing cluster sizes — the ">1000x faster" claim's shape:
//! the gap grows with system size and reference fidelity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use le_bench::BENCH_SEED;
use le_linalg::Rng;
use le_mdsim::bp::{generate_training_set, BpPotential, SymmetryFunctions};
use le_mdsim::reference::{random_cluster, ReferencePotential};
use le_nn::TrainConfig;

fn bench_potentials(c: &mut Criterion) {
    let reference = ReferencePotential::default();
    let sf = SymmetryFunctions::standard(reference.rc);
    let data = generate_training_set(&sf, &reference, 120, 10, BENCH_SEED);
    let pot = BpPotential::train(
        sf,
        &data,
        &[32, 32],
        TrainConfig {
            epochs: 100,
            ..Default::default()
        },
        BENCH_SEED,
    )
    .expect("trains");

    let mut group = c.benchmark_group("e6");
    for &n in &[8usize, 16, 32] {
        let mut rng = Rng::new(BENCH_SEED ^ n as u64);
        let pos = random_cluster(n, reference.r0, 1.3, &mut rng);
        group.bench_with_input(BenchmarkId::new("reference_energy", n), &pos, |b, pos| {
            b.iter(|| reference.energy(black_box(pos)))
        });
        group.bench_with_input(BenchmarkId::new("bp_nn_energy", n), &pos, |b, pos| {
            b.iter(|| pot.energy(black_box(pos)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_potentials
}
criterion_main!(benches);
