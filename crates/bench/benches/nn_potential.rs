//! E6 bench: reference (DFT stand-in) energy versus Behler–Parrinello NN
//! energy at increasing cluster sizes — the ">1000x faster" claim's shape:
//! the gap grows with system size and reference fidelity.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_linalg::Rng;
use le_mdsim::bp::{generate_training_set, BpPotential, SymmetryFunctions};
use le_mdsim::reference::{random_cluster, ReferencePotential};
use le_nn::TrainConfig;

fn main() {
    let reference = ReferencePotential::default();
    let sf = SymmetryFunctions::standard(reference.rc);
    let data = generate_training_set(&sf, &reference, 120, 10, BENCH_SEED);
    let pot = BpPotential::train(
        sf,
        &data,
        &[32, 32],
        TrainConfig {
            epochs: 100,
            ..Default::default()
        },
        BENCH_SEED,
    )
    .expect("trains");

    let h = Harness::new();
    for &n in &[8usize, 16, 32] {
        let mut rng = Rng::new(BENCH_SEED ^ n as u64);
        let pos = random_cluster(n, reference.r0, 1.3, &mut rng);
        h.bench(&format!("e6/reference_energy/{n}"), || {
            reference.energy(black_box(&pos))
        });
        h.bench(&format!("e6/bp_nn_energy/{n}"), || {
            pot.energy(black_box(&pos))
        });
    }
    h.finish("nn_potential");
}
