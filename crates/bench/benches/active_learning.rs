//! E5 bench: the active-learning loop's primitives — one surrogate refit
//! and one pool-scoring pass (MC-dropout over every candidate).

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::{nano_dataset, nano_surrogate, BENCH_SEED};
use le_uq::{select_batch, AcquisitionStrategy};

fn main() {
    let (params, outputs) = nano_dataset(48, BENCH_SEED);
    let h = Harness::new();
    h.bench("e5/surrogate_refit_48_runs", || {
        nano_surrogate(black_box(&params), black_box(&outputs), 60, BENCH_SEED)
    });

    let mut surrogate = nano_surrogate(&params, &outputs, 60, BENCH_SEED);
    let pool: Vec<Vec<f64>> = {
        let mut rng = le_linalg::Rng::new(BENCH_SEED ^ 1);
        (0..200)
            .map(|_| {
                le_mdsim::nanoconfinement::NanoParams::sample(&mut rng)
                    .to_features()
                    .to_vec()
            })
            .collect()
    };
    h.bench("e5/score_200_candidates_max_uncertainty", || {
        select_batch(
            &mut surrogate,
            black_box(&pool),
            16,
            AcquisitionStrategy::MaxUncertainty,
            BENCH_SEED,
        )
    });
    h.finish("active_learning");
}
