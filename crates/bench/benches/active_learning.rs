//! E5 bench: the active-learning loop's primitives — one surrogate refit
//! and one pool-scoring pass (MC-dropout over every candidate).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use le_bench::{nano_dataset, nano_surrogate, BENCH_SEED};
use le_uq::{select_batch, AcquisitionStrategy};

fn bench_active(c: &mut Criterion) {
    let (params, outputs) = nano_dataset(48, BENCH_SEED);
    c.bench_function("e5/surrogate_refit_48_runs", |b| {
        b.iter(|| nano_surrogate(black_box(&params), black_box(&outputs), 60, BENCH_SEED))
    });

    let mut surrogate = nano_surrogate(&params, &outputs, 60, BENCH_SEED);
    let pool: Vec<Vec<f64>> = {
        let mut rng = le_linalg::Rng::new(BENCH_SEED ^ 1);
        (0..200)
            .map(|_| {
                le_mdsim::nanoconfinement::NanoParams::sample(&mut rng)
                    .to_features()
                    .to_vec()
            })
            .collect()
    };
    c.bench_function("e5/score_200_candidates_max_uncertainty", |b| {
        b.iter(|| {
            select_batch(
                &mut surrogate,
                black_box(&pool),
                16,
                AcquisitionStrategy::MaxUncertainty,
                BENCH_SEED,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_active
}
criterion_main!(benches);
