//! E3 bench: expensive stability search versus one autotuner suggestion —
//! the MLautotuning amortization (paper ref [9]).

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_linalg::Rng;
use le_mdsim::nanoconfinement::{NanoParams, SimConfig};
use le_mdsim::NanoSim;
use learning_everywhere::autotune::{label_examples, Autotuner, TuningProblem};
use learning_everywhere::surrogate::SurrogateConfig;

struct DtSearch;

impl DtSearch {
    const GRID: [f64; 5] = [0.03, 0.02, 0.015, 0.01, 0.005];
}

impl TuningProblem for DtSearch {
    fn param_dim(&self) -> usize {
        5
    }
    fn config_dim(&self) -> usize {
        1
    }
    fn search_optimal(&self, params: &[f64]) -> learning_everywhere::Result<Vec<f64>> {
        let p = NanoParams::from_features(params)
            .map_err(|e| learning_everywhere::LeError::Simulation(e.to_string()))?;
        for &dt in &Self::GRID {
            let sim = NanoSim::new(SimConfig {
                dt,
                equil_steps: 100,
                prod_steps: 300,
                ..SimConfig::fast()
            });
            if sim.run(&p, 5).is_ok() {
                return Ok(vec![dt]);
            }
        }
        Ok(vec![Self::GRID[4]])
    }
    fn safe_default(&self) -> Vec<f64> {
        vec![Self::GRID[4]]
    }
}

fn main() {
    let mut rng = Rng::new(BENCH_SEED);
    let probe = NanoParams::sample(&mut rng).to_features().to_vec();
    let h = Harness::new();
    h.bench("e3/stability_search_per_point", || {
        DtSearch.search_optimal(black_box(&probe)).unwrap()
    });

    let params: Vec<Vec<f64>> = (0..48)
        .map(|_| NanoParams::sample(&mut rng).to_features().to_vec())
        .collect();
    let examples = label_examples(&DtSearch, &params).expect("labels");
    let mut tuner = Autotuner::fit(
        &examples,
        DtSearch.safe_default(),
        &SurrogateConfig {
            hidden: vec![30, 48],
            epochs: 150,
            seed: BENCH_SEED,
            ..Default::default()
        },
        0.02,
    )
    .expect("fits");
    h.bench("e3/autotuner_suggestion_per_point", || {
        tuner.suggest(black_box(&probe)).unwrap()
    });
    h.finish("autotune");
}
