//! E8 bench: discrete-event simulation throughput per scheduling policy on
//! the mixed learnt/unlearnt workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use le_bench::BENCH_SEED;
use le_sched::{simulate, Policy, Workload, WorkloadConfig};

fn bench_scheduling(c: &mut Criterion) {
    let workload = Workload::generate(
        &WorkloadConfig {
            n_tasks: 5000,
            ..Default::default()
        },
        BENCH_SEED,
    )
    .expect("valid");
    let policies = [
        Policy::SingleQueue,
        Policy::DedicatedSplit { learnt_workers: 1 },
        Policy::ShortestQueue,
        Policy::WorkStealing,
        Policy::LearntPriority,
    ];
    let mut group = c.benchmark_group("e8_des_5000_tasks");
    for policy in policies {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| b.iter(|| simulate(black_box(&workload), 8, policy).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scheduling
}
criterion_main!(benches);
