//! E8 bench: discrete-event simulation throughput per scheduling policy on
//! the mixed learnt/unlearnt workload.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_sched::{simulate, Policy, Workload, WorkloadConfig};

fn main() {
    let workload = Workload::generate(
        &WorkloadConfig {
            n_tasks: 5000,
            ..Default::default()
        },
        BENCH_SEED,
    )
    .expect("valid");
    let policies = [
        Policy::SingleQueue,
        Policy::DedicatedSplit { learnt_workers: 1 },
        Policy::ShortestQueue,
        Policy::WorkStealing,
        Policy::LearntPriority,
    ];
    let h = Harness::new();
    for policy in policies {
        h.bench(&format!("e8_des_5000_tasks/{}", policy.name()), || {
            simulate(black_box(&workload), 8, policy).unwrap()
        });
    }
    h.finish("scheduling");
}
