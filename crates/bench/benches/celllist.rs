//! Design-choice ablation: O(N) cell-list neighbor search versus the O(N²)
//! all-pairs loop, across system sizes — the crossover justifies the cell
//! list in `le-mdsim`.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_linalg::Rng;
use le_mdsim::celllist::CellList;
use le_mdsim::system::SlabBox;

fn positions(n: usize, bbox: &SlabBox, seed: u64) -> Vec<[f64; 3]> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|_| {
            [
                rng.uniform_in(0.0, bbox.lx),
                rng.uniform_in(0.0, bbox.ly),
                rng.uniform_in(0.01, bbox.h - 0.01),
            ]
        })
        .collect()
}

fn main() {
    let cutoff = 1.0;
    let h = Harness::new();
    for &n in &[100usize, 400, 1600] {
        // Constant density: box grows with N.
        let side = (n as f64 / 2.0).cbrt().max(3.0 * cutoff);
        let bbox = SlabBox::new(side, side, side).expect("valid");
        let pos = positions(n, &bbox, 42);
        h.bench(&format!("ablation_neighbor_search/cell_list/{n}"), || {
            let cl = CellList::build(bbox, cutoff, black_box(&pos));
            let mut count = 0usize;
            cl.for_each_pair_dist(&pos, |_i, _j, _d, r2| {
                if r2 <= cutoff * cutoff {
                    count += 1;
                }
            });
            count
        });
        h.bench(&format!("ablation_neighbor_search/all_pairs/{n}"), || {
            let mut count = 0usize;
            for i in 0..pos.len() {
                for j in i + 1..pos.len() {
                    let d = bbox.min_image(&pos[i], &pos[j]);
                    if d[0] * d[0] + d[1] * d[1] + d[2] * d[2] <= cutoff * cutoff {
                        count += 1;
                    }
                }
            }
            count
        });
    }
    h.finish("celllist");
}
