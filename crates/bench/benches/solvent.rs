//! E10 bench: explicit-solvent step cost versus the solvent-free step with
//! the learned PMF (the 80–90% cost-removal claim of §II-C2).

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_linalg::Rng;
use le_mdsim::solvent::{pmf_from_rdf, PmfPotential, SolvatedConfig, SolvatedSystem};

fn main() {
    let cfg = SolvatedConfig::small();
    let h = Harness::new();
    h.bench("e10/explicit_solvent_100_steps", || {
        let mut rng = Rng::new(BENCH_SEED);
        let mut sys = SolvatedSystem::new(black_box(cfg), &mut rng).unwrap();
        sys.run(100, 0, 50, 20, 2.0, &mut rng).unwrap()
    });

    // Train the PMF once from a reference explicit run, then bench its
    // evaluation (the replacement for all solvent work).
    let mut rng = Rng::new(BENCH_SEED ^ 1);
    let mut sys = SolvatedSystem::new(cfg, &mut rng).expect("builds");
    let rdf = sys.run(2000, 500, 10, 24, 2.0, &mut rng).expect("stable");
    let samples = pmf_from_rdf(&rdf, 5);
    if samples.len() >= 8 {
        let pmf = PmfPotential::train(&samples, BENCH_SEED).expect("trains");
        h.bench("e10/pmf_force_eval", || pmf.force(black_box(0.8)));
    }
    h.finish("solvent");
}
