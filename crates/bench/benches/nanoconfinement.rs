//! E2 bench: the two sides of the MLaroundHPC trade — one full MD
//! simulation versus one surrogate lookup (and one MC-dropout UQ-gated
//! lookup). The ratio of these is the engine's asymptotic speedup.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::{nano_dataset, nano_surrogate, BENCH_SEED};
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};

fn main() {
    let sim = NanoSim::new(SimConfig::fast());
    let probe = NanoParams {
        h: 3.0,
        z_p: 1,
        z_n: 1,
        c: 0.5,
        d: 0.6,
    };
    let h = Harness::new();
    h.bench("e2/md_simulation_fast_preset", || {
        sim.run(black_box(&probe), BENCH_SEED).unwrap()
    });

    let (params, outputs) = nano_dataset(64, BENCH_SEED);
    let mut surrogate = nano_surrogate(&params, &outputs, 100, BENCH_SEED);
    let feats = probe.to_features();
    h.bench("e2/surrogate_lookup", || {
        surrogate.predict(black_box(&feats)).unwrap()
    });
    h.bench("e2/surrogate_lookup_with_uq_gate", || {
        surrogate.predict_with_uncertainty(black_box(&feats)).unwrap()
    });
    h.finish("nanoconfinement");
}
