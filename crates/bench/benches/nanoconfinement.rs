//! E2 bench: the two sides of the MLaroundHPC trade — one full MD
//! simulation versus one surrogate lookup (and one MC-dropout UQ-gated
//! lookup). The ratio of these is the engine's asymptotic speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use le_bench::{nano_dataset, nano_surrogate, BENCH_SEED};
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};

fn bench_sim_vs_lookup(c: &mut Criterion) {
    let sim = NanoSim::new(SimConfig::fast());
    let probe = NanoParams {
        h: 3.0,
        z_p: 1,
        z_n: 1,
        c: 0.5,
        d: 0.6,
    };
    c.bench_function("e2/md_simulation_fast_preset", |b| {
        b.iter(|| sim.run(black_box(&probe), BENCH_SEED).unwrap())
    });

    let (params, outputs) = nano_dataset(64, BENCH_SEED);
    let mut surrogate = nano_surrogate(&params, &outputs, 100, BENCH_SEED);
    let feats = probe.to_features();
    c.bench_function("e2/surrogate_lookup", |b| {
        b.iter(|| surrogate.predict(black_box(&feats)).unwrap())
    });
    c.bench_function("e2/surrogate_lookup_with_uq_gate", |b| {
        b.iter(|| surrogate.predict_with_uncertainty(black_box(&feats)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sim_vs_lookup
}
criterion_main!(benches);
