//! E4 bench: the DEFSI pipeline's primitive costs — one stochastic SEIR
//! season, one surveillance observation, one two-branch forecast.

use std::hint::black_box;

use le_bench::timing::Harness;
use le_bench::BENCH_SEED;
use le_netdyn::defsi::{generate_synthetic_seasons, DefsiTrainConfig, TwoBranchNet};
use le_netdyn::seir::{simulate, SeirConfig};
use le_netdyn::surveillance::Surveillance;
use le_netdyn::{Population, PopulationConfig};

fn main() {
    let pop = Population::generate(
        &PopulationConfig {
            county_sizes: vec![300; 6],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        },
        BENCH_SEED,
    )
    .expect("valid");
    let cfg = SeirConfig {
        transmissibility: 0.08,
        days: 84,
        ..Default::default()
    };
    let h = Harness::new();
    h.bench("e4/seir_season_simulation", || {
        simulate(black_box(&pop), black_box(&cfg), BENCH_SEED).unwrap()
    });

    let seasons = generate_synthetic_seasons(
        &pop,
        &cfg,
        &Surveillance::default(),
        0.08,
        0.01,
        12,
        BENCH_SEED,
    )
    .expect("seasons");
    let net = TwoBranchNet::train(
        &seasons,
        6,
        &DefsiTrainConfig {
            epochs: 40,
            ..Default::default()
        },
    )
    .expect("trains");
    let observed: Vec<f64> = seasons[0].observed_state.clone();
    h.bench("e4/defsi_forecast_call", || {
        net.forecast_counties(black_box(&observed[..6]), 12).unwrap()
    });
    h.finish("defsi");
}
