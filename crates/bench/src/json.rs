//! A minimal JSON reader for the workspace's own artifacts.
//!
//! The harness writes `BENCH_*.json` and `le-obs` writes `OBS_*.json`;
//! this module parses them back so tests can round-trip the documents
//! without an external JSON dependency. It accepts standard JSON (objects,
//! arrays, strings with the common escapes, numbers, booleans, null) —
//! enough for any document this workspace produces.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object (None for other variants / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a usize (rejects negatives and fractions).
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= usize::MAX as f64 { // lint:allow(float-hygiene): integrality check, not a tolerance comparison
            Some(n as usize)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a JSON document. Returns `None` on any syntax error or trailing
/// garbage.
pub fn parse(doc: &str) -> Option<Value> {
    let bytes = doc.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => parse_obj(b, pos),
        b'[' => parse_arr(b, pos),
        b'"' => parse_str(b, pos).map(Value::Str),
        b't' => parse_lit(b, pos, "true", Value::Bool(true)),
        b'f' => parse_lit(b, pos, "false", Value::Bool(false)),
        b'n' => parse_lit(b, pos, "null", Value::Null),
        _ => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Option<Value> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Some(v)
    } else {
        None
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()?
        .parse::<f64>()
        .ok()
        .map(Value::Num)
}

fn parse_str(b: &[u8], pos: &mut usize) -> Option<String> {
    if *b.get(*pos)? != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let ch = rest.chars().next()?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Option<Value> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b']' {
        *pos += 1;
        return Some(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Option<Value> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(b, pos);
    if *b.get(*pos)? == b'}' {
        *pos += 1;
        return Some(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if *b.get(*pos)? != b':' {
            return None;
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Value::Obj(members));
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Some(Value::Null));
        assert_eq!(parse("true"), Some(Value::Bool(true)));
        assert_eq!(parse("false"), Some(Value::Bool(false)));
        assert_eq!(parse("-1.5e3"), Some(Value::Num(-1500.0)));
        assert_eq!(parse("\"hi\""), Some(Value::Str("hi".into())));
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": {"d": null}}"#;
        let v = parse(doc).unwrap();
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(|c| c.get("d")), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "\"unterminated", "1 2", "{]}"] {
            assert_eq!(parse(bad), None, "should reject {bad:?}");
        }
    }

    #[test]
    fn as_usize_rejects_non_integers() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]"), Some(Value::Arr(vec![])));
        assert_eq!(parse("{}"), Some(Value::Obj(vec![])));
    }
}
