//! Minimal plain-`fn main()` timing harness (the workspace is hermetic, so
//! the Criterion dependency is gone; `cargo bench` runs these directly).
//!
//! Methodology: one warmup call calibrates a batch size targeting ~5 ms per
//! batch, then `samples` batches are timed and the per-iteration median,
//! minimum, and maximum are reported. Medians make the numbers robust to
//! scheduler noise without Criterion's full bootstrap machinery.
//!
//! CLI flags (passed after `--`, e.g. `cargo bench -p le-bench --bench
//! celllist -- --json --samples 3`; unknown flags are ignored so harness
//! arguments injected by cargo pass through):
//!
//! * `--json` — record every measurement and have [`Harness::finish`] write
//!   `results/BENCH_<name>.json` at the workspace root.
//! * `--samples N` — timed batches per benchmark (default 10).

use std::cell::RefCell;
use std::hint::black_box;
use std::time::Instant;

/// One recorded measurement (all values are seconds per iteration).
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark entry name, e.g. `e6/reference_energy/16`.
    pub name: String,
    /// Median of the per-sample means.
    pub median_s: f64,
    /// Fastest sample.
    pub min_s: f64,
    /// Slowest sample.
    pub max_s: f64,
    /// Iterations per timed batch.
    pub iters: usize,
}

/// A named group of timing measurements.
pub struct Harness {
    samples: usize,
    json: bool,
    recorded: RefCell<Vec<Measurement>>,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Harness configured from the process arguments (`--json`,
    /// `--samples N`); defaults to 10 samples, plain text output.
    pub fn new() -> Self {
        let mut samples = 10usize;
        let mut json = false;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--json" => json = true,
                "--samples" => {
                    if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                        samples = n.max(1);
                    }
                }
                // cargo's libtest shim passes `--bench`; ignore it and
                // anything else we don't recognize.
                _ => {}
            }
        }
        Self {
            samples,
            json,
            recorded: RefCell::new(Vec::new()),
        }
    }

    /// Harness taking `samples` timed batches per benchmark, ignoring the
    /// process arguments (used by tests).
    pub fn with_samples(samples: usize) -> Self {
        Self::with_samples_json(samples, false)
    }

    /// Like [`Harness::with_samples`], with JSON output set explicitly
    /// (used by tests that exercise the writer).
    pub fn with_samples_json(samples: usize, json: bool) -> Self {
        Self {
            samples: samples.max(1),
            json,
            recorded: RefCell::new(Vec::new()),
        }
    }

    /// Whether `--json` was requested.
    pub fn json_mode(&self) -> bool {
        self.json
    }

    /// Time `f`, printing `name: median (min … max) per iter`.
    /// Returns the median seconds per iteration.
    pub fn bench<R, F: FnMut() -> R>(&self, name: &str, mut f: F) -> f64 {
        // Warmup + calibration: aim for ~5 ms batches, at least 1 iter.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((5e-3 / once) as usize).clamp(1, 100_000);
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        // Fold the per-sample batch times into the observability registry
        // so every bench's OBS snapshot carries its own entries alongside
        // whatever spans the benched code recorded.
        let span = le_obs::global().span(&format!("bench.{name}"));
        for &s in &per_iter {
            span.record_ns((s * iters as f64 * 1e9) as u64);
        }
        println!(
            "{name:<48} {} ({} … {}) × {iters} iters/sample",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max)
        );
        self.recorded.borrow_mut().push(Measurement {
            name: name.to_string(),
            median_s: median,
            min_s: min,
            max_s: max,
            iters,
        });
        median
    }

    /// Record an externally timed measurement — e.g. an interleaved A/B
    /// comparison the bench binary drives itself with fixed iteration
    /// counts — so it lands in the printed table, the observability
    /// registry, and the `--json` document next to [`Harness::bench`]
    /// entries. `per_round` holds one seconds-per-iteration sample per
    /// round; median/min/max follow the same convention as `bench`.
    /// Returns the median (0.0 for an empty sample set, which records
    /// nothing).
    pub fn record(&self, name: &str, per_round: &[f64], iters: usize) -> f64 {
        if per_round.is_empty() {
            return 0.0;
        }
        let mut sorted = per_round.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        let span = le_obs::global().span(&format!("bench.{name}"));
        for &s in &sorted {
            span.record_ns((s * iters as f64 * 1e9) as u64);
        }
        println!(
            "{name:<48} {} ({} … {}) × {iters} iters/round",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max)
        );
        self.recorded.borrow_mut().push(Measurement {
            name: name.to_string(),
            median_s: median,
            min_s: min,
            max_s: max,
            iters,
        });
        median
    }

    /// Measurements recorded so far, in `bench` call order.
    pub fn measurements(&self) -> Vec<Measurement> {
        self.recorded.borrow().clone()
    }

    /// In `--json` mode, write every recorded measurement to
    /// `results/BENCH_<name>.json` at the workspace root, plus the global
    /// observability snapshot as `results/OBS_bench_<name>.json` (whatever
    /// spans/counters the benched code recorded); otherwise a no-op.
    /// IO failures are reported on stderr, never panicked on.
    pub fn finish(&self, name: &str) {
        if !self.json {
            return;
        }
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        let path = format!("{dir}/BENCH_{name}.json");
        let body = render_json(name, self.samples, &self.recorded.borrow());
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path}");
        }
        match le_obs::write_snapshot(&format!("bench_{name}")) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("warning: could not write OBS snapshot for {name}: {e}"),
        }
    }
}

/// A `BENCH_*.json` document read back through [`parse_bench_json`].
#[derive(Debug, Clone)]
pub struct BenchDoc {
    /// The bench group name (`"bench"` field).
    pub bench: String,
    /// Timed batches per entry (`"samples"` field).
    pub samples: usize,
    /// The recorded measurements, in file order.
    pub entries: Vec<Measurement>,
}

/// Parse a document produced by the `--json` writer back into its
/// measurements. Returns `None` if the document is not valid JSON or does
/// not have the `BENCH_*.json` shape.
pub fn parse_bench_json(doc: &str) -> Option<BenchDoc> {
    let v = crate::json::parse(doc)?;
    let bench = v.get("bench")?.as_str()?.to_string();
    let samples = v.get("samples")?.as_usize()?;
    let mut entries = Vec::new();
    for e in v.get("entries")?.as_arr()? {
        entries.push(Measurement {
            name: e.get("name")?.as_str()?.to_string(),
            median_s: e.get("median_s")?.as_f64()?,
            min_s: e.get("min_s")?.as_f64()?,
            max_s: e.get("max_s")?.as_f64()?,
            iters: e.get("iters")?.as_usize()?,
        });
    }
    Some(BenchDoc {
        bench,
        samples,
        entries,
    })
}

/// Render the measurement set as a small self-contained JSON document.
fn render_json(name: &str, samples: usize, entries: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{}\",\n", escape(name)));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"entries\": [\n");
    for (k, m) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_s\": {:e}, \"min_s\": {:e}, \"max_s\": {:e}, \"iters\": {}}}{}\n",
            escape(&m.name),
            m.median_s,
            m.min_s,
            m.max_s,
            m.iters,
            if k + 1 < entries.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escape a string for a JSON literal (names are plain ASCII identifiers,
/// but quotes and backslashes must never corrupt the document).
fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Human-readable seconds.
fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_median() {
        let h = Harness::with_samples(3);
        let m = h.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(m > 0.0);
    }

    #[test]
    fn bench_records_measurements() {
        let h = Harness::with_samples(2);
        h.bench("a", || 1u64 + 1);
        h.bench("b", || 2u64 + 2);
        let ms = h.measurements();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].name, "a");
        assert_eq!(ms[1].name, "b");
        assert!(ms.iter().all(|m| m.min_s <= m.median_s && m.median_s <= m.max_s));
    }

    #[test]
    fn record_reports_median_of_rounds() {
        let h = Harness::with_samples(1);
        let med = h.record("ext/ab", &[3.0e-6, 1.0e-6, 2.0e-6], 100);
        assert_eq!(med, 2.0e-6);
        let ms = h.measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].name, "ext/ab");
        assert_eq!(ms[0].min_s, 1.0e-6);
        assert_eq!(ms[0].max_s, 3.0e-6);
        assert_eq!(ms[0].iters, 100);
        assert_eq!(h.record("ext/empty", &[], 1), 0.0);
        assert_eq!(h.measurements().len(), 1, "empty sample set records nothing");
    }

    #[test]
    fn finish_without_json_is_a_noop() {
        let h = Harness::with_samples(1);
        h.bench("c", || 0u64);
        h.finish("unit_test_noop"); // must not write anything or panic
        assert!(!h.json_mode());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let entries = vec![
            Measurement {
                name: "grp/one".into(),
                median_s: 1.5e-6,
                min_s: 1.0e-6,
                max_s: 2.0e-6,
                iters: 100,
            },
            Measurement {
                name: "grp/\"two\"".into(),
                median_s: 3.0e-3,
                min_s: 2.5e-3,
                max_s: 3.5e-3,
                iters: 2,
            },
        ];
        let doc = render_json("demo", 10, &entries);
        assert!(doc.contains("\"bench\": \"demo\""));
        assert!(doc.contains("\"samples\": 10"));
        assert!(doc.contains("grp/one"));
        assert!(doc.contains("\\\"two\\\""));
        // Exactly one comma between the two entries, none trailing.
        assert_eq!(doc.matches("},\n").count(), 1);
        assert!(!doc.contains(",\n  ]"));
    }

    #[test]
    fn parse_round_trips_rendered_json() {
        let entries = vec![
            Measurement {
                name: "grp/one".into(),
                median_s: 1.5e-6,
                min_s: 1.0e-6,
                max_s: 2.0e-6,
                iters: 100,
            },
            Measurement {
                name: "grp/\"two\"".into(),
                median_s: 3.0e-3,
                min_s: 2.5e-3,
                max_s: 3.5e-3,
                iters: 2,
            },
        ];
        let doc = parse_bench_json(&render_json("demo", 7, &entries)).unwrap();
        assert_eq!(doc.bench, "demo");
        assert_eq!(doc.samples, 7);
        assert_eq!(doc.entries.len(), 2);
        for (orig, back) in entries.iter().zip(doc.entries.iter()) {
            assert_eq!(orig.name, back.name);
            assert_eq!(orig.iters, back.iters);
            assert_eq!(orig.median_s.to_bits(), back.median_s.to_bits());
            assert_eq!(orig.min_s.to_bits(), back.min_s.to_bits());
            assert_eq!(orig.max_s.to_bits(), back.max_s.to_bits());
        }
    }

    #[test]
    fn written_bench_json_round_trips_from_disk() {
        let h = Harness::with_samples_json(2, true);
        h.bench("rt/a", || (0..64u64).sum::<u64>());
        h.bench("rt/b", || (0..32u64).product::<u64>());
        let name = "unit_roundtrip";
        h.finish(name);
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
        let path = format!("{dir}/BENCH_{name}.json");
        let body = std::fs::read_to_string(&path).unwrap();
        let doc = parse_bench_json(&body).unwrap();
        assert_eq!(doc.bench, name);
        assert_eq!(doc.entries.len(), 2);
        assert_eq!(doc.entries[0].name, "rt/a");
        assert_eq!(doc.entries[1].name, "rt/b");
        for e in &doc.entries {
            assert!(
                e.min_s <= e.median_s && e.median_s <= e.max_s,
                "ordering violated in {e:?}"
            );
            assert!(e.min_s > 0.0 && e.iters >= 1);
        }
        // finish() must also have dropped an OBS snapshot next to it.
        let obs_path = format!("{dir}/OBS_bench_{name}.json");
        let obs_body = std::fs::read_to_string(&obs_path).unwrap();
        assert!(crate::json::parse(&obs_body).is_some(), "OBS snapshot must be valid JSON");
        for p in [path, obs_path.clone(), obs_path.replace(".json", ".txt")] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn parse_rejects_wrong_shape() {
        assert!(parse_bench_json("not json").is_none());
        assert!(parse_bench_json("{\"bench\": \"x\"}").is_none());
        assert!(
            parse_bench_json("{\"bench\": \"x\", \"samples\": 1, \"entries\": [{}]}").is_none()
        );
    }

    #[test]
    fn fmt_time_ranges() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
