//! Minimal plain-`fn main()` timing harness (the workspace is hermetic, so
//! the Criterion dependency is gone; `cargo bench` runs these directly).
//!
//! Methodology: one warmup call calibrates a batch size targeting ~5 ms per
//! batch, then `samples` batches are timed and the per-iteration median,
//! minimum, and maximum are reported. Medians make the numbers robust to
//! scheduler noise without Criterion's full bootstrap machinery.

use std::hint::black_box;
use std::time::Instant;

/// A named group of timing measurements.
pub struct Harness {
    samples: usize,
}

impl Default for Harness {
    fn default() -> Self {
        Self::new()
    }
}

impl Harness {
    /// Harness with the default 10 samples per benchmark.
    pub fn new() -> Self {
        Self { samples: 10 }
    }

    /// Harness taking `samples` timed batches per benchmark.
    pub fn with_samples(samples: usize) -> Self {
        Self {
            samples: samples.max(1),
        }
    }

    /// Time `f`, printing `name: median (min … max) per iter`.
    /// Returns the median seconds per iteration.
    pub fn bench<R, F: FnMut() -> R>(&self, name: &str, mut f: F) -> f64 {
        // Warmup + calibration: aim for ~5 ms batches, at least 1 iter.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let iters = ((5e-3 / once) as usize).clamp(1, 100_000);
        let mut per_iter = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(t.elapsed().as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{name:<48} {} ({} … {}) × {iters} iters/sample",
            fmt_time(median),
            fmt_time(min),
            fmt_time(max)
        );
        median
    }
}

/// Human-readable seconds.
fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_median() {
        let h = Harness::with_samples(3);
        let m = h.bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(m > 0.0);
    }

    #[test]
    fn fmt_time_ranges() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
