//! E13 (extension): MLControl — an objective-driven computational campaign
//! (§I + ref [12]): find physical parameters whose *simulated* outputs hit
//! a target, using the surrogate to search and real simulations only to
//! verify. "Here the simulation surrogates are very valuable to allow
//! real-time predictions."

use le_bench::{md_row, BENCH_SEED};
use le_mdsim::nanoconfinement::NanoParams;
use learning_everywhere::control::{run_campaign, ControlConfig};
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{LeError, Simulator};

/// The nanoconfinement scenario over its two continuous axes (h, c) with
/// valencies and diameter fixed — a 2-D design space for the campaign.
struct DesignSpace;

impl Simulator for DesignSpace {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        3
    }
    fn simulate(&self, x: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let p = NanoParams {
            h: x[0],
            z_p: 1,
            z_n: 1,
            c: x[1],
            d: 0.6,
        };
        p.validate()
            .map_err(|e| LeError::Simulation(e.to_string()))?;
        let sim = le_mdsim::NanoSim::new(le_mdsim::SimConfig::fast());
        Ok(sim
            .run(&p, seed)
            .map_err(|e| LeError::Simulation(e.to_string()))?
            .0
            .to_vec())
    }
    fn name(&self) -> &str {
        "nanoconfinement-(h,c)"
    }
}

fn main() {
    // Target: the density profile achieved at a known hidden design point —
    // so zero campaign error is achievable and measurable.
    let hidden = [3.2, 0.7];
    let target = DesignSpace
        .simulate(&hidden, BENCH_SEED)
        .expect("hidden point valid");
    eprintln!(
        "target densities (from hidden design h={}, c={}): {target:?}",
        hidden[0], hidden[1]
    );

    let outcome = run_campaign(
        &DesignSpace,
        &target,
        &[(2.0, 4.0), (0.3, 0.9)],
        &ControlConfig {
            initial_runs: 36,
            scan_size: 4000,
            verify_per_round: 5,
            rounds: 4,
            surrogate: SurrogateConfig {
                hidden: vec![48, 48],
                dropout: 0.05,
                epochs: 250,
                seed: BENCH_SEED,
                ..Default::default()
            },
            seed: BENCH_SEED,
        },
    )
    .expect("campaign runs");

    println!("## E13 — MLControl: objective-driven campaign over (h, c)\n");
    println!("{}", md_row(&["round".into(), "best verified |error|".into()]));
    println!("{}", md_row(&["---".into(), "---".into()]));
    for (i, e) in outcome.error_history.iter().enumerate() {
        println!("{}", md_row(&[(i + 1).to_string(), format!("{e:.4}")]));
    }
    println!(
        "\nbest design found: h = {:.2}, c = {:.2} (hidden: h = {}, c = {})",
        outcome.best_input[0], outcome.best_input[1], hidden[0], hidden[1]
    );
    println!(
        "verified output {:?} vs target {target:?}",
        outcome.best_output
    );
    println!(
        "total real simulations: {} (the surrogate scanned {} candidates per round)",
        outcome.simulations_used, 4000
    );
    println!(
        "\nshape: the campaign reaches the target with tens of simulations where a \
         grid scan at the surrogate's resolution would need thousands — the \
         MLControl promise of 'real-time predictions' steering expensive runs."
    );
}
