//! E8: heterogeneous scheduling of learnt/unlearnt work (research issues
//! 7–8): per-class latency under each policy as the learnt fraction ramps.

use le_bench::{md_row, BENCH_SEED};
use le_sched::{simulate, Policy, TaskClass, Workload, WorkloadConfig};

fn main() {
    // Each DES run below emits a `sched.simulate` span plus per-task
    // start/complete instants; the exports at the end make the sweep
    // inspectable with `obsctl timeline` / Perfetto.
    let trace_root = le_obs::trace_root!("e8.scheduling");
    let policies = [
        Policy::SingleQueue,
        Policy::DedicatedSplit { learnt_workers: 1 },
        Policy::ShortestQueue,
        Policy::WorkStealing,
        Policy::LearntPriority,
    ];
    let n_workers = 8;

    println!("## E8 — scheduling the mixed surrogate/simulation workload ({} workers, 1e5x service ratio)\n", n_workers);
    println!(
        "{}",
        md_row(&[
            "learnt fraction".into(),
            "policy".into(),
            "learnt mean latency (s)".into(),
            "learnt p99 (s)".into(),
            "unlearnt mean latency (s)".into(),
            "makespan (s)".into(),
        ])
    );
    println!(
        "{}",
        md_row(&(0..6).map(|_| "---".to_string()).collect::<Vec<_>>())
    );
    for &frac in &[0.3, 0.6, 0.9] {
        let workload = Workload::generate(
            &WorkloadConfig {
                n_tasks: 4000,
                mean_interarrival: 0.35,
                sim_service: 8.0,
                learnt_speedup: 1e5,
                learnt_fraction_start: frac,
                learnt_fraction_end: frac,
            },
            BENCH_SEED ^ (frac * 100.0) as u64,
        )
        .expect("valid");
        for policy in policies {
            let m = simulate(&workload, n_workers, policy).expect("runs");
            println!(
                "{}",
                md_row(&[
                    format!("{frac:.1}"),
                    policy.name().into(),
                    format!(
                        "{:.4}",
                        m.mean_latency(TaskClass::Learnt).unwrap_or(f64::NAN)
                    ),
                    format!(
                        "{:.4}",
                        m.latency_quantile(TaskClass::Learnt, 0.99).unwrap_or(f64::NAN)
                    ),
                    format!(
                        "{:.2}",
                        m.mean_latency(TaskClass::Unlearnt).unwrap_or(f64::NAN)
                    ),
                    format!("{:.1}", m.makespan),
                ])
            );
        }
    }
    println!(
        "\npaper claim: load-balancing the learnt and unlearnt separately \
         (dedicated-split) collapses learnt-task latency by orders of magnitude \
         at equal makespan; a single FIFO queue suffers head-of-line blocking."
    );

    drop(trace_root); // close the root so the exported journal is balanced
    for res in [le_obs::write_snapshot("e8"), le_obs::write_trace("e8")] {
        match res {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("warning: observability export failed: {e}"),
        }
    }
}
