//! E4: DEFSI vs baselines at state and county resolution, averaged over
//! several hidden truth seasons (paper ref [19]'s comparison).

use le_bench::{md_row, BENCH_SEED};
use le_netdyn::baselines::{naive_forecast, uniform_county_split, ArModel, DataOnlyMlp};
use le_netdyn::defsi::{
    estimate_tau_distribution, generate_synthetic_seasons, score_forecaster, DefsiTrainConfig,
    TwoBranchNet,
};
use le_netdyn::epifast::{hidden_truth_season, EpiFast};
use le_netdyn::seir::SeirConfig;
use le_netdyn::surveillance::Surveillance;
use le_netdyn::{Population, PopulationConfig};

fn main() {
    let pop = Population::generate(
        &PopulationConfig {
            county_sizes: vec![400; 8],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        },
        BENCH_SEED,
    )
    .expect("valid");
    let base = SeirConfig {
        transmissibility: 0.0,
        days: 112,
        ..Default::default()
    };
    let sv = Surveillance {
        reporting_fraction: 0.3,
        noise: 0.08,
        delay_weeks: 1,
    };
    let window = 4;
    let rf = sv.reporting_fraction;
    let n_c = pop.n_counties;

    // Historical observed seasons for the data-only baselines.
    let historical: Vec<Vec<f64>> = (0..5)
        .map(|i| {
            let s = hidden_truth_season(&pop, 0.055 + 0.012 * i as f64, &base, 900 + i)
                .expect("runs");
            Surveillance {
                delay_weeks: 0,
                ..sv
            }
            .observe_state(&s, 901 + i)
        })
        .collect();
    let ar = ArModel::fit(&historical, 2).expect("fits");
    let mlp = DataOnlyMlp::fit(&historical, window, BENCH_SEED).expect("fits");

    let mut totals: std::collections::BTreeMap<&str, (f64, f64)> = Default::default();
    let truth_taus = [0.065, 0.075, 0.085];
    for (season_idx, &hidden_tau) in truth_taus.iter().enumerate() {
        let truth =
            hidden_truth_season(&pop, hidden_tau, &base, 5000 + season_idx as u64).expect("runs");
        let observed = sv.observe_state(&truth, 5100 + season_idx as u64);

        let epifast = EpiFast::new(base, rf);
        let (tau_mean, tau_std) =
            estimate_tau_distribution(&epifast, &pop, &observed, 5200 + season_idx as u64)
                .expect("calibrates");
        let seasons = generate_synthetic_seasons(
            &pop,
            &base,
            &sv,
            tau_mean,
            tau_std,
            32,
            5300 + season_idx as u64,
        )
        .expect("simulates");
        let defsi = TwoBranchNet::train(
            &seasons,
            n_c,
            &DefsiTrainConfig {
                window,
                epochs: 120,
                ..Default::default()
            },
        )
        .expect("trains");

        let obs_seed = 5400 + season_idx as u64;
        let add = |totals: &mut std::collections::BTreeMap<&str, (f64, f64)>,
                   name: &'static str,
                   score: le_netdyn::defsi::ForecastScore| {
            let e = totals.entry(name).or_insert((0.0, 0.0));
            e.0 += score.state_rmse;
            e.1 += score.county_rmse;
        };
        add(
            &mut totals,
            "DEFSI",
            score_forecaster(&truth, &sv, window, obs_seed, |obs| {
                defsi.forecast_counties(obs, 16)
            })
            .expect("scores"),
        );
        add(
            &mut totals,
            "EpiFast",
            score_forecaster(&truth, &sv, window, obs_seed, |obs| {
                let (_, county) = epifast.forecast(&pop, obs, 1, obs_seed ^ 0xE)?;
                Ok(county.iter().map(|c| c[0]).collect())
            })
            .expect("scores"),
        );
        add(
            &mut totals,
            "AR(2)",
            score_forecaster(&truth, &sv, window, obs_seed, |obs| {
                Ok(uniform_county_split(ar.forecast(obs)? / rf, n_c))
            })
            .expect("scores"),
        );
        add(
            &mut totals,
            "data-only MLP",
            score_forecaster(&truth, &sv, window, obs_seed, |obs| {
                Ok(uniform_county_split(mlp.forecast(obs)? / rf, n_c))
            })
            .expect("scores"),
        );
        add(
            &mut totals,
            "naive",
            score_forecaster(&truth, &sv, window, obs_seed, |obs| {
                Ok(uniform_county_split(naive_forecast(obs)? / rf, n_c))
            })
            .expect("scores"),
        );
    }

    let k = truth_taus.len() as f64;
    println!("## E4 — DEFSI vs baselines (mean 1-week-ahead RMSE over {} seasons)\n", truth_taus.len());
    println!(
        "{}",
        md_row(&["method".into(), "state RMSE".into(), "county RMSE".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    for (name, (s, c)) in &totals {
        println!(
            "{}",
            md_row(&[name.to_string(), format!("{:.2}", s / k), format!("{:.2}", c / k)])
        );
    }
    println!(
        "\npaper claim: DEFSI performs comparably or better at state level and \
         outperforms EpiFast at county level; pure-data methods cannot resolve \
         county detail at all (uniform split)."
    );
}
