//! Batched-vs-single surrogate lookup throughput on the E2 workload.
//!
//! The "single-query path" being beaten is the engine as it existed
//! *before* the batch-first rework: per-query `Vec`/`Matrix` allocations
//! in every layer, the scalar ikj matmul, the platform libm `tanh`, and
//! `mc_samples` *separate* stochastic passes per uncertainty query. That
//! path no longer exists in the library (today even `predict` rides the
//! arena engine, the register-tiled GEMM, and the hermetic rational
//! tanh), so this bench carries a **frozen replica** of it —
//! [`FrozenSeedSurrogate`] — rebuilt from the trained model's own weights
//! and scalers. Comparing against the replica pins the baseline to the
//! pre-batching implementation; it cannot silently inherit engine
//! speedups. A startup cross-check asserts the replica agrees with the
//! live engine to within the documented 2.6e-8 tanh tolerance.
//!
//! Measured arms: the frozen single-query path (deterministic and
//! MC-dropout), the live engine's single-row path, and live fused batches
//! of 8/64/256 (deterministic) and 64 (MC). The headline numbers — gated
//! ≥ 5× by `scripts/verify.sh` — are the per-lookup speedups of live
//! batch 64 and batch 256 over the frozen single-query path.
//!
//! The binary also prints a canonical `digest 0x…` line folding the
//! deterministic batch outputs and one fused MC-dropout evaluation
//! (bit-exact). `scripts/verify.sh` runs this at `LE_POOL_THREADS` ∈
//! {1, 4, 7} and requires identical digests — the batch engine's
//! determinism contract (`le_nn::batch`) holds at any pool width.
//!
//! ```sh
//! cargo run --release -p le-bench --bin surrogate_batch -- --json
//! ```

use le_bench::timing::Harness;
use le_bench::{nano_dataset, nano_surrogate, BENCH_SEED};
use le_linalg::Rng;
use le_mdsim::nanoconfinement::NanoParams;
use le_nn::{Activation, Scaler};
use learning_everywhere::surrogate::NnSurrogate;
use std::time::Instant;

/// FNV-1a over the observable outputs (same scheme as `fault_campaign`).
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn f64(&mut self, v: f64) {
        for b in v.to_bits().to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Frozen replica of the pre-batch-engine `NnSurrogate` query path, built
/// from a trained surrogate's weights and scalers. Faithful to the seed
/// implementation in every cost that mattered:
///
/// * a fresh activation buffer is allocated per layer per query (the old
///   `Matrix`-chaining `Dense::infer` path),
/// * the affine map is the scalar ikj loop with the exact-zero skip (the
///   sub-threshold `Matrix::matmul` small path — a 1-row query never
///   reached the blocked kernel),
/// * hidden activations call the platform libm `tanh`,
/// * `predict_with_uncertainty` runs `mc_samples` *separate* stochastic
///   passes, each drawing a fresh boxed dropout mask from a stateful RNG
///   (the old `Mlp::predict_mc` + `Dropout::forward` pair),
/// * mean/std use the seed's sum/sum-of-squares reduction.
struct FrozenSeedSurrogate {
    /// Per layer: natural-layout weights `(in, out)` flattened row-major,
    /// `(in_dim, out_dim)`, bias, and whether the activation is tanh.
    layers: Vec<(Vec<f64>, usize, usize, Vec<f64>, bool)>,
    drop_rate: f64,
    mc_samples: usize,
    x_scaler: Scaler,
    y_scaler: Scaler,
    mc_rng: Rng,
}

impl FrozenSeedSurrogate {
    fn new(s: &NnSurrogate, mc_seed: u64) -> Self {
        let layers = s
            .model()
            .layers()
            .iter()
            .map(|d| {
                (
                    d.w.as_slice().to_vec(),
                    d.w.rows(),
                    d.w.cols(),
                    d.b.clone(),
                    d.activation == Activation::Tanh,
                )
            })
            .collect();
        Self {
            layers,
            drop_rate: s.model().config().dropout,
            mc_samples: s.mc_samples(),
            x_scaler: s.x_scaler().clone(),
            y_scaler: s.y_scaler().clone(),
            mc_rng: Rng::new(mc_seed),
        }
    }

    /// One affine layer + activation, allocating the output like the old
    /// per-layer `Matrix` chain did.
    fn layer_forward(cur: &[f64], w: &[f64], out_dim: usize, b: &[f64], tanh: bool) -> Vec<f64> {
        let mut out = vec![0.0; out_dim];
        for (t, &a) in cur.iter().enumerate() {
            if a == 0.0 {
                continue; // the seed small-matmul exact-zero skip
            }
            let brow = &w[t * out_dim..(t + 1) * out_dim];
            for (o, &bv) in out.iter_mut().zip(brow.iter()) {
                *o += a * bv;
            }
        }
        for (o, &bias) in out.iter_mut().zip(b.iter()) {
            *o += bias;
        }
        if tanh {
            for o in out.iter_mut() {
                *o = o.tanh(); // libm, as the seed activation did
            }
        }
        out
    }

    /// The seed's deterministic `predict`: scale, layer chain, unscale.
    fn predict(&self, input: &[f64]) -> Vec<f64> {
        let mut cur = input.to_vec();
        self.x_scaler.transform_slice(&mut cur).expect("probe row");
        for (w, _in_dim, out_dim, b, tanh) in &self.layers {
            cur = Self::layer_forward(&cur, w, *out_dim, b, *tanh);
        }
        self.y_scaler
            .inverse_transform_slice(&mut cur)
            .expect("probe row");
        cur
    }

    /// The seed's `predict_with_uncertainty`: `mc_samples` separate
    /// stochastic passes, a fresh dropout mask drawn per hidden layer per
    /// pass from the stateful RNG.
    fn predict_with_uncertainty(&mut self, input: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let mut x = input.to_vec();
        self.x_scaler.transform_slice(&mut x).expect("probe row");
        let out_dim = self.layers[self.layers.len() - 1].2;
        let n = self.mc_samples;
        let keep = 1.0 - self.drop_rate;
        let scale = 1.0 / keep;
        let mut sums = vec![0.0; out_dim];
        let mut sq = vec![0.0; out_dim];
        let last = self.layers.len() - 1;
        for _ in 0..n {
            let mut cur = x.clone();
            for (l, (w, _in_dim, od, b, tanh)) in self.layers.iter().enumerate() {
                cur = Self::layer_forward(&cur, w, *od, b, *tanh);
                if l < last {
                    // The old Dropout::forward: a fresh mask matrix plus a
                    // hadamard product per pass.
                    let mut mask = vec![0.0; cur.len()];
                    for m in mask.iter_mut() {
                        *m = if self.mc_rng.bernoulli(keep) { scale } else { 0.0 };
                    }
                    for (v, &m) in cur.iter_mut().zip(mask.iter()) {
                        *v *= m;
                    }
                }
            }
            for (k, &v) in cur.iter().enumerate() {
                sums[k] += v;
                sq[k] += v * v;
            }
        }
        let nf = n as f64;
        let mut mean: Vec<f64> = sums.iter().map(|&s| s / nf).collect();
        let mut std: Vec<f64> = sq
            .iter()
            .zip(mean.iter())
            .map(|(&s, &m)| (((s - nf * m * m) / (nf - 1.0)).max(0.0)).sqrt())
            .collect();
        self.y_scaler
            .inverse_transform_slice(&mut mean)
            .expect("probe row");
        for (k, s) in std.iter_mut().enumerate() {
            *s = self.y_scaler.inverse_scale_std(k, *s);
        }
        (mean, std)
    }
}

fn main() {
    let harness = Harness::new();

    // E2 workload: train the nanoconfinement surrogate on a small labelled
    // sweep (identical fixture to E1's timing section).
    let (params, outputs) = nano_dataset(48, BENCH_SEED);
    let surrogate = nano_surrogate(&params, &outputs, 150, BENCH_SEED);
    let in_dim = surrogate.input_dim();
    let out_dim = surrogate.output_dim();
    let mut frozen = FrozenSeedSurrogate::new(&surrogate, BENCH_SEED ^ 0x5EED);

    // Probe set: 256 fresh parameter points (distinct rows, so batched
    // evaluation cannot cheat by caching one input).
    let mut rng = Rng::new(BENCH_SEED ^ 0xABCD);
    let probes: Vec<Vec<f64>> = (0..256)
        .map(|_| NanoParams::sample(&mut rng).to_features().to_vec())
        .collect();

    // The frozen replica must agree with the live engine up to the
    // documented rational-tanh tolerance (2.6e-8 per hidden unit) — if it
    // drifts, the baseline arm is no longer measuring the same function.
    for probe in probes.iter().take(8) {
        let old = frozen.predict(probe);
        let new = surrogate.predict(probe).expect("probe row");
        for (a, b) in old.iter().zip(new.iter()) {
            assert!(
                (a - b).abs() <= 1e-5 * (1.0 + b.abs()),
                "frozen replica diverged from live engine: {a} vs {b}"
            );
        }
    }

    // Determinism digest before any timed work: deterministic batch outputs
    // plus one fused MC-dropout evaluation at ordinals 0..64 on a fresh
    // clone (so bench iteration counts cannot shift the mask streams).
    let mut digest = Digest::new();
    let det = surrogate.predict_batch(&probes[..64]).expect("probe rows");
    for row in &det {
        for &v in row {
            digest.f64(v);
        }
    }
    let mut mc_probe = surrogate.clone();
    let fused = mc_probe
        .predict_with_uncertainty_batch(&probes[..64])
        .expect("probe rows");
    for p in &fused {
        for &v in p.mean.iter().chain(p.std.iter()) {
            digest.f64(v);
        }
    }

    // The frozen single-query path (the bench's baseline arms).
    let mut i = 0usize;
    let t_frozen_single = harness.bench("surrogate_batch/frozen_point/1", || {
        i = (i + 1) % probes.len();
        frozen.predict(&probes[i])[0]
    });
    let mut j = 0usize;
    let t_frozen_mc = harness.bench("surrogate_batch/frozen_mc_point/1", || {
        j = (j + 1) % probes.len();
        frozen.predict_with_uncertainty(&probes[j]).0[0]
    });

    // Live engine: single lookups vs fused batches, deterministic path.
    let mut point_out = vec![0.0; out_dim];
    let mut p = 0usize;
    let t_single = harness.bench("surrogate_batch/point/1", || {
        p = (p + 1) % probes.len();
        surrogate
            .predict_into(&probes[p], &mut point_out)
            .expect("probe row");
        point_out[0]
    });

    let mut per_lookup = Vec::new();
    for &batch in &[8usize, 64, 256] {
        let mut x = Vec::with_capacity(batch * in_dim);
        for row in &probes[..batch] {
            x.extend_from_slice(row);
        }
        let mut y = vec![0.0; batch * out_dim];
        let t_batch = harness.bench(&format!("surrogate_batch/batch/{batch}"), || {
            surrogate
                .predict_batch_into(&x, batch, &mut y)
                .expect("probe rows");
            y[0]
        });
        per_lookup.push((batch, t_batch / batch as f64));
    }

    // Fused MC-dropout path: the gate's cost, batched.
    let mut mc_batch = surrogate.clone();
    let mc_rows: Vec<Vec<f64>> = probes[..64].to_vec();
    let t_mc_batch = harness.bench("surrogate_batch/mc_batch/64", || {
        mc_batch
            .predict_with_uncertainty_batch(&mc_rows)
            .expect("probe rows")
            .len()
    });

    // ---- Interleaved A/B rounds: the gated headline ratios. ----
    //
    // The harness arms above time each path in isolation, seconds apart;
    // on a busy host a frequency or scheduler shift between arms skews
    // their ratio by tens of percent. The gated numbers therefore come
    // from interleaved rounds: every round times the frozen path and the
    // batched paths back-to-back with fixed iteration counts, each ratio
    // is formed *within* its round (both sides see the same machine
    // state), and the reported speedup is the median of the per-round
    // ratios — a disturbed round shifts one sample, not the verdict.
    const ROUNDS: usize = 11; // odd → true median; preceded by one discarded warmup round
    const F_ITERS: usize = 384; // frozen deterministic lookups per round
    const B64_REPS: usize = 24; // batch-64 engine passes per round
    const B256_REPS: usize = 6; // batch-256 engine passes per round
    const FMC_ITERS: usize = 12; // frozen MC lookups per round
    const MC64_REPS: usize = 1; // fused MC batch-64 passes per round

    let mut x64 = Vec::with_capacity(64 * in_dim);
    for row in &probes[..64] {
        x64.extend_from_slice(row);
    }
    let mut x256 = Vec::with_capacity(256 * in_dim);
    for row in &probes[..256] {
        x256.extend_from_slice(row);
    }
    let mut y64 = vec![0.0; 64 * out_dim];
    let mut y256 = vec![0.0; 256 * out_dim];

    let (mut t_fro, mut t_b64, mut t_b256, mut t_fmc, mut t_m64) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let (mut r64, mut r256, mut rmc) = (Vec::new(), Vec::new(), Vec::new());
    let mut sink = 0.0f64;
    let (mut fi, mut fj) = (0usize, 0usize);
    for round in 0..=ROUNDS {
        let t = Instant::now();
        for _ in 0..F_ITERS {
            fi = (fi + 1) % probes.len();
            sink += frozen.predict(&probes[fi])[0];
        }
        let fro = t.elapsed().as_secs_f64() / F_ITERS as f64;

        let t = Instant::now();
        for _ in 0..B64_REPS {
            surrogate
                .predict_batch_into(&x64, 64, &mut y64)
                .expect("probe rows");
            sink += y64[0];
        }
        let b64 = t.elapsed().as_secs_f64() / (B64_REPS * 64) as f64;

        let t = Instant::now();
        for _ in 0..B256_REPS {
            surrogate
                .predict_batch_into(&x256, 256, &mut y256)
                .expect("probe rows");
            sink += y256[0];
        }
        let b256 = t.elapsed().as_secs_f64() / (B256_REPS * 256) as f64;

        let t = Instant::now();
        for _ in 0..FMC_ITERS {
            fj = (fj + 1) % probes.len();
            sink += frozen.predict_with_uncertainty(&probes[fj]).0[0];
        }
        let fmc = t.elapsed().as_secs_f64() / FMC_ITERS as f64;

        let t = Instant::now();
        for _ in 0..MC64_REPS {
            sink += mc_batch
                .predict_with_uncertainty_batch(&mc_rows)
                .expect("probe rows")[0]
                .mean[0];
        }
        let m64 = t.elapsed().as_secs_f64() / (MC64_REPS * 64) as f64;

        if round == 0 {
            continue; // warmup: pools spun up, arenas sized, caches warm
        }
        t_fro.push(fro);
        t_b64.push(b64);
        t_b256.push(b256);
        t_fmc.push(fmc);
        t_m64.push(m64);
        r64.push(fro / b64);
        r256.push(fro / b256);
        rmc.push(fmc / m64);
    }
    std::hint::black_box(sink);

    // Per-lookup medians land in the BENCH json next to the harness arms,
    // so the committed document itself shows the frozen-vs-batched gap.
    let i_fro = harness.record("surrogate_batch/interleaved/frozen_point/1", &t_fro, F_ITERS);
    let i_b64 = harness.record("surrogate_batch/interleaved/batch/64", &t_b64, B64_REPS * 64);
    let i_b256 = harness.record("surrogate_batch/interleaved/batch/256", &t_b256, B256_REPS * 256);
    let i_fmc = harness.record("surrogate_batch/interleaved/frozen_mc_point/1", &t_fmc, FMC_ITERS);
    let i_m64 = harness.record("surrogate_batch/interleaved/mc_batch/64", &t_m64, MC64_REPS * 64);

    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.total_cmp(b));
        v[v.len() / 2]
    };

    println!();
    println!("frozen single-query path: {t_frozen_single:.3e}s det, {t_frozen_mc:.3e}s mc");
    for &(batch, per) in &per_lookup {
        println!(
            "per-lookup at batch {batch}: {:.3e}s ({:.1}x vs frozen single, {:.1}x vs live single {:.3e}s)",
            per,
            t_frozen_single / per,
            t_single / per,
            t_single
        );
    }
    println!(
        "mc per-lookup at batch 64: {:.3e}s ({:.1}x vs frozen single {:.3e}s)",
        t_mc_batch / 64.0,
        t_frozen_mc / (t_mc_batch / 64.0),
        t_frozen_mc
    );
    println!(
        "interleaved ({ROUNDS} rounds): frozen {i_fro:.3e}s det / {i_fmc:.3e}s mc; \
         per-lookup batch64 {i_b64:.3e}s, batch256 {i_b256:.3e}s, mc_batch64 {i_m64:.3e}s"
    );
    // Machine-checked by scripts/verify.sh (≥ 5× acceptance at 64 and 256):
    // medians of the per-round interleaved ratios.
    println!("single_vs_batch64_ratio {:.2}", med(&mut r64));
    println!("single_vs_batch256_ratio {:.2}", med(&mut r256));
    println!("mc_single_vs_batch64_ratio {:.2}", med(&mut rmc));
    println!("digest 0x{:016x}", digest.0);

    harness.finish("surrogate_batch");
}
