//! E9: short-circuiting the virtual tissue's advection–diffusion module
//! (§II-B): closed-loop accuracy and speedup of the learned analogue.

use le_bench::{md_row, BENCH_SEED};
use le_tissue::surrogate_grid::{SurrogateTrainConfig, TransportSurrogate};
use le_tissue::vt::{TissueConfig, TissueModel};

fn main() {
    let config = TissueConfig {
        width: 32,
        height: 32,
        fine_steps_per_tissue_step: 40,
        initial_cells: 24,
        ..Default::default()
    };
    eprintln!("training the transport surrogate on trajectories…");
    let surrogate = TransportSurrogate::train_on_trajectories(
        &config,
        4,
        &[1, 2, 3, 4, 5, 6, 7, 8],
        40,
        0.25,
        &SurrogateTrainConfig {
            hidden: vec![96, 96],
            epochs: 200,
            seed: BENCH_SEED,
            n_samples: 0,
        },
    )
    .expect("trains");

    println!("## E9 — virtual-tissue transport short-circuiting (32x32, 40 fine steps/burst)\n");
    println!(
        "{}",
        md_row(&[
            "tissue steps".into(),
            "cells (full)".into(),
            "cells (surrogate)".into(),
            "coarse-field rel. RMSE".into(),
            "transport speedup".into(),
        ])
    );
    println!(
        "{}",
        md_row(&(0..5).map(|_| "---".to_string()).collect::<Vec<_>>())
    );
    for &steps in &[5usize, 10, 20, 30] {
        let mut full = TissueModel::new(config, 99).expect("valid");
        let mut fast = TissueModel::new(config, 99).expect("valid");
        let t0 = std::time::Instant::now();
        for _ in 0..steps {
            full.step_full().expect("stable");
        }
        let t_full = t0.elapsed().as_secs_f64();
        let t1 = std::time::Instant::now();
        for _ in 0..steps {
            fast.step_with_transport(|f, s| surrogate.advance(f, s))
                .expect("surrogate ok");
        }
        let t_fast = t1.elapsed().as_secs_f64();
        let fc = full.nutrient.downsample(4).expect("divides");
        let sc = fast.nutrient.downsample(4).expect("divides");
        let rmse = fc.rmse(&sc).expect("same shape");
        let scale = (fc.total() / 64.0).max(1e-9);
        println!(
            "{}",
            md_row(&[
                steps.to_string(),
                full.stats().n_cells.to_string(),
                fast.stats().n_cells.to_string(),
                format!("{:.1}%", 100.0 * rmse / scale),
                format!("{:.1}x", t_full / t_fast),
            ])
        );
    }
    println!(
        "\nshape: the learned analogue removes the fine timescale at a fixed \
         accuracy cost that grows with rollout length (closed-loop drift) — \
         the classic surrogate trade-off the paper's short-circuiting item \
         describes."
    );
}
