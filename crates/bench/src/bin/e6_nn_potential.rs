//! E6: Behler–Parrinello NN potential vs the expensive reference — accuracy
//! and the per-evaluation speedup as a function of system size (the
//! ">1000x" shape of §II-C2).

use le_bench::{md_row, BENCH_SEED};
use le_linalg::{stats, Rng};
use le_mdsim::bp::{generate_training_set, BpPotential, SymmetryFunctions};
use le_mdsim::reference::{random_cluster, ReferencePotential};
use le_nn::TrainConfig;

fn main() {
    let reference = ReferencePotential::default();
    let sf = SymmetryFunctions::standard(reference.rc);
    eprintln!("labelling 400 clusters with the reference (SCF) potential…");
    let data = generate_training_set(&sf, &reference, 400, 12, BENCH_SEED);
    let pot = BpPotential::train(
        sf,
        &data,
        &[32, 32],
        TrainConfig {
            epochs: 300,
            patience: Some(50),
            ..Default::default()
        },
        BENCH_SEED,
    )
    .expect("trains");

    // Accuracy on held-out clusters.
    let mut rng = Rng::new(BENCH_SEED ^ 0xAB);
    let mut e_ref_all = Vec::new();
    let mut e_nn_all = Vec::new();
    for _ in 0..60 {
        let pos = random_cluster(12, reference.r0, 1.4, &mut rng);
        e_ref_all.push(reference.energy(&pos).total);
        e_nn_all.push(pot.energy(&pos));
    }
    let rmse = stats::rmse(&e_nn_all, &e_ref_all).expect("non-empty");
    let r2 = stats::r2(&e_nn_all, &e_ref_all).expect("non-empty");
    let mean_mag =
        e_ref_all.iter().map(|e| e.abs()).sum::<f64>() / e_ref_all.len() as f64;

    println!("## E6 — NN potential vs DFT-stand-in reference\n");
    println!(
        "held-out total-energy RMSE {rmse:.3} on |E| ≈ {mean_mag:.1} (R² = {r2:.3})\n"
    );
    println!(
        "{}",
        md_row(&[
            "atoms".into(),
            "reference (s/eval)".into(),
            "NN (s/eval)".into(),
            "speedup".into()
        ])
    );
    println!(
        "{}",
        md_row(&["---".into(), "---".into(), "---".into(), "---".into()])
    );
    for &n in &[8usize, 16, 32, 64] {
        let pos = random_cluster(n, reference.r0, 1.3, &mut rng);
        let reps = if n <= 16 { 20 } else { 5 };
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            let _ = reference.energy(&pos);
        }
        let t_ref = t0.elapsed().as_secs_f64() / reps as f64;
        let t1 = std::time::Instant::now();
        for _ in 0..(reps * 10) {
            let _ = pot.energy(&pos);
        }
        let t_nn = t1.elapsed().as_secs_f64() / (reps * 10) as f64;
        println!(
            "{}",
            md_row(&[
                n.to_string(),
                format!("{t_ref:.3e}"),
                format!("{t_nn:.3e}"),
                format!("{:.0}x", t_ref / t_nn)
            ])
        );
    }
    println!(
        "\nshape: the speedup grows with system size (SCF is superlinear, the NN \
         is near-linear); with true DFT as the reference the paper's >1000x follows."
    );
}
