//! Trace-overhead smoke: runs the same MD step loop with the event journal
//! enabled and disabled, interleaved, and fails (exit 1) if the journaled
//! median regresses by more than the gate percentage.
//!
//! The journal's design budget is <100 ns per event and a single relaxed
//! atomic load per guard when disabled; relative to a real force loop that
//! is noise. The gate defaults to 5% and can be widened for debug builds or
//! loaded machines with `LE_TRACE_OVERHEAD_PCT`.
//!
//! ```sh
//! cargo run --release -p le-bench --bin trace_overhead
//! ```

use std::process::ExitCode;
use std::time::Instant;

use le_bench::BENCH_SEED;
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};

/// One timed MD run (the hot loop emits `mdsim.step` trace spans plus one
/// `pool.task` span per force chunk).
fn timed_run(sim: &NanoSim, probe: &NanoParams, seed: u64) -> f64 {
    let t = Instant::now();
    let out = sim.run(probe, seed).expect("probe params are valid");
    std::hint::black_box(out);
    t.elapsed().as_secs_f64()
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() -> ExitCode {
    let gate_pct = std::env::var("LE_TRACE_OVERHEAD_PCT")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .unwrap_or(5.0);
    let sim = NanoSim::new(SimConfig::fast());
    let probe = NanoParams {
        h: 3.0,
        z_p: 1,
        z_n: 1,
        c: 0.5,
        d: 0.6,
    };

    // Warm up the pool, the allocator, and both journal states.
    le_obs::trace::set_enabled(true);
    timed_run(&sim, &probe, BENCH_SEED);
    le_obs::trace::set_enabled(false);
    timed_run(&sim, &probe, BENCH_SEED);

    // Interleave the two states so slow drift (thermal, co-tenants) hits
    // both distributions equally; medians absorb the outliers.
    let reps = 7;
    let mut on = Vec::with_capacity(reps);
    let mut off = Vec::with_capacity(reps);
    for rep in 0..reps {
        le_obs::trace::set_enabled(false);
        off.push(timed_run(&sim, &probe, BENCH_SEED + rep as u64));
        le_obs::trace::set_enabled(true);
        le_obs::trace::reset(); // start each journaled rep with empty rings
        on.push(timed_run(&sim, &probe, BENCH_SEED + rep as u64));
    }
    le_obs::trace::reset();
    le_obs::trace::set_enabled(false);

    let m_on = median(&mut on);
    let m_off = median(&mut off);
    let overhead_pct = 100.0 * (m_on - m_off) / m_off;
    println!(
        "trace overhead: journal on {:.2} ms, off {:.2} ms → {:+.2}% (gate {:.1}%)",
        m_on * 1e3,
        m_off * 1e3,
        overhead_pct,
        gate_pct
    );
    if overhead_pct > gate_pct {
        eprintln!("trace_overhead: FAIL — journaling regressed the MD step loop");
        return ExitCode::FAILURE;
    }
    println!("trace_overhead: OK");
    ExitCode::SUCCESS
}
