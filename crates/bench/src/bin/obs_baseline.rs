//! Deterministic observability baseline for the `obsctl diff` gate.
//!
//! Replays a fixed three-phase campaign — a short MD run, a hybrid-engine
//! query loop whose simulator fans out onto `le-pool`, and two DES
//! scheduling runs — then exports `results/OBS_baseline.json` (counters,
//! spans, histograms) and `results/TRACE_baseline.json` (the causal event
//! journal, Chrome `trace_event` format).
//!
//! `scripts/verify.sh` runs this binary with `LE_POOL_THREADS=4` pinned and
//! diffs the fresh snapshot against the committed copy under
//! `results/baselines/`: counter values and span counts are exact replicas
//! of the committed baseline whenever the workload, the pool decomposition,
//! and the numerics are unchanged, so any silent drift in those trips the
//! gate. (Schedule-dependent worker metrics are excluded with `--ignore`;
//! span *timings* are gated only by a generous one-sided tolerance.)
//!
//! ```sh
//! LE_POOL_THREADS=4 cargo run --release -p le-bench --bin obs_baseline
//! ```

use le_bench::BENCH_SEED;
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};
use le_sched::{simulate, Policy, Workload, WorkloadConfig};
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, Simulator};

/// A simulator whose "physics" is a 64-wide parallel map: every query that
/// simulates provably dispatches `pool.task` spans carrying its trace id.
struct FanoutSimulator;

impl Simulator for FanoutSimulator {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, input: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let parts = le_pool::par_map_index(64, |i| {
            let x = input[0] + input[1] * (i as f64 + seed as f64 * 1e-6);
            (x * 0.01).sin()
        });
        Ok(vec![parts.iter().sum::<f64>() / 64.0])
    }
}

fn main() {
    // Phase 1: a short MD trajectory (trimmed preset so the whole campaign
    // fits the default trace ring with zero drops).
    let sim = NanoSim::new(SimConfig {
        equil_steps: 50,
        prod_steps: 150,
        ..SimConfig::fast()
    });
    let probe = NanoParams {
        h: 3.0,
        z_p: 1,
        z_n: 1,
        c: 0.5,
        d: 0.6,
    };
    let (obs, _) = sim.run(&probe, BENCH_SEED).expect("probe params are valid");
    println!("md: contact density {:.4}", obs.contact);

    // Phase 2: a hybrid-engine campaign over the fan-out simulator.
    let mut engine = HybridEngine::new(
        FanoutSimulator,
        HybridConfig {
            uncertainty_threshold: 0.3,
            min_training_runs: 8,
            retrain_growth: 2.0,
            surrogate: SurrogateConfig {
                hidden: vec![16],
                epochs: 10,
                mc_samples: 8,
                seed: 3,
                ..Default::default()
            },
        },
    )
    .expect("valid config");
    for q in 0..24 {
        let x = [0.05 * q as f64, 0.2];
        if let Err(e) = engine.query(&x) {
            eprintln!("query {q} failed: {e}");
            std::process::exit(1);
        }
    }
    println!("hybrid: lookup fraction {:.2}", engine.lookup_fraction());

    // Phase 3: the mixed learnt/unlearnt workload under two DES policies.
    let workload = Workload::generate(
        &WorkloadConfig {
            n_tasks: 1200,
            mean_interarrival: 0.35,
            sim_service: 8.0,
            learnt_speedup: 1e5,
            learnt_fraction_start: 0.6,
            learnt_fraction_end: 0.6,
        },
        BENCH_SEED,
    )
    .expect("valid workload");
    for policy in [Policy::SingleQueue, Policy::WorkStealing] {
        let m = simulate(&workload, 8, policy).expect("runs");
        println!("sched: {} makespan {:.1}s", policy.name(), m.makespan);
    }

    match le_obs::write_snapshot("baseline") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write OBS snapshot: {e}"),
    }
    match le_obs::write_trace("baseline") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write trace: {e}"),
    }
}
