//! E7: the four computation models × four kernels × thread counts —
//! convergence quality and wall time (§III-A).

use le_bench::{md_row, BENCH_SEED};
use le_mlkernels::ccd::{synthetic_ratings, train as ccd_train, CcdConfig};
use le_mlkernels::gibbs::{synthetic_mixture, train as gibbs_train, GibbsConfig};
use le_mlkernels::kmeans::{synthetic_blobs, train as kmeans_train, KmeansConfig};
use le_mlkernels::sgd::{synthetic_dataset, train as sgd_train, SgdConfig};
use le_mlkernels::SyncModel;

fn main() {
    println!("## E7 — parallel computation models (Locking / Rotation / Allreduce / Asynchronous)\n");

    // SGD logistic regression.
    let (x, y, _) = synthetic_dataset(4000, 16, 0.05, BENCH_SEED);
    println!("### SGD (logistic regression, 4000×16)\n");
    println!(
        "{}",
        md_row(&["model".into(), "threads".into(), "final loss".into(), "seconds".into()])
    );
    println!(
        "{}",
        md_row(&["---".into(), "---".into(), "---".into(), "---".into()])
    );
    for model in SyncModel::ALL {
        for &threads in &[1usize, 2, 4, 8] {
            let (_, report) = sgd_train(
                &x,
                &y,
                model,
                &SgdConfig {
                    epochs: 20,
                    threads,
                    seed: BENCH_SEED,
                    ..Default::default()
                },
            )
            .expect("trains");
            println!(
                "{}",
                md_row(&[
                    model.name().into(),
                    threads.to_string(),
                    format!("{:.4}", report.final_objective()),
                    format!("{:.3}", report.seconds)
                ])
            );
        }
    }

    // K-means.
    let centers = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![-5.0, 5.0], vec![5.0, -5.0]];
    let data = synthetic_blobs(2000, &centers, 0.4, BENCH_SEED);
    println!("\n### K-means (8000×2, k = 4)\n");
    println!(
        "{}",
        md_row(&["model".into(), "threads".into(), "final inertia".into(), "seconds".into()])
    );
    println!(
        "{}",
        md_row(&["---".into(), "---".into(), "---".into(), "---".into()])
    );
    for model in SyncModel::ALL {
        for &threads in &[1usize, 4] {
            let (_, report) = kmeans_train(
                &data,
                model,
                &KmeansConfig {
                    k: 4,
                    iterations: 12,
                    threads,
                    seed: BENCH_SEED,
                },
            )
            .expect("trains");
            println!(
                "{}",
                md_row(&[
                    model.name().into(),
                    threads.to_string(),
                    format!("{:.4}", report.final_objective()),
                    format!("{:.3}", report.seconds)
                ])
            );
        }
    }

    // Gibbs GMM.
    let gdata = synthetic_mixture(1200, &[-4.0, 0.0, 4.0], 0.5, BENCH_SEED);
    println!("\n### Gibbs sampling (GMM, 3600 points, k = 3)\n");
    println!(
        "{}",
        md_row(&["model".into(), "threads".into(), "final NLL".into(), "seconds".into()])
    );
    println!(
        "{}",
        md_row(&["---".into(), "---".into(), "---".into(), "---".into()])
    );
    for model in SyncModel::ALL {
        let (_, report) = gibbs_train(
            &gdata,
            model,
            &GibbsConfig {
                k: 3,
                sigma: 0.5,
                sweeps: 40,
                threads: 4,
                seed: BENCH_SEED,
            },
        )
        .expect("samples");
        println!(
            "{}",
            md_row(&[
                model.name().into(),
                "4".into(),
                format!("{:.4}", report.final_objective()),
                format!("{:.3}", report.seconds)
            ])
        );
    }

    // CCD matrix factorization.
    let ratings = synthetic_ratings(200, 150, 4, 0.2, 0.01, BENCH_SEED);
    println!("\n### CCD matrix factorization ({} ratings, rank 4)\n", ratings.len());
    println!(
        "{}",
        md_row(&["model".into(), "threads".into(), "final RMSE".into(), "seconds".into()])
    );
    println!(
        "{}",
        md_row(&["---".into(), "---".into(), "---".into(), "---".into()])
    );
    for model in SyncModel::ALL {
        let (_, _, report) = ccd_train(
            &ratings,
            200,
            150,
            model,
            &CcdConfig {
                rank: 4,
                epochs: 40,
                threads: 4,
                lr: 0.08,
                l2: 0.005,
                seed: BENCH_SEED,
            },
        )
        .expect("trains");
        println!(
            "{}",
            md_row(&[
                model.name().into(),
                "4".into(),
                format!("{:.4}", report.final_objective()),
                format!("{:.3}", report.seconds)
            ])
        );
    }
    println!(
        "\npaper claim: optimized collective communication (allreduce/rotation) \
         improves model-update speed over per-update locking; asynchronous trades \
         consistency for throughput."
    );
}
