//! E5: active learning vs random acquisition — the data-reduction claim of
//! §II-C2 (ref [34]: "iteratively adding training data calculations for
//! regions of chemical space where the current ML model could not make
//! good predictions").
//!
//! Active learning pays off when difficulty is *localized*: most of the
//! input space is smooth, but a narrow region (a reaction channel, a phase
//! boundary) needs dense sampling. The target here has exactly that
//! structure — a smooth background plus a narrow, deep feature.

use le_bench::{md_row, BENCH_SEED};
use le_linalg::Rng;
use learning_everywhere::active::{run_active_learning, ActiveConfig, UqBackend};
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{LeError, Simulator};
use le_uq::AcquisitionStrategy;

/// Smooth background + a narrow Gaussian well (the "hard region").
struct LocalizedSim;

impl LocalizedSim {
    fn truth(x: &[f64]) -> f64 {
        let smooth = (0.8 * x[0]).sin() + (0.8 * x[1]).cos();
        let d2 = (x[0] - 1.2).powi(2) + (x[1] + 0.8).powi(2);
        let feature = 5.0 * (-d2 / (2.0 * 0.25f64.powi(2))).exp();
        smooth + feature
    }
}

impl Simulator for LocalizedSim {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, x: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        if x.len() != 2 {
            return Err(LeError::InvalidConfig("need 2 inputs".into()));
        }
        Ok(vec![Self::truth(x)])
    }
    fn name(&self) -> &str {
        "localized-feature"
    }
}

fn main() {
    let sim = LocalizedSim;
    let mut rng = Rng::new(BENCH_SEED);
    let sample = |rng: &mut Rng| vec![rng.uniform_in(-2.0, 2.0), rng.uniform_in(-2.0, 2.0)];
    let pool: Vec<Vec<f64>> = (0..1200).map(|_| sample(&mut rng)).collect();
    let val_x: Vec<Vec<f64>> = (0..400).map(|_| sample(&mut rng)).collect();
    let val_y: Vec<Vec<f64>> = val_x.iter().map(|x| vec![LocalizedSim::truth(x)]).collect();

    let run = |strategy, backend, seed| {
        run_active_learning(
            &sim,
            &pool,
            &val_x,
            &val_y,
            &ActiveConfig {
                initial: 40,
                batch: 30,
                budget: 340,
                strategy,
                backend,
                surrogate: SurrogateConfig {
                    hidden: vec![64, 64],
                    dropout: 0.1,
                    epochs: 250,
                    mc_samples: 25,
                    ..Default::default()
                },
                seed,
            },
        )
        .expect("campaign runs")
    };

    // Average over a few seeds — AL curves are noisy at this scale.
    let seeds = [BENCH_SEED, BENCH_SEED + 1, BENCH_SEED + 2];
    let mut al_curves = Vec::new();
    let mut rand_curves = Vec::new();
    for &seed in &seeds {
        al_curves.push(run(
            AcquisitionStrategy::MaxUncertainty,
            UqBackend::Ensemble { members: 4 },
            seed,
        ));
        rand_curves.push(run(AcquisitionStrategy::Random, UqBackend::Ensemble { members: 4 }, seed));
    }
    let n_points = al_curves[0].curve.len();
    println!("## E5 — active learning vs random acquisition (localized-feature target, mean of {} seeds)\n", seeds.len());
    println!(
        "{}",
        md_row(&["runs".into(), "AL RMSE".into(), "random RMSE".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    let mut final_al = 0.0;
    let mut al_budget = 0;
    let mut rand_by_runs: Vec<(usize, f64)> = Vec::new();
    for i in 0..n_points {
        let runs = al_curves[0].curve[i].n_runs;
        let al: f64 =
            al_curves.iter().map(|c| c.curve[i].rmse).sum::<f64>() / seeds.len() as f64;
        let rnd: f64 =
            rand_curves.iter().map(|c| c.curve[i].rmse).sum::<f64>() / seeds.len() as f64;
        println!(
            "{}",
            md_row(&[runs.to_string(), format!("{al:.4}"), format!("{rnd:.4}")])
        );
        rand_by_runs.push((runs, rnd));
        if i == n_points - 1 {
            final_al = al;
            al_budget = runs;
        }
    }
    // Where does AL reach random's final quality?
    let rand_final = rand_by_runs.last().expect("non-empty").1;
    let al_runs_to_match = (0..n_points).find(|&i| {
        let al: f64 =
            al_curves.iter().map(|c| c.curve[i].rmse).sum::<f64>() / seeds.len() as f64;
        al <= rand_final
    });
    match al_runs_to_match {
        Some(i) => {
            let runs = al_curves[0].curve[i].n_runs;
            println!(
                "\nAL matches random's final RMSE ({rand_final:.4}) with {runs} of {al_budget} runs → data reduction {:.1}x",
                al_budget as f64 / runs as f64
            );
        }
        None => println!("\nAL did not reach random's final RMSE within the budget"),
    }
    println!(
        "final: AL {final_al:.4} vs random {rand_final:.4} at {al_budget} runs \
         (paper ref [34]: ~10x data reduction at production scale)"
    );
}
