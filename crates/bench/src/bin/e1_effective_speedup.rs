//! E1: the §III-D effective-speedup formula — sweep the lookup/train ratio
//! and verify both analytic limits, using the characteristic times
//! *measured* on this machine by the E2 fixtures.

use le_bench::{md_row, nano_dataset, nano_surrogate, BENCH_SEED};
use le_mdsim::nanoconfinement::NanoParams;
use le_perfmodel::scaling::{crossover_ratio, sweep_ratio};
use le_perfmodel::speedup::{lookup_limit, no_ml_limit, SpeedupTimes};

fn main() {
    // Every phase below lands in the causal event journal; the exports at
    // the end make the run inspectable with `obsctl timeline` / Perfetto.
    let trace_root = le_obs::trace_root!("e1.effective_speedup");
    // Measure the characteristic times with the real substrate.
    let (params, outputs) = nano_dataset(48, BENCH_SEED);
    let sim = le_mdsim::NanoSim::new(le_mdsim::SimConfig::fast());
    let probe = NanoParams {
        h: 3.0,
        z_p: 1,
        z_n: 1,
        c: 0.5,
        d: 0.6,
    };
    let t0 = std::time::Instant::now();
    let reps = 5;
    for i in 0..reps {
        let _ = sim.run(&probe, BENCH_SEED + i).expect("valid");
    }
    let t_train = t0.elapsed().as_secs_f64() / reps as f64;

    let t1 = std::time::Instant::now();
    let surrogate = nano_surrogate(&params, &outputs, 150, BENCH_SEED);
    let t_learn_total = t1.elapsed().as_secs_f64();
    let t_learn = t_learn_total / params.len() as f64;

    // Lookup cost measured the way a production campaign consumes the
    // surrogate: batched through the fused engine, buffers reused.
    let feats = probe.to_features();
    let lookups = 20_000;
    let chunk = 256;
    let mut batch_x = Vec::with_capacity(chunk * feats.len());
    for _ in 0..chunk {
        batch_x.extend_from_slice(&feats);
    }
    let mut batch_y = vec![0.0; chunk * surrogate.output_dim()];
    let t2 = std::time::Instant::now();
    let mut done = 0;
    while done < lookups {
        let rows = chunk.min(lookups - done);
        surrogate
            .predict_batch_into(
                &batch_x[..rows * feats.len()],
                rows,
                &mut batch_y[..rows * surrogate.output_dim()],
            )
            .expect("probe");
        done += rows;
    }
    let t_lookup = t2.elapsed().as_secs_f64() / lookups as f64;

    let times = SpeedupTimes {
        t_seq: t_train, // sequential = one un-parallelized simulation
        t_train,
        t_learn,
        t_lookup,
    };
    println!("## E1 — effective speedup (measured times, this machine)\n");
    println!(
        "T_seq = T_train = {:.3e}s, T_learn = {:.3e}s/sample, T_lookup = {:.3e}s\n",
        times.t_seq, times.t_learn, times.t_lookup
    );
    println!("{}", md_row(&["N_lookup / N_train".into(), "S".into()]));
    println!("{}", md_row(&["---".into(), "---".into()]));
    let points = sweep_ratio(&times, 100.0, -2, 6, 1).expect("valid sweep");
    for p in &points {
        println!(
            "{}",
            md_row(&[format!("1e{:+.0}", p.ratio.log10()), format!("{:.3e}", p.speedup)])
        );
    }
    let no_ml = no_ml_limit(&times).expect("valid");
    let asym = lookup_limit(&times).expect("valid");
    println!("\nno-ML limit T_seq/T_train = {no_ml:.3}");
    println!("lookup limit T_seq/T_lookup = {asym:.3e}");
    if let Some(r) = crossover_ratio(&points, 0.5 * asym) {
        println!("ratio reaching half the asymptote: {r:.1}");
    }
    let first = points.first().expect("non-empty").speedup;
    let last = points.last().expect("non-empty").speedup;
    println!(
        "\nshape check: S(1e-2) = {first:.2} ≈ no-ML limit; S(1e6) = {last:.3e} → {:.0}% of the asymptote",
        100.0 * last / asym
    );

    drop(trace_root); // close the root so the exported journal is balanced
    for res in [le_obs::write_snapshot("e1"), le_obs::write_trace("e1")] {
        match res {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("warning: observability export failed: {e}"),
        }
    }
}
