//! Deterministic serving campaign for the `le-serve` frontend.
//!
//! Generates a seeded multi-tenant workload (Poisson arrivals, mixed
//! request sizes, cached payload pool), drives it through the full
//! serving path — concurrent client threads → seq-ordered ingress ring →
//! logical-time admission → size/deadline wave formation →
//! `HybridEngine::query_each` — against a warm surrogate, and prints a
//! canonical `digest 0x…` line folding the workload identity, every
//! served output bit, every typed rejection, and the deterministic
//! serve/engine/supervisor counters.
//!
//! `scripts/verify.sh` runs this at `LE_POOL_THREADS` ∈ {1, 4, 7} and
//! requires byte-identical digests — the serving path, like the batch
//! engine underneath, must be bit-reproducible at any thread count and
//! any client interleaving. Wall-clock latency (the one non-deterministic
//! observable) is reported as p50/p99/p999 and recorded under the
//! `serve.latency` histogram prefix, which the obsctl gate `--ignore`s.
//!
//! ```sh
//! LE_POOL_THREADS=4 cargo run --release -p le-bench --bin serve_campaign
//! ```

use le_serve::{serve, Arrival, LoadConfig, LoopMode, ServeConfig, SizeClass, TenantQuota};
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, QuerySource, Simulator};

/// A cheap analytic "physics": smooth in the inputs so a small surrogate
/// generalizes, letting the campaign stay in the lookup fast path and
/// push ≥1M rows through the serving waves in seconds.
struct SyntheticSimulator;

impl Simulator for SyntheticSimulator {
    fn input_dim(&self) -> usize {
        3
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, input: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let (x, y, z) = (input[0], input[1], input[2]);
        Ok(vec![(0.7 * x).sin() * (0.4 * y).cos() + 0.1 * z])
    }
}

/// FNV-1a over the campaign's observable behaviour.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// The thread-invariant serving counters folded into the digest (the
/// thread-*variant* pool metrics `le_pool.*` and the wall-clock
/// `serve.latency*` histograms are deliberately excluded here and
/// `--ignore`d in the obsctl gate).
const SERVE_COUNTERS: [&str; 7] = [
    "serve.submitted",
    "serve.admitted",
    "serve.rejected",
    "serve.waves",
    "serve.rows_served",
    "serve.row_errors",
    "hybrid.sim_errors",
];

fn fail(what: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("{what}: {e}");
    std::process::exit(2);
}

fn main() {
    // A warm engine: seed enough smooth training data that the surrogate
    // trains immediately and the generous gate keeps the whole campaign
    // in the fused lookup path.
    let mut engine = match HybridEngine::new(
        SyntheticSimulator,
        HybridConfig {
            uncertainty_threshold: 5.0,
            min_training_runs: 32,
            retrain_growth: 8.0,
            surrogate: SurrogateConfig {
                hidden: vec![16],
                epochs: 30,
                mc_samples: 4,
                seed: 9,
                ..Default::default()
            },
        },
    ) {
        Ok(e) => e,
        Err(e) => fail("engine rejected", e),
    };
    let mut warm_rng = le_linalg::Rng::substream(0x5EED_CAFE, 0);
    let warm_x: Vec<Vec<f64>> = (0..48)
        .map(|_| (0..3).map(|_| warm_rng.uniform_in(-1.5, 1.5)).collect())
        .collect();
    let warm_y: Vec<Vec<f64>> = warm_x
        .iter()
        .map(|x| SyntheticSimulator.simulate(x, 0).unwrap_or_default())
        .collect();
    if let Err(e) = engine.seed_training(&warm_x, &warm_y) {
        fail("seed training rejected", e);
    }
    if !engine.has_surrogate() {
        fail("warmup", "surrogate did not train from the seeded runs");
    }

    // The workload: 100k requests, ~11.6 rows/request → ~1.16M rows, three
    // tenants, Poisson arrivals at 40k req/s (~2.5 logical seconds).
    let workload = match le_serve::loadgen::generate(&LoadConfig {
        seed: le_bench::BENCH_SEED,
        requests: 100_000,
        input_dim: 3,
        domain: (-1.5, 1.5),
        payload_pool: 4096,
        tenants: vec![0.5, 0.3, 0.2],
        sizes: vec![
            SizeClass { rows: 2, weight: 0.40 },
            SizeClass { rows: 8, weight: 0.35 },
            SizeClass { rows: 32, weight: 0.25 },
        ],
        arrival: Arrival::Poisson { rate: 40_000.0 },
    }) {
        Ok(w) => w,
        Err(e) => fail("workload rejected", e),
    };

    // Tenants 0/1 are unconstrained; tenant 2's bucket is sized below its
    // offered row rate, so a deterministic slice of its bursts bounces
    // with typed backpressure — the rejection path is part of the digest.
    let cfg = ServeConfig {
        clients: 6,
        queue_capacity: 1024,
        batch_max_rows: 4096,
        deadline: 0.02,
        mode: LoopMode::Open,
        quotas: vec![
            TenantQuota::unlimited(),
            TenantQuota::unlimited(),
            TenantQuota { rate: 70_000.0, burst: 512.0 },
        ],
    };

    let sw = le_obs::Stopwatch::start();
    let report = match serve(&mut engine, &workload, &cfg) {
        Ok(r) => r,
        Err(e) => fail("serve run failed", e),
    };
    let wall = sw.elapsed_secs();

    // Fold the deterministic surface: workload identity, every response
    // in sequence order (outputs bit-exact, rejections by their typed
    // message), then the serve/engine/supervisor counters.
    let mut digest = Digest::new();
    digest.u64(workload.digest());
    for resp in &report.responses {
        digest.u64(resp.seq);
        digest.u64(resp.tenant as u64);
        match &resp.outcome {
            Ok(rows) => {
                for row in rows {
                    match row {
                        Ok(r) => {
                            digest.byte(match r.source {
                                QuerySource::Lookup => 1,
                                QuerySource::Simulated => 2,
                            });
                            for v in &r.output {
                                digest.f64(*v);
                            }
                            digest.f64(r.gate_std.unwrap_or(f64::NAN));
                        }
                        Err(e) => {
                            digest.byte(3);
                            digest.str(&e.to_string());
                        }
                    }
                }
            }
            Err(e) => {
                digest.byte(4);
                digest.str(&e.to_string());
            }
        }
    }
    for t in 0..workload.tenants {
        digest.u64(report.submitted[t]);
        digest.u64(report.admitted[t]);
        digest.u64(report.rejected[t]);
    }
    digest.u64(report.waves);
    digest.u64(report.rows_served);
    digest.u64(report.row_errors);
    digest.u64(engine.n_lookups());
    digest.u64(engine.n_simulations());
    digest.u64(engine.supervisor().retries());
    digest.u64(engine.supervisor().quarantines());
    let snap = le_obs::snapshot();
    for name in SERVE_COUNTERS {
        digest.str(name);
        digest.u64(snap.counter(name).unwrap_or(0));
    }

    let total_sub: u64 = report.submitted.iter().sum();
    let total_rej: u64 = report.rejected.iter().sum();
    println!(
        "serve: {} requests ({} rejected), {} waves, lookup fraction {:.3}",
        total_sub,
        total_rej,
        report.waves,
        engine.lookup_fraction(),
    );
    println!("rows_served {}", report.rows_served);
    println!(
        "latency: p50_us {:.1} p99_us {:.1} p999_us {:.1} max_us {:.1} mean_us {:.1}",
        report.latency.p50 * 1e6,
        report.latency.p99 * 1e6,
        report.latency.p999 * 1e6,
        report.latency.max * 1e6,
        report.latency.mean * 1e6,
    );
    println!(
        "throughput: {:.0} rows/s over {:.2}s wall",
        report.rows_served as f64 / wall.max(1e-9),
        wall
    );
    println!("digest 0x{:016x}", digest.0);

    match le_obs::write_snapshot("serve_campaign") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write OBS snapshot: {e}"),
    }
}
