//! E2: the nanoconfinement MLaroundHPC study (paper ref [26]): train on a
//! 70/30 split of a parameter sweep, report per-output accuracy and the
//! simulation-vs-lookup speedup.

use le_bench::{md_row, nano_surrogate, BENCH_SEED};
use le_linalg::stats;
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};

fn main() {
    // Scaled-down sweep (the paper's companion used 6864 runs; grid(11)
    // reproduces that size — use a subsample for minutes-scale runtime).
    let n_total = 560;
    let split = (n_total as f64 * 0.7) as usize; // 70/30 like ref [26]
    let sim = NanoSim::new(SimConfig::fast());
    let mut rng = le_linalg::Rng::new(BENCH_SEED);
    let params: Vec<NanoParams> = (0..n_total).map(|_| NanoParams::sample(&mut rng)).collect();
    eprintln!("running {n_total} MD simulations…");
    let t0 = std::time::Instant::now();
    let outputs: Vec<Vec<f64>> =
        le_pool::par_map_index(params.len(), |i| {
            sim.run(&params[i], BENCH_SEED ^ (i as u64 + 1)).expect("valid").0.to_vec()
        });
    let per_sim = t0.elapsed().as_secs_f64() / n_total as f64;

    let surrogate = nano_surrogate(&params[..split], &outputs[..split], 400, BENCH_SEED);

    println!("## E2 — nanoconfinement surrogate (S = {split} train / {} test)\n", n_total - split);
    println!(
        "{}",
        md_row(&["output".into(), "RMSE (1/nm³)".into(), "R²".into(), "Pearson".into()])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into(), "---".into()]));
    // One fused batch over the whole test split (the old loop re-predicted
    // every point once per output column).
    let test_x: Vec<Vec<f64>> = (split..n_total).map(|i| params[i].to_features().to_vec()).collect();
    let test_pred = surrogate.predict_batch(&test_x).expect("5 features");
    for (k, name) in ["contact", "mid", "peak"].iter().enumerate() {
        let mut pred = Vec::new();
        let mut truth = Vec::new();
        for i in split..n_total {
            pred.push(test_pred[i - split][k]);
            truth.push(outputs[i][k]);
        }
        println!(
            "{}",
            md_row(&[
                name.to_string(),
                format!("{:.4}", stats::rmse(&pred, &truth).expect("non-empty")),
                format!("{:.3}", stats::r2(&pred, &truth).expect("non-empty")),
                format!("{:.3}", stats::pearson(&pred, &truth).expect("non-empty")),
            ])
        );
    }

    // Speedup: lookups batched through the fused engine, buffers reused.
    let feats = params[0].to_features();
    let lookups = 50_000;
    let chunk = 256;
    let mut batch_x = Vec::with_capacity(chunk * feats.len());
    for _ in 0..chunk {
        batch_x.extend_from_slice(&feats);
    }
    let mut batch_y = vec![0.0; chunk * surrogate.output_dim()];
    let t1 = std::time::Instant::now();
    let mut done = 0;
    while done < lookups {
        let rows = chunk.min(lookups - done);
        surrogate
            .predict_batch_into(
                &batch_x[..rows * feats.len()],
                rows,
                &mut batch_y[..rows * surrogate.output_dim()],
            )
            .expect("probe");
        done += rows;
    }
    let per_lookup = t1.elapsed().as_secs_f64() / lookups as f64;
    println!(
        "\nper-simulation {per_sim:.3e}s vs per-lookup {per_lookup:.3e}s → **{:.0}x** \
         (paper's production runs: ~1e5x; shape holds — the factor is set by \
         simulation length, which is reduced here)",
        per_sim / per_lookup
    );
}
