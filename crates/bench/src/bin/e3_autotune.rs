//! E3: MLautotuning (paper ref [9]) — the 6→30→48→3-style net learns
//! optimal run configurations; measure suggestion accuracy and the
//! search-vs-suggest speedup, plus the production-throughput gain of
//! running at the tuned timestep instead of the safe default.

use le_bench::{md_row, BENCH_SEED};
use le_linalg::Rng;
use le_mdsim::nanoconfinement::{NanoParams, SimConfig};
use le_mdsim::NanoSim;
use learning_everywhere::autotune::{label_examples, Autotuner, TuningProblem};
use learning_everywhere::surrogate::SurrogateConfig;

struct DtSearch;

impl DtSearch {
    const GRID: [f64; 7] = [0.04, 0.03, 0.02, 0.015, 0.01, 0.007, 0.005];
    fn probe(dt: f64) -> SimConfig {
        SimConfig {
            dt,
            equil_steps: 150,
            prod_steps: 400,
            ..SimConfig::fast()
        }
    }
}

impl TuningProblem for DtSearch {
    fn param_dim(&self) -> usize {
        5
    }
    fn config_dim(&self) -> usize {
        1
    }
    fn search_optimal(&self, params: &[f64]) -> learning_everywhere::Result<Vec<f64>> {
        let p = NanoParams::from_features(params)
            .map_err(|e| learning_everywhere::LeError::Simulation(e.to_string()))?;
        for &dt in &Self::GRID {
            if NanoSim::new(Self::probe(dt)).run(&p, 5).is_ok() {
                return Ok(vec![dt]);
            }
        }
        Ok(vec![Self::GRID[6]])
    }
    fn safe_default(&self) -> Vec<f64> {
        vec![Self::GRID[6]]
    }
}

fn main() {
    let mut rng = Rng::new(BENCH_SEED);
    let n_train = 120;
    let n_test = 25;
    eprintln!("labelling {n_train} training points by stability search…");
    let train_params: Vec<Vec<f64>> = (0..n_train)
        .map(|_| NanoParams::sample(&mut rng).to_features().to_vec())
        .collect();
    let t0 = std::time::Instant::now();
    let examples = label_examples(&DtSearch, &train_params).expect("searches run");
    let per_search = t0.elapsed().as_secs_f64() / n_train as f64;

    let mut tuner = Autotuner::fit(
        &examples,
        DtSearch.safe_default(),
        &SurrogateConfig {
            hidden: vec![30, 48], // ref [9]'s architecture
            dropout: 0.05,
            epochs: 300,
            mc_samples: 25,
            seed: BENCH_SEED,
            ..Default::default()
        },
        0.02,
    )
    .expect("fits");

    let mut within_one = 0;
    let mut learned_count = 0;
    let mut suggest_secs = 0.0;
    let mut speed_ratio_sum = 0.0;
    for _ in 0..n_test {
        let p = NanoParams::sample(&mut rng);
        let feats = p.to_features().to_vec();
        let truth = DtSearch.search_optimal(&feats).expect("search")[0];
        let t1 = std::time::Instant::now();
        let s = tuner.suggest(&feats).expect("suggests");
        suggest_secs += t1.elapsed().as_secs_f64();
        if s.learned {
            learned_count += 1;
        }
        if (s.config[0] - truth).abs() <= 0.012 {
            within_one += 1;
        }
        // Throughput gain at the tuned dt vs the safe default (both valid):
        // steps to cover fixed physical time ∝ 1/dt.
        let tuned_dt = s.config[0].clamp(0.005, truth); // never exceed the stable optimum
        speed_ratio_sum += tuned_dt / DtSearch.safe_default()[0];
    }

    println!("## E3 — MLautotuning of the MD timestep\n");
    println!("{}", md_row(&["metric".into(), "value".into()]));
    println!("{}", md_row(&["---".into(), "---".into()]));
    println!("{}", md_row(&["training labels".into(), n_train.to_string()]));
    println!(
        "{}",
        md_row(&["suggestions within one grid step".into(), format!("{within_one}/{n_test}")])
    );
    println!(
        "{}",
        md_row(&["learned (vs safe-fallback) suggestions".into(), format!("{learned_count}/{n_test}")])
    );
    println!(
        "{}",
        md_row(&["search time / point".into(), format!("{per_search:.3e}s")])
    );
    println!(
        "{}",
        md_row(&["suggestion time / point".into(), format!("{:.3e}s", suggest_secs / n_test as f64)])
    );
    println!(
        "{}",
        md_row(&[
            "tuning amortization".into(),
            format!("{:.0}x", per_search / (suggest_secs / n_test as f64))
        ])
    );
    println!(
        "{}",
        md_row(&[
            "production throughput vs safe default".into(),
            format!("{:.1}x (mean dt ratio)", speed_ratio_sum / n_test as f64)
        ])
    );
}
