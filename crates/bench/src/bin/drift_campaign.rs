//! Deterministic drift campaign for the staleness/rolling-retrain gate.
//!
//! **Phase A (accuracy arms).** A seeded `le-drift` schedule shifts the
//! nanoconfinement parameter distribution over logical time (an h-ramp, a
//! c-oscillation, a d-step — all clamped physical). Two arms consume the
//! same drifted stream:
//!
//! * **frozen** — an `NnSurrogate` fitted once on the pre-drift
//!   distribution and never updated. Its windowed RMSE must degrade ≥3×
//!   between the pre-drift window and the post-saturation window: the
//!   drift is real.
//! * **rolling** — a `HybridEngine` with staleness detection and the
//!   rolling-retrain path enabled. Mid-wave retrain triggers are deferred
//!   (the in-flight wave answers from the frozen snapshot — serving never
//!   pauses) and the swap lands at the wave boundary. Its final-window
//!   answer RMSE must hold within 1.25× of its own pre-drift window.
//!
//! **Phase B (chaos arm).** The same drift machinery applied to a
//! `le-serve` payload pool (logical time = pool row index), composed with
//! `le-faults` injection and multi-tenant traffic at saturation: drifted
//! inputs fall through the gate into a faulty simulator while a tight
//! tenant bucket bounces bursts with typed backpressure — and the whole
//! run stays deterministic.
//!
//! The binary enforces the acceptance thresholds itself (exit 1 on a
//! miss) and prints a canonical `digest 0x…` line folding every served
//! answer bit, both arms' windowed RMSEs, every chaos-arm response, and
//! the thread-invariant drift/rolling/staleness counters.
//! `scripts/verify.sh` runs this at `LE_POOL_THREADS` ∈ {1, 4, 7} and
//! requires byte-identical digests, then diffs the exported
//! `results/OBS_drift_campaign.json` against the committed baseline.
//!
//! ```sh
//! LE_POOL_THREADS=4 cargo run --release -p le-bench --bin drift_campaign
//! ```

use le_drift::presets::{nanoconfinement, shift_nano};
use le_drift::{AxisDrift, DriftSchedule, DriftWave};
use le_faults::{FaultPlan, FaultRates, FaultySimulator};
use le_mdsim::nanoconfinement::NanoParams;
use le_serve::{serve, Arrival, LoadConfig, LoopMode, ServeConfig, SizeClass, TenantQuota};
use learning_everywhere::surrogate::{NnSurrogate, SurrogateConfig};
use learning_everywhere::{
    HybridConfig, HybridEngine, QuerySource, RollingRetrainConfig, Simulator, StalenessConfig,
    SupervisorConfig,
};

/// Campaign timeline (logical steps = query indices).
const WARMUP: u64 = 64; // drift-free prefix
const SPAN: u64 = 256; // ramp length; step lands at WARMUP + SPAN/2
const TOTAL: u64 = 896; // whole stream (long settled tail after the ramp)
const WAVE: usize = 16; // rows per serving wave
const WINDOW: u64 = 64; // RMSE window (pre = first, final = last)

/// The nanoconfinement stand-in "physics": a cheap analytic function of
/// the 5 features `[h, z_p, z_n, c, d]`, curved enough in `h` that a
/// surrogate fitted on a narrow pre-drift slab extrapolates badly once
/// the ramp saturates.
struct AnalyticNano;

fn nano_truth(f: &[f64]) -> f64 {
    let (h, zp, zn, c, d) = (f[0], f[1], f[2], f[3], f[4]);
    (1.7 * h).sin() * (1.0 + 0.6 * c) + 0.25 * (h - 2.4) * (h - 2.4) + 1.2 * d
        + 0.08 * zp
        - 0.05 * zn
}

impl Simulator for AnalyticNano {
    fn input_dim(&self) -> usize {
        5
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, input: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        Ok(vec![nano_truth(input)])
    }
}

/// The chaos-arm "physics" behind the serving frontend (3-wide rows).
struct ServeSim;

impl Simulator for ServeSim {
    fn input_dim(&self) -> usize {
        3
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, input: &[f64], _seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let (x, y, z) = (input[0], input[1], input[2]);
        Ok(vec![(0.7 * x).sin() * (0.4 * y).cos() + 0.1 * z])
    }
}

/// FNV-1a over the campaign's observable behaviour.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// The thread-invariant drift/rolling/staleness counters folded into the
/// digest (thread-*variant* pool metrics `le_pool.*` and wall-clock
/// `serve.latency*` histograms are excluded here and `--ignore`d in the
/// obsctl gate).
const DRIFT_COUNTERS: [&str; 16] = [
    "staleness.flagged",
    "staleness.std_inflation",
    "staleness.calibration_decay",
    "supervisor.stale",
    "supervisor.retrain_failed",
    "hybrid.rolling.swaps",
    "hybrid.rolling.deferred",
    "hybrid.rolling.evicted",
    "faults.injected.sim_error",
    "faults.injected.nonfinite",
    "serve.submitted",
    "serve.admitted",
    "serve.rejected",
    "serve.waves",
    "serve.rows_served",
    "serve.row_errors",
];

fn fail_config(what: &str, e: impl std::fmt::Display) -> ! {
    eprintln!("{what}: {e}");
    std::process::exit(2);
}

fn gate(ok: bool, what: &str) {
    if !ok {
        eprintln!("ACCEPTANCE FAILED: {what}");
        std::process::exit(1);
    }
}

/// A pre-drift nanoconfinement parameter point: the *narrow* slab the
/// frozen surrogate is trained on, well inside the physical ranges, so the
/// clamped drift schedule still leaves it and lands genuinely
/// out-of-distribution.
fn base_point(rng: &mut le_linalg::Rng) -> NanoParams {
    NanoParams {
        h: rng.uniform_in(2.1, 2.7),
        z_p: 1 + rng.below(3) as u32,
        z_n: 1 + rng.below(2) as u32,
        c: rng.uniform_in(0.4, 0.6),
        d: rng.uniform_in(0.52, 0.6),
    }
}

fn rmse(errs: &[f64]) -> f64 {
    if errs.is_empty() {
        return f64::NAN;
    }
    (errs.iter().map(|e| e * e).sum::<f64>() / errs.len() as f64).sqrt()
}

fn main() {
    let mut digest = Digest::new();
    let schedule = nanoconfinement(0xD21F_7, WARMUP, SPAN);

    // The drifted query stream, fixed up front: point t is a narrow-slab
    // base point shifted by the schedule at logical time t.
    let mut stream_rng = le_linalg::Rng::substream(0xD21F_7, 1);
    let stream: Vec<Vec<f64>> = (0..TOTAL)
        .map(|t| {
            let p = shift_nano(&schedule, &base_point(&mut stream_rng), t);
            p.to_features().to_vec()
        })
        .collect();

    // Pre-drift training set: 256 clean narrow-slab runs.
    let mut train_rng = le_linalg::Rng::substream(0xD21F_7, 2);
    let train: Vec<Vec<f64>> = (0..256)
        .map(|_| base_point(&mut train_rng).to_features().to_vec())
        .collect();
    let train_y: Vec<Vec<f64>> = train.iter().map(|f| vec![nano_truth(f)]).collect();

    let surrogate_cfg = SurrogateConfig {
        hidden: vec![32, 32],
        epochs: 200,
        mc_samples: 8,
        seed: 7,
        ..Default::default()
    };

    // ---- Phase A, arm 1: the frozen surrogate. ----
    let x = le_linalg::Matrix::from_rows(&train.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
    let y = le_linalg::Matrix::from_rows(&train_y.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
    let frozen = match NnSurrogate::fit(&x, &y, &surrogate_cfg) {
        Ok(s) => s,
        Err(e) => fail_config("frozen surrogate fit", e),
    };
    let mut pre_errs = Vec::new();
    let mut post_errs = Vec::new();
    for (t, row) in stream.iter().enumerate() {
        let pred = match frozen.predict(row) {
            Ok(p) => p[0],
            Err(e) => fail_config("frozen predict", e),
        };
        let err = pred - nano_truth(row);
        if (t as u64) < WINDOW {
            pre_errs.push(err);
        } else if t as u64 >= TOTAL - 2 * WINDOW {
            post_errs.push(err);
        }
    }
    let frozen_pre = rmse(&pre_errs);
    let frozen_post = rmse(&post_errs);
    let frozen_ratio = frozen_post / frozen_pre;
    println!(
        "frozen rmse: pre {frozen_pre:.4} post {frozen_post:.4} ratio {frozen_ratio:.1}"
    );
    digest.f64(frozen_pre);
    digest.f64(frozen_post);

    // ---- Phase A, arm 2: the rolling-retrain engine. ----
    let mut engine = match HybridEngine::with_supervisor(
        AnalyticNano,
        HybridConfig {
            uncertainty_threshold: 0.30,
            min_training_runs: 192,
            retrain_growth: 1.1,
            surrogate: surrogate_cfg.clone(),
        },
        SupervisorConfig {
            max_retries: 2,
            quarantine_after: 5,
            degrade_after: 5,
        },
    ) {
        Ok(e) => e,
        Err(e) => fail_config("rolling engine rejected", e),
    };
    if let Err(e) = engine.enable_rolling_retrain(RollingRetrainConfig {
        buffer_cap: 192,
        recent_boost: 96,
        audit_every: 3,
    }) {
        fail_config("rolling config rejected", e);
    }
    if let Err(e) = engine.enable_staleness(StalenessConfig {
        window: 12,
        baseline: 12,
        std_ratio: 1.4,
        nominal_coverage: 0.9,
        min_coverage: 0.5,
        min_labelled: 12,
    }) {
        fail_config("staleness config rejected", e);
    }
    if let Err(e) = engine.seed_training(&train, &train_y) {
        fail_config("rolling seed training", e);
    }
    if !engine.has_surrogate() {
        fail_config("rolling warmup", "surrogate did not train from seeded runs");
    }

    let mut served = 0u64;
    let mut pre = (Vec::new(), 0u64); // (errors, lookups)
    let mut fin = (Vec::new(), 0u64);
    let mut gate_stds: Vec<(u64, f64)> = Vec::new();
    for (w, wave) in stream.chunks(WAVE).enumerate() {
        let results = match engine.query_batch(wave) {
            Ok(r) => r,
            Err(e) => {
                // Acceptance: the rolling engine answers every wave.
                eprintln!("wave {w} failed under drift: {e}");
                std::process::exit(1);
            }
        };
        for (k, r) in results.iter().enumerate() {
            let t = (w * WAVE + k) as u64;
            served += 1;
            digest.u64(t);
            digest.byte(match r.source {
                QuerySource::Lookup => 1,
                QuerySource::Simulated => 2,
            });
            for v in &r.output {
                digest.f64(*v);
            }
            if let Some(s) = r.gate_std {
                gate_stds.push((t, s));
            }
            let err = r.output[0] - nano_truth(&stream[t as usize]);
            let bucket = if t < WINDOW {
                Some(&mut pre)
            } else if t >= TOTAL - WINDOW {
                Some(&mut fin)
            } else {
                None
            };
            if let Some((errs, lookups)) = bucket {
                errs.push(err);
                if r.source == QuerySource::Lookup {
                    *lookups += 1;
                }
            }
        }
    }
    if std::env::var("DRIFT_DEBUG").is_ok() {
        let win = |lo: u64, hi: u64| {
            let v: Vec<f64> = gate_stds
                .iter()
                .filter(|(t, _)| *t >= lo && *t < hi)
                .map(|(_, s)| *s)
                .collect();
            let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
            let max = v.iter().cloned().fold(0.0, f64::max);
            (v.len(), mean, max)
        };
        let mut lo = 0;
        while lo < TOTAL {
            let hi = (lo + 2 * WINDOW).min(TOTAL);
            let (n, mean, max) = win(lo, hi);
            eprintln!("gate_std [{lo},{hi}): n {n} mean {mean:.4} max {max:.4}");
            lo = hi;
        }
    }
    let rolling_pre = rmse(&pre.0);
    let rolling_fin = rmse(&fin.0);
    println!(
        "rolling rmse: pre {rolling_pre:.4} final {rolling_fin:.4} ratio {:.2}",
        rolling_fin / rolling_pre
    );
    println!(
        "rolling: served {served}/{TOTAL}, swaps {} deferrals {} evictions {} stale_flags {} \
         lookup fraction {:.2} (final window {}/{WINDOW} lookups)",
        engine.rolling_swaps(),
        engine.rolling_deferrals(),
        engine.rolling_evictions(),
        engine.supervisor().stale_flags(),
        engine.lookup_fraction(),
        fin.1,
    );
    digest.f64(rolling_pre);
    digest.f64(rolling_fin);
    digest.u64(engine.rolling_swaps());
    digest.u64(engine.rolling_deferrals());
    digest.u64(engine.supervisor().stale_flags());

    // The acceptance thresholds the gate rests on.
    gate(served == TOTAL, "rolling arm must answer every query (serving never pauses)");
    gate(
        frozen_ratio >= 3.0,
        "frozen surrogate RMSE must degrade >= 3x under the drift schedule",
    );
    gate(
        rolling_fin <= 1.25 * rolling_pre,
        "rolling-retrain engine must hold final RMSE within 1.25x of pre-drift",
    );
    gate(
        engine.rolling_swaps() >= 1,
        "rolling engine must actually swap snapshots at a wave boundary",
    );
    gate(
        engine.supervisor().stale_flags() >= 1,
        "staleness detector must flag the drift",
    );
    gate(
        fin.1 > 0,
        "recovered surrogate must serve lookups in the final window",
    );

    // ---- Phase B: the chaos arm — drifted payloads + fault injection
    // ---- under multi-tenant serving at saturation.
    let plan = match FaultPlan::new(
        0xD21F_FA,
        FaultRates {
            sim_error: 0.05,
            nonfinite: 0.03,
            stall: 0.0,
        },
    ) {
        Ok(p) => p,
        Err(e) => fail_config("fault plan rejected", e),
    };
    let mut chaos = match HybridEngine::with_supervisor(
        FaultySimulator::new(ServeSim, plan.clone()),
        HybridConfig {
            uncertainty_threshold: 0.35,
            min_training_runs: 48,
            retrain_growth: 1.5,
            surrogate: SurrogateConfig {
                hidden: vec![16],
                epochs: 30,
                mc_samples: 4,
                seed: 9,
                ..Default::default()
            },
        },
        SupervisorConfig {
            max_retries: 3,
            quarantine_after: 4,
            degrade_after: 4,
        },
    ) {
        Ok(e) => e,
        Err(e) => fail_config("chaos engine rejected", e),
    };
    if let Err(e) = chaos.enable_rolling_retrain(RollingRetrainConfig {
        buffer_cap: 512,
        recent_boost: 64,
        audit_every: 16,
    }) {
        fail_config("chaos rolling config", e);
    }
    if let Err(e) = chaos.enable_staleness(StalenessConfig {
        window: 64,
        baseline: 64,
        std_ratio: 1.5,
        nominal_coverage: 0.9,
        min_coverage: 0.5,
        min_labelled: 64,
    }) {
        fail_config("chaos staleness config", e);
    }
    let mut warm_rng = le_linalg::Rng::substream(0x5EED_CAFE, 7);
    let warm_x: Vec<Vec<f64>> = (0..64)
        .map(|_| (0..3).map(|_| warm_rng.uniform_in(-1.5, 1.5)).collect())
        .collect();
    let warm_y: Vec<Vec<f64>> = warm_x
        .iter()
        .map(|x| ServeSim.simulate(x, 0).unwrap_or_default())
        .collect();
    if let Err(e) = chaos.seed_training(&warm_x, &warm_y) {
        fail_config("chaos seed training", e);
    }

    let mut workload = match le_serve::loadgen::generate(&LoadConfig {
        seed: le_bench::BENCH_SEED,
        requests: 20_000,
        input_dim: 3,
        domain: (-1.5, 1.5),
        payload_pool: 2048,
        tenants: vec![0.5, 0.3, 0.2],
        sizes: vec![
            SizeClass { rows: 2, weight: 0.40 },
            SizeClass { rows: 8, weight: 0.35 },
            SizeClass { rows: 32, weight: 0.25 },
        ],
        arrival: Arrival::Poisson { rate: 40_000.0 },
    }) {
        Ok(w) => w,
        Err(e) => fail_config("chaos workload rejected", e),
    };
    // Drift the payload pool in place: logical time = pool row index, so
    // late rows are far from the training distribution. Deterministic —
    // the same row drifts identically at any thread count.
    let pool_schedule = match DriftSchedule::new(
        0xD21F_9,
        vec![
            AxisDrift {
                axis: 0,
                wave: DriftWave::Ramp {
                    start: 256,
                    end: 1536,
                    amplitude: 1.8,
                },
            },
            AxisDrift {
                axis: 1,
                wave: DriftWave::Step {
                    at: 1024,
                    amplitude: -1.2,
                },
            },
            AxisDrift {
                axis: 2,
                wave: DriftWave::Oscillation {
                    period: 512,
                    amplitude: 0.6,
                },
            },
        ],
        0.01,
    ) {
        Ok(s) => s,
        Err(e) => fail_config("pool schedule rejected", e),
    };
    let dim = workload.input_dim;
    for i in 0..workload.pool.len() / dim {
        pool_schedule.shift_row(&mut workload.pool[i * dim..(i + 1) * dim], i as u64);
    }

    // Saturation: a tight ingress ring plus one under-provisioned tenant
    // bucket — a deterministic slice of the traffic bounces with typed
    // backpressure while drifted rows fall through the gate into the
    // faulty simulator.
    let cfg = ServeConfig {
        clients: 4,
        queue_capacity: 512,
        batch_max_rows: 2048,
        deadline: 0.02,
        mode: LoopMode::Open,
        quotas: vec![
            TenantQuota::unlimited(),
            TenantQuota::unlimited(),
            TenantQuota { rate: 50_000.0, burst: 384.0 },
        ],
    };
    let report = match serve(&mut chaos, &workload, &cfg) {
        Ok(r) => r,
        Err(e) => fail_config("chaos serve run failed", e),
    };

    digest.u64(workload.digest());
    for resp in &report.responses {
        digest.u64(resp.seq);
        digest.u64(resp.tenant as u64);
        match &resp.outcome {
            Ok(rows) => {
                for row in rows {
                    match row {
                        Ok(r) => {
                            digest.byte(match r.source {
                                QuerySource::Lookup => 1,
                                QuerySource::Simulated => 2,
                            });
                            for v in &r.output {
                                digest.f64(*v);
                            }
                        }
                        Err(e) => {
                            digest.byte(3);
                            digest.str(&e.to_string());
                        }
                    }
                }
            }
            Err(e) => {
                digest.byte(4);
                digest.str(&e.to_string());
            }
        }
    }
    for t in 0..workload.tenants {
        digest.u64(report.submitted[t]);
        digest.u64(report.admitted[t]);
        digest.u64(report.rejected[t]);
    }
    digest.u64(report.waves);
    digest.u64(report.rows_served);
    digest.u64(report.row_errors);
    digest.u64(chaos.n_lookups());
    digest.u64(chaos.n_simulations());
    digest.u64(chaos.rolling_swaps());
    digest.u64(chaos.supervisor().stale_flags());
    digest.u64(chaos.supervisor().retries());
    digest.u64(chaos.supervisor().quarantines());

    let total_sub: u64 = report.submitted.iter().sum();
    let total_rej: u64 = report.rejected.iter().sum();
    println!(
        "chaos: {} requests ({} rejected), {} waves, rows_served {}, row_errors {}, \
         injected calls {}, swaps {}, stale_flags {}, state {:?}",
        total_sub,
        total_rej,
        report.waves,
        report.rows_served,
        report.row_errors,
        chaos.simulator().calls(),
        chaos.rolling_swaps(),
        chaos.supervisor().stale_flags(),
        chaos.supervisor().state(),
    );
    gate(total_rej > 0, "chaos arm must exercise backpressure at saturation");
    gate(
        report.rows_served > 0,
        "chaos arm must serve rows despite drift and faults",
    );

    // Fold the thread-invariant counters.
    let snap = le_obs::snapshot();
    for name in DRIFT_COUNTERS {
        digest.str(name);
        digest.u64(snap.counter(name).unwrap_or(0));
    }
    println!("digest 0x{:016x}", digest.0);

    match le_obs::write_snapshot("drift_campaign") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write OBS snapshot: {e}"),
    }
}
