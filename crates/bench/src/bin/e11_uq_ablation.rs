//! E11 (ablation): UQ quality versus dropout rate, against a deep-ensemble
//! reference — research issue 10: "two models with different dropout rates
//! can produce different UQ results".

use le_bench::{md_row, BENCH_SEED};
use le_linalg::{Matrix, Rng};
use le_nn::{Activation, MlpConfig, TrainConfig};
use le_uq::{calibration_error, DeepEnsemble, McDropout, Prediction, UncertainModel};

fn dataset(n: usize, noise: f64, seed: u64) -> (Matrix, Matrix) {
    let mut rng = Rng::new(seed);
    let mut x = Matrix::zeros(n, 2);
    let mut y = Matrix::zeros(n, 1);
    for i in 0..n {
        let a = rng.uniform_in(-1.0, 1.0);
        let b = rng.uniform_in(-1.0, 1.0);
        x.set(i, 0, a);
        x.set(i, 1, b);
        y.set(i, 0, (3.0 * a).sin() * b + noise * rng.gaussian());
    }
    (x, y)
}

fn main() {
    let noise = 0.05;
    let (x_train, y_train) = dataset(600, noise, BENCH_SEED);
    let (x_test, y_test) = dataset(400, noise, BENCH_SEED ^ 1);
    let targets: Vec<Vec<f64>> = (0..x_test.rows()).map(|i| y_test.row(i).to_vec()).collect();

    println!("## E11 — UQ calibration: dropout rate ablation vs deep ensemble\n");
    println!(
        "{}",
        md_row(&[
            "method".into(),
            "MACE (mean |nominal − observed| coverage)".into(),
            "sharpness (mean σ)".into(),
        ])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));

    for &rate in &[0.05, 0.1, 0.2, 0.35, 0.5] {
        let mut rng = Rng::new(BENCH_SEED ^ (rate * 100.0) as u64);
        let mut net = le_nn::Mlp::new(
            MlpConfig {
                layers: vec![2, 64, 64, 1],
                hidden_activation: Activation::Tanh,
                output_activation: Activation::Identity,
                dropout: rate,
            },
            &mut rng,
        )
        .expect("valid");
        le_nn::Trainer::new(TrainConfig {
            epochs: 250,
            ..Default::default()
        })
        .fit(&mut net, &x_train, &y_train)
        .expect("trains");
        let mut mc = McDropout::new(net, 60, BENCH_SEED);
        let preds: Vec<Prediction> = mc.predict_batch(&x_test);
        let report = calibration_error(&preds, &targets, 0).expect("well-formed calibration set");
        println!(
            "{}",
            md_row(&[
                format!("MC-dropout p = {rate}"),
                format!("{:.3}", report.mace),
                format!("{:.4}", report.sharpness),
            ])
        );
    }

    // Deep-ensemble reference.
    let ensemble = DeepEnsemble::train(
        &MlpConfig::regression(&[2, 64, 64, 1]),
        &TrainConfig {
            epochs: 250,
            ..Default::default()
        },
        &x_train,
        &y_train,
        5,
        true,
        BENCH_SEED,
    )
    .expect("trains");
    let mut ens = ensemble;
    let preds: Vec<Prediction> = (0..x_test.rows())
        .map(|i| ens.predict_with_uncertainty(x_test.row(i)))
        .collect();
    let report = calibration_error(&preds, &targets, 0).expect("well-formed calibration set");
    println!(
        "{}",
        md_row(&[
            "deep ensemble (5 members)".into(),
            format!("{:.3}", report.mace),
            format!("{:.4}", report.sharpness),
        ])
    );
    println!(
        "\npaper's research issue 10 reproduced: dropout-UQ calibration depends \
         strongly on the dropout rate (an architecture choice), motivating \
         more reliable UQ such as ensembles."
    );
}
