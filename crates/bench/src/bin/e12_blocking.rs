//! E12 (ablation): the §III-D blocking analysis — "you want to block at a
//! timescale that is at least greater than the autocorrelation time d_c".
//! Measure the autocorrelation time of an MD observable and show that
//! sampling faster than d_c yields correlated (statistically redundant)
//! training samples while blocking beyond d_c yields independent ones.

use le_bench::{md_row, BENCH_SEED};
use le_linalg::{stats, Rng};
use le_mdsim::forces::{debye_kappa, ForceField, BJERRUM_WATER};
use le_mdsim::integrate::{run, Integrator};
use le_mdsim::system::{SlabBox, Species, System};

fn main() {
    // One long MD trajectory; the observable is the number of cations in
    // the lower half of the slab (a slow collective coordinate).
    let bbox = SlabBox::new(4.0, 4.0, 3.0).expect("valid");
    let mut sys = System::new(bbox);
    let mut rng = Rng::new(BENCH_SEED);
    let ion = |v: i32| Species {
        valency: v,
        diameter: 0.5,
        mass: 1.0,
    };
    sys.insert_species(ion(1), 40, 1.0, &mut rng).expect("fits");
    sys.insert_species(ion(-1), 40, 1.0, &mut rng).expect("fits");
    sys.zero_momentum();
    let ff = ForceField {
        kappa: debye_kappa(0.5, 1, 1, BJERRUM_WATER),
        wall_sigma: 0.25,
        ..Default::default()
    };
    let integ = Integrator {
        dt: 0.005,
        gamma: 1.0,
        ..Default::default()
    };
    // Equilibrate.
    run(&mut sys, &ff, &integ, 2000, 2000, &mut rng, |_, _| {}).expect("stable");
    // Sample densely.
    let mut series = Vec::new();
    run(&mut sys, &ff, &integ, 150_000, 5, &mut rng, |_, s| {
        let lower = s.pos.iter().zip(s.charge.iter()).filter(|(r, &q)| q > 0.0 && r[2] < 1.5).count();
        series.push(lower as f64);
    })
    .expect("stable");

    let tau = stats::autocorrelation_time(&series, 400).expect("non-empty");
    let tau_steps = tau * 5.0; // series sampled every 5 steps
    println!("## E12 — blocking vs the autocorrelation time\n");
    println!(
        "observable: cation count in the lower half-slab; measured d_c ≈ {tau:.1} samples ≈ {tau_steps:.0} MD steps\n"
    );
    println!(
        "{}",
        md_row(&[
            "blocking interval (× d_c)".into(),
            "effective samples / 1000 raw".into(),
            "lag-1 correlation of blocked series".into(),
        ])
    );
    println!("{}", md_row(&["---".into(), "---".into(), "---".into()]));
    for &factor in &[0.2, 0.5, 1.0, 2.0, 5.0] {
        let stride = ((tau * factor).round() as usize).max(1);
        let blocked: Vec<f64> = series.iter().step_by(stride).copied().collect();
        let acf = stats::autocorrelation(&blocked, 1).expect("non-empty");
        let lag1 = acf.get(1).copied().unwrap_or(0.0);
        // Effective sample count per 1000 raw samples: 1000/stride blocked
        // draws, discounted by residual correlation.
        let eff = (1000.0 / stride as f64) * (1.0 - lag1.max(0.0));
        println!(
            "{}",
            md_row(&[
                format!("{factor:.1}"),
                format!("{eff:.0}"),
                format!("{lag1:.3}"),
            ])
        );
    }
    println!(
        "\nshape: blocking faster than d_c leaves residual correlation (redundant \
         training samples — 'blocking every timestep will not improve the \
         training'); blocking at ≥ d_c gives near-independent samples."
    );
}
