//! E10: explicit-solvent cost decomposition and the NN-implicit-solvent
//! substitution (§II-C2): "solvent-solvent and solvent-solute interactions
//! … typically make up 80%-90% of the computational effort".

use le_bench::{md_row, BENCH_SEED};
use le_linalg::Rng;
use le_mdsim::solvent::{
    pair_share, pmf_from_rdf, PmfPotential, SolvatedConfig, SolvatedSystem,
};

fn main() {
    println!("## E10 — explicit-solvent cost share and the learned PMF replacement\n");

    // Cost decomposition across compositions.
    println!(
        "{}",
        md_row(&[
            "N_solute".into(),
            "N_solvent".into(),
            "solute-solute".into(),
            "solute-solvent".into(),
            "solvent-solvent".into(),
            "solvent share".into(),
        ])
    );
    println!(
        "{}",
        md_row(&(0..6).map(|_| "---".to_string()).collect::<Vec<_>>())
    );
    for &(nu, nv) in &[(20usize, 60usize), (20, 100), (20, 180)] {
        let (uu, uv, vv) = pair_share(nu, nv);
        println!(
            "{}",
            md_row(&[
                nu.to_string(),
                nv.to_string(),
                format!("{:.1}%", 100.0 * uu),
                format!("{:.1}%", 100.0 * uv),
                format!("{:.1}%", 100.0 * vv),
                format!("{:.1}%", 100.0 * (uv + vv)),
            ])
        );
    }

    // Explicit run: measure shares + solute structure + time.
    let cfg = SolvatedConfig {
        n_solute: 16,
        n_solvent: 96,
        ..SolvatedConfig::small()
    };
    let mut rng = Rng::new(BENCH_SEED);
    let mut explicit = SolvatedSystem::new(cfg, &mut rng).expect("builds");
    let t0 = std::time::Instant::now();
    let rdf = explicit.run(4000, 1000, 10, 24, 2.0, &mut rng).expect("stable");
    let t_explicit = t0.elapsed().as_secs_f64();
    println!(
        "\nmeasured solvent share of pair work: {:.1}% (paper: 80-90%)",
        100.0 * explicit.shares.solvent_fraction()
    );

    // Train the PMF from the explicit solute-solute structure and rerun
    // without solvent.
    let samples = pmf_from_rdf(&rdf, 5);
    println!("PMF training points extracted from g(r): {}", samples.len());
    if samples.len() >= 8 {
        let pmf = PmfPotential::train(&samples, BENCH_SEED).expect("trains");
        // Implicit run: same solutes, no solvent particles; pair work is
        // the solute-solute share only. Time a solvent-free system of the
        // same solute count.
        let implicit_cfg = SolvatedConfig {
            n_solvent: 0,
            ..cfg
        };
        let mut rng2 = Rng::new(BENCH_SEED ^ 2);
        let mut implicit = SolvatedSystem::new(implicit_cfg, &mut rng2).expect("builds");
        let t1 = std::time::Instant::now();
        let rdf_implicit = implicit.run(4000, 1000, 10, 24, 2.0, &mut rng2).expect("stable");
        let t_implicit = t1.elapsed().as_secs_f64();
        // Structure agreement between explicit and implicit solute g(r)
        // (the bare-LJ implicit run shows the gap the PMF correction
        // closes; report both).
        let g_e = rdf.g();
        let g_i = rdf_implicit.g();
        let n = g_e.len().min(g_i.len());
        let rmse_bare = (g_e[..n]
            .iter()
            .zip(g_i[..n].iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum::<f64>()
            / n as f64)
            .sqrt();
        println!("\nexplicit {t_explicit:.2}s vs solvent-free {t_implicit:.2}s → {:.1}x faster", t_explicit / t_implicit);
        println!("bare solute g(r) RMSE vs explicit: {rmse_bare:.3}");
        println!(
            "learned PMF well depth at contact: {:.3} kT (correction the implicit run applies)",
            pmf.energy(samples[0].0)
        );
    }
    println!(
        "\nshape: removing solvent removes the dominant (>{:.0}%) share of pair \
         work; the learned PMF carries the solvent-induced structure.",
        100.0 * explicit.shares.solvent_fraction()
    );
}
