//! Deterministic fault campaign for the supervision/degradation gate.
//!
//! Replays a seeded campaign against a hybrid engine whose simulator is
//! wrapped in `le-faults` injection — ≥10% injected simulator errors plus
//! NaN-poisoned outputs plus one armed `le-pool` worker panic — followed by
//! a DES run with injected logical-time stalls under a deadline budget.
//! The supervision layer must absorb all of it: the campaign completes
//! without a process panic and every query is served.
//!
//! The binary prints a canonical `digest 0x…` line folding every served
//! answer (bit-exact) together with the thread-invariant degradation
//! counters. `scripts/verify.sh` runs this at `LE_POOL_THREADS` ∈ {1, 4, 7}
//! and requires all three digests to be byte-identical — the fault ladder,
//! like the happy path, must be bit-reproducible at any thread count — and
//! then diffs the exported `results/OBS_fault_campaign.json` against the
//! committed copy under `results/baselines/faults/`.
//!
//! ```sh
//! LE_POOL_THREADS=4 cargo run --release -p le-bench --bin fault_campaign
//! ```

use le_faults::{FaultPlan, FaultRates, FaultySimulator};
use le_sched::{simulate_with, Policy, SimOptions, Workload, WorkloadConfig};
use learning_everywhere::surrogate::SurrogateConfig;
use learning_everywhere::{HybridConfig, HybridEngine, Simulator, SupervisorConfig};

/// A simulator whose "physics" is a 64-wide parallel map (the same fan-out
/// substrate as `obs_baseline`), so every simulated query dispatches pool
/// tasks — the surface the armed worker panic fires on.
struct FanoutSimulator;

impl Simulator for FanoutSimulator {
    fn input_dim(&self) -> usize {
        2
    }
    fn output_dim(&self) -> usize {
        1
    }
    fn simulate(&self, input: &[f64], seed: u64) -> learning_everywhere::Result<Vec<f64>> {
        let parts = le_pool::par_map_index(64, |i| {
            let x = input[0] + input[1] * (i as f64 + seed as f64 * 1e-6);
            (x * 0.01).sin()
        });
        Ok(vec![parts.iter().sum::<f64>() / 64.0])
    }
}

/// FNV-1a over the campaign's observable behaviour.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }
    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    fn str(&mut self, s: &str) {
        for b in s.as_bytes() {
            self.byte(*b);
        }
    }
}

/// The thread-invariant degradation counters folded into the digest (the
/// thread-*variant* pool-schedule metrics, `le_pool.*`, are deliberately
/// excluded here and `--ignore`d in the obsctl gate).
const DEGRADATION_COUNTERS: [&str; 13] = [
    "faults.injected.sim_error",
    "faults.injected.nonfinite",
    "faults.injected.worker_panic",
    "gate.nonfinite",
    "gate.model_error",
    "hybrid.sim_errors",
    "hybrid.sim_nonfinite",
    "hybrid.sim_panics",
    "pool.task_respawn",
    "supervisor.retry",
    "supervisor.quarantine",
    "supervisor.readmit",
    "supervisor.degraded",
];

fn main() {
    let plan = match FaultPlan::new(
        0xFA_17,
        FaultRates {
            sim_error: 0.10,
            nonfinite: 0.05,
            stall: 0.12,
        },
    ) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("fault plan rejected: {e}");
            std::process::exit(2);
        }
    };

    // Phase 1: a hybrid campaign over the faulty fan-out simulator, with
    // one worker panic armed to fire inside an early simulate dispatch
    // (each simulate is 32 pool tasks; index < 64 lands in the first two).
    plan.arm_pool_panic(64);
    let engine = HybridEngine::with_supervisor(
        FaultySimulator::new(FanoutSimulator, plan.clone()),
        HybridConfig {
            uncertainty_threshold: 0.3,
            min_training_runs: 8,
            retrain_growth: 2.0,
            surrogate: SurrogateConfig {
                hidden: vec![16],
                epochs: 10,
                mc_samples: 8,
                seed: 3,
                ..Default::default()
            },
        },
        SupervisorConfig {
            max_retries: 3,
            quarantine_after: 3,
            degrade_after: 3,
        },
    );
    let mut engine = match engine {
        Ok(e) => e,
        Err(e) => {
            eprintln!("engine rejected: {e}");
            std::process::exit(2);
        }
    };

    let mut digest = Digest::new();
    let n_queries = 64u64;
    let mut served = 0u64;
    // Queries flow through the batched gate in waves of 16: by the
    // `query_batch` contract the served answers are bit-identical to
    // sequential `query` calls, and this campaign exercises that contract
    // under fault injection (mid-batch retrains, quarantines, and an armed
    // worker panic all land inside batches).
    let inputs: Vec<Vec<f64>> = (0..n_queries)
        .map(|q| vec![0.05 * (q % 24) as f64, 0.2 + 0.003 * q as f64])
        .collect();
    for (c, chunk) in inputs.chunks(16).enumerate() {
        match engine.query_batch(chunk) {
            Ok(results) => {
                for (k, r) in results.iter().enumerate() {
                    served += 1;
                    digest.u64((c * 16 + k) as u64);
                    for v in &r.output {
                        digest.f64(*v);
                    }
                }
            }
            Err(e) => {
                // Acceptance: the supervised campaign serves every query.
                eprintln!("batch {c} failed despite supervision: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "hybrid: served {served}/{n_queries}, lookup fraction {:.2}, \
         retries {}, injected calls {}",
        engine.lookup_fraction(),
        engine.supervisor().retries(),
        engine.simulator().calls(),
    );

    // Phase 2: the DES under injected stalls and a deadline budget —
    // stragglers time out at the budget and their bounded re-dispatches
    // complete.
    let workload = match Workload::generate(
        &WorkloadConfig {
            n_tasks: 600,
            mean_interarrival: 0.35,
            sim_service: 8.0,
            learnt_speedup: 1e5,
            learnt_fraction_start: 0.6,
            learnt_fraction_end: 0.6,
        },
        le_bench::BENCH_SEED,
    ) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("workload rejected: {e}");
            std::process::exit(2);
        }
    };
    let deadline = 12.0;
    let opts = SimOptions {
        deadline: Some(deadline),
        max_redispatch: 2,
        stalls: plan.stalls(workload.tasks.len(), deadline),
    };
    match simulate_with(&workload, 8, Policy::WorkStealing, &opts) {
        Ok(m) => {
            if m.n_completed != workload.tasks.len() {
                eprintln!(
                    "DES lost tasks under stalls: {}/{}",
                    m.n_completed,
                    workload.tasks.len()
                );
                std::process::exit(1);
            }
            println!(
                "sched: {} stalls injected, makespan {:.1}s, all {} tasks completed",
                opts.stalls.len(),
                m.makespan,
                m.n_completed
            );
            digest.f64(m.makespan);
            digest.f64(m.total_busy);
        }
        Err(e) => {
            eprintln!("DES run failed: {e}");
            std::process::exit(1);
        }
    }

    // Fold the thread-invariant degradation counters into the digest.
    let snap = le_obs::snapshot();
    for name in DEGRADATION_COUNTERS {
        digest.str(name);
        digest.u64(snap.counter(name).unwrap_or(0));
    }
    println!("degraded state: {:?}", engine.supervisor().state());
    println!("digest 0x{:016x}", digest.0);

    match le_obs::write_snapshot("fault_campaign") {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write OBS snapshot: {e}"),
    }
}
