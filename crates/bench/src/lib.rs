#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `le-bench` — shared fixtures for the experiment harness.
//!
//! Each experiment from DESIGN.md has (a) a plain timing bench under
//! `benches/` measuring its primitive operations, and (b) a harness binary
//! under `src/bin/` (`e1_…` through `e12_…`) that regenerates the
//! experiment's table/series for EXPERIMENTS.md. The fixtures here keep
//! both views of one experiment using identical setups.

use le_linalg::{Matrix, Rng};
use le_mdsim::nanoconfinement::NanoParams;
use le_mdsim::{NanoSim, SimConfig};
use learning_everywhere::surrogate::{NnSurrogate, SurrogateConfig};

pub use le_obs::json;

pub mod timing;

/// Standard seed for all benches (fixtures must be identical across runs).
pub const BENCH_SEED: u64 = 20190415; // the paper's IPDPS-workshop year

/// Build a labelled nanoconfinement dataset of `n` runs at the fast preset.
pub fn nano_dataset(n: usize, seed: u64) -> (Vec<NanoParams>, Vec<Vec<f64>>) {
    let sim = NanoSim::new(SimConfig::fast());
    let mut rng = Rng::new(seed);
    let params: Vec<NanoParams> = (0..n).map(|_| NanoParams::sample(&mut rng)).collect();
    let outputs: Vec<Vec<f64>> =
        le_pool::par_map_index(params.len(), |i| {
            sim.run(&params[i], seed ^ (i as u64 + 1)).expect("valid params").0.to_vec() // lint:allow(no-panic): fixture params are constructed valid above
        });
    (params, outputs)
}

/// Train a nanoconfinement surrogate from a labelled dataset.
pub fn nano_surrogate(
    params: &[NanoParams],
    outputs: &[Vec<f64>],
    epochs: usize,
    seed: u64,
) -> NnSurrogate {
    let n = params.len();
    let mut x = Matrix::zeros(n, 5);
    let mut y = Matrix::zeros(n, 3);
    for i in 0..n {
        x.row_mut(i).copy_from_slice(&params[i].to_features());
        y.row_mut(i).copy_from_slice(&outputs[i]);
    }
    NnSurrogate::fit(
        &x,
        &y,
        &SurrogateConfig {
            hidden: vec![64, 64],
            dropout: 0.05,
            epochs,
            seed,
            ..Default::default()
        },
    )
    .expect("well-formed dataset") // lint:allow(no-panic): dataset shape fixed by the generator above
}

/// Format a markdown table row.
pub fn md_row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        let (p1, o1) = nano_dataset(4, 9);
        let (p2, o2) = nano_dataset(4, 9);
        assert_eq!(p1, p2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn surrogate_fixture_trains() {
        let (p, o) = nano_dataset(24, 10);
        let s = nano_surrogate(&p, &o, 30, 1);
        let pred = s.predict(&p[0].to_features()).unwrap();
        assert_eq!(pred.len(), 3);
    }

    #[test]
    fn md_row_formats() {
        assert_eq!(md_row(&["a".into(), "b".into()]), "| a | b |");
    }
}
