#![deny(unsafe_code)]
#![warn(missing_docs)]

//! `le-pool` — a persistent, zero-dependency fork-join worker pool.
//!
//! PR 1 made the workspace hermetic by replacing rayon with scoped-thread
//! helpers that spawned and joined fresh OS threads inside every call. That
//! is correct but slow for the hot loops this workspace cares about: MD
//! force evaluation and NN training enter a parallel region thousands of
//! times per run, and per-call spawn/join overhead (tens of microseconds
//! per thread) dominates the actual work. This crate supplies the structure
//! rayon's persistent registry provides, built on `std` only:
//!
//! * **Persistent workers** — started once, lazily, behind a [`OnceLock`];
//!   no thread is ever spawned on the hot path.
//! * **Single-slot injector** — a dispatch posts one type-erased job under a
//!   mutex and wakes the workers; a worker that misses a job (it completed
//!   before the worker woke) simply goes back to sleep, so a dispatch never
//!   waits for a descheduled worker that has no work left to claim.
//! * **Chunk claiming** — parallel helpers divide work into chunks and
//!   threads claim chunk indices from a shared [`AtomicUsize`] cursor, so
//!   irregular workloads (nonuniform cell-list occupancy, skewed per-index
//!   cost) load-balance dynamically. The dispatching thread participates,
//!   so even if no worker wakes in time the job completes at full caller
//!   speed.
//! * **Index-ordered determinism** — results are stitched in chunk/index
//!   order, never in completion order, so every helper returns bit-identical
//!   results regardless of thread count or scheduling. [`Pool::par_reduce`]
//!   additionally fixes its chunk boundaries and its tree-shaped combine
//!   order as a pure function of `n` and the caller's `grain`, making even
//!   floating-point reductions thread-count independent.
//! * **Panic propagation** — a panic inside a job is caught on the worker,
//!   carried back, and resumed on the calling thread (as the sequential
//!   loop would have panicked), leaving the pool reusable.
//! * **Nested-call safety** — a parallel call from inside a pool job runs
//!   inline (sequentially) instead of deadlocking on the single job slot.
//! * **Instrumented** — every dispatch records to the `le-obs` global
//!   registry: `le_pool.jobs` (dispatches), `le_pool.tasks_claimed`
//!   (cursor claims on the pooled path; the inline path claims nothing),
//!   the `le_pool.job` span (dispatch wall time), `le_pool.worker_busy`
//!   (per-worker time inside a claimed job), and `le_pool.queue_wait`
//!   (post-to-claim latency per worker). These describe the *schedule*, so
//!   they legitimately vary with thread count — unlike metrics recorded by
//!   the parallel work itself, which merge exactly (see `le-obs`).
//! * **Causally traced** — every dispatch captures the submitting thread's
//!   [`le_obs::trace::TraceCtx`] into the job slot; workers adopt it before
//!   running, so trace events recorded inside pool work carry the
//!   `trace_id` of the phase that submitted the job. Each helper emits one
//!   `pool.task` trace span per task of its decomposition, on the inline
//!   path as well as the pooled one, so the event *structure* of a traced
//!   run is identical at every thread count (see `le-obs`'s canonical
//!   timeline).
//!
//! # Grain policy
//!
//! Dispatch on the persistent pool costs a few microseconds (one mutex
//! round-trip plus condvar wakeups). Helpers therefore go inline whenever
//! the decomposition would yield a single chunk, and `par_map_index` splits
//! work into [`MAP_CHUNKS`] chunks — a fixed number, *not* a function of
//! the thread count, so the decomposition (and therefore the trace event
//! structure) is identical at every `LE_POOL_THREADS` while still giving
//! the claiming cursor slack to load-balance skew without per-index cursor
//! traffic. Callers with cheap per-index work
//! choose `grain` (in [`Pool::par_reduce`] / [`Pool::par_for_chunks`]) so a
//! chunk amortizes ~10µs of work; hot call sites additionally gate on
//! problem size and fall back to their sequential loop below it.
//!
//! The thread count defaults to [`std::thread::available_parallelism`] and
//! can be overridden with the `LE_POOL_THREADS` environment variable (read
//! once, when the global pool is created). With one thread the pool spawns
//! no workers at all and every helper degenerates to the plain sequential
//! loop — zero overhead on single-core hosts.
//!
//! The free functions ([`par_map_index`], [`par_map`], [`par_for_each`],
//! [`par_for_chunks`], [`par_reduce`]) delegate to the process-wide
//! [`Pool::global`]. Tests that need to compare thread counts construct
//! private pools with [`Pool::with_threads`].

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

/// Payload carried from a panicking worker back to the dispatcher.
type Panic = Box<dyn std::any::Any + Send + 'static>;

/// A type-erased reference to the current job closure. The lifetime is
/// erased to `'static` by [`erase`]; see the safety argument there.
type Job = &'static (dyn Fn() + Sync);

/// Chunk-count target for `par_map_index` (capped by `n`): enough slack for
/// the claiming cursor to rebalance skewed chunks on any realistic core
/// count, few enough that slot bookkeeping stays cheap. Deliberately a
/// constant rather than `threads * k`: the decomposition — and with it the
/// `pool.task` trace event structure — must not depend on the thread count.
pub const MAP_CHUNKS: usize = 32;

thread_local! {
    /// True while this thread is executing inside a pool job (worker or
    /// participating dispatcher). Used to run nested parallel calls inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Deterministic single-shot worker-panic injection, armed by `le-faults`.
///
/// A countdown of pool tasks is armed once; each task executed while armed
/// decrements it, and the task that drains it panics — on whichever thread
/// claimed it — then the hook disarms itself. Because every decomposition
/// in this crate emits a thread-count-invariant task sequence (see the
/// crate docs), the panic lands in the *same dispatch* at any
/// `LE_POOL_THREADS`; the dispatch fails wholesale either way (inline: the
/// panic unwinds the caller's loop; pooled: `run_job` resumes the captured
/// payload), so supervised retries observe identical behaviour. The fast
/// path while disarmed is one relaxed atomic load.
pub mod fault {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Sentinel meaning "no panic armed".
    const DISARMED: u64 = u64::MAX;

    static COUNTDOWN: AtomicU64 = AtomicU64::new(DISARMED);

    /// Arm a panic to fire on the `after_tasks`-th pool task from now
    /// (0 fires on the next task). Re-arming replaces any pending shot;
    /// `u64::MAX - 1` tasks is the largest supported delay.
    pub fn arm_worker_panic(after_tasks: u64) {
        COUNTDOWN.store(after_tasks.min(DISARMED - 1), Ordering::SeqCst);
    }

    /// Cancel a pending injected panic.
    pub fn disarm() {
        COUNTDOWN.store(DISARMED, Ordering::SeqCst);
    }

    /// True while a shot is pending.
    pub fn armed() -> bool {
        COUNTDOWN.load(Ordering::SeqCst) != DISARMED
    }

    /// Called once per pool task by the decomposition helpers. The
    /// disarmed fast path is a single inlined relaxed load so the hook
    /// stays invisible in the task-dispatch hot loop.
    #[inline(always)]
    pub(crate) fn check() {
        if COUNTDOWN.load(Ordering::Relaxed) != DISARMED {
            check_armed();
        }
    }

    #[cold]
    #[inline(never)]
    fn check_armed() {
        let prev = COUNTDOWN.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| match v {
            DISARMED => None,
            0 => Some(DISARMED),
            n => Some(n - 1),
        });
        if prev == Ok(0) {
            le_obs::counter!("faults.injected.worker_panic").inc();
            // The whole point of the hook: die exactly like a buggy task
            // body would, so the supervision layers above get exercised.
            panic!("le-pool: injected worker panic (armed by le-faults)"); // lint:allow(no-panic): deliberate fault injection
        }
    }
}

/// Shared pool state behind the mutex.
struct State {
    /// The single-slot injector: the job currently being executed, if any.
    job: Option<Job>,
    /// Started when the current job was posted; workers read it at claim
    /// time to record queue wait (`le_pool.queue_wait`).
    posted: Option<le_obs::Stopwatch>,
    /// The submitting thread's trace context, captured at dispatch; workers
    /// adopt it so pool work inherits the submitter's `trace_id`.
    ctx: le_obs::trace::TraceCtx,
    /// Bumped once per dispatch so sleeping workers can tell a fresh job
    /// from one they already ran (or missed).
    epoch: u64,
    /// Number of workers currently executing the posted job.
    active: usize,
    /// Set by `Drop` to terminate the worker loops.
    shutdown: bool,
    /// First panic payload captured from a worker during this job.
    panic: Option<Panic>,
}

/// State + condvars, shared between the pool handle and its workers.
struct Shared {
    state: Mutex<State>,
    /// Workers sleep here between jobs.
    work_cv: Condvar,
    /// The dispatcher sleeps here until `active` returns to zero.
    done_cv: Condvar,
}

/// A persistent fork-join worker pool. See the crate docs for the design.
pub struct Pool {
    shared: Arc<Shared>,
    /// Total threads participating in a job: spawned workers + the caller.
    threads: usize,
    /// Join handles, drained on `Drop` (the global pool never drops).
    handles: Vec<std::thread::JoinHandle<()>>,
}

/// Recover a mutex guard whether or not another thread panicked while
/// holding the lock. Every critical section in this crate is a handful of
/// plain field updates, so the state is consistent even after a poisoning
/// panic — and worker panics are expected events we carry back to the
/// caller rather than reasons to abort.
fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(PoisonError::into_inner)
}

/// Erase the lifetime of a job reference so it can sit in the shared slot.
///
/// SAFETY: the only writer of the slot is [`Pool::run_job`], which (a)
/// posts the reference, (b) does not return — even when the caller's share
/// of the job panics, via the [`Finish`] guard — until every worker that
/// claimed the job has finished with it, and (c) clears the slot before
/// returning. Workers only obtain the reference from the slot under the
/// state mutex, while it is `Some`, and increment `active` in the same
/// critical section, which is exactly what `Finish` waits on. Hence no
/// worker can observe the reference after `run_job` returns, and the
/// erased `'static` lifetime never outlives the real one.
#[allow(unsafe_code)]
fn erase<'a>(f: &'a (dyn Fn() + Sync)) -> Job {
    unsafe { std::mem::transmute::<&'a (dyn Fn() + Sync), Job>(f) }
}

/// RAII guard: when the dispatcher leaves `run_job` — normally or by panic
/// — wait for in-flight workers and clear the job slot.
struct Finish<'p> {
    shared: &'p Shared,
}

impl Drop for Finish<'_> {
    fn drop(&mut self) {
        let mut st = relock(self.shared.state.lock());
        while st.active > 0 {
            st = relock(self.shared.done_cv.wait(st));
        }
        st.job = None;
    }
}

/// Body of each spawned worker thread.
fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        // Sleep until a fresh job is posted (or shutdown). A job that
        // completed before we woke leaves `job == None` at a new epoch;
        // record the epoch and keep sleeping.
        let (job, ctx) = {
            let mut st = relock(shared.state.lock());
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(job) = st.job {
                        st.active += 1;
                        if let Some(sw) = &st.posted {
                            static QUEUE_WAIT: OnceLock<le_obs::Span> = OnceLock::new();
                            QUEUE_WAIT
                                .get_or_init(|| le_obs::global().span("le_pool.queue_wait"))
                                .record_ns(sw.elapsed_ns());
                        }
                        break (job, st.ctx);
                    }
                }
                st = relock(shared.work_cv.wait(st));
            }
        };

        IN_POOL.with(|c| c.set(true));
        let result = {
            let _busy = le_obs::span!("le_pool.worker_busy");
            // Inherit the submitter's causal coordinates for the duration
            // of the job, so tasks traced on this thread carry its trace_id.
            let _ctx = ctx.adopt();
            catch_unwind(AssertUnwindSafe(|| job()))
        };
        IN_POOL.with(|c| c.set(false));

        let mut st = relock(shared.state.lock());
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_one();
        }
    }
}

impl Pool {
    /// The process-wide pool, created on first use with [`default_threads`]
    /// participating threads.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::with_threads(default_threads()))
    }

    /// A private pool with `threads` participating threads (the calling
    /// thread counts as one, so `threads - 1` workers are spawned).
    /// Intended for tests that compare thread counts; production code uses
    /// the free functions and the global pool.
    pub fn with_threads(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                posted: None,
                ctx: le_obs::trace::TraceCtx::NONE,
                epoch: 0,
                active: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let mut handles = Vec::new();
        for k in 0..threads.saturating_sub(1) {
            let sh = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("le-pool-{k}"));
            // A failed spawn (resource exhaustion) just means fewer
            // workers; the pool stays correct at any worker count.
            if let Ok(h) = builder.spawn(move || worker_loop(&sh)) {
                handles.push(h);
            }
        }
        let threads = handles.len() + 1;
        Pool {
            shared,
            threads,
            handles,
        }
    }

    /// Number of threads that participate in a parallel region (spawned
    /// workers plus the dispatching caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when a dispatch from the current thread would run inline:
    /// single-threaded pool, or already inside a pool job (nested call).
    fn inline(&self) -> bool {
        self.threads == 1 || IN_POOL.with(|c| c.get())
    }

    /// Post `f` to the workers, run it on the caller too, wait for all
    /// claimants to finish, then propagate the first captured panic.
    fn run_job(&self, f: &(dyn Fn() + Sync)) {
        let _job_sp = le_obs::span!("le_pool.job");
        le_obs::counter!("le_pool.jobs").inc();
        {
            let mut st = relock(self.shared.state.lock());
            st.job = Some(erase(f));
            st.posted = Some(le_obs::Stopwatch::start());
            st.ctx = le_obs::trace::current_ctx();
            st.epoch = st.epoch.wrapping_add(1);
            st.panic = None;
            self.shared.work_cv.notify_all();
        }
        // From here on the guard ensures no return before every claiming
        // worker is done and the slot is cleared — the soundness condition
        // of `erase`, and the reason a caller panic cannot strand workers
        // on a dangling job reference.
        let guard = Finish {
            shared: &self.shared,
        };
        IN_POOL.with(|c| c.set(true));
        let caller = catch_unwind(AssertUnwindSafe(|| f()));
        IN_POOL.with(|c| c.set(false));
        drop(guard);
        let worker_panic = relock(self.shared.state.lock()).panic.take();
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }

    /// Run `f(0), f(1), …, f(n_tasks - 1)`, each exactly once, on whichever
    /// threads claim them first. Order of execution is unspecified — use
    /// the mapping helpers when results must be collected.
    ///
    /// Emits one `pool.task` trace span per task on either path, so a
    /// traced run has the same event structure inline and pooled.
    pub fn par_for_each<F>(&self, n_tasks: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if n_tasks == 0 {
            return;
        }
        if self.inline() || n_tasks == 1 {
            for i in 0..n_tasks {
                let _t = le_obs::trace_span!("pool.task");
                fault::check();
                f(i);
            }
            return;
        }
        let cursor = AtomicUsize::new(0);
        let body = move || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            le_obs::counter!("le_pool.tasks_claimed").inc();
            let _t = le_obs::trace_span!("pool.task");
            fault::check();
            f(i);
        };
        self.run_job(&body);
    }

    /// Split `0..n` into `n_chunks` ranges of length `chunk`, evaluate
    /// `make(lo, hi)` for each in parallel, and return the values in chunk
    /// order (never completion order).
    fn chunked_collect<V, F>(&self, n: usize, chunk: usize, make: F) -> Vec<V>
    where
        V: Send,
        F: Fn(usize, usize) -> V + Sync,
    {
        let n_chunks = n.div_ceil(chunk);
        let slots: Vec<Mutex<Option<V>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();
        self.par_for_each(n_chunks, |c| {
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let v = make(lo, hi);
            *relock(slots[c].lock()) = Some(v);
        });
        slots
            .into_iter()
            .filter_map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect()
    }

    /// Map `f` over `0..n` in parallel; results are returned in index
    /// order and are bit-identical to the sequential `(0..n).map(f)`
    /// regardless of thread count.
    pub fn par_map_index<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let chunk = n.div_ceil(n.min(MAP_CHUNKS));
        // Effective chunk count after rounding the chunk length up — the
        // same value `chunked_collect` derives on the pooled path.
        let n_chunks = n.div_ceil(chunk);
        if self.inline() || n < 2 {
            // Same chunk decomposition — and the same one-`pool.task`-span-
            // per-chunk trace structure — as the pooled path below.
            let mut out = Vec::with_capacity(n);
            for c in 0..n_chunks {
                let _t = le_obs::trace_span!("pool.task");
                fault::check();
                let lo = c * chunk;
                out.extend((lo..(lo + chunk).min(n)).map(&f));
            }
            return out;
        }
        let parts = self.chunked_collect(n, chunk, |lo, hi| (lo..hi).map(&f).collect::<Vec<U>>());
        let mut out = Vec::with_capacity(n);
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Map `f` over a slice in parallel; results come back in input order.
    pub fn par_map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.par_map_index(items.len(), |i| f(&items[i]))
    }

    /// Split `data` into consecutive chunks of `chunk_len` elements (last
    /// chunk may be shorter) and run `f(start_index, chunk)` on each in
    /// parallel. The decomposition depends only on `data.len()` and
    /// `chunk_len`, never on the thread count.
    pub fn par_for_chunks<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let n = data.len();
        if n == 0 {
            return;
        }
        let chunk_len = chunk_len.max(1);
        if self.inline() || n <= chunk_len {
            for (c, chunk) in data.chunks_mut(chunk_len).enumerate() {
                // One `pool.task` per chunk, matching the pooled path's
                // per-task span from `par_for_each`.
                let _t = le_obs::trace_span!("pool.task");
                fault::check();
                f(c * chunk_len, chunk);
            }
            return;
        }
        // Hand each worker-claimed task its chunk through a take-once slot;
        // `&mut` disjointness is guaranteed by `chunks_mut`.
        let tasks: Vec<Mutex<Option<(usize, &mut [T])>>> = data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(c, chunk)| Mutex::new(Some((c * chunk_len, chunk))))
            .collect();
        self.par_for_each(tasks.len(), |i| {
            if let Some((start, chunk)) = relock(tasks[i].lock()).take() {
                f(start, chunk);
            }
        });
    }

    /// Deterministic parallel reduction over `0..n`.
    ///
    /// The index range is split into chunks of `grain` indices; each chunk
    /// is folded left-to-right as `combine(acc, map(i))` starting from
    /// `init()`, and the per-chunk partials are then combined pairwise in
    /// a fixed tree order. Both the chunk boundaries and the tree shape are
    /// pure functions of `(n, grain)`, so the result — including
    /// non-associative floating-point sums — is bit-identical for every
    /// thread count, including the sequential path.
    pub fn par_reduce<U, I, M, C>(&self, n: usize, grain: usize, init: I, map: M, combine: C) -> U
    where
        U: Send,
        I: Fn() -> U + Sync,
        M: Fn(usize) -> U + Sync,
        C: Fn(U, U) -> U + Sync,
    {
        let grain = grain.max(1);
        if n == 0 {
            return init();
        }
        let fold_chunk = |lo: usize, hi: usize| {
            let mut acc = init();
            for i in lo..hi {
                acc = combine(acc, map(i));
            }
            acc
        };
        let mut layer: Vec<U> = if self.inline() || n <= grain {
            let n_chunks = n.div_ceil(grain);
            (0..n_chunks)
                .map(|c| {
                    // One `pool.task` per chunk, matching the pooled path.
                    let _t = le_obs::trace_span!("pool.task");
                    fault::check();
                    fold_chunk(c * grain, ((c + 1) * grain).min(n))
                })
                .collect()
        } else {
            self.chunked_collect(n, grain, fold_chunk)
        };
        while layer.len() > 1 {
            let mut next = Vec::with_capacity(layer.len().div_ceil(2));
            let mut it = layer.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(combine(a, b)),
                    None => next.push(a),
                }
            }
            layer = next;
        }
        match layer.pop() {
            Some(v) => v,
            None => init(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = relock(self.shared.state.lock());
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Thread count for the global pool: `LE_POOL_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism, otherwise 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("LE_POOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// [`Pool::par_for_each`] on the global pool.
pub fn par_for_each<F>(n_tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    Pool::global().par_for_each(n_tasks, f)
}

/// [`Pool::par_map_index`] on the global pool.
pub fn par_map_index<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    Pool::global().par_map_index(n, f)
}

/// [`Pool::par_map`] on the global pool.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    Pool::global().par_map(items, f)
}

/// [`Pool::par_for_chunks`] on the global pool.
pub fn par_for_chunks<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    Pool::global().par_for_chunks(data, chunk_len, f)
}

/// [`Pool::par_reduce`] on the global pool.
pub fn par_reduce<U, I, M, C>(n: usize, grain: usize, init: I, map: M, combine: C) -> U
where
    U: Send,
    I: Fn() -> U + Sync,
    M: Fn(usize) -> U + Sync,
    C: Fn(U, U) -> U + Sync,
{
    Pool::global().par_reduce(n, grain, init, map, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic skewed per-index work: burn an index-dependent number
    /// of FLOPs and return a value that depends on every iteration, so the
    /// optimizer cannot collapse the imbalance.
    fn skewed_work(i: usize) -> f64 {
        let rounds = 1 + (i % 13) * 40;
        let mut acc = (i as f64) * 1e-3 + 1.0;
        for _ in 0..rounds {
            acc = (acc * 1.000001).sin().abs() + 1.0e-9;
        }
        acc
    }

    #[test]
    fn par_map_index_matches_sequential() {
        let pool = Pool::with_threads(4);
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(pool.par_map_index(100, |i| i * i), seq);
    }

    #[test]
    fn par_map_preserves_input_order() {
        let pool = Pool::with_threads(3);
        let items: Vec<i64> = (0..57).map(|i| i - 20).collect();
        let out = pool.par_map(&items, |x| x * 3);
        let seq: Vec<i64> = items.iter().map(|x| x * 3).collect();
        assert_eq!(out, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        let pool = Pool::with_threads(4);
        assert_eq!(pool.par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(pool.par_map_index(1, |i| i + 7), vec![7]);
        pool.par_for_each(0, |_| {});
        let mut empty: [u8; 0] = [];
        pool.par_for_chunks(&mut empty, 4, |_, _| {});
    }

    #[test]
    fn determinism_under_forced_load_imbalance() {
        // Same skewed workload across thread counts: outputs must be
        // bitwise identical because results are stitched by index, not by
        // completion order.
        let reference: Vec<f64> = (0..257).map(skewed_work).collect();
        for threads in [1, 2, 4, 7] {
            let pool = Pool::with_threads(threads);
            for _ in 0..3 {
                let out = pool.par_map_index(257, skewed_work);
                let same = out.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "bitwise mismatch at {threads} threads");
            }
        }
    }

    #[test]
    fn par_for_each_runs_every_task_exactly_once() {
        let pool = Pool::with_threads(5);
        let counts: Vec<AtomicUsize> = (0..311).map(|_| AtomicUsize::new(0)).collect();
        pool.par_for_each(311, |i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_chunks_covers_all_elements() {
        let pool = Pool::with_threads(4);
        let mut data = vec![0usize; 103];
        pool.par_for_chunks(&mut data, 10, |start, chunk| {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = start + k;
            }
        });
        let seq: Vec<usize> = (0..103).collect();
        assert_eq!(data, seq);
    }

    #[test]
    fn panic_propagates_and_pool_stays_usable() {
        let pool = Pool::with_threads(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_for_each(64, |i| {
                if i == 33 {
                    panic!("boom at {i}");
                }
            });
        }));
        assert!(result.is_err(), "worker panic must reach the caller");
        // The pool must survive a propagated panic and keep producing
        // correct results.
        let seq: Vec<usize> = (0..50).map(|i| i + 1).collect();
        assert_eq!(pool.par_map_index(50, |i| i + 1), seq);
    }

    #[test]
    fn nested_calls_do_not_deadlock() {
        let pool = Pool::global();
        let out = pool.par_map_index(8, |i| {
            // Inner call runs inline on whichever thread executes index i.
            let inner: usize = pool.par_map_index(8, |j| i * j).iter().sum();
            inner
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_reduce_float_result_is_thread_count_independent() {
        // A non-associative float sum: chunk boundaries and tree order are
        // functions of (n, grain) only, so all thread counts agree bitwise.
        let n = 10_000;
        let grain = 64;
        let sum_at = |threads: usize| {
            let pool = Pool::with_threads(threads);
            pool.par_reduce(
                n,
                grain,
                || 0.0f64,
                |i| 1.0 / (i as f64 + 1.0),
                |a, b| a + b,
            )
        };
        let reference = sum_at(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(sum_at(threads).to_bits(), reference.to_bits());
        }
        // And it is a faithful harmonic sum (order differs from the naive
        // left fold, so compare with tolerance).
        let naive: f64 = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).sum();
        assert!((reference - naive).abs() < 1e-9);
    }

    #[test]
    fn par_reduce_empty_returns_identity() {
        let pool = Pool::with_threads(4);
        let v = pool.par_reduce(0, 8, || 42.0f64, |_| 0.0, |a, b| a + b);
        assert!((v - 42.0).abs() < 1e-15);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn with_threads_reports_actual_count() {
        let pool = Pool::with_threads(3);
        assert!(pool.threads() >= 1 && pool.threads() <= 3);
        let single = Pool::with_threads(1);
        assert_eq!(single.threads(), 1);
    }
}
