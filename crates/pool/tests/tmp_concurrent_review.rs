//! Temporary review stress test: concurrent dispatch on one pool.
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn concurrent_dispatch_from_two_threads() {
    let pool = Arc::new(le_pool::Pool::with_threads(4));
    let bad = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for t in 0..4 {
        let pool = Arc::clone(&pool);
        let bad = Arc::clone(&bad);
        handles.push(std::thread::spawn(move || {
            for round in 0..2000 {
                let n = 64 + (t * 13 + round) % 64;
                let out = pool.par_map_index(n, |i| i * 2 + t);
                if out.len() != n || out.iter().enumerate().any(|(i, &v)| v != i * 2 + t) {
                    bad.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(bad.load(Ordering::Relaxed), 0, "corrupted results under concurrent dispatch");
}
