//! The learned analogue of the fine diffusion burst (E9): an MLP that maps
//! the *coarse-grained* nutrient field and source field directly to the
//! coarse-grained field after `fine_steps` solver steps — "the elimination
//! of short time scales" (§II-B item 7).
//!
//! Resolution strategy: fields are block-averaged down by `factor`
//! (32×32 → 8×8 by default), the MLP predicts the advanced coarse field,
//! and the result is up-sampled. The surrogate trades fine-grained spatial
//! detail for a ~`fine_steps`-fold reduction in inner-loop work; E9
//! measures both sides of that trade.

use std::cell::RefCell;

use le_linalg::{Matrix, Rng};
use le_nn::{BatchScratch, Mlp, MlpConfig, Scaler, TrainConfig, Trainer};

use crate::diffusion::DiffusionSolver;
use crate::field::Field;
use crate::vt::{TissueConfig, TissueModel};
use crate::{Result, TissueError};

/// The trained transport surrogate.
#[derive(Debug, Clone)]
pub struct TransportSurrogate {
    net: Mlp,
    /// Preallocated batch-engine arena: `advance` is the tissue model's
    /// inner loop, so evaluation reuses these buffers instead of building
    /// per-layer matrices on every call.
    scratch: RefCell<BatchScratch>,
    x_scaler: Scaler,
    y_scaler: Scaler,
    /// Fine lattice width/height.
    pub fine_shape: (usize, usize),
    /// Coarse-graining factor.
    pub factor: usize,
    /// Fine steps the surrogate replaces.
    pub fine_steps: usize,
}

/// Training configuration for the transport surrogate.
#[derive(Debug, Clone)]
pub struct SurrogateTrainConfig {
    /// Number of random training fields.
    pub n_samples: usize,
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Epochs.
    pub epochs: usize,
    /// Seed for data generation and training.
    pub seed: u64,
}

impl Default for SurrogateTrainConfig {
    fn default() -> Self {
        Self {
            n_samples: 400,
            hidden: vec![96, 96],
            epochs: 150,
            seed: 0,
        }
    }
}

/// Generate a random plausible nutrient field: a few Gaussian blobs on a
/// uniform background.
fn random_field(width: usize, height: usize, rng: &mut Rng) -> Field {
    let mut f = Field::filled(width, height, rng.uniform_in(0.0, 1.5));
    let blobs = 1 + rng.below(4);
    for _ in 0..blobs {
        let cx = rng.uniform_in(0.0, width as f64);
        let cy = rng.uniform_in(0.0, height as f64);
        let amp = rng.uniform_in(0.5, 4.0);
        let sigma = rng.uniform_in(1.0, 6.0);
        for y in 0..height {
            for x in 0..width {
                let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                f.add(x, y, amp * (-d2 / (2.0 * sigma * sigma)).exp());
            }
        }
    }
    f
}

/// Generate a random source field: left-edge inflow plus a few point sinks
/// (mimicking cell uptake).
fn random_sources(width: usize, height: usize, rng: &mut Rng) -> Field {
    let mut s = Field::zeros(width, height);
    let inflow = rng.uniform_in(0.0, 1.0);
    for y in 0..height {
        s.add(0, y, inflow);
    }
    let sinks = rng.below(20);
    for _ in 0..sinks {
        let x = rng.below(width);
        let y = rng.below(height);
        s.add(x, y, -rng.uniform_in(0.1, 0.8));
    }
    s
}

impl TransportSurrogate {
    /// Train the surrogate to reproduce `solver.advance(field, sources,
    /// fine_steps)` at coarse resolution.
    pub fn train(
        solver: &DiffusionSolver,
        fine_shape: (usize, usize),
        factor: usize,
        fine_steps: usize,
        cfg: &SurrogateTrainConfig,
    ) -> Result<Self> {
        let (w, h) = fine_shape;
        if factor == 0 || w % factor != 0 || h % factor != 0 {
            return Err(TissueError::InvalidConfig(format!(
                "factor {factor} must divide {w}x{h}"
            )));
        }
        let cw = w / factor;
        let ch = h / factor;
        let in_dim = 2 * cw * ch; // coarse field + coarse sources
        let out_dim = cw * ch;
        let mut rng = Rng::new(cfg.seed);
        let mut x = Matrix::zeros(cfg.n_samples, in_dim);
        let mut y = Matrix::zeros(cfg.n_samples, out_dim);
        for i in 0..cfg.n_samples {
            let field = random_field(w, h, &mut rng);
            let sources = random_sources(w, h, &mut rng);
            let advanced = solver.advance(&field, &sources, fine_steps)?;
            let cf = field.downsample(factor)?;
            let cs = sources.downsample(factor)?;
            let ca = advanced.downsample(factor)?;
            x.row_mut(i)[..out_dim].copy_from_slice(cf.as_slice());
            x.row_mut(i)[out_dim..].copy_from_slice(cs.as_slice());
            y.row_mut(i).copy_from_slice(ca.as_slice());
        }
        let x_scaler = Scaler::fit(&x).map_err(|e| TissueError::Model(e.to_string()))?;
        let y_scaler = Scaler::fit(&y).map_err(|e| TissueError::Model(e.to_string()))?;
        let xs = x_scaler
            .transform(&x)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        let ys = y_scaler
            .transform(&y)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        let mut layers = vec![in_dim];
        layers.extend_from_slice(&cfg.hidden);
        layers.push(out_dim);
        let mut net = Mlp::new(MlpConfig::regression(&layers), &mut rng)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        Trainer::new(TrainConfig {
            epochs: cfg.epochs,
            seed: cfg.seed ^ 0x5555,
            ..Default::default()
        })
        .fit(&mut net, &xs, &ys)
        .map_err(|e| TissueError::Model(e.to_string()))?;
        Ok(Self {
            scratch: RefCell::new(BatchScratch::new(&net)),
            net,
            x_scaler,
            y_scaler,
            fine_shape,
            factor,
            fine_steps,
        })
    }

    /// Train on *on-trajectory* data: run the coupled tissue model with the
    /// full solver for several seeds, recording `(field, sources,
    /// advanced)` at every tissue step, plus a share of random fields for
    /// coverage. On-trajectory data is what keeps the surrogate accurate
    /// over a closed-loop rollout — training on random fields alone drifts
    /// once the coupled dynamics leaves their distribution.
    pub fn train_on_trajectories(
        tissue: &TissueConfig,
        factor: usize,
        seeds: &[u64],
        steps_per_seed: usize,
        random_fraction: f64,
        cfg: &SurrogateTrainConfig,
    ) -> Result<Self> {
        if seeds.is_empty() || steps_per_seed == 0 {
            return Err(TissueError::InvalidConfig(
                "need at least one seed and one step per seed".into(),
            ));
        }
        let (w, h) = (tissue.width, tissue.height);
        if factor == 0 || w % factor != 0 || h % factor != 0 {
            return Err(TissueError::InvalidConfig(format!(
                "factor {factor} must divide {w}x{h}"
            )));
        }
        let fine_steps = tissue.fine_steps_per_tissue_step;
        let mut triples: Vec<(Field, Field, Field)> = Vec::new();
        let mut solver_opt = None;
        for &seed in seeds {
            let mut model = TissueModel::new(*tissue, seed)?;
            let solver = *model.solver();
            solver_opt = Some(solver);
            for _ in 0..steps_per_seed {
                let before = model.nutrient.clone();
                let (sources, _) = model.current_sources();
                model.step_full()?;
                triples.push((before, sources, model.nutrient.clone()));
            }
        }
        let solver = solver_opt
            .ok_or_else(|| TissueError::InvalidConfig("training needs at least one seed".into()))?;
        // Random-field augmentation for out-of-trajectory coverage.
        let mut rng = Rng::new(cfg.seed ^ 0x7777);
        let n_random = ((triples.len() as f64) * random_fraction).round() as usize;
        for _ in 0..n_random {
            let field = random_field(w, h, &mut rng);
            let sources = random_sources(w, h, &mut rng);
            let advanced = solver.advance(&field, &sources, fine_steps)?;
            triples.push((field, sources, advanced));
        }
        Self::train_from_triples(&solver, (w, h), factor, fine_steps, &triples, cfg)
    }

    /// Train from explicit `(field, sources, advanced)` triples.
    fn train_from_triples(
        _solver: &DiffusionSolver,
        fine_shape: (usize, usize),
        factor: usize,
        fine_steps: usize,
        triples: &[(Field, Field, Field)],
        cfg: &SurrogateTrainConfig,
    ) -> Result<Self> {
        let (w, h) = fine_shape;
        let cw = w / factor;
        let ch = h / factor;
        let in_dim = 2 * cw * ch;
        let out_dim = cw * ch;
        if triples.len() < 8 {
            return Err(TissueError::InvalidConfig(format!(
                "need ≥ 8 training triples, got {}",
                triples.len()
            )));
        }
        let mut x = Matrix::zeros(triples.len(), in_dim);
        let mut y = Matrix::zeros(triples.len(), out_dim);
        for (i, (field, sources, advanced)) in triples.iter().enumerate() {
            let cf = field.downsample(factor)?;
            let cs = sources.downsample(factor)?;
            let ca = advanced.downsample(factor)?;
            x.row_mut(i)[..out_dim].copy_from_slice(cf.as_slice());
            x.row_mut(i)[out_dim..].copy_from_slice(cs.as_slice());
            y.row_mut(i).copy_from_slice(ca.as_slice());
        }
        let x_scaler = Scaler::fit(&x).map_err(|e| TissueError::Model(e.to_string()))?;
        let y_scaler = Scaler::fit(&y).map_err(|e| TissueError::Model(e.to_string()))?;
        let xs = x_scaler
            .transform(&x)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        let ys = y_scaler
            .transform(&y)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        let mut layers = vec![in_dim];
        layers.extend_from_slice(&cfg.hidden);
        layers.push(out_dim);
        let mut rng = Rng::new(cfg.seed);
        let mut net = Mlp::new(MlpConfig::regression(&layers), &mut rng)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        Trainer::new(TrainConfig {
            epochs: cfg.epochs,
            seed: cfg.seed ^ 0x5555,
            ..Default::default()
        })
        .fit(&mut net, &xs, &ys)
        .map_err(|e| TissueError::Model(e.to_string()))?;
        Ok(Self {
            scratch: RefCell::new(BatchScratch::new(&net)),
            net,
            x_scaler,
            y_scaler,
            fine_shape,
            factor,
            fine_steps,
        })
    }

    /// Apply the surrogate: coarse-grain, predict, up-sample. The drop-in
    /// replacement for `solver.advance(field, sources, fine_steps)`.
    pub fn advance(&self, field: &Field, sources: &Field) -> Result<Field> {
        let (w, h) = self.fine_shape;
        if field.width() != w || field.height() != h {
            return Err(TissueError::Shape(format!(
                "surrogate expects {w}x{h}, got {}x{}",
                field.width(),
                field.height()
            )));
        }
        let cf = field.downsample(self.factor)?;
        let cs = sources.downsample(self.factor)?;
        let n = cf.as_slice().len();
        let mut x = vec![0.0; 2 * n];
        x[..n].copy_from_slice(cf.as_slice());
        x[n..].copy_from_slice(cs.as_slice());
        self.x_scaler
            .transform_slice(&mut x)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        let mut pred = vec![0.0; self.net.out_dim()];
        self.scratch
            .borrow_mut()
            .forward_into(&x, 1, &mut pred)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        self.y_scaler
            .inverse_transform_slice(&mut pred)
            .map_err(|e| TissueError::Model(e.to_string()))?;
        for v in &mut pred {
            *v = v.max(0.0);
        }
        let coarse = Field::from_vec(w / self.factor, h / self.factor, pred)?;
        Ok(coarse.upsample(self.factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_surrogate() -> (DiffusionSolver, TransportSurrogate) {
        let solver = DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        let surrogate = TransportSurrogate::train(
            &solver,
            (16, 16),
            4,
            20,
            &SurrogateTrainConfig {
                n_samples: 250,
                hidden: vec![64],
                epochs: 120,
                seed: 11,
            },
        )
        .unwrap();
        (solver, surrogate)
    }

    #[test]
    fn factor_validation() {
        let solver = DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        assert!(TransportSurrogate::train(
            &solver,
            (16, 16),
            5,
            10,
            &SurrogateTrainConfig {
                n_samples: 4,
                epochs: 1,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn surrogate_tracks_solver_at_coarse_resolution() {
        let (solver, surrogate) = quick_surrogate();
        let mut rng = Rng::new(77);
        let mut total_rel_err = 0.0;
        let trials = 8;
        for _ in 0..trials {
            let field = random_field(16, 16, &mut rng);
            let sources = random_sources(16, 16, &mut rng);
            let truth = solver.advance(&field, &sources, 20).unwrap();
            let pred = surrogate.advance(&field, &sources).unwrap();
            // Compare at the surrogate's native (coarse) resolution.
            let tc = truth.downsample(4).unwrap();
            let pc = pred.downsample(4).unwrap();
            let rmse = tc.rmse(&pc).unwrap();
            let scale = tc.as_slice().iter().map(|v| v.abs()).sum::<f64>() / 16.0;
            total_rel_err += rmse / scale.max(1e-9);
        }
        let mean_rel = total_rel_err / trials as f64;
        assert!(
            mean_rel < 0.25,
            "surrogate relative error {mean_rel} should be modest"
        );
    }

    #[test]
    fn surrogate_output_is_nonnegative_and_right_shape() {
        let (_, surrogate) = quick_surrogate();
        let mut rng = Rng::new(78);
        let field = random_field(16, 16, &mut rng);
        let sources = random_sources(16, 16, &mut rng);
        let out = surrogate.advance(&field, &sources).unwrap();
        assert_eq!(out.width(), 16);
        assert_eq!(out.height(), 16);
        assert!(out.min() >= 0.0);
    }

    #[test]
    fn surrogate_rejects_wrong_shape() {
        let (_, surrogate) = quick_surrogate();
        let f = Field::zeros(8, 8);
        assert!(surrogate.advance(&f, &f).is_err());
    }

    #[test]
    fn trajectory_training_tracks_closed_loop_rollout() {
        use crate::vt::{TissueConfig, TissueModel};
        let config = TissueConfig {
            width: 16,
            height: 16,
            fine_steps_per_tissue_step: 20,
            initial_cells: 10,
            ..Default::default()
        };
        let train_cfg = SurrogateTrainConfig {
            hidden: vec![96],
            epochs: 200,
            seed: 21,
            n_samples: 250,
        };
        let on_traj = TransportSurrogate::train_on_trajectories(
            &config,
            4,
            &[11, 12, 13, 14, 15, 16],
            25,
            0.3,
            &train_cfg,
        )
        .unwrap();
        let random_only =
            TransportSurrogate::train(&TissueModel::new(config, 1).unwrap().solver().clone(),
                (16, 16), 4, 20, &train_cfg)
            .unwrap();
        // Closed-loop rollout: each surrogate in the loop vs full solver.
        let rollout_rmse = |surrogate: &TransportSurrogate| {
            let mut full = TissueModel::new(config, 99).unwrap();
            let mut fast = TissueModel::new(config, 99).unwrap();
            for _ in 0..10 {
                full.step_full().unwrap();
                fast.step_with_transport(|f, s| surrogate.advance(f, s))
                    .unwrap();
            }
            let fc = full.nutrient.downsample(4).unwrap();
            let sc = fast.nutrient.downsample(4).unwrap();
            (fc.rmse(&sc).unwrap(), fc.total() / 16.0)
        };
        let (rmse_traj, scale) = rollout_rmse(&on_traj);
        let (rmse_rand, _) = rollout_rmse(&random_only);
        // Both training regimes must stay bounded in closed loop at this
        // small scale (which training distribution wins is scale-dependent;
        // the 32×32 example and the E9 bench measure that trade-off).
        assert!(
            rmse_traj < scale.max(0.2),
            "on-trajectory closed-loop rmse {rmse_traj} vs scale {scale}"
        );
        assert!(
            rmse_rand < 2.0 * scale.max(0.2),
            "random-field closed-loop rmse {rmse_rand} vs scale {scale}"
        );
    }

    #[test]
    fn trajectory_training_validation() {
        use crate::vt::TissueConfig;
        let config = TissueConfig::default();
        assert!(TransportSurrogate::train_on_trajectories(
            &config,
            4,
            &[],
            10,
            0.0,
            &SurrogateTrainConfig::default()
        )
        .is_err());
        assert!(TransportSurrogate::train_on_trajectories(
            &config,
            5,
            &[1],
            10,
            0.0,
            &SurrogateTrainConfig::default()
        )
        .is_err());
    }

    #[test]
    fn surrogate_is_faster_than_fine_solver() {
        let (solver, surrogate) = quick_surrogate();
        let mut rng = Rng::new(79);
        let field = random_field(16, 16, &mut rng);
        let sources = random_sources(16, 16, &mut rng);
        // Warm up.
        let _ = solver.advance(&field, &sources, 20).unwrap();
        let _ = surrogate.advance(&field, &sources).unwrap();
        let t0 = std::time::Instant::now();
        for _ in 0..10 {
            let _ = solver.advance(&field, &sources, 20).unwrap();
        }
        let t_full = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..10 {
            let _ = surrogate.advance(&field, &sources).unwrap();
        }
        let t_sur = t1.elapsed();
        assert!(
            t_sur < t_full,
            "surrogate ({t_sur:?}) should beat {0} fine steps ({t_full:?})",
            20
        );
    }
}
