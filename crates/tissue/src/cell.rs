//! Lattice cell agents — the slow outer module of the virtual tissue.
//! Cells sit on lattice sites, take up nutrient, accumulate energy, divide
//! into free neighboring sites when well-fed, and die when starved.
//! "The core agent often representing biological cells" (§II-B).

use le_linalg::Rng;

use crate::field::Field;

/// One cell agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Lattice x position.
    pub x: usize,
    /// Lattice y position.
    pub y: usize,
    /// Internal energy store.
    pub energy: f64,
}

/// Cell behavioral parameters.
#[derive(Debug, Clone, Copy)]
pub struct CellRules {
    /// Nutrient uptake rate per tissue step (fraction of local field).
    pub uptake: f64,
    /// Energy cost of living per tissue step.
    pub maintenance: f64,
    /// Energy threshold for division.
    pub divide_at: f64,
    /// Energy of each daughter after division.
    pub daughter_energy: f64,
    /// Death threshold.
    pub die_below: f64,
}

impl Default for CellRules {
    fn default() -> Self {
        Self {
            uptake: 0.5,
            maintenance: 0.15,
            divide_at: 2.0,
            daughter_energy: 0.9,
            die_below: 0.0,
        }
    }
}

/// The cell population on a lattice of the given size.
#[derive(Debug, Clone)]
pub struct CellPopulation {
    /// Living cells.
    pub cells: Vec<Cell>,
    width: usize,
    height: usize,
    /// Occupancy grid (at most one cell per site).
    occupied: Vec<bool>,
}

impl CellPopulation {
    /// Seed `n` cells at random unoccupied sites.
    pub fn seed(width: usize, height: usize, n: usize, energy: f64, rng: &mut Rng) -> Self {
        let mut pop = Self {
            cells: Vec::with_capacity(n),
            width,
            height,
            occupied: vec![false; width * height],
        };
        let sites = rng.sample_indices(width * height, n.min(width * height));
        for s in sites {
            let (x, y) = (s % width, s / width);
            pop.occupied[s] = true;
            pop.cells.push(Cell { x, y, energy });
        }
        pop
    }

    /// Lattice width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Lattice height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of living cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells remain.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Nutrient sink field: each cell removes `uptake × local concentration`
    /// per unit time at its site. Returned as a (negative) source field to
    /// feed the diffusion solver, alongside the energy actually absorbed.
    pub fn uptake_sinks(&self, nutrient: &Field, rules: &CellRules) -> (Field, Vec<f64>) {
        let mut sinks = Field::zeros(self.width, self.height);
        let mut absorbed = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let local = nutrient.get(cell.x, cell.y);
            let take = rules.uptake * local;
            sinks.add(cell.x, cell.y, -take);
            absorbed.push(take);
        }
        (sinks, absorbed)
    }

    /// One tissue-scale update: feed cells the absorbed nutrient, apply
    /// maintenance, division into a random free neighbor site, and death.
    pub fn update(&mut self, absorbed: &[f64], rules: &CellRules, rng: &mut Rng) {
        debug_assert_eq!(absorbed.len(), self.cells.len());
        let mut next: Vec<Cell> = Vec::with_capacity(self.cells.len() + 8);
        // Process in index order for determinism.
        for (i, cell) in self.cells.iter().enumerate() {
            let mut c = *cell;
            c.energy += absorbed[i] - rules.maintenance;
            if c.energy <= rules.die_below {
                // Death: free the site.
                self.occupied[c.y * self.width + c.x] = false;
                continue;
            }
            if c.energy >= rules.divide_at {
                // Division: find a free von Neumann neighbor.
                let mut free: Vec<(usize, usize)> = Vec::with_capacity(4);
                let (x, y) = (c.x as isize, c.y as isize);
                for (dx, dy) in [(-1isize, 0isize), (1, 0), (0, -1), (0, 1)] {
                    let (nx, ny) = (x + dx, y + dy);
                    if nx >= 0
                        && ny >= 0
                        && (nx as usize) < self.width
                        && (ny as usize) < self.height
                        && !self.occupied[ny as usize * self.width + nx as usize]
                    {
                        free.push((nx as usize, ny as usize));
                    }
                }
                if !free.is_empty() {
                    let (nx, ny) = free[rng.below(free.len())];
                    self.occupied[ny * self.width + nx] = true;
                    next.push(Cell {
                        x: nx,
                        y: ny,
                        energy: rules.daughter_energy,
                    });
                    c.energy = rules.daughter_energy;
                }
            }
            next.push(c);
        }
        self.cells = next;
    }

    /// Cell-count field (for coarse features / visualization).
    pub fn density_field(&self) -> Field {
        let mut f = Field::zeros(self.width, self.height);
        for c in &self.cells {
            f.add(c.x, c.y, 1.0);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_places_distinct_cells() {
        let mut rng = Rng::new(1);
        let pop = CellPopulation::seed(8, 8, 10, 1.0, &mut rng);
        assert_eq!(pop.len(), 10);
        let mut sites: Vec<usize> = pop.cells.iter().map(|c| c.y * 8 + c.x).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), 10, "no two cells share a site");
    }

    #[test]
    fn seeding_clamps_to_lattice_capacity() {
        let mut rng = Rng::new(2);
        let pop = CellPopulation::seed(3, 3, 100, 1.0, &mut rng);
        assert_eq!(pop.len(), 9);
    }

    #[test]
    fn uptake_proportional_to_local_nutrient() {
        let mut rng = Rng::new(3);
        let pop = CellPopulation::seed(4, 4, 3, 1.0, &mut rng);
        let mut nutrient = Field::filled(4, 4, 2.0);
        nutrient.set(pop.cells[0].x, pop.cells[0].y, 4.0);
        let rules = CellRules::default();
        let (sinks, absorbed) = pop.uptake_sinks(&nutrient, &rules);
        assert_eq!(absorbed[0], 0.5 * 4.0);
        assert_eq!(absorbed[1], 0.5 * 2.0);
        // Sinks are negative and mirror absorption.
        assert_eq!(
            sinks.get(pop.cells[0].x, pop.cells[0].y),
            -absorbed[0]
        );
    }

    #[test]
    fn starving_cells_die() {
        let mut rng = Rng::new(4);
        let mut pop = CellPopulation::seed(4, 4, 5, 0.1, &mut rng);
        let rules = CellRules::default();
        // No food: maintenance kills everyone within a step.
        let absorbed = vec![0.0; pop.len()];
        pop.update(&absorbed, &rules, &mut rng);
        assert!(pop.is_empty(), "starved cells should die");
    }

    #[test]
    fn well_fed_cells_divide() {
        let mut rng = Rng::new(5);
        let mut pop = CellPopulation::seed(8, 8, 4, 1.5, &mut rng);
        let rules = CellRules::default();
        let absorbed = vec![1.0; pop.len()]; // energy 2.5 > divide_at
        let before = pop.len();
        pop.update(&absorbed, &rules, &mut rng);
        assert!(pop.len() > before, "fed cells should divide");
        // Daughters have the configured energy.
        assert!(pop
            .cells
            .iter()
            .all(|c| (c.energy - rules.daughter_energy).abs() < 1e-12));
    }

    #[test]
    fn division_respects_occupancy() {
        let mut rng = Rng::new(6);
        // Full lattice: nobody can divide.
        let mut pop = CellPopulation::seed(3, 3, 9, 1.5, &mut rng);
        let rules = CellRules::default();
        let absorbed = vec![1.0; pop.len()];
        pop.update(&absorbed, &rules, &mut rng);
        assert_eq!(pop.len(), 9, "no free sites, no division");
        // All cells still on distinct sites.
        let mut sites: Vec<usize> = pop.cells.iter().map(|c| c.y * 3 + c.x).collect();
        sites.sort_unstable();
        sites.dedup();
        assert_eq!(sites.len(), 9);
    }

    #[test]
    fn density_field_counts_cells() {
        let mut rng = Rng::new(7);
        let pop = CellPopulation::seed(5, 5, 6, 1.0, &mut rng);
        let f = pop.density_field();
        assert_eq!(f.total(), 6.0);
        assert!(f.max() <= 1.0, "one cell per site");
    }

    #[test]
    fn update_is_deterministic() {
        let run = || {
            let mut rng = Rng::new(8);
            let mut pop = CellPopulation::seed(6, 6, 8, 1.5, &mut rng);
            let rules = CellRules::default();
            for _ in 0..5 {
                let absorbed = vec![0.5; pop.len()];
                pop.update(&absorbed, &rules, &mut rng);
            }
            pop.cells.clone()
        };
        assert_eq!(run(), run());
    }
}
