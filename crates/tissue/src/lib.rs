#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed dimensions (k in 0..3, stencils) are the
// clearer idiom in numeric kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! `le-tissue` — the virtual-tissue substrate (§II-B of the paper).
//!
//! Virtual Tissue simulations are "mechanism-based multiscale spatial
//! simulations of living tissues"; their cost is dominated by transport:
//! "Modeling transport and diffusion is compute intensive". The paper's
//! AI-for-VT list includes "Short-circuiting: the replacement of
//! computationally costly modules with learned analogues" and "the
//! elimination of short time scales, e.g., short-circuit the calculations
//! of advection-diffusion" — which is exactly experiment E9.
//!
//! * [`field`] — a 2-D scalar field with no-flux boundaries.
//! * [`diffusion`] — explicit FTCS advection–diffusion with a CFL stability
//!   guard; the *fine-timescale inner module* of the tissue model.
//! * [`cell`] — lattice cell agents that consume nutrient, gain energy,
//!   divide and die; the *slow outer module*.
//! * [`vt`] — the coupled model: each tissue step runs many fine diffusion
//!   steps, then one cell update.
//! * [`surrogate_grid`] — the learned analogue: an MLP maps the
//!   coarse-grained field (plus source summary) directly to the
//!   coarse-grained field after the full fine-step burst, eliminating the
//!   short timescale.

pub mod cell;
pub mod diffusion;
pub mod field;
pub mod surrogate_grid;
pub mod vt;

pub use diffusion::DiffusionSolver;
pub use field::Field;
pub use vt::{TissueModel, TissueConfig};

/// Errors from the tissue crate.
#[derive(Debug, Clone, PartialEq)]
pub enum TissueError {
    /// Configuration is invalid (e.g. violates the CFL condition).
    InvalidConfig(String),
    /// Shape/size mismatch.
    Shape(String),
    /// Wrapped NN error.
    Model(String),
}

impl std::fmt::Display for TissueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TissueError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            TissueError::Shape(s) => write!(f, "shape error: {s}"),
            TissueError::Model(s) => write!(f, "model error: {s}"),
        }
    }
}

impl std::error::Error for TissueError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, TissueError>;
