//! A 2-D scalar field on a regular lattice, with the resampling helpers the
//! coarse-graining surrogate needs.

use crate::{Result, TissueError};

/// Row-major 2-D scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    width: usize,
    height: usize,
    data: Vec<f64>,
}

impl Field {
    /// Uniform field.
    pub fn filled(width: usize, height: usize, value: f64) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Zero field.
    pub fn zeros(width: usize, height: usize) -> Self {
        Self::filled(width, height, 0.0)
    }

    /// Build from raw data; length must equal `width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != width * height {
            return Err(TissueError::Shape(format!(
                "{}x{} field needs {} values, got {}",
                width,
                height,
                width * height,
                data.len()
            )));
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Width in cells.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in cells.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Value at (x, y).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Set value at (x, y).
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f64) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Add to value at (x, y).
    #[inline]
    pub fn add(&mut self, x: usize, y: usize, v: f64) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] += v;
    }

    /// Raw slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Total mass (sum over cells).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Minimum value.
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// Maximum value.
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// RMS difference against another field of the same shape.
    pub fn rmse(&self, other: &Field) -> Result<f64> {
        if self.width != other.width || self.height != other.height {
            return Err(TissueError::Shape("field shape mismatch".into()));
        }
        let ss: f64 = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum();
        Ok((ss / self.data.len() as f64).sqrt())
    }

    /// Downsample by block averaging. `factor` must divide both dimensions.
    pub fn downsample(&self, factor: usize) -> Result<Field> {
        if factor == 0 || !self.width.is_multiple_of(factor) || !self.height.is_multiple_of(factor) {
            return Err(TissueError::Shape(format!(
                "factor {factor} must divide {}x{}",
                self.width, self.height
            )));
        }
        let w = self.width / factor;
        let h = self.height / factor;
        let mut out = Field::zeros(w, h);
        let norm = 1.0 / (factor * factor) as f64;
        for cy in 0..h {
            for cx in 0..w {
                let mut acc = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        acc += self.get(cx * factor + dx, cy * factor + dy);
                    }
                }
                out.set(cx, cy, acc * norm);
            }
        }
        Ok(out)
    }

    /// Upsample by nearest-neighbor block replication (the inverse layout of
    /// [`Field::downsample`]).
    pub fn upsample(&self, factor: usize) -> Field {
        let mut out = Field::zeros(self.width * factor, self.height * factor);
        for y in 0..out.height {
            for x in 0..out.width {
                out.set(x, y, self.get(x / factor, y / factor));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut f = Field::zeros(4, 3);
        assert_eq!(f.width(), 4);
        assert_eq!(f.height(), 3);
        f.set(2, 1, 5.0);
        assert_eq!(f.get(2, 1), 5.0);
        f.add(2, 1, 1.5);
        assert_eq!(f.get(2, 1), 6.5);
        assert_eq!(f.total(), 6.5);
    }

    #[test]
    fn from_vec_validates() {
        assert!(Field::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(Field::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn min_max() {
        let f = Field::from_vec(2, 2, vec![1.0, -3.0, 5.0, 0.0]).unwrap();
        assert_eq!(f.min(), -3.0);
        assert_eq!(f.max(), 5.0);
    }

    #[test]
    fn rmse_known() {
        let a = Field::from_vec(2, 1, vec![1.0, 2.0]).unwrap();
        let b = Field::from_vec(2, 1, vec![0.0, 4.0]).unwrap();
        assert!((a.rmse(&b).unwrap() - (2.5f64).sqrt()).abs() < 1e-12);
        let c = Field::zeros(3, 1);
        assert!(a.rmse(&c).is_err());
    }

    #[test]
    fn downsample_preserves_mean() {
        let f = Field::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]).unwrap();
        let d = f.downsample(2).unwrap();
        assert_eq!(d.width(), 2);
        assert_eq!(d.height(), 1);
        assert_eq!(d.get(0, 0), (1.0 + 2.0 + 5.0 + 6.0) / 4.0);
        assert_eq!(d.get(1, 0), (3.0 + 4.0 + 7.0 + 8.0) / 4.0);
        // Mean conserved.
        assert!((d.total() * 4.0 - f.total()).abs() < 1e-12);
    }

    #[test]
    fn downsample_validates_factor() {
        let f = Field::zeros(4, 4);
        assert!(f.downsample(0).is_err());
        assert!(f.downsample(3).is_err());
        assert!(f.downsample(2).is_ok());
    }

    #[test]
    fn upsample_downsample_roundtrip() {
        let f = Field::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let up = f.upsample(3);
        assert_eq!(up.width(), 6);
        assert_eq!(up.get(0, 0), 1.0);
        assert_eq!(up.get(5, 5), 4.0);
        let back = up.downsample(3).unwrap();
        assert_eq!(back, f);
    }
}
