//! Explicit FTCS advection–diffusion on a 2-D lattice with no-flux
//! boundaries — the "compute intensive" fine-timescale transport module of
//! the virtual tissue model. Stability is enforced at construction via the
//! CFL-style bound for the explicit scheme.

use crate::field::Field;
use crate::{Result, TissueError};

/// The fine-timescale transport solver.
#[derive(Debug, Clone, Copy)]
pub struct DiffusionSolver {
    /// Diffusion constant.
    pub d: f64,
    /// Lattice spacing.
    pub dx: f64,
    /// Fine timestep.
    pub dt: f64,
    /// Advection velocity (vx, vy).
    pub velocity: (f64, f64),
    /// First-order decay rate of the diffusing species.
    pub decay: f64,
}

impl DiffusionSolver {
    /// Construct, enforcing explicit-scheme stability:
    /// `dt ≤ dx² / (4 D)` and a CFL bound for the upwind advection term.
    pub fn new(d: f64, dx: f64, dt: f64, velocity: (f64, f64), decay: f64) -> Result<Self> {
        if d < 0.0 || dx <= 0.0 || dt <= 0.0 || decay < 0.0 {
            return Err(TissueError::InvalidConfig(format!(
                "need d ≥ 0, dx > 0, dt > 0, decay ≥ 0; got d={d}, dx={dx}, dt={dt}, decay={decay}"
            )));
        }
        if d > 0.0 && dt > dx * dx / (4.0 * d) {
            return Err(TissueError::InvalidConfig(format!(
                "diffusive stability violated: dt={dt} > dx²/(4D)={}",
                dx * dx / (4.0 * d)
            )));
        }
        let vmax = velocity.0.abs().max(velocity.1.abs());
        if vmax > 0.0 && dt > dx / (2.0 * vmax) {
            return Err(TissueError::InvalidConfig(format!(
                "advective CFL violated: dt={dt} > dx/(2|v|)={}",
                dx / (2.0 * vmax)
            )));
        }
        Ok(Self {
            d,
            dx,
            dt,
            velocity,
            decay,
        })
    }

    /// Pure-diffusion convenience constructor.
    pub fn diffusion_only(d: f64, dx: f64, dt: f64) -> Result<Self> {
        Self::new(d, dx, dt, (0.0, 0.0), 0.0)
    }

    /// One fine step: FTCS diffusion + first-order upwind advection + decay
    /// + sources. No-flux boundaries (ghost cells mirror the edge value).
    pub fn step(&self, field: &Field, sources: &Field) -> Result<Field> {
        if field.width() != sources.width() || field.height() != sources.height() {
            return Err(TissueError::Shape("field/source shape mismatch".into()));
        }
        let w = field.width();
        let h = field.height();
        let mut out = Field::zeros(w, h);
        let alpha = self.d * self.dt / (self.dx * self.dx);
        let (vx, vy) = self.velocity;
        let cx = vx * self.dt / self.dx;
        let cy = vy * self.dt / self.dx;
        for y in 0..h {
            for x in 0..w {
                let c = field.get(x, y);
                // No-flux: mirror edges.
                let left = field.get(x.saturating_sub(1), y);
                let right = field.get(if x + 1 < w { x + 1 } else { x }, y);
                let down = field.get(x, y.saturating_sub(1));
                let up = field.get(x, if y + 1 < h { y + 1 } else { y });
                let lap = left + right + up + down - 4.0 * c;
                // Upwind advection.
                let adv_x = if vx >= 0.0 { c - left } else { right - c };
                let adv_y = if vy >= 0.0 { c - down } else { up - c };
                let mut v = c + alpha * lap - cx * adv_x - cy * adv_y
                    - self.decay * self.dt * c
                    + self.dt * sources.get(x, y);
                // Concentrations cannot be negative (sources may be sinks).
                if v < 0.0 {
                    v = 0.0;
                }
                out.set(x, y, v);
            }
        }
        Ok(out)
    }

    /// Run `n_steps` fine steps (the burst the surrogate short-circuits).
    pub fn advance(&self, field: &Field, sources: &Field, n_steps: usize) -> Result<Field> {
        let mut f = field.clone();
        for _ in 0..n_steps {
            f = self.step(&f, sources)?;
        }
        Ok(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_source_field(w: usize, h: usize) -> Field {
        let mut f = Field::zeros(w, h);
        f.set(w / 2, h / 2, 100.0);
        f
    }

    #[test]
    fn stability_validation() {
        // dx=1, D=1 → dt must be ≤ 0.25.
        assert!(DiffusionSolver::diffusion_only(1.0, 1.0, 0.3).is_err());
        assert!(DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).is_ok());
        // Advective CFL.
        assert!(DiffusionSolver::new(0.1, 1.0, 0.2, (5.0, 0.0), 0.0).is_err());
        assert!(DiffusionSolver::new(0.1, 1.0, 0.05, (5.0, 0.0), 0.0).is_ok());
        // Negative parameters.
        assert!(DiffusionSolver::diffusion_only(-1.0, 1.0, 0.1).is_err());
        assert!(DiffusionSolver::new(1.0, 1.0, 0.1, (0.0, 0.0), -0.5).is_err());
    }

    #[test]
    fn mass_conserved_without_decay_or_sources() {
        let solver = DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        let f0 = point_source_field(16, 16);
        let sources = Field::zeros(16, 16);
        let f = solver.advance(&f0, &sources, 100).unwrap();
        assert!(
            (f.total() - f0.total()).abs() < 1e-9,
            "no-flux diffusion conserves mass: {} -> {}",
            f0.total(),
            f.total()
        );
    }

    #[test]
    fn diffusion_spreads_the_peak() {
        // Odd-sized grid so the point source has a true central site and
        // the domain is mirror-symmetric about it.
        let solver = DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        let f0 = point_source_field(17, 17);
        let sources = Field::zeros(17, 17);
        let f = solver.advance(&f0, &sources, 50).unwrap();
        assert!(f.max() < f0.max(), "peak must decay");
        assert!(f.get(0, 0) > 0.0, "mass reaches the corner eventually");
        // Symmetry about the center (8, 8).
        assert!((f.get(7, 8) - f.get(9, 8)).abs() < 1e-9);
        assert!((f.get(8, 7) - f.get(8, 9)).abs() < 1e-9);
        assert!((f.get(0, 8) - f.get(16, 8)).abs() < 1e-9);
    }

    #[test]
    fn uniform_field_is_stationary() {
        let solver = DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        let f0 = Field::filled(8, 8, 3.0);
        let f = solver.advance(&f0, &Field::zeros(8, 8), 25).unwrap();
        for y in 0..8 {
            for x in 0..8 {
                assert!((f.get(x, y) - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn decay_reduces_mass_exponentially() {
        let solver = DiffusionSolver::new(0.5, 1.0, 0.1, (0.0, 0.0), 0.2).unwrap();
        let f0 = Field::filled(8, 8, 1.0);
        let f = solver.advance(&f0, &Field::zeros(8, 8), 10).unwrap();
        // After 10 steps of (1 - 0.02) decay: (0.98)^10 ≈ 0.817.
        let expected = 64.0 * 0.98f64.powi(10);
        assert!(
            (f.total() - expected).abs() < 0.01 * expected,
            "decayed mass {} vs expected {expected}",
            f.total()
        );
    }

    #[test]
    fn sources_add_mass() {
        let solver = DiffusionSolver::diffusion_only(0.5, 1.0, 0.2).unwrap();
        let f0 = Field::zeros(8, 8);
        let mut src = Field::zeros(8, 8);
        src.set(4, 4, 10.0);
        let f = solver.advance(&f0, &src, 5).unwrap();
        // 5 steps × dt 0.2 × rate 10 = 10 units of mass.
        assert!((f.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn advection_moves_the_blob() {
        let solver = DiffusionSolver::new(0.05, 1.0, 0.1, (2.0, 0.0), 0.0).unwrap();
        let mut f0 = Field::zeros(32, 8);
        f0.set(5, 4, 100.0);
        let f = solver.advance(&f0, &Field::zeros(32, 8), 40).unwrap();
        // Center of mass should have moved right by ~ v*t = 2.0*4.0 = 8.
        let com = |fld: &Field| {
            let mut m = 0.0;
            let mut mx = 0.0;
            for y in 0..8 {
                for x in 0..32 {
                    m += fld.get(x, y);
                    mx += x as f64 * fld.get(x, y);
                }
            }
            mx / m
        };
        let shift = com(&f) - com(&f0);
        assert!(
            (shift - 8.0).abs() < 2.0,
            "advection shift {shift}, expected ≈8 (upwind diffusion tolerated)"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let solver = DiffusionSolver::diffusion_only(1.0, 1.0, 0.2).unwrap();
        let f = Field::zeros(8, 8);
        let src = Field::zeros(4, 4);
        assert!(solver.step(&f, &src).is_err());
    }
}
