//! The coupled virtual-tissue model: a nutrient field evolved by many fine
//! advection–diffusion steps per tissue step (the short timescale), coupled
//! to cell agents that consume nutrient and divide (the long timescale).
//! The fine inner burst is what the E9 surrogate short-circuits.

use le_linalg::Rng;

use crate::cell::{CellPopulation, CellRules};
use crate::diffusion::DiffusionSolver;
use crate::field::Field;
use crate::{Result, TissueError};

/// Configuration of the coupled model.
#[derive(Debug, Clone, Copy)]
pub struct TissueConfig {
    /// Lattice width.
    pub width: usize,
    /// Lattice height.
    pub height: usize,
    /// Fine diffusion steps per tissue step (the eliminated timescale).
    pub fine_steps_per_tissue_step: usize,
    /// Nutrient diffusion constant.
    pub d: f64,
    /// Fine timestep.
    pub dt: f64,
    /// Constant nutrient inflow along the left edge (per fine step).
    pub inflow: f64,
    /// Initial uniform nutrient level.
    pub initial_nutrient: f64,
    /// Initial number of cells.
    pub initial_cells: usize,
    /// Cell behavior.
    pub rules: CellRules,
}

impl Default for TissueConfig {
    fn default() -> Self {
        Self {
            width: 32,
            height: 32,
            fine_steps_per_tissue_step: 40,
            d: 1.0,
            dt: 0.2,
            inflow: 0.5,
            initial_nutrient: 1.0,
            initial_cells: 20,
            rules: CellRules::default(),
        }
    }
}

/// The running tissue model.
#[derive(Debug, Clone)]
pub struct TissueModel {
    /// Configuration.
    pub config: TissueConfig,
    /// Nutrient field.
    pub nutrient: Field,
    /// Cell population.
    pub cells: CellPopulation,
    solver: DiffusionSolver,
    rng: Rng,
}

/// Per-step observables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TissueStats {
    /// Living cell count.
    pub n_cells: usize,
    /// Total nutrient mass.
    pub nutrient_mass: f64,
    /// Mean cell energy.
    pub mean_energy: f64,
}

impl TissueModel {
    /// Build the initial state.
    pub fn new(config: TissueConfig, seed: u64) -> Result<Self> {
        if config.width == 0 || config.height == 0 {
            return Err(TissueError::InvalidConfig("zero-sized lattice".into()));
        }
        if config.fine_steps_per_tissue_step == 0 {
            return Err(TissueError::InvalidConfig(
                "need at least one fine step per tissue step".into(),
            ));
        }
        let solver = DiffusionSolver::diffusion_only(config.d, 1.0, config.dt)?;
        let mut rng = Rng::new(seed);
        let cells = CellPopulation::seed(
            config.width,
            config.height,
            config.initial_cells,
            1.0,
            &mut rng,
        );
        Ok(Self {
            nutrient: Field::filled(config.width, config.height, config.initial_nutrient),
            cells,
            solver,
            config,
            rng,
        })
    }

    /// The source field for the current state: inflow along the left edge
    /// plus cell uptake sinks. Returns `(sources, absorbed_per_cell)`.
    pub fn current_sources(&self) -> (Field, Vec<f64>) {
        let (mut sources, absorbed) = self.cells.uptake_sinks(&self.nutrient, &self.config.rules);
        for y in 0..self.config.height {
            sources.add(0, y, self.config.inflow);
        }
        (sources, absorbed)
    }

    /// Advance one tissue step with the *full* fine solver.
    pub fn step_full(&mut self) -> Result<TissueStats> {
        let (sources, absorbed) = self.current_sources();
        self.nutrient = self.solver.advance(
            &self.nutrient,
            &sources,
            self.config.fine_steps_per_tissue_step,
        )?;
        self.cells
            .update(&absorbed, &self.config.rules, &mut self.rng);
        Ok(self.stats())
    }

    /// Advance one tissue step with a caller-supplied replacement for the
    /// fine diffusion burst (the learned analogue in E9). The closure maps
    /// `(nutrient, sources)` to the post-burst field.
    pub fn step_with_transport(
        &mut self,
        transport: impl FnOnce(&Field, &Field) -> Result<Field>,
    ) -> Result<TissueStats> {
        let (sources, absorbed) = self.current_sources();
        self.nutrient = transport(&self.nutrient, &sources)?;
        self.cells
            .update(&absorbed, &self.config.rules, &mut self.rng);
        Ok(self.stats())
    }

    /// Current observables.
    pub fn stats(&self) -> TissueStats {
        let n = self.cells.len();
        let mean_energy = if n == 0 {
            0.0
        } else {
            self.cells.cells.iter().map(|c| c.energy).sum::<f64>() / n as f64
        };
        TissueStats {
            n_cells: n,
            nutrient_mass: self.nutrient.total(),
            mean_energy,
        }
    }

    /// The fine solver (for surrogate training-data generation).
    pub fn solver(&self) -> &DiffusionSolver {
        &self.solver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TissueConfig {
        TissueConfig {
            width: 16,
            height: 16,
            fine_steps_per_tissue_step: 20,
            initial_cells: 10,
            ..Default::default()
        }
    }

    #[test]
    fn construction_validates() {
        assert!(TissueModel::new(
            TissueConfig {
                width: 0,
                ..small_config()
            },
            1
        )
        .is_err());
        assert!(TissueModel::new(
            TissueConfig {
                fine_steps_per_tissue_step: 0,
                ..small_config()
            },
            1
        )
        .is_err());
        // Unstable dt rejected through the solver.
        assert!(TissueModel::new(
            TissueConfig {
                dt: 0.5,
                ..small_config()
            },
            1
        )
        .is_err());
    }

    #[test]
    fn tissue_grows_with_inflow() {
        let mut model = TissueModel::new(small_config(), 2).unwrap();
        let initial = model.stats().n_cells;
        for _ in 0..20 {
            model.step_full().unwrap();
        }
        let stats = model.stats();
        assert!(
            stats.n_cells > initial,
            "with nutrient inflow the tissue should grow: {} -> {}",
            initial,
            stats.n_cells
        );
        assert!(stats.nutrient_mass.is_finite() && stats.nutrient_mass >= 0.0);
    }

    #[test]
    fn tissue_starves_without_inflow_or_nutrient() {
        let mut model = TissueModel::new(
            TissueConfig {
                inflow: 0.0,
                initial_nutrient: 0.05,
                ..small_config()
            },
            3,
        )
        .unwrap();
        for _ in 0..30 {
            model.step_full().unwrap();
        }
        assert_eq!(model.stats().n_cells, 0, "starved tissue dies");
    }

    #[test]
    fn step_with_identity_transport_skips_diffusion() {
        let mut a = TissueModel::new(small_config(), 4).unwrap();
        let before = a.nutrient.clone();
        // Identity transport: nutrient unchanged by the burst.
        a.step_with_transport(|f, _| Ok(f.clone())).unwrap();
        assert_eq!(a.nutrient, before);
    }

    #[test]
    fn full_and_custom_transport_agree_when_custom_is_the_solver() {
        let cfg = small_config();
        let mut a = TissueModel::new(cfg, 5).unwrap();
        let mut b = TissueModel::new(cfg, 5).unwrap();
        let solver = *b.solver();
        let fine = cfg.fine_steps_per_tissue_step;
        for _ in 0..5 {
            a.step_full().unwrap();
            b.step_with_transport(|f, s| solver.advance(f, s, fine))
                .unwrap();
        }
        assert_eq!(a.stats(), b.stats(), "same transport = same trajectory");
        assert!(a.nutrient.rmse(&b.nutrient).unwrap() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut m = TissueModel::new(small_config(), 6).unwrap();
            for _ in 0..10 {
                m.step_full().unwrap();
            }
            m.stats()
        };
        assert_eq!(run(), run());
    }
}
