#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `le-faults` — deterministic, seeded fault injection for the MLaroundHPC
//! stack.
//!
//! The paper's §II-C1 stance — "no run is wasted. Training needs both
//! successful and unsuccessful runs" — only holds if the campaign *survives*
//! unsuccessful runs. This crate supplies the reproducible failure stimulus
//! the supervision layer (the degradation ladder in `le-core`, the deadline
//! budgets in `le-sched`, the panic recovery in `le-pool`) is tested and
//! gated against:
//!
//! * [`FaultPlan`] — a seed plus a [`FaultRates`] table. Every decision is a
//!   pure function of `(seed, fault kind, index)` via a splitmix64-style
//!   hash: no state, no wall clock, no ambient entropy, so the exact same
//!   query/task indices fault at any thread count, in any execution order.
//! * [`FaultySimulator`] — a decorator over any
//!   [`learning_everywhere::Simulator`] that turns plan decisions into
//!   injected [`LeError::Simulation`] errors and NaN-poisoned outputs,
//!   counted via `faults.injected.sim_error` / `faults.injected.nonfinite`.
//! * [`FaultPlan::stalls`] — a logical-time stall schedule for
//!   `le_sched::des::simulate_with`, stretching chosen tasks past their
//!   deadline budget so the timeout/re-dispatch rungs fire.
//! * [`FaultPlan::arm_pool_panic`] — arms `le-pool`'s single-shot injected
//!   worker panic at a plan-chosen task index.
//!
//! Everything here passes the le-lint determinism and wallclock rules by
//! construction: the only inputs are the seed and the indices the engine
//! already counts.

use std::sync::atomic::{AtomicU64, Ordering};

use learning_everywhere::{LeError, Result, Simulator};

/// Per-kind injection probabilities, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultRates {
    /// Probability a simulator call returns [`LeError::Simulation`].
    pub sim_error: f64,
    /// Probability a simulator call's output is poisoned with a NaN.
    pub nonfinite: f64,
    /// Probability a scheduler task receives a logical-time stall.
    pub stall: f64,
}

/// Domain-separation salts: one per fault kind, so the per-index decision
/// streams are independent of each other.
const SALT_SIM_ERROR: u64 = 0x5105_3E8A_11CE_0001;
const SALT_NONFINITE: u64 = 0x5105_3E8A_11CE_0002;
const SALT_STALL: u64 = 0x5105_3E8A_11CE_0003;
const SALT_STALL_LEN: u64 = 0x5105_3E8A_11CE_0004;
const SALT_PANIC: u64 = 0x5105_3E8A_11CE_0005;

/// splitmix64 finalizer: a well-mixed 64-bit hash of its input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded fault schedule: which call/task indices fault, decided
/// statelessly so injection reproduces bit-for-bit across runs, thread
/// counts, and execution orders.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    rates: FaultRates,
}

impl FaultPlan {
    /// Build a plan from a seed and a rate table.
    pub fn new(seed: u64, rates: FaultRates) -> Result<Self> {
        for (name, r) in [
            ("sim_error", rates.sim_error),
            ("nonfinite", rates.nonfinite),
            ("stall", rates.stall),
        ] {
            if !(0.0..=1.0).contains(&r) {
                return Err(LeError::InvalidConfig(format!(
                    "fault rate `{name}` must be in [0, 1], got {r}"
                )));
            }
        }
        Ok(Self { seed, rates })
    }

    /// A plan that injects nothing (useful as a control arm).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            rates: FaultRates::default(),
        }
    }

    /// The plan's rate table.
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform variate in `[0, 1)` for `(kind salt, index)` — the one
    /// source of randomness behind every decision below.
    fn unit(&self, salt: u64, index: u64) -> f64 {
        let h = splitmix64(self.seed ^ splitmix64(salt ^ splitmix64(index)));
        // 53 high bits -> [0, 1) exactly as le_linalg's Rng does.
        (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// Does simulator call `index` fail with an injected error?
    pub fn injects_sim_error(&self, index: u64) -> bool {
        self.unit(SALT_SIM_ERROR, index) < self.rates.sim_error
    }

    /// Does simulator call `index` produce a NaN-poisoned output?
    pub fn injects_nonfinite(&self, index: u64) -> bool {
        self.unit(SALT_NONFINITE, index) < self.rates.nonfinite
    }

    /// Does scheduler task `index` receive a logical-time stall?
    pub fn injects_stall(&self, index: u64) -> bool {
        self.unit(SALT_STALL, index) < self.rates.stall
    }

    /// The stall schedule for a DES run of `n_tasks` tasks under a
    /// per-attempt `deadline` budget: every plan-chosen task gets its first
    /// attempt stretched by `deadline * (1 + u)` extra logical seconds
    /// (u in `[0, 1)`), which guarantees the attempt overruns its budget
    /// and exercises the timeout + re-dispatch rung; the retry runs
    /// unstalled and completes.
    pub fn stalls(&self, n_tasks: usize, deadline: f64) -> Vec<le_sched::des::Stall> {
        let mut out = Vec::new();
        for task in 0..n_tasks {
            if self.injects_stall(task as u64) {
                let extra = deadline * (1.0 + self.unit(SALT_STALL_LEN, task as u64));
                out.push(le_sched::des::Stall {
                    task,
                    attempt: 0,
                    extra,
                });
            }
        }
        out
    }

    /// The pool-task index (within the next `within` tasks) at which the
    /// plan's single injected worker panic fires.
    pub fn worker_panic_task(&self, within: u64) -> u64 {
        if within == 0 {
            return 0;
        }
        splitmix64(self.seed ^ splitmix64(SALT_PANIC)) % within
    }

    /// Arm `le-pool`'s single-shot injected worker panic at
    /// [`FaultPlan::worker_panic_task`]`(within)` tasks from now. The panic
    /// fires once, on whichever thread claims that task, and is then
    /// disarmed; `le-pool` carries it back to the dispatching caller like
    /// any genuine worker panic.
    pub fn arm_pool_panic(&self, within: u64) {
        le_pool::fault::arm_worker_panic(self.worker_panic_task(within));
    }
}

/// A decorator injecting plan-scheduled faults into any [`Simulator`].
///
/// Call indices are assigned by a process-wide-free atomic counter owned by
/// this instance: the i-th `simulate` call on this wrapper consults the
/// plan's decisions for index i, whether it runs on the caller thread or a
/// pool worker. Injected failures are typed [`LeError::Simulation`] errors
/// (what a diverged run reports) and NaN-poisoned outputs (what a silently
/// broken run reports) — the two stimuli the engine's degradation ladder
/// must absorb.
pub struct FaultySimulator<S: Simulator> {
    inner: S,
    plan: FaultPlan,
    calls: AtomicU64,
}

impl<S: Simulator> FaultySimulator<S> {
    /// Wrap `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            calls: AtomicU64::new(0),
        }
    }

    /// The wrapped simulator.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The plan driving the injection.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of `simulate` calls seen so far (== the next call's index).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl<S: Simulator> Simulator for FaultySimulator<S> {
    fn input_dim(&self) -> usize {
        self.inner.input_dim()
    }

    fn output_dim(&self) -> usize {
        self.inner.output_dim()
    }

    fn simulate(&self, input: &[f64], seed: u64) -> Result<Vec<f64>> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.plan.injects_sim_error(call) {
            le_obs::counter!("faults.injected.sim_error").inc();
            return Err(LeError::Simulation(format!(
                "injected fault at call {call}"
            )));
        }
        let mut out = self.inner.simulate(input, seed)?;
        if self.plan.injects_nonfinite(call) && !out.is_empty() {
            le_obs::counter!("faults.injected.nonfinite").inc();
            let k = (call as usize) % out.len();
            out[k] = f64::NAN;
        }
        Ok(out)
    }

    fn name(&self) -> &str {
        "faulty"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use learning_everywhere::simulator::SyntheticSimulator;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::new(
            seed,
            FaultRates {
                sim_error: 0.2,
                nonfinite: 0.1,
                stall: 0.15,
            },
        )
        .unwrap()
    }

    #[test]
    fn rates_are_validated() {
        for bad in [-0.1, 1.1, f64::NAN] {
            assert!(FaultPlan::new(
                1,
                FaultRates {
                    sim_error: bad,
                    ..Default::default()
                }
            )
            .is_err());
        }
        assert!(FaultPlan::new(
            1,
            FaultRates {
                sim_error: 0.0,
                nonfinite: 1.0,
                stall: 0.5,
            }
        )
        .is_ok());
    }

    #[test]
    fn decisions_are_pure_functions_of_seed_and_index() {
        let a = plan(7);
        let b = plan(7);
        for i in 0..500 {
            assert_eq!(a.injects_sim_error(i), b.injects_sim_error(i));
            assert_eq!(a.injects_nonfinite(i), b.injects_nonfinite(i));
            assert_eq!(a.injects_stall(i), b.injects_stall(i));
        }
        // And order-independent: querying backwards gives the same stream.
        let fwd: Vec<bool> = (0..100).map(|i| a.injects_sim_error(i)).collect();
        let bwd: Vec<bool> = (0..100).rev().map(|i| a.injects_sim_error(i)).collect();
        let bwd: Vec<bool> = bwd.into_iter().rev().collect();
        assert_eq!(fwd, bwd);
    }

    #[test]
    fn empirical_rates_match_the_table() {
        let p = plan(42);
        let n = 20_000u64;
        let errs = (0..n).filter(|&i| p.injects_sim_error(i)).count() as f64 / n as f64;
        let nans = (0..n).filter(|&i| p.injects_nonfinite(i)).count() as f64 / n as f64;
        assert!((errs - 0.2).abs() < 0.02, "sim_error rate {errs}");
        assert!((nans - 0.1).abs() < 0.02, "nonfinite rate {nans}");
        // Streams are independent: the overlap is ~product, not ~min.
        let both = (0..n)
            .filter(|&i| p.injects_sim_error(i) && p.injects_nonfinite(i))
            .count() as f64
            / n as f64;
        assert!((both - 0.02).abs() < 0.01, "joint rate {both}");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let p = FaultPlan::quiet(3);
        assert!((0..1000).all(|i| !p.injects_sim_error(i)
            && !p.injects_nonfinite(i)
            && !p.injects_stall(i)));
        assert!(p.stalls(100, 5.0).is_empty());
    }

    #[test]
    fn stall_schedule_overruns_the_deadline() {
        let p = plan(11);
        let deadline = 4.0;
        let stalls = p.stalls(200, deadline);
        assert!(!stalls.is_empty(), "15% of 200 tasks should stall");
        for s in &stalls {
            assert!(s.task < 200);
            assert_eq!(s.attempt, 0);
            assert!(
                s.extra > deadline,
                "stall {} must push any service past the budget",
                s.extra
            );
        }
    }

    #[test]
    fn faulty_simulator_injects_at_plan_indices() {
        let p = plan(5);
        let sim = FaultySimulator::new(SyntheticSimulator::new(2, 1, 0, 0.0), p.clone());
        let mut outcomes = Vec::new();
        for i in 0..200u64 {
            let r = sim.simulate(&[0.1, 0.2], i);
            outcomes.push(match r {
                Err(_) => 'e',
                Ok(v) if v.iter().any(|x| !x.is_finite()) => 'n',
                Ok(_) => 'o',
            });
        }
        assert_eq!(sim.calls(), 200);
        for (i, &o) in outcomes.iter().enumerate() {
            let i = i as u64;
            if p.injects_sim_error(i) {
                assert_eq!(o, 'e', "call {i} must fail");
            } else if p.injects_nonfinite(i) {
                assert_eq!(o, 'n', "call {i} must be NaN-poisoned");
            } else {
                assert_eq!(o, 'o', "call {i} must pass through");
            }
        }
        // Some of each outcome at these rates over 200 calls.
        assert!(outcomes.contains(&'e') && outcomes.contains(&'n') && outcomes.contains(&'o'));
    }

    #[test]
    fn faulty_simulator_passes_dims_through() {
        let sim = FaultySimulator::new(SyntheticSimulator::new(3, 2, 0, 0.0), FaultPlan::quiet(1));
        assert_eq!(sim.input_dim(), 3);
        assert_eq!(sim.output_dim(), 2);
        assert_eq!(sim.name(), "faulty");
        assert_eq!(sim.inner().input_dim(), 3);
    }

    #[test]
    fn worker_panic_task_is_stable_and_in_range() {
        let p = plan(9);
        let t = p.worker_panic_task(64);
        assert_eq!(t, p.worker_panic_task(64));
        assert!(t < 64);
        assert_eq!(p.worker_panic_task(0), 0);
    }
}
