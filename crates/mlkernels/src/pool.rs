//! Chunked fork-join parallelism — thin re-export of [`le_pool`].
//!
//! PR 1 introduced these helpers on `std::thread::scope`, spawning and
//! joining fresh OS threads inside every call. They are now backed by the
//! persistent worker pool in `crates/pool` (`le_pool`), which keeps the
//! same contract — index-ordered, thread-count-independent results and
//! panic propagation — without per-call spawn/join overhead. This module
//! remains so existing `le_mlkernels::pool::...` call sites keep working;
//! new code should depend on `le_pool` directly.

pub use le_pool::{default_threads, par_for_chunks, par_for_each, par_map, par_map_index, par_reduce};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_index_matches_sequential() {
        let par = par_map_index(1000, |i| i * i);
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<i64> = (0..513).collect();
        let par = par_map(&items, |&x| x * 3 - 1);
        let seq: Vec<i64> = items.iter().map(|&x| x * 3 - 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_index(1, |i| i + 7), vec![7]);
        assert_eq!(par_map::<i32, i32, _>(&[], |&x| x), Vec::<i32>::new());
    }

    #[test]
    fn results_collect_into_result() {
        let r: Result<Vec<usize>, String> =
            par_map_index(64, |i| if i == 63 { Err("boom".to_string()) } else { Ok(i) })
                .into_iter()
                .collect();
        assert!(r.is_err());
        let ok: Result<Vec<usize>, String> =
            par_map_index(64, Ok).into_iter().collect();
        assert_eq!(ok.map(|v| v.len()), Ok(64));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
