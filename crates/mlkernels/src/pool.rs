//! Chunked fork-join parallelism on `std::thread::scope`.
//!
//! The workspace is dependency-free, so the `rayon` parallel iterators the
//! simulators and trainers used to rely on are replaced by these helpers.
//! Work is split into one contiguous chunk per worker; each worker maps its
//! chunk into a local `Vec`, and the chunks are stitched back together in
//! index order, so results are deterministic regardless of thread count or
//! interleaving (each item's closure must itself be deterministic in its
//! index, which the seeded-RNG convention guarantees).

/// Worker count: the machine's available parallelism, or 1 if unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `0..n` in parallel, preserving index order.
///
/// Equivalent to `(0..n).map(f).collect()` but chunked across
/// [`default_threads`] scoped workers. A panic in `f` is propagated to the
/// caller (as the sequential loop would).
pub fn par_map_index<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = default_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    let chunk = n.div_ceil(threads);
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

/// Map `f` over a slice in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_index(items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_index_matches_sequential() {
        let par = par_map_index(1000, |i| i * i);
        let seq: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<i64> = (0..513).collect();
        let par = par_map(&items, |&x| x * 3 - 1);
        let seq: Vec<i64> = items.iter().map(|&x| x * 3 - 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert_eq!(par_map_index(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_index(1, |i| i + 7), vec![7]);
        assert_eq!(par_map::<i32, i32, _>(&[], |&x| x), Vec::<i32>::new());
    }

    #[test]
    fn results_collect_into_result() {
        let r: Result<Vec<usize>, String> =
            par_map_index(64, |i| if i == 63 { Err("boom".to_string()) } else { Ok(i) })
                .into_iter()
                .collect();
        assert!(r.is_err());
        let ok: Result<Vec<usize>, String> =
            par_map_index(64, Ok).into_iter().collect();
        assert_eq!(ok.map(|v| v.len()), Ok(64));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
