//! Cyclic coordinate descent for low-rank matrix factorization — the
//! paper's CCD representative. Observed entries `(i, j, v)` are fit by
//! `v ≈ u_i · q_j` with L2 regularization; one "epoch" makes a coordinate
//! pass over every observed rating.
//!
//! Model **Rotation** is the natural scheme here (the DSGD/Harp stratum
//! pattern): users are sharded per worker, item blocks rotate, and within a
//! stratum every coordinate update is exclusively owned — no locks, no
//! races, no staleness.

use std::sync::Mutex;

use le_linalg::Rng;

use crate::sync::{KernelReport, MutexExt, SyncModel, atomic_vec, partition, snapshot};
use crate::{KernelError, Result};

/// A sparse observed rating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    /// Row (user) index.
    pub user: u32,
    /// Column (item) index.
    pub item: u32,
    /// Observed value.
    pub value: f64,
}

/// CCD configuration.
#[derive(Debug, Clone, Copy)]
pub struct CcdConfig {
    /// Factorization rank.
    pub rank: usize,
    /// Epochs.
    pub epochs: usize,
    /// Coordinate step size (for the gradient-form update).
    pub lr: f64,
    /// L2 regularization.
    pub l2: f64,
    /// Worker threads.
    pub threads: usize,
    /// Seed for factor initialization.
    pub seed: u64,
}

impl Default for CcdConfig {
    fn default() -> Self {
        Self {
            rank: 4,
            epochs: 30,
            lr: 0.05,
            l2: 0.02,
            threads: 4,
            seed: 0,
        }
    }
}

/// Root-mean-square reconstruction error over the observed entries.
pub fn rmse(ratings: &[Rating], u: &[f64], q: &[f64], rank: usize) -> f64 {
    if ratings.is_empty() {
        return 0.0;
    }
    let ss: f64 = ratings
        .iter()
        .map(|r| {
            let pred = predict(u, q, rank, r.user as usize, r.item as usize);
            (r.value - pred) * (r.value - pred)
        })
        .sum();
    (ss / ratings.len() as f64).sqrt()
}

#[inline]
fn predict(u: &[f64], q: &[f64], rank: usize, user: usize, item: usize) -> f64 {
    let ui = &u[user * rank..(user + 1) * rank];
    let qj = &q[item * rank..(item + 1) * rank];
    ui.iter().zip(qj.iter()).map(|(&a, &b)| a * b).sum()
}

/// One cyclic coordinate pass over a single rating: for each k update
/// `u_ik` then `q_jk` with a regularized gradient step on the residual.
#[inline]
fn coordinate_pass(
    u: &mut [f64],
    q: &mut [f64],
    rank: usize,
    r: &Rating,
    lr: f64,
    l2: f64,
) {
    let ubase = r.user as usize * rank;
    let qbase = r.item as usize * rank;
    for k in 0..rank {
        let pred: f64 = (0..rank).map(|m| u[ubase + m] * q[qbase + m]).sum();
        let err = r.value - pred;
        let uk = u[ubase + k];
        let qk = q[qbase + k];
        u[ubase + k] += lr * (err * qk - l2 * uk);
        let pred2: f64 = (0..rank).map(|m| u[ubase + m] * q[qbase + m]).sum();
        let err2 = r.value - pred2;
        q[qbase + k] += lr * (err2 * u[ubase + k] - l2 * qk);
    }
}

fn validate(ratings: &[Rating], n_users: usize, n_items: usize, cfg: &CcdConfig) -> Result<()> {
    if ratings.is_empty() {
        return Err(KernelError::Shape("no observed ratings".into()));
    }
    if ratings
        .iter()
        .any(|r| r.user as usize >= n_users || r.item as usize >= n_items)
    {
        return Err(KernelError::Shape("rating index out of range".into()));
    }
    if cfg.rank == 0 || cfg.epochs == 0 || cfg.threads == 0 || cfg.lr <= 0.0 {
        return Err(KernelError::InvalidConfig(format!(
            "rank={}, epochs={}, threads={}, lr={}",
            cfg.rank, cfg.epochs, cfg.threads, cfg.lr
        )));
    }
    Ok(())
}

/// Train the factorization; returns `(u, q)` flat factor matrices and the
/// convergence report.
pub fn train(
    ratings: &[Rating],
    n_users: usize,
    n_items: usize,
    model: SyncModel,
    cfg: &CcdConfig,
) -> Result<(Vec<f64>, Vec<f64>, KernelReport)> {
    validate(ratings, n_users, n_items, cfg)?;
    let mut rng = Rng::new(cfg.seed);
    let scale = 1.0 / (cfg.rank as f64).sqrt();
    let mut u: Vec<f64> = (0..n_users * cfg.rank)
        .map(|_| rng.uniform_in(0.0, scale))
        .collect();
    let mut q: Vec<f64> = (0..n_items * cfg.rank)
        .map(|_| rng.uniform_in(0.0, scale))
        .collect();
    let mut history = Vec::with_capacity(cfg.epochs);
    // Wall-clock for the report only, never feeds the dynamics.
    let start = le_obs::timed_span!("mlkernels.ccd");

    match model {
        SyncModel::Locking => {
            let state = Mutex::new((u, q));
            let shards = partition(ratings.len(), cfg.threads);
            for _epoch in 0..cfg.epochs {
                std::thread::scope(|s| {
                    for shard in &shards {
                        let state = &state;
                        let shard = shard.clone();
                        s.spawn(move || {
                            for i in shard {
                                let mut guard = state.plock();
                                let (u, q) = &mut *guard;
                                coordinate_pass(u, q, cfg.rank, &ratings[i], cfg.lr, cfg.l2);
                            }
                        });
                    }
                });
                let guard = state.plock();
                history.push(rmse(ratings, &guard.0, &guard.1, cfg.rank));
            }
            let (fu, fq) = state.into_data();
            u = fu;
            q = fq;
        }
        SyncModel::Asynchronous => {
            let au = atomic_vec(&u);
            let aq = atomic_vec(&q);
            let shards = partition(ratings.len(), cfg.threads);
            for _epoch in 0..cfg.epochs {
                std::thread::scope(|s| {
                    for shard in &shards {
                        let au = &au;
                        let aq = &aq;
                        let shard = shard.clone();
                        s.spawn(move || {
                            for i in shard {
                                let r = &ratings[i];
                                let ubase = r.user as usize * cfg.rank;
                                let qbase = r.item as usize * cfg.rank;
                                // Racy snapshot of the two factor rows.
                                let mut ui: Vec<f64> =
                                    (0..cfg.rank).map(|k| au[ubase + k].load()).collect();
                                let mut qj: Vec<f64> =
                                    (0..cfg.rank).map(|k| aq[qbase + k].load()).collect();
                                let u_old = ui.clone();
                                let q_old = qj.clone();
                                let local = Rating {
                                    user: 0,
                                    item: 0,
                                    value: r.value,
                                };
                                coordinate_pass(&mut ui, &mut qj, cfg.rank, &local, cfg.lr, cfg.l2);
                                for k in 0..cfg.rank {
                                    au[ubase + k].fetch_add(ui[k] - u_old[k]);
                                    aq[qbase + k].fetch_add(qj[k] - q_old[k]);
                                }
                            }
                        });
                    }
                });
                history.push(rmse(ratings, &snapshot(&au), &snapshot(&aq), cfg.rank));
            }
            u = snapshot(&au);
            q = snapshot(&aq);
        }
        SyncModel::Allreduce => {
            // BSP: replicas do local coordinate passes, then factor
            // averaging (weighted by shard size).
            let shards = partition(ratings.len(), cfg.threads);
            for _epoch in 0..cfg.epochs {
                let partials = Mutex::new(Vec::with_capacity(cfg.threads));
                std::thread::scope(|s| {
                    for shard in &shards {
                        let partials = &partials;
                        let u0 = u.clone();
                        let q0 = q.clone();
                        let shard = shard.clone();
                        s.spawn(move || {
                            let mut lu = u0;
                            let mut lq = q0;
                            let len = shard.len();
                            for i in shard {
                                coordinate_pass(
                                    &mut lu,
                                    &mut lq,
                                    cfg.rank,
                                    &ratings[i],
                                    cfg.lr,
                                    cfg.l2,
                                );
                            }
                            partials.plock().push((lu, lq, len));
                        });
                    }
                });
                let partials = partials.into_data();
                let total: f64 = partials.iter().map(|p| p.2 as f64).sum();
                if total > 0.0 {
                    u.iter_mut().for_each(|v| *v = 0.0);
                    q.iter_mut().for_each(|v| *v = 0.0);
                    for (lu, lq, len) in &partials {
                        let w = *len as f64 / total;
                        for (a, &b) in u.iter_mut().zip(lu.iter()) {
                            *a += w * b;
                        }
                        for (a, &b) in q.iter_mut().zip(lq.iter()) {
                            *a += w * b;
                        }
                    }
                }
                history.push(rmse(ratings, &u, &q, cfg.rank));
            }
        }
        SyncModel::Rotation => {
            // DSGD strata: users sharded per worker (fixed), item blocks
            // rotate. Ratings are pre-bucketed by (user shard, item block).
            let user_shards = partition(n_users, cfg.threads);
            let item_blocks = partition(n_items, cfg.threads);
            let shard_of_user: Vec<usize> = {
                let mut m = vec![0; n_users];
                for (s, r) in user_shards.iter().enumerate() {
                    for i in r.clone() {
                        m[i] = s;
                    }
                }
                m
            };
            let block_of_item: Vec<usize> = {
                let mut m = vec![0; n_items];
                for (b, r) in item_blocks.iter().enumerate() {
                    for i in r.clone() {
                        m[i] = b;
                    }
                }
                m
            };
            // strata[worker][block] = rating indices.
            let mut strata: Vec<Vec<Vec<usize>>> =
                vec![vec![Vec::new(); cfg.threads]; cfg.threads];
            for (idx, r) in ratings.iter().enumerate() {
                strata[shard_of_user[r.user as usize]][block_of_item[r.item as usize]]
                    .push(idx);
            }
            // Factor storage partitioned into per-shard/per-block chunks so
            // each stratum is exclusively owned during its sub-step.
            let u_cell = Mutex::new(u);
            let q_blocks: Vec<Mutex<Vec<f64>>> = item_blocks
                .iter()
                .map(|b| {
                    Mutex::new(
                        (b.start * cfg.rank..b.end * cfg.rank)
                            .map(|i| q[i])
                            .collect(),
                    )
                })
                .collect();
            // u is sharded by rows too; avoid a global lock by splitting.
            let u_shards: Vec<Mutex<Vec<f64>>> = {
                let guard = u_cell.plock();
                user_shards
                    .iter()
                    .map(|r| {
                        Mutex::new(
                            (r.start * cfg.rank..r.end * cfg.rank)
                                .map(|i| guard[i])
                                .collect(),
                        )
                    })
                    .collect()
            };
            for _epoch in 0..cfg.epochs {
                let barrier = std::sync::Barrier::new(cfg.threads);
                std::thread::scope(|s| {
                    for t in 0..cfg.threads {
                        let strata = &strata;
                        let u_shards = &u_shards;
                        let q_blocks = &q_blocks;
                        let user_shards = &user_shards;
                        let item_blocks = &item_blocks;
                        let barrier = &barrier;
                        s.spawn(move || {
                            for step in 0..cfg.threads {
                                let b = (t + step) % cfg.threads;
                                {
                                    let mut ug = u_shards[t].plock();
                                    let mut qg = q_blocks[b].plock();
                                    let u_off = user_shards[t].start;
                                    let q_off = item_blocks[b].start;
                                    for &idx in &strata[t][b] {
                                        let r = ratings[idx];
                                        // Re-index into the local chunks.
                                        let local = Rating {
                                            user: (r.user as usize - u_off) as u32,
                                            item: (r.item as usize - q_off) as u32,
                                            value: r.value,
                                        };
                                        coordinate_pass(
                                            &mut ug,
                                            &mut qg,
                                            cfg.rank,
                                            &local,
                                            cfg.lr,
                                            cfg.l2,
                                        );
                                    }
                                }
                                barrier.wait();
                            }
                        });
                    }
                });
                // Assemble for the history measurement.
                let mut fu = vec![0.0; n_users * cfg.rank];
                for (r, shard) in user_shards.iter().zip(u_shards.iter()) {
                    fu[r.start * cfg.rank..r.end * cfg.rank]
                        .copy_from_slice(&shard.plock());
                }
                let mut fq = vec![0.0; n_items * cfg.rank];
                for (r, block) in item_blocks.iter().zip(q_blocks.iter()) {
                    fq[r.start * cfg.rank..r.end * cfg.rank]
                        .copy_from_slice(&block.plock());
                }
                history.push(rmse(ratings, &fu, &fq, cfg.rank));
            }
            let mut fu = vec![0.0; n_users * cfg.rank];
            for (r, shard) in user_shards.iter().zip(u_shards.iter()) {
                fu[r.start * cfg.rank..r.end * cfg.rank].copy_from_slice(&shard.plock());
            }
            let mut fq = vec![0.0; n_items * cfg.rank];
            for (r, block) in item_blocks.iter().zip(q_blocks.iter()) {
                fq[r.start * cfg.rank..r.end * cfg.rank].copy_from_slice(&block.plock());
            }
            u = fu;
            q = fq;
        }
    }
    Ok((
        u,
        q,
        KernelReport {
            model,
            threads: cfg.threads,
            objective: history,
            seconds: start.finish_secs(),
        },
    ))
}

/// Generate a synthetic low-rank rating matrix with the given observation
/// density.
pub fn synthetic_ratings(
    n_users: usize,
    n_items: usize,
    true_rank: usize,
    density: f64,
    noise: f64,
    seed: u64,
) -> Vec<Rating> {
    let mut rng = Rng::new(seed);
    let u: Vec<f64> = (0..n_users * true_rank)
        .map(|_| rng.uniform_in(0.2, 1.0))
        .collect();
    let q: Vec<f64> = (0..n_items * true_rank)
        .map(|_| rng.uniform_in(0.2, 1.0))
        .collect();
    let mut out = Vec::new();
    for i in 0..n_users {
        for j in 0..n_items {
            if rng.bernoulli(density) {
                let v: f64 = (0..true_rank)
                    .map(|k| u[i * true_rank + k] * q[j * true_rank + k])
                    .sum();
                out.push(Rating {
                    user: i as u32,
                    item: j as u32,
                    value: v + noise * rng.gaussian(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Vec<Rating> {
        synthetic_ratings(60, 50, 3, 0.3, 0.01, 13)
    }

    #[test]
    fn validation() {
        let ratings = dataset();
        let cfg = CcdConfig::default();
        assert!(train(&[], 10, 10, SyncModel::Locking, &cfg).is_err());
        // Out-of-range index.
        let bad = vec![Rating {
            user: 99,
            item: 0,
            value: 1.0,
        }];
        assert!(train(&bad, 10, 10, SyncModel::Locking, &cfg).is_err());
        assert!(train(
            &ratings,
            60,
            50,
            SyncModel::Locking,
            &CcdConfig {
                rank: 0,
                ..cfg
            }
        )
        .is_err());
    }

    #[test]
    fn all_models_fit_the_low_rank_structure() {
        let ratings = dataset();
        for model in SyncModel::ALL {
            let (_, _, report) = train(
                &ratings,
                60,
                50,
                model,
                &CcdConfig {
                    rank: 4,
                    epochs: 60,
                    threads: 4,
                    lr: 0.08,
                    l2: 0.005,
                    seed: 3,
                },
            )
            .unwrap();
            assert!(
                report.final_objective() < 0.12,
                "{}: final RMSE {}",
                model.name(),
                report.final_objective()
            );
            assert!(
                report.final_objective() < report.objective[0] * 0.5,
                "{}: no convergence {:?}",
                model.name(),
                (report.objective[0], report.final_objective())
            );
        }
    }

    #[test]
    fn rotation_strata_cover_all_ratings() {
        // Indirect check: rotation must reach the same quality as locking,
        // which it cannot if strata drop ratings.
        let ratings = dataset();
        let cfg = CcdConfig {
            rank: 4,
            epochs: 40,
            threads: 3,
            lr: 0.08,
            l2: 0.005,
            seed: 4,
        };
        let (_, _, rot) = train(&ratings, 60, 50, SyncModel::Rotation, &cfg).unwrap();
        let (_, _, lock) = train(&ratings, 60, 50, SyncModel::Locking, &cfg).unwrap();
        assert!(
            rot.final_objective() < lock.final_objective() * 2.0 + 0.05,
            "rotation {} vs locking {}",
            rot.final_objective(),
            lock.final_objective()
        );
    }

    #[test]
    fn rotation_is_deterministic() {
        let ratings = dataset();
        let cfg = CcdConfig {
            rank: 3,
            epochs: 10,
            threads: 4,
            seed: 5,
            ..Default::default()
        };
        let (u1, q1, _) = train(&ratings, 60, 50, SyncModel::Rotation, &cfg).unwrap();
        let (u2, q2, _) = train(&ratings, 60, 50, SyncModel::Rotation, &cfg).unwrap();
        assert_eq!(u1, u2, "strata ownership makes rotation deterministic");
        assert_eq!(q1, q2);
    }

    #[test]
    fn prediction_matches_factor_product() {
        let u = vec![1.0, 2.0, 3.0, 4.0]; // 2 users, rank 2
        let q = vec![0.5, 0.5, 1.0, 0.0]; // 2 items, rank 2
        assert_eq!(predict(&u, &q, 2, 0, 0), 1.5);
        assert_eq!(predict(&u, &q, 2, 1, 1), 3.0);
    }

    #[test]
    fn rmse_zero_for_exact_factors() {
        let u = vec![1.0, 0.0];
        let q = vec![2.0, 0.0];
        let ratings = vec![Rating {
            user: 0,
            item: 0,
            value: 2.0,
        }];
        assert_eq!(rmse(&ratings, &u, &q, 2), 0.0);
    }

    #[test]
    fn single_thread_rotation_equals_sequential_pass() {
        // threads=1: rotation degenerates to a plain sequential sweep in
        // stratum order; just verify it converges.
        let ratings = dataset();
        let (_, _, report) = train(
            &ratings,
            60,
            50,
            SyncModel::Rotation,
            &CcdConfig {
                rank: 4,
                epochs: 40,
                threads: 1,
                lr: 0.08,
                l2: 0.005,
                seed: 6,
            },
        )
        .unwrap();
        assert!(report.final_objective() < 0.12);
    }
}
