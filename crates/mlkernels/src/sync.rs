//! The four synchronization models and shared parallel plumbing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Poison-recovering access to [`std::sync::Mutex`].
///
/// The kernels treat a panicked worker as fatal to the run's statistics but
/// not to the process: the data under the lock is plain numeric state, so
/// recovery is always safe, and library code stays panic-free.
pub trait MutexExt<T> {
    /// Lock, recovering the guard if a previous holder panicked.
    fn plock(&self) -> MutexGuard<'_, T>;
    /// Consume the mutex and return its data, ignoring poison.
    fn into_data(self) -> T;
}

impl<T> MutexExt<T> for Mutex<T> {
    #[inline]
    fn plock(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    fn into_data(self) -> T {
        self.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The paper's four computation models for parallel iterative ML.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncModel {
    /// One shared model protected by a lock; workers take the lock for
    /// every update. Maximum consistency, maximum contention.
    Locking,
    /// The model is partitioned into as many shards as workers; shards
    /// rotate through the workers in a ring so each worker updates each
    /// shard once per epoch with exclusive ownership — consistency without
    /// a global lock (Harp/Petuum-style model rotation).
    Rotation,
    /// Bulk-synchronous: every worker updates a private replica, then a
    /// barrier + collective average merges them (the MPI allreduce
    /// pattern).
    Allreduce,
    /// Hogwild-style: a shared model in atomics, updated racily with no
    /// coordination. Maximum speed, bounded staleness.
    Asynchronous,
}

impl SyncModel {
    /// All four models, in the paper's order.
    pub const ALL: [SyncModel; 4] = [
        SyncModel::Locking,
        SyncModel::Rotation,
        SyncModel::Allreduce,
        SyncModel::Asynchronous,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            SyncModel::Locking => "locking",
            SyncModel::Rotation => "rotation",
            SyncModel::Allreduce => "allreduce",
            SyncModel::Asynchronous => "asynchronous",
        }
    }
}

/// An `f64` cell supporting lock-free atomic add via compare-exchange on
/// the bit pattern — the storage for Hogwild-style asynchronous updates.
#[derive(Debug)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// New cell holding `v`.
    pub fn new(v: f64) -> Self {
        Self {
            bits: AtomicU64::new(v.to_bits()),
        }
    }

    /// Relaxed load. Hogwild reads tolerate staleness by design.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Relaxed store.
    #[inline]
    pub fn store(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomic `+= delta` via CAS loop.
    #[inline]
    pub fn fetch_add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

/// A vector of atomic floats (a shared Hogwild model).
pub fn atomic_vec(init: &[f64]) -> Vec<AtomicF64> {
    init.iter().map(|&v| AtomicF64::new(v)).collect()
}

/// Snapshot an atomic vector into a plain one.
pub fn snapshot(v: &[AtomicF64]) -> Vec<f64> {
    v.iter().map(|a| a.load()).collect()
}

/// Convergence history of one kernel run.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Synchronization model used.
    pub model: SyncModel,
    /// Threads used.
    pub threads: usize,
    /// Objective value after each epoch (loss / inertia / negative
    /// log-likelihood — kernel-specific, lower is better).
    pub objective: Vec<f64>,
    /// Wall-clock seconds for the measured loop.
    pub seconds: f64,
}

impl KernelReport {
    /// Final objective value.
    pub fn final_objective(&self) -> f64 {
        self.objective.last().copied().unwrap_or(f64::INFINITY)
    }

    /// Epochs until the objective first drops below `threshold`
    /// (`None` if never).
    pub fn epochs_to_reach(&self, threshold: f64) -> Option<usize> {
        self.objective.iter().position(|&o| o < threshold)
    }
}

/// Split `n` items into `parts` contiguous ranges of near-equal size.
pub fn partition(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    assert!(parts > 0);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn model_names_distinct() {
        let names: std::collections::HashSet<_> =
            SyncModel::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn atomic_f64_load_store() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.load(), 1.5);
        a.store(-2.25);
        assert_eq!(a.load(), -2.25);
    }

    #[test]
    fn atomic_f64_concurrent_adds_lose_nothing() {
        // CAS-loop add is exact under contention (unlike racy read-add-write).
        let cell = Arc::new(AtomicF64::new(0.0));
        let threads = 8;
        let adds_per_thread = 10_000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&cell);
                std::thread::spawn(move || {
                    for _ in 0..adds_per_thread {
                        c.fetch_add(1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(cell.load(), (threads * adds_per_thread) as f64);
    }

    #[test]
    fn atomic_vec_snapshot_roundtrip() {
        let v = atomic_vec(&[1.0, 2.0, 3.0]);
        assert_eq!(snapshot(&v), vec![1.0, 2.0, 3.0]);
        v[1].fetch_add(0.5);
        assert_eq!(snapshot(&v), vec![1.0, 2.5, 3.0]);
    }

    #[test]
    fn partition_covers_everything_evenly() {
        let parts = partition(10, 3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], 0..4);
        assert_eq!(parts[1], 4..7);
        assert_eq!(parts[2], 7..10);
        // Exhaustive coverage.
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        // Sizes differ by at most one.
        let min = parts.iter().map(|r| r.len()).min().unwrap();
        let max = parts.iter().map(|r| r.len()).max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn partition_more_parts_than_items() {
        let parts = partition(2, 5);
        let total: usize = parts.iter().map(|r| r.len()).sum();
        assert_eq!(total, 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn report_helpers() {
        let r = KernelReport {
            model: SyncModel::Locking,
            threads: 2,
            objective: vec![10.0, 5.0, 1.0, 0.5],
            seconds: 1.0,
        };
        assert_eq!(r.final_objective(), 0.5);
        assert_eq!(r.epochs_to_reach(2.0), Some(2));
        assert_eq!(r.epochs_to_reach(0.1), None);
    }
}
