//! Parallel Gibbs sampling for a 1-D Gaussian mixture — the paper's MCMC
//! representative. One sweep alternates
//!
//! 1. sampling each point's component assignment `z_i` given the component
//!    parameters (embarrassingly parallel over points), and
//! 2. re-estimating component means from the sufficient statistics
//!    (per-component sums/counts), whose *collection* is what the four
//!    synchronization models coordinate.
//!
//! The objective reported per sweep is the negative average log-likelihood.

use std::sync::Mutex;

use le_linalg::Rng;

use crate::sync::{KernelReport, MutexExt, SyncModel, atomic_vec, partition, snapshot};
use crate::{KernelError, Result};

/// Gibbs sampler configuration.
#[derive(Debug, Clone, Copy)]
pub struct GibbsConfig {
    /// Number of mixture components.
    pub k: usize,
    /// Known, shared component standard deviation.
    pub sigma: f64,
    /// Sweeps.
    pub sweeps: usize,
    /// Worker threads.
    pub threads: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        Self {
            k: 3,
            sigma: 0.5,
            sweeps: 40,
            threads: 4,
            seed: 0,
        }
    }
}

/// Negative average log-likelihood of `data` under an equal-weight Gaussian
/// mixture with the given means and shared `sigma`.
pub fn neg_log_likelihood(data: &[f64], means: &[f64], sigma: f64) -> f64 {
    let norm = 1.0 / (sigma * (2.0 * std::f64::consts::PI).sqrt());
    let weight = 1.0 / means.len() as f64;
    let mut total = 0.0;
    for &x in data {
        let mut p = 0.0;
        for &m in means {
            let z = (x - m) / sigma;
            p += weight * norm * (-0.5 * z * z).exp();
        }
        total += -(p.max(1e-300)).ln();
    }
    total / data.len().max(1) as f64
}

/// Sample an assignment for one point given the current means.
#[inline]
fn sample_assignment(x: f64, means: &[f64], sigma: f64, rng: &mut Rng) -> usize {
    let mut weights = Vec::with_capacity(means.len());
    let mut max_log = f64::NEG_INFINITY;
    let logs: Vec<f64> = means
        .iter()
        .map(|&m| {
            let z = (x - m) / sigma;
            let l = -0.5 * z * z;
            if l > max_log {
                max_log = l;
            }
            l
        })
        .collect();
    for &l in &logs {
        weights.push((l - max_log).exp());
    }
    rng.categorical(&weights)
}

/// Run the parallel Gibbs sampler; returns the final component means
/// (sorted ascending) and the report.
pub fn train(data: &[f64], model: SyncModel, cfg: &GibbsConfig) -> Result<(Vec<f64>, KernelReport)> {
    if data.is_empty() {
        return Err(KernelError::Shape("empty dataset".into()));
    }
    if cfg.k == 0 || cfg.k > data.len() || cfg.threads == 0 || cfg.sweeps == 0 || cfg.sigma <= 0.0 {
        return Err(KernelError::InvalidConfig(format!(
            "k={}, threads={}, sweeps={}, sigma={}",
            cfg.k, cfg.threads, cfg.sweeps, cfg.sigma
        )));
    }
    let mut rng = Rng::new(cfg.seed);
    // Initialize means from random data points.
    let mut means: Vec<f64> = rng
        .sample_indices(data.len(), cfg.k)
        .into_iter()
        .map(|i| data[i])
        .collect();
    let shards = partition(data.len(), cfg.threads);
    // Pre-split per-worker RNGs per sweep for determinism where possible.
    let mut history = Vec::with_capacity(cfg.sweeps);
    // Wall-clock for the report only, never feeds the dynamics.
    let start = le_obs::timed_span!("mlkernels.gibbs");

    for sweep in 0..cfg.sweeps {
        // Per-worker RNG seeds (deterministic).
        let worker_seeds: Vec<u64> = (0..cfg.threads)
            .map(|t| cfg.seed ^ ((sweep as u64) << 24) ^ ((t as u64) << 8) ^ 0xBEEF)
            .collect();
        let (sums, counts) = match model {
            SyncModel::Locking => {
                let acc = Mutex::new((vec![0.0; cfg.k], vec![0.0; cfg.k]));
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let acc = &acc;
                        let means = &means;
                        let shard = shard.clone();
                        let seed = worker_seeds[t];
                        s.spawn(move || {
                            let mut rng = Rng::new(seed);
                            for i in shard {
                                let z = sample_assignment(data[i], means, cfg.sigma, &mut rng);
                                let mut guard = acc.plock();
                                guard.0[z] += data[i];
                                guard.1[z] += 1.0;
                            }
                        });
                    }
                });
                acc.into_data()
            }
            SyncModel::Asynchronous => {
                let sums = atomic_vec(&vec![0.0; cfg.k]);
                let counts = atomic_vec(&vec![0.0; cfg.k]);
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let sums = &sums;
                        let counts = &counts;
                        let means = &means;
                        let shard = shard.clone();
                        let seed = worker_seeds[t];
                        s.spawn(move || {
                            let mut rng = Rng::new(seed);
                            for i in shard {
                                let z = sample_assignment(data[i], means, cfg.sigma, &mut rng);
                                sums[z].fetch_add(data[i]);
                                counts[z].fetch_add(1.0);
                            }
                        });
                    }
                });
                (snapshot(&sums), snapshot(&counts))
            }
            SyncModel::Allreduce => {
                let partials = Mutex::new(Vec::with_capacity(cfg.threads));
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let partials = &partials;
                        let means = &means;
                        let shard = shard.clone();
                        let seed = worker_seeds[t];
                        s.spawn(move || {
                            let mut rng = Rng::new(seed);
                            let mut sums = vec![0.0; cfg.k];
                            let mut counts = vec![0.0; cfg.k];
                            for i in shard {
                                let z = sample_assignment(data[i], means, cfg.sigma, &mut rng);
                                sums[z] += data[i];
                                counts[z] += 1.0;
                            }
                            partials.plock().push((sums, counts));
                        });
                    }
                });
                let mut sums = vec![0.0; cfg.k];
                let mut counts = vec![0.0; cfg.k];
                for (ps, pc) in partials.into_data() {
                    for (a, &b) in sums.iter_mut().zip(ps.iter()) {
                        *a += b;
                    }
                    for (a, &b) in counts.iter_mut().zip(pc.iter()) {
                        *a += b;
                    }
                }
                (sums, counts)
            }
            SyncModel::Rotation => {
                // Component shards rotate; each worker owns a component
                // range per sub-step and folds its buffered statistics in.
                let comp_shards = partition(cfg.k, cfg.threads);
                let shard_stats: Vec<Mutex<(Vec<f64>, Vec<f64>)>> = comp_shards
                    .iter()
                    .map(|cs| Mutex::new((vec![0.0; cs.len()], vec![0.0; cs.len()])))
                    .collect();
                let barrier = std::sync::Barrier::new(cfg.threads);
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let shard_stats = &shard_stats;
                        let comp_shards = &comp_shards;
                        let barrier = &barrier;
                        let means = &means;
                        let shard = shard.clone();
                        let seed = worker_seeds[t];
                        s.spawn(move || {
                            let mut rng = Rng::new(seed);
                            let mut sums = vec![0.0; cfg.k];
                            let mut counts = vec![0.0; cfg.k];
                            for i in shard {
                                let z = sample_assignment(data[i], means, cfg.sigma, &mut rng);
                                sums[z] += data[i];
                                counts[z] += 1.0;
                            }
                            for step in 0..cfg.threads {
                                let b = (t + step) % cfg.threads;
                                {
                                    let mut guard = shard_stats[b].plock();
                                    let (gs, gc) = &mut *guard;
                                    for (local, c) in comp_shards[b].clone().enumerate() {
                                        gs[local] += sums[c];
                                        gc[local] += counts[c];
                                    }
                                }
                                barrier.wait();
                            }
                        });
                    }
                });
                let mut sums = vec![0.0; cfg.k];
                let mut counts = vec![0.0; cfg.k];
                for (cs, stats) in comp_shards.iter().zip(shard_stats.iter()) {
                    let guard = stats.plock();
                    for (local, c) in cs.clone().enumerate() {
                        sums[c] = guard.0[local];
                        counts[c] = guard.1[local];
                    }
                }
                (sums, counts)
            }
        };
        // Parameter step: posterior mean with a weak prior at the data mean.
        let data_mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        for c in 0..cfg.k {
            let prior_weight = 0.1;
            means[c] =
                (sums[c] + prior_weight * data_mean) / (counts[c] + prior_weight);
        }
        history.push(neg_log_likelihood(data, &means, cfg.sigma));
    }
    means.sort_by(|a, b| a.total_cmp(b));
    Ok((
        means,
        KernelReport {
            model,
            threads: cfg.threads,
            objective: history,
            seconds: start.finish_secs(),
        },
    ))
}

/// Generate a 1-D mixture dataset from the given means.
pub fn synthetic_mixture(n_per_component: usize, means: &[f64], sigma: f64, seed: u64) -> Vec<f64> {
    let mut rng = Rng::new(seed);
    let mut data = Vec::with_capacity(n_per_component * means.len());
    for &m in means {
        for _ in 0..n_per_component {
            data.push(m + sigma * rng.gaussian());
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixture_data() -> (Vec<f64>, Vec<f64>) {
        let true_means = vec![-4.0, 0.0, 4.0];
        let data = synthetic_mixture(300, &true_means, 0.5, 5);
        (data, true_means)
    }

    #[test]
    fn validation() {
        let (data, _) = mixture_data();
        let cfg = GibbsConfig::default();
        assert!(train(&[], SyncModel::Locking, &cfg).is_err());
        assert!(train(&data, SyncModel::Locking, &GibbsConfig { k: 0, ..cfg }).is_err());
        assert!(train(
            &data,
            SyncModel::Locking,
            &GibbsConfig {
                sigma: 0.0,
                ..cfg
            }
        )
        .is_err());
        assert!(train(
            &data,
            SyncModel::Locking,
            &GibbsConfig {
                threads: 0,
                ..cfg
            }
        )
        .is_err());
    }

    #[test]
    fn all_models_recover_the_means() {
        let (data, true_means) = mixture_data();
        for model in SyncModel::ALL {
            let (means, report) = train(
                &data,
                model,
                &GibbsConfig {
                    k: 3,
                    sigma: 0.5,
                    sweeps: 50,
                    threads: 4,
                    seed: 17,
                },
            )
            .unwrap();
            for (got, want) in means.iter().zip(true_means.iter()) {
                assert!(
                    (got - want).abs() < 0.3,
                    "{}: mean {got} should be near {want}",
                    model.name()
                );
            }
            // NLL should be near the true-model NLL.
            let true_nll = neg_log_likelihood(&data, &true_means, 0.5);
            assert!(
                report.final_objective() < true_nll + 0.2,
                "{}: NLL {} vs true {true_nll}",
                model.name(),
                report.final_objective()
            );
        }
    }

    #[test]
    fn nll_decreases_from_start() {
        let (data, _) = mixture_data();
        let (_, report) = train(
            &data,
            SyncModel::Allreduce,
            &GibbsConfig {
                k: 3,
                sigma: 0.5,
                sweeps: 40,
                threads: 2,
                seed: 23,
            },
        )
        .unwrap();
        assert!(
            report.final_objective() < report.objective[0],
            "sampler should improve: {:?}",
            (report.objective[0], report.final_objective())
        );
    }

    #[test]
    fn neg_log_likelihood_sane() {
        // Data exactly at a mean has higher likelihood than far away.
        let close = neg_log_likelihood(&[0.0], &[0.0], 1.0);
        let far = neg_log_likelihood(&[5.0], &[0.0], 1.0);
        assert!(close < far);
        // Two-component mixture catches both blobs.
        let data = [-3.0, 3.0];
        let one = neg_log_likelihood(&data, &[0.0], 1.0);
        let two = neg_log_likelihood(&data, &[-3.0, 3.0], 1.0);
        assert!(two < one);
    }

    #[test]
    fn means_returned_sorted() {
        let (data, _) = mixture_data();
        let (means, _) = train(
            &data,
            SyncModel::Locking,
            &GibbsConfig {
                k: 3,
                sigma: 0.5,
                sweeps: 30,
                threads: 3,
                seed: 29,
            },
        )
        .unwrap();
        assert!(means.windows(2).all(|w| w[0] <= w[1]));
    }
}
