//! Collective communication primitives over shared-memory threads.
//!
//! §III-A: "To foster faster model convergence, we need to design new
//! collective communication abstractions … optimized collective
//! communication can improve the model update speed." This module provides
//! three allreduce algorithms with different communication structure, so
//! the E7 bench can compare them the way MPI implementations are compared:
//!
//! * [`allreduce_flat`] — every worker's vector is summed by one thread
//!   (O(P·N) sequential work at the root; the naive baseline).
//! * [`allreduce_tree`] — binary-tree pairwise reduction (O(log P) depth,
//!   parallel combines).
//! * [`allreduce_ring`] — the bandwidth-optimal ring: each worker owns
//!   1/P of the vector, reduce-scatter then all-gather (2(P−1)/P · N data
//!   moved per worker, combines fully parallel).
//!
//! All three return the *same* sums (up to floating-point association), so
//! they are drop-in replacements in the Allreduce computation model.

use crate::sync::partition;

/// Sum `inputs` (all the same length) into a single vector, sequentially at
/// a single root — the flat baseline.
pub fn allreduce_flat(inputs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!inputs.is_empty(), "allreduce of nothing");
    let n = inputs[0].len();
    debug_assert!(inputs.iter().all(|v| v.len() == n));
    let mut out = vec![0.0; n];
    for v in inputs {
        for (o, &x) in out.iter_mut().zip(v.iter()) {
            *o += x;
        }
    }
    out
}

/// Binary-tree pairwise reduction: pairs combine in parallel, halving the
/// participant count each round.
pub fn allreduce_tree(inputs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!inputs.is_empty(), "allreduce of nothing");
    let mut layer: Vec<Vec<f64>> = inputs.to_vec();
    while layer.len() > 1 {
        let pairs: Vec<(usize, usize)> = (0..layer.len() / 2)
            .map(|i| (2 * i, 2 * i + 1))
            .collect();
        let leftover = if layer.len() % 2 == 1 {
            Some(layer.len() - 1)
        } else {
            None
        };
        let mut next: Vec<Vec<f64>> = Vec::with_capacity(layer.len().div_ceil(2));
        // Combine pairs in parallel with scoped threads.
        let combined: Vec<Vec<f64>> = std::thread::scope(|s| {
            let handles: Vec<_> = pairs
                .iter()
                .map(|&(a, b)| {
                    let va = &layer[a];
                    let vb = &layer[b];
                    s.spawn(move || {
                        va.iter().zip(vb.iter()).map(|(&x, &y)| x + y).collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        next.extend(combined);
        if let Some(idx) = leftover {
            next.push(layer[idx].clone());
        }
        layer = next;
    }
    layer.pop().unwrap_or_default()
}

/// Ring allreduce: reduce-scatter then all-gather over vector chunks.
/// Workers own chunk `partition(n, P)[p]`; in P−1 reduce steps chunk sums
/// travel around the ring; in P−1 gather steps the finished chunks do.
/// This shared-memory rendition performs the same chunked data movement as
/// the distributed algorithm.
pub fn allreduce_ring(inputs: &[Vec<f64>]) -> Vec<f64> {
    assert!(!inputs.is_empty(), "allreduce of nothing");
    let p = inputs.len();
    let n = inputs[0].len();
    if p == 1 {
        return inputs[0].clone();
    }
    let chunks = partition(n, p);
    // Working copies (the algorithm mutates per-worker buffers).
    let mut buffers: Vec<Vec<f64>> = inputs.to_vec();
    // Reduce-scatter: at step s, worker w sends chunk (w - s) mod p to
    // worker (w + 1) mod p, which accumulates it. After P-1 steps, worker
    // w holds the fully-reduced chunk (w + 1) mod p.
    for step in 0..p - 1 {
        // Compute all sends of this step from a snapshot (simultaneous
        // exchange), then apply.
        let sends: Vec<(usize, usize, Vec<f64>)> = (0..p)
            .map(|w| {
                let chunk_idx = (w + p - step) % p;
                let range = chunks[chunk_idx].clone();
                (w, chunk_idx, buffers[w][range].to_vec())
            })
            .collect();
        for (w, chunk_idx, data) in sends {
            let dest = (w + 1) % p;
            let range = chunks[chunk_idx].clone();
            for (d, &x) in buffers[dest][range].iter_mut().zip(data.iter()) {
                *d += x;
            }
        }
    }
    // All-gather: worker w now owns the reduced chunk (w + 1) mod p;
    // circulate the finished chunks.
    let mut result = vec![0.0; n];
    for (w, buffer) in buffers.iter().enumerate() {
        let owned = (w + 1) % p;
        let range = chunks[owned].clone();
        result[range.clone()].copy_from_slice(&buffer[range]);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;

    fn random_inputs(p: usize, n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..p)
            .map(|_| (0..n).map(|_| rng.uniform_in(-1.0, 1.0)).collect())
            .collect()
    }

    #[test]
    fn all_three_agree() {
        for &(p, n) in &[(1usize, 7usize), (2, 10), (3, 10), (4, 16), (7, 23), (8, 64)] {
            let inputs = random_inputs(p, n, (p * 31 + n) as u64);
            let flat = allreduce_flat(&inputs);
            let tree = allreduce_tree(&inputs);
            let ring = allreduce_ring(&inputs);
            for i in 0..n {
                assert!(
                    (flat[i] - tree[i]).abs() < 1e-12,
                    "tree differs at {i} for p={p}, n={n}"
                );
                assert!(
                    (flat[i] - ring[i]).abs() < 1e-12,
                    "ring differs at {i} for p={p}, n={n}"
                );
            }
        }
    }

    #[test]
    fn flat_known_sum() {
        let inputs = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        assert_eq!(allreduce_flat(&inputs), vec![9.0, 12.0]);
    }

    #[test]
    fn single_participant_is_identity() {
        let inputs = vec![vec![1.5, -2.5, 0.0]];
        assert_eq!(allreduce_tree(&inputs), inputs[0]);
        assert_eq!(allreduce_ring(&inputs), inputs[0]);
    }

    #[test]
    fn ring_handles_n_smaller_than_p() {
        // 6 workers, 3-element vector: some chunks are empty.
        let inputs = random_inputs(6, 3, 99);
        let flat = allreduce_flat(&inputs);
        let ring = allreduce_ring(&inputs);
        for i in 0..3 {
            assert!((flat[i] - ring[i]).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "allreduce of nothing")]
    fn empty_inputs_panic() {
        let _ = allreduce_flat(&[]);
    }
}
