//! Parallel stochastic gradient descent for L2-regularized logistic
//! regression under the four synchronization models.
//!
//! Labels are ±1; the objective is
//! `mean ln(1 + exp(−y·w·x)) + (λ/2)‖w‖²`.

use std::sync::Mutex;
use std::sync::Barrier;

use le_linalg::Rng;

use crate::sync::{KernelReport, MutexExt, SyncModel, atomic_vec, partition, snapshot};
use crate::{KernelError, Result};

/// SGD hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SgdConfig {
    /// Epochs (full passes over the data).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength λ.
    pub l2: f64,
    /// Worker threads.
    pub threads: usize,
    /// Seed controlling shard order shuffling.
    pub seed: u64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 0.05,
            l2: 1e-4,
            threads: 4,
            seed: 0,
        }
    }
}

/// Logistic loss + L2 penalty of `w` on the dataset.
pub fn objective(x: &[Vec<f64>], y: &[f64], w: &[f64], l2: f64) -> f64 {
    let n = x.len().max(1) as f64;
    let mut loss = 0.0;
    for (xi, &yi) in x.iter().zip(y.iter()) {
        let margin: f64 = yi * dot(w, xi);
        // Numerically stable ln(1 + e^{-m}).
        loss += if margin > 0.0 {
            (-margin).exp().ln_1p()
        } else {
            -margin + margin.exp().ln_1p()
        };
    }
    loss / n + 0.5 * l2 * w.iter().map(|v| v * v).sum::<f64>()
}

/// Classification accuracy of `w`.
pub fn accuracy(x: &[Vec<f64>], y: &[f64], w: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let correct = x
        .iter()
        .zip(y.iter())
        .filter(|(xi, &yi)| dot(w, xi) * yi > 0.0)
        .count();
    correct as f64 / x.len() as f64
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&p, &q)| p * q).sum()
}

/// Per-sample gradient step applied to (a view of) the weights.
#[inline]
fn sgd_step(w: &mut [f64], xi: &[f64], yi: f64, lr: f64, l2: f64) {
    let margin = yi * dot(w, xi);
    // d/dw ln(1+e^{-m}) = -y σ(-m) x.
    let sig = 1.0 / (1.0 + margin.exp());
    let coef = lr * yi * sig;
    for (wk, &xk) in w.iter_mut().zip(xi.iter()) {
        *wk = *wk * (1.0 - lr * l2) + coef * xk;
    }
}

fn validate(x: &[Vec<f64>], y: &[f64], cfg: &SgdConfig) -> Result<usize> {
    if x.is_empty() {
        return Err(KernelError::Shape("empty dataset".into()));
    }
    if x.len() != y.len() {
        return Err(KernelError::Shape(format!(
            "{} samples but {} labels",
            x.len(),
            y.len()
        )));
    }
    let d = x[0].len();
    if x.iter().any(|r| r.len() != d) {
        return Err(KernelError::Shape("ragged feature rows".into()));
    }
    if cfg.threads == 0 || cfg.epochs == 0 || cfg.lr <= 0.0 {
        return Err(KernelError::InvalidConfig(
            "threads/epochs must be > 0 and lr > 0".into(),
        ));
    }
    Ok(d)
}

/// Train logistic regression under the given synchronization model.
/// Returns the learned weights and the convergence report.
pub fn train(
    x: &[Vec<f64>],
    y: &[f64],
    model: SyncModel,
    cfg: &SgdConfig,
) -> Result<(Vec<f64>, KernelReport)> {
    let d = validate(x, y, cfg)?;
    let shards = partition(x.len(), cfg.threads);
    let mut history = Vec::with_capacity(cfg.epochs);
    // Wall-clock for the report only, never feeds the dynamics.
    let start = le_obs::timed_span!("mlkernels.sgd");
    let w_final = match model {
        SyncModel::Locking => {
            let w = Mutex::new(vec![0.0; d]);
            for epoch in 0..cfg.epochs {
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let w = &w;
                        let shard = shard.clone();
                        let mut rng =
                            Rng::new(cfg.seed ^ (epoch as u64) << 20 ^ t as u64);
                        s.spawn(move || {
                            let mut order: Vec<usize> = shard.collect();
                            rng.shuffle(&mut order);
                            for i in order {
                                let mut guard = w.plock();
                                sgd_step(&mut guard, &x[i], y[i], cfg.lr, cfg.l2);
                            }
                        });
                    }
                });
                history.push(objective(x, y, &w.plock(), cfg.l2));
            }
            w.into_data()
        }
        SyncModel::Asynchronous => {
            let w = atomic_vec(&vec![0.0; d]);
            for epoch in 0..cfg.epochs {
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let w = &w;
                        let shard = shard.clone();
                        let mut rng =
                            Rng::new(cfg.seed ^ (epoch as u64) << 20 ^ t as u64);
                        s.spawn(move || {
                            let mut order: Vec<usize> = shard.collect();
                            rng.shuffle(&mut order);
                            let mut local = vec![0.0; d];
                            for i in order {
                                // Hogwild: racy read of the shared model…
                                for (l, a) in local.iter_mut().zip(w.iter()) {
                                    *l = a.load();
                                }
                                let before = local.clone();
                                sgd_step(&mut local, &x[i], y[i], cfg.lr, cfg.l2);
                                // …then racy atomic delta write-back.
                                for ((a, &new), &old) in
                                    w.iter().zip(local.iter()).zip(before.iter())
                                {
                                    let delta = new - old;
                                    if delta != 0.0 { // lint:allow(float-hygiene): Hogwild write-skip, exact zero deltas carry no update
                                        a.fetch_add(delta);
                                    }
                                }
                            }
                        });
                    }
                });
                history.push(objective(x, y, &snapshot(&w), cfg.l2));
            }
            snapshot(&w)
        }
        SyncModel::Allreduce => {
            let mut w = vec![0.0; d];
            for epoch in 0..cfg.epochs {
                let replicas = Mutex::new(vec![Vec::new(); cfg.threads]);
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let replicas = &replicas;
                        let w0 = w.clone();
                        let shard = shard.clone();
                        let mut rng =
                            Rng::new(cfg.seed ^ (epoch as u64) << 20 ^ t as u64);
                        s.spawn(move || {
                            let mut local = w0;
                            let mut order: Vec<usize> = shard.collect();
                            rng.shuffle(&mut order);
                            for i in order {
                                sgd_step(&mut local, &x[i], y[i], cfg.lr, cfg.l2);
                            }
                            replicas.plock()[t] = local;
                        });
                    }
                });
                // Allreduce: average the replicas (weighting by shard size).
                let replicas = replicas.into_data();
                let mut avg = vec![0.0; d];
                let total: f64 = shards.iter().map(|r| r.len() as f64).sum();
                for (replica, shard) in replicas.iter().zip(shards.iter()) {
                    if replica.is_empty() {
                        continue; // empty shard never wrote
                    }
                    let weight = shard.len() as f64 / total;
                    for (a, &v) in avg.iter_mut().zip(replica.iter()) {
                        *a += weight * v;
                    }
                }
                w = avg;
                history.push(objective(x, y, &w, cfg.l2));
            }
            w
        }
        SyncModel::Rotation => {
            // Model blocks rotate through workers; each worker updates only
            // the block it currently owns, against a stale cache of the
            // rest refreshed as blocks pass through.
            let blocks = partition(d, cfg.threads);
            let mut block_data: Vec<Vec<f64>> =
                blocks.iter().map(|b| vec![0.0; b.len()]).collect();
            for epoch in 0..cfg.epochs {
                // Each worker keeps a thread-local stale full-model cache;
                // block ownership alternates by the rotation schedule, with
                // a barrier between sub-steps, so blocks_out accesses to a
                // given block never race.
                let full: Vec<f64> = {
                    let mut f = vec![0.0; d];
                    for (b, data) in blocks.iter().zip(block_data.iter()) {
                        f[b.clone()].copy_from_slice(data);
                    }
                    f
                };
                let blocks_out = Mutex::new(block_data.clone());
                let barrier = Barrier::new(cfg.threads);
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let blocks_out = &blocks_out;
                        let barrier = &barrier;
                        let blocks = &blocks;
                        let mut cache = full.clone();
                        let shard = shard.clone();
                        let mut rng =
                            Rng::new(cfg.seed ^ (epoch as u64) << 20 ^ t as u64);
                        s.spawn(move || {
                            let mut order: Vec<usize> = shard.collect();
                            rng.shuffle(&mut order);
                            // P sub-steps; worker t owns block
                            // (t + step) mod P during sub-step `step`.
                            for step in 0..cfg.threads {
                                let b = (t + step) % cfg.threads;
                                let range = blocks[b].clone();
                                // Pull the current block into the local
                                // cache.
                                {
                                    let guard = blocks_out.plock();
                                    cache[range.clone()].copy_from_slice(&guard[b]);
                                }
                                // Update only the owned block coordinates
                                // (stale values for the rest).
                                for &i in &order {
                                    rotation_block_step(
                                        &mut cache,
                                        range.clone(),
                                        &x[i],
                                        y[i],
                                        cfg.lr,
                                        cfg.l2,
                                    );
                                }
                                // Publish the updated block.
                                {
                                    let mut guard = blocks_out.plock();
                                    guard[b].copy_from_slice(&cache[range.clone()]);
                                }
                                barrier.wait();
                            }
                        });
                    }
                });
                block_data = blocks_out.into_data();
                let mut w = vec![0.0; d];
                for (b, data) in blocks.iter().zip(block_data.iter()) {
                    w[b.clone()].copy_from_slice(data);
                }
                history.push(objective(x, y, &w, cfg.l2));
            }
            let mut w = vec![0.0; d];
            for (b, data) in blocks.iter().zip(block_data.iter()) {
                w[b.clone()].copy_from_slice(data);
            }
            w
        }
    };
    Ok((
        w_final,
        KernelReport {
            model,
            threads: cfg.threads,
            objective: history,
            seconds: start.finish_secs(),
        },
    ))
}

/// Gradient step restricted to the owned coordinate block (the margin uses
/// the full — possibly stale — model view).
#[inline]
fn rotation_block_step(
    w: &mut [f64],
    block: std::ops::Range<usize>,
    xi: &[f64],
    yi: f64,
    lr: f64,
    l2: f64,
) {
    let margin = yi * dot(w, xi);
    let sig = 1.0 / (1.0 + margin.exp());
    let coef = lr * yi * sig;
    for k in block {
        w[k] = w[k] * (1.0 - lr * l2) + coef * xi[k];
    }
}

/// Generate a linearly separable (with margin noise) binary dataset.
pub fn synthetic_dataset(
    n: usize,
    d: usize,
    noise: f64,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<f64>, Vec<f64>) {
    let mut rng = Rng::new(seed);
    let w_true: Vec<f64> = (0..d).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let xi: Vec<f64> = (0..d).map(|_| rng.uniform_in(-1.0, 1.0)).collect();
        let score: f64 = dot(&w_true, &xi) + noise * rng.gaussian();
        x.push(xi);
        y.push(if score >= 0.0 { 1.0 } else { -1.0 });
    }
    (x, y, w_true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> (Vec<Vec<f64>>, Vec<f64>) {
        let (x, y, _) = synthetic_dataset(600, 8, 0.05, 7);
        (x, y)
    }

    #[test]
    fn validation_errors() {
        let (x, y) = dataset();
        let cfg = SgdConfig::default();
        assert!(train(&[], &[], SyncModel::Locking, &cfg).is_err());
        assert!(train(&x, &y[..10], SyncModel::Locking, &cfg).is_err());
        let bad = SgdConfig {
            threads: 0,
            ..cfg
        };
        assert!(train(&x, &y, SyncModel::Locking, &bad).is_err());
        let mut ragged = x.clone();
        ragged[0] = vec![0.0; 3];
        assert!(train(&ragged, &y, SyncModel::Locking, &cfg).is_err());
    }

    #[test]
    fn all_models_learn_the_separator() {
        let (x, y) = dataset();
        for model in SyncModel::ALL {
            let (w, report) = train(
                &x,
                &y,
                model,
                &SgdConfig {
                    epochs: 40,
                    threads: 4,
                    ..Default::default()
                },
            )
            .unwrap();
            let acc = accuracy(&x, &y, &w);
            assert!(
                acc > 0.93,
                "{} accuracy {acc} too low",
                model.name()
            );
            // Objective decreased substantially.
            assert!(
                report.final_objective() < report.objective[0] * 0.7,
                "{} objective {:?}",
                model.name(),
                (report.objective[0], report.final_objective())
            );
        }
    }

    #[test]
    fn objective_is_monotone_ish_for_allreduce() {
        let (x, y) = dataset();
        let (_, report) = train(
            &x,
            &y,
            SyncModel::Allreduce,
            &SgdConfig {
                epochs: 25,
                threads: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // BSP with averaging is stable: few (if any) up-ticks.
        let upticks = report
            .objective
            .windows(2)
            .filter(|w| w[1] > w[0] * 1.02)
            .count();
        assert!(upticks <= 2, "allreduce should descend smoothly, {upticks} upticks");
    }

    #[test]
    fn single_thread_models_agree() {
        // With one thread the four models are variations of sequential SGD
        // and should reach similar objectives.
        let (x, y) = dataset();
        let mut finals = Vec::new();
        for model in SyncModel::ALL {
            let (_, report) = train(
                &x,
                &y,
                model,
                &SgdConfig {
                    epochs: 30,
                    threads: 1,
                    ..Default::default()
                },
            )
            .unwrap();
            finals.push(report.final_objective());
        }
        let max = finals.iter().cloned().fold(0.0f64, f64::max);
        let min = finals.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            max < min * 1.5 + 0.05,
            "single-thread objectives should agree: {finals:?}"
        );
    }

    #[test]
    fn deterministic_models_reproduce() {
        let (x, y) = dataset();
        for model in [SyncModel::Allreduce, SyncModel::Rotation] {
            let cfg = SgdConfig {
                epochs: 10,
                threads: 3,
                seed: 5,
                ..Default::default()
            };
            let (w1, _) = train(&x, &y, model, &cfg).unwrap();
            let (w2, _) = train(&x, &y, model, &cfg).unwrap();
            assert_eq!(w1, w2, "{} should be deterministic", model.name());
        }
    }

    #[test]
    fn accuracy_recovers_true_direction() {
        let (x, y, w_true) = synthetic_dataset(800, 6, 0.02, 11);
        let (w, _) = train(
            &x,
            &y,
            SyncModel::Allreduce,
            &SgdConfig {
                epochs: 60,
                threads: 2,
                ..Default::default()
            },
        )
        .unwrap();
        // Cosine similarity with the generating direction.
        let cos = dot(&w, &w_true)
            / (dot(&w, &w).sqrt() * dot(&w_true, &w_true).sqrt());
        assert!(cos > 0.9, "learned direction should align, cos = {cos}");
    }

    #[test]
    fn objective_stable_logistic_loss() {
        // Large margins must not overflow.
        let x = vec![vec![1000.0], vec![-1000.0]];
        let y = vec![1.0, -1.0];
        let w = vec![5.0];
        let obj = objective(&x, &y, &w, 0.0);
        assert!(obj.is_finite());
        assert!(obj < 1e-6, "perfectly classified with huge margin");
        let w_bad = vec![-5.0];
        let obj_bad = objective(&x, &y, &w_bad, 0.0);
        assert!(obj_bad.is_finite());
        assert!(obj_bad > 1000.0);
    }
}
