#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed dimensions (k in 0..3, stencils) are the
// clearer idiom in numeric kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! `le-mlkernels` — parallel machine-learning computation models (§III-A).
//!
//! The paper: "We show that parallel iterative algorithms can be categorized
//! into four types of computation models (a) Locking, (b) Rotation,
//! (c) Allreduce, (d) Asynchronous, based on the synchronization patterns
//! and the effectiveness of the model parameter update", studied over
//! "Gibbs Sampling, Stochastic Gradient Descent (SGD), Cyclic Coordinate
//! Descent (CCD) and K-means clustering".
//!
//! This crate implements exactly that matrix — four kernels × four
//! synchronization models — from scratch on `std::thread` scoped workers,
//! `std::sync` locks, and atomics (the workspace is hermetic: no external
//! crates anywhere, see `le-lint` rule L1):
//!
//! * [`sync`] — the [`sync::SyncModel`] taxonomy, an atomic `f64` cell for
//!   Hogwild-style updates, and shared convergence-history plumbing.
//! * [`sgd`] — logistic-regression SGD.
//! * [`kmeans`] — Lloyd's algorithm with per-model coordination of the
//!   centroid update.
//! * [`gibbs`] — a collapsed Gibbs sampler for a 1-D Gaussian mixture.
//! * [`ccd`] — cyclic coordinate descent for matrix factorization, where
//!   model **Rotation** is the natural scheme.
//!
//! Experiment E7 sweeps all kernels × models × thread counts and compares
//! convergence-versus-time, reproducing the qualitative claim that
//! "optimized collective communication can improve the model update speed,
//! thus allowing the model to converge faster".

pub mod ccd;
pub mod collective;
pub mod gibbs;
pub mod kmeans;
pub mod pool;
pub mod sgd;
pub mod sync;

pub use sync::{KernelReport, MutexExt, SyncModel};

/// Errors from the kernels crate.
#[derive(Debug, Clone, PartialEq)]
pub enum KernelError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// Dataset shape problem.
    Shape(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            KernelError::Shape(s) => write!(f, "shape error: {s}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, KernelError>;
