//! Parallel K-means (Lloyd's algorithm) under the four synchronization
//! models. The model is the centroid set; the coordination patterns differ
//! in how per-shard sufficient statistics (cluster sums and counts) reach
//! the centroids:
//!
//! * **Locking** — shared accumulators behind one mutex.
//! * **Rotation** — centroid shards rotate through workers; each worker
//!   folds its locally-buffered statistics into the shard it owns.
//! * **Allreduce** — per-worker accumulators, barrier, reduce on the main
//!   thread (classic MPI k-means).
//! * **Asynchronous** — atomic accumulation into shared statistics.
//!
//! The objective is inertia (mean squared distance to the assigned
//! centroid); every model performs *exact* Lloyd iterations here, so all
//! four converge to the same local optimum given the same initialization —
//! which the tests check. They differ in synchronization cost, which the
//! E7 bench measures.

use std::sync::Mutex;

use le_linalg::Rng;

use crate::sync::{KernelReport, MutexExt, SyncModel, atomic_vec, partition, snapshot};
use crate::{KernelError, Result};

/// K-means configuration.
#[derive(Debug, Clone, Copy)]
pub struct KmeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Lloyd iterations.
    pub iterations: usize,
    /// Worker threads.
    pub threads: usize,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        Self {
            k: 4,
            iterations: 20,
            threads: 4,
            seed: 0,
        }
    }
}

/// Mean squared distance of every point to its nearest centroid.
pub fn inertia(data: &[Vec<f64>], centroids: &[Vec<f64>]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter()
        .map(|p| nearest(p, centroids).1)
        .sum::<f64>()
        / data.len() as f64
}

#[inline]
fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[inline]
fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = dist2(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ style initialization (distance-weighted seeding).
fn init_centroids(data: &[Vec<f64>], k: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(data[rng.below(data.len())].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = data.iter().map(|p| nearest(p, &centroids).1).collect();
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // All points coincide with centroids; duplicate one.
            centroids.push(centroids[0].clone());
            continue;
        }
        let idx = rng.categorical(&weights);
        centroids.push(data[idx].clone());
    }
    centroids
}

/// Per-iteration sufficient statistics: per-cluster coordinate sums and
/// counts, flattened as `k * d + k` values.
fn fold_stats(sums: &mut [f64], counts: &mut [f64], p: &[f64], cluster: usize) {
    let d = p.len();
    for (s, &v) in sums[cluster * d..(cluster + 1) * d].iter_mut().zip(p.iter()) {
        *s += v;
    }
    counts[cluster] += 1.0;
}

fn apply_stats(centroids: &mut [Vec<f64>], sums: &[f64], counts: &[f64]) {
    let d = centroids[0].len();
    for (c, centroid) in centroids.iter_mut().enumerate() {
        if counts[c] > 0.0 {
            for (j, v) in centroid.iter_mut().enumerate() {
                *v = sums[c * d + j] / counts[c];
            }
        }
        // Empty cluster: keep the old centroid.
    }
}

/// Run parallel k-means; returns final centroids and the report.
pub fn train(
    data: &[Vec<f64>],
    model: SyncModel,
    cfg: &KmeansConfig,
) -> Result<(Vec<Vec<f64>>, KernelReport)> {
    if data.is_empty() {
        return Err(KernelError::Shape("empty dataset".into()));
    }
    let d = data[0].len();
    if data.iter().any(|p| p.len() != d) {
        return Err(KernelError::Shape("ragged rows".into()));
    }
    if cfg.k == 0 || cfg.k > data.len() || cfg.threads == 0 || cfg.iterations == 0 {
        return Err(KernelError::InvalidConfig(format!(
            "k={}, threads={}, iterations={} invalid for {} points",
            cfg.k,
            cfg.threads,
            cfg.iterations,
            data.len()
        )));
    }
    let mut rng = Rng::new(cfg.seed);
    let mut centroids = init_centroids(data, cfg.k, &mut rng);
    let shards = partition(data.len(), cfg.threads);
    let mut history = Vec::with_capacity(cfg.iterations);
    // Wall-clock for the report only, never feeds the dynamics.
    let start = le_obs::timed_span!("mlkernels.kmeans");

    for _iter in 0..cfg.iterations {
        let (sums, counts) = match model {
            SyncModel::Locking => {
                let acc = Mutex::new((vec![0.0; cfg.k * d], vec![0.0; cfg.k]));
                std::thread::scope(|s| {
                    for shard in &shards {
                        let acc = &acc;
                        let centroids = &centroids;
                        let shard = shard.clone();
                        s.spawn(move || {
                            for i in shard {
                                let (c, _) = nearest(&data[i], centroids);
                                let mut guard = acc.plock();
                                let (sums, counts) = &mut *guard;
                                fold_stats(sums, counts, &data[i], c);
                            }
                        });
                    }
                });
                acc.into_data()
            }
            SyncModel::Asynchronous => {
                let sums = atomic_vec(&vec![0.0; cfg.k * d]);
                let counts = atomic_vec(&vec![0.0; cfg.k]);
                std::thread::scope(|s| {
                    for shard in &shards {
                        let sums = &sums;
                        let counts = &counts;
                        let centroids = &centroids;
                        let shard = shard.clone();
                        s.spawn(move || {
                            for i in shard {
                                let (c, _) = nearest(&data[i], centroids);
                                for (j, &v) in data[i].iter().enumerate() {
                                    sums[c * d + j].fetch_add(v);
                                }
                                counts[c].fetch_add(1.0);
                            }
                        });
                    }
                });
                (snapshot(&sums), snapshot(&counts))
            }
            SyncModel::Allreduce => {
                let partials = Mutex::new(Vec::with_capacity(cfg.threads));
                std::thread::scope(|s| {
                    for shard in &shards {
                        let partials = &partials;
                        let centroids = &centroids;
                        let shard = shard.clone();
                        s.spawn(move || {
                            let mut sums = vec![0.0; cfg.k * d];
                            let mut counts = vec![0.0; cfg.k];
                            for i in shard {
                                let (c, _) = nearest(&data[i], centroids);
                                fold_stats(&mut sums, &mut counts, &data[i], c);
                            }
                            partials.plock().push((sums, counts));
                        });
                    }
                });
                // Reduce.
                let mut sums = vec![0.0; cfg.k * d];
                let mut counts = vec![0.0; cfg.k];
                for (ps, pc) in partials.into_data() {
                    for (a, &b) in sums.iter_mut().zip(ps.iter()) {
                        *a += b;
                    }
                    for (a, &b) in counts.iter_mut().zip(pc.iter()) {
                        *a += b;
                    }
                }
                (sums, counts)
            }
            SyncModel::Rotation => {
                // Centroid shards rotate; each worker buffers statistics for
                // every cluster locally, then folds into the shard it owns
                // during each rotation sub-step.
                let cluster_shards = partition(cfg.k, cfg.threads);
                let shard_stats: Vec<Mutex<(Vec<f64>, Vec<f64>)>> = cluster_shards
                    .iter()
                    .map(|cs| Mutex::new((vec![0.0; cs.len() * d], vec![0.0; cs.len()])))
                    .collect();
                let barrier = std::sync::Barrier::new(cfg.threads);
                std::thread::scope(|s| {
                    for (t, shard) in shards.iter().enumerate() {
                        let shard_stats = &shard_stats;
                        let cluster_shards = &cluster_shards;
                        let barrier = &barrier;
                        let centroids = &centroids;
                        let shard = shard.clone();
                        s.spawn(move || {
                            // Local buffering of full statistics.
                            let mut sums = vec![0.0; cfg.k * d];
                            let mut counts = vec![0.0; cfg.k];
                            for i in shard {
                                let (c, _) = nearest(&data[i], centroids);
                                fold_stats(&mut sums, &mut counts, &data[i], c);
                            }
                            // Rotate: fold local stats into each cluster
                            // shard while holding it exclusively.
                            for step in 0..cfg.threads {
                                let b = (t + step) % cfg.threads;
                                let cs = cluster_shards[b].clone();
                                {
                                    let mut guard = shard_stats[b].plock();
                                    let (gs, gc) = &mut *guard;
                                    for (local_c, c) in cs.clone().enumerate() {
                                        for j in 0..d {
                                            gs[local_c * d + j] += sums[c * d + j];
                                        }
                                        gc[local_c] += counts[c];
                                    }
                                }
                                barrier.wait();
                            }
                        });
                    }
                });
                // Assemble global statistics from the shards.
                let mut sums = vec![0.0; cfg.k * d];
                let mut counts = vec![0.0; cfg.k];
                for (cs, stats) in cluster_shards.iter().zip(shard_stats.iter()) {
                    let guard = stats.plock();
                    let (gs, gc) = &*guard;
                    for (local_c, c) in cs.clone().enumerate() {
                        for j in 0..d {
                            sums[c * d + j] = gs[local_c * d + j];
                        }
                        counts[c] = gc[local_c];
                    }
                }
                (sums, counts)
            }
        };
        apply_stats(&mut centroids, &sums, &counts);
        history.push(inertia(data, &centroids));
    }
    Ok((
        centroids,
        KernelReport {
            model,
            threads: cfg.threads,
            objective: history,
            seconds: start.finish_secs(),
        },
    ))
}

/// Generate a Gaussian-blob clustering dataset and its true centers.
pub fn synthetic_blobs(
    n_per_cluster: usize,
    centers: &[Vec<f64>],
    spread: f64,
    seed: u64,
) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    let mut data = Vec::with_capacity(n_per_cluster * centers.len());
    for center in centers {
        for _ in 0..n_per_cluster {
            data.push(
                center
                    .iter()
                    .map(|&c| c + spread * rng.gaussian())
                    .collect(),
            );
        }
    }
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let centers = vec![
            vec![0.0, 0.0],
            vec![5.0, 5.0],
            vec![-5.0, 5.0],
            vec![5.0, -5.0],
        ];
        let data = synthetic_blobs(100, &centers, 0.4, 3);
        (data, centers)
    }

    #[test]
    fn validation() {
        let (data, _) = blob_data();
        let cfg = KmeansConfig::default();
        assert!(train(&[], SyncModel::Locking, &cfg).is_err());
        assert!(train(
            &data,
            SyncModel::Locking,
            &KmeansConfig { k: 0, ..cfg }
        )
        .is_err());
        assert!(train(
            &data,
            SyncModel::Locking,
            &KmeansConfig {
                k: 10_000,
                ..cfg
            }
        )
        .is_err());
        assert!(train(
            &data,
            SyncModel::Locking,
            &KmeansConfig {
                threads: 0,
                ..cfg
            }
        )
        .is_err());
    }

    #[test]
    fn all_models_find_the_blobs() {
        let (data, centers) = blob_data();
        for model in SyncModel::ALL {
            let (found, report) = train(
                &data,
                model,
                &KmeansConfig {
                    k: 4,
                    iterations: 15,
                    threads: 4,
                    seed: 9,
                },
            )
            .unwrap();
            // Every true center has a found centroid nearby.
            for center in &centers {
                let (_, d2) = nearest(center, &found);
                assert!(
                    d2 < 0.5,
                    "{}: no centroid near {center:?} (d²={d2})",
                    model.name()
                );
            }
            // Inertia ≈ spread² × dim.
            assert!(
                report.final_objective() < 0.6,
                "{}: inertia {}",
                model.name(),
                report.final_objective()
            );
        }
    }

    #[test]
    fn all_models_agree_exactly_on_same_init() {
        // All four coordinate the SAME Lloyd iteration; with identical
        // initialization they must produce identical centroids (floating-
        // point association differences aside, which exact addition of the
        // same values in different orders can introduce — allow 1e-9).
        let (data, _) = blob_data();
        let cfg = KmeansConfig {
            k: 4,
            iterations: 10,
            threads: 4,
            seed: 21,
        };
        let (ref_centroids, _) = train(&data, SyncModel::Allreduce, &cfg).unwrap();
        for model in [SyncModel::Locking, SyncModel::Rotation, SyncModel::Asynchronous] {
            let (c, _) = train(&data, model, &cfg).unwrap();
            for (a, b) in c.iter().zip(ref_centroids.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert!(
                        (x - y).abs() < 1e-6,
                        "{} centroid deviates: {x} vs {y}",
                        model.name()
                    );
                }
            }
        }
    }

    #[test]
    fn inertia_decreases_monotonically() {
        let (data, _) = blob_data();
        let (_, report) = train(
            &data,
            SyncModel::Allreduce,
            &KmeansConfig {
                k: 4,
                iterations: 12,
                threads: 2,
                seed: 33,
            },
        )
        .unwrap();
        for w in report.objective.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-9,
                "Lloyd iterations cannot increase inertia: {:?}",
                report.objective
            );
        }
    }

    #[test]
    fn single_cluster_is_the_mean() {
        let data = vec![vec![1.0, 1.0], vec![3.0, 5.0], vec![5.0, 3.0]];
        let (centroids, _) = train(
            &data,
            SyncModel::Allreduce,
            &KmeansConfig {
                k: 1,
                iterations: 3,
                threads: 2,
                seed: 1,
            },
        )
        .unwrap();
        assert!((centroids[0][0] - 3.0).abs() < 1e-9);
        assert!((centroids[0][1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn more_threads_than_points_is_fine() {
        let data = vec![vec![0.0], vec![10.0]];
        let (centroids, _) = train(
            &data,
            SyncModel::Rotation,
            &KmeansConfig {
                k: 2,
                iterations: 3,
                threads: 8,
                seed: 2,
            },
        )
        .unwrap();
        let mut xs: Vec<f64> = centroids.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(xs, vec![0.0, 10.0]);
    }
}
