#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `le-perfmodel` — the paper's *effective performance* analytics (§III-D).
//!
//! The central formula of the paper:
//!
//! ```text
//!                    T_seq (N_lookup + N_train)
//! S = ─────────────────────────────────────────────────
//!      T_lookup · N_lookup + (T_train + T_learn) · N_train
//! ```
//!
//! with its two limits —
//!
//! * no machine learning (`N_lookup = 0`): `S → T_seq / T_train` (ordinary
//!   parallel speedup of the simulation), and
//! * `N_lookup / N_train → ∞`: `S → T_seq / T_lookup`, "which can be
//!   huge!".
//!
//! [`speedup`] implements the formula, [`campaign`] tracks the four times
//! from live measurements so measured hybrid runs can be cross-checked
//! against the analytic value, and [`scaling`] produces the sweep series
//! the E1 bench prints.

pub mod campaign;
pub mod scaling;
pub mod speedup;

pub use campaign::CampaignAccounting;
pub use speedup::{EffectiveSpeedup, SpeedupTimes};

/// Errors from the performance model.
#[derive(Debug, Clone, PartialEq)]
pub enum PerfError {
    /// A time or count is invalid (negative, zero where positive needed).
    Invalid(String),
}

impl std::fmt::Display for PerfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfError::Invalid(s) => write!(f, "invalid input: {s}"),
        }
    }
}

impl std::error::Error for PerfError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, PerfError>;
