//! Phase-resolved accounting of a live MLaroundHPC campaign: accumulate the
//! four §III-D times from actual measurements, then hand them to the
//! analytic formula. The `learning-everywhere` hybrid engine feeds this
//! from its instrumentation, and `tests/accounting_vs_formula.rs`
//! cross-checks the two.

use crate::speedup::{effective_speedup, EffectiveSpeedup, SpeedupTimes};
use crate::Result;

/// Accumulates measured phase times and counts.
#[derive(Debug, Clone, Default)]
pub struct CampaignAccounting {
    train_sim_seconds: f64,
    n_train: u64,
    learn_seconds: f64,
    learn_events: u64,
    lookup_seconds: f64,
    n_lookup: u64,
    seq_reference_seconds: Option<f64>,
}

impl CampaignAccounting {
    /// Fresh accounting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one training simulation of `seconds`.
    pub fn record_training_sim(&mut self, seconds: f64) {
        self.train_sim_seconds += seconds;
        self.n_train += 1;
    }

    /// Record one (re)training of the surrogate.
    pub fn record_learning(&mut self, seconds: f64) {
        self.learn_seconds += seconds;
        self.learn_events += 1;
    }

    /// Record one surrogate lookup.
    pub fn record_lookup(&mut self, seconds: f64) {
        self.lookup_seconds += seconds;
        self.n_lookup += 1;
    }

    /// Set the sequential reference time (one un-accelerated simulation).
    /// Defaults to the mean training-simulation time when unset.
    pub fn set_sequential_reference(&mut self, seconds: f64) {
        self.seq_reference_seconds = Some(seconds);
    }

    /// Count of training simulations.
    pub fn n_train(&self) -> u64 {
        self.n_train
    }

    /// Count of surrogate lookups.
    pub fn n_lookup(&self) -> u64 {
        self.n_lookup
    }

    /// Total wall time attributed to the campaign.
    pub fn total_seconds(&self) -> f64 {
        self.train_sim_seconds + self.learn_seconds + self.lookup_seconds
    }

    /// Accumulated training-simulation seconds (the `n_train` phase total).
    /// Exposed so the observability conformance suite can check that span
    /// telemetry and accounting agree.
    pub fn train_sim_seconds(&self) -> f64 {
        self.train_sim_seconds
    }

    /// Accumulated surrogate-(re)training seconds.
    pub fn learn_seconds(&self) -> f64 {
        self.learn_seconds
    }

    /// Accumulated lookup seconds.
    pub fn lookup_seconds(&self) -> f64 {
        self.lookup_seconds
    }

    /// Count of surrogate (re)trainings recorded.
    pub fn learn_events(&self) -> u64 {
        self.learn_events
    }

    /// Derive the per-unit characteristic times measured so far.
    /// Errors if no training simulations were recorded (no cost basis).
    pub fn times(&self) -> Result<SpeedupTimes> {
        if self.n_train == 0 {
            return Err(crate::PerfError::Invalid(
                "no training simulations recorded".into(),
            ));
        }
        let t_train = self.train_sim_seconds / self.n_train as f64;
        let t_seq = self.seq_reference_seconds.unwrap_or(t_train);
        // T_learn is per training sample in the formula.
        let t_learn = self.learn_seconds / self.n_train as f64;
        let t_lookup = if self.n_lookup > 0 {
            self.lookup_seconds / self.n_lookup as f64
        } else {
            0.0
        };
        Ok(SpeedupTimes {
            t_seq,
            t_train,
            t_learn,
            t_lookup,
        })
    }

    /// The measured effective speedup: evaluates the analytic formula with
    /// the measured times and counts.
    pub fn effective_speedup(&self) -> Result<EffectiveSpeedup> {
        let times = self.times()?;
        effective_speedup(&times, self.n_lookup as f64, self.n_train as f64)
    }

    /// Direct measured speedup: what the campaign cost versus running every
    /// request as a sequential simulation.
    pub fn direct_speedup(&self) -> Result<f64> {
        let times = self.times()?;
        let total = self.total_seconds();
        if total <= 0.0 {
            return Err(crate::PerfError::Invalid("zero total time".into()));
        }
        let requests = (self.n_train + self.n_lookup) as f64;
        Ok(times.t_seq * requests / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accounting_errors() {
        let acc = CampaignAccounting::new();
        assert!(acc.times().is_err());
        assert!(acc.effective_speedup().is_err());
    }

    #[test]
    fn times_are_means() {
        let mut acc = CampaignAccounting::new();
        acc.record_training_sim(2.0);
        acc.record_training_sim(4.0);
        acc.record_learning(0.6);
        acc.record_lookup(0.001);
        acc.record_lookup(0.003);
        let t = acc.times().unwrap();
        assert!((t.t_train - 3.0).abs() < 1e-12);
        assert!((t.t_learn - 0.3).abs() < 1e-12);
        assert!((t.t_lookup - 0.002).abs() < 1e-12);
        // Without an explicit reference, t_seq = t_train.
        assert!((t.t_seq - 3.0).abs() < 1e-12);
    }

    #[test]
    fn explicit_sequential_reference_used() {
        let mut acc = CampaignAccounting::new();
        acc.record_training_sim(1.0);
        acc.set_sequential_reference(8.0);
        assert!((acc.times().unwrap().t_seq - 8.0).abs() < 1e-12);
    }

    #[test]
    fn effective_and_direct_speedups_agree_exactly_here() {
        // When t_seq = t_train and every event is recorded, the analytic
        // formula over measured means equals the direct total-time ratio.
        let mut acc = CampaignAccounting::new();
        for _ in 0..10 {
            acc.record_training_sim(2.0);
        }
        acc.record_learning(1.0);
        for _ in 0..1000 {
            acc.record_lookup(1e-4);
        }
        let analytic = acc.effective_speedup().unwrap().speedup;
        let direct = acc.direct_speedup().unwrap();
        assert!(
            (analytic - direct).abs() < 1e-9 * direct,
            "analytic {analytic} vs direct {direct}"
        );
        assert!(analytic > 50.0, "mostly-lookup campaign is much faster");
    }

    #[test]
    fn counts_tracked() {
        let mut acc = CampaignAccounting::new();
        acc.record_training_sim(1.0);
        acc.record_lookup(0.1);
        acc.record_lookup(0.1);
        assert_eq!(acc.n_train(), 1);
        assert_eq!(acc.n_lookup(), 2);
        assert!((acc.total_seconds() - 1.2).abs() < 1e-12);
    }
}
