//! The effective-speedup formula and its limits.

use crate::{PerfError, Result};

/// The four characteristic times of §III-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupTimes {
    /// Sequential execution time of one simulation.
    pub t_seq: f64,
    /// Time of one parallel training-data simulation.
    pub t_train: f64,
    /// Training time *per sample*.
    pub t_learn: f64,
    /// Inference time per surrogate lookup.
    pub t_lookup: f64,
}

impl SpeedupTimes {
    /// Validate positivity.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("t_seq", self.t_seq),
            ("t_train", self.t_train),
            ("t_learn", self.t_learn),
            ("t_lookup", self.t_lookup),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(PerfError::Invalid(format!("{name} = {v}")));
            }
        }
        if self.t_seq <= 0.0 {
            return Err(PerfError::Invalid("t_seq must be positive".into()));
        }
        if self.t_train <= 0.0 {
            return Err(PerfError::Invalid("t_train must be positive".into()));
        }
        Ok(())
    }
}

/// The computed speedup with its inputs (for reporting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectiveSpeedup {
    /// Characteristic times.
    pub times: SpeedupTimes,
    /// Number of surrogate lookups.
    pub n_lookup: f64,
    /// Number of training simulations.
    pub n_train: f64,
    /// The effective speedup S.
    pub speedup: f64,
}

/// Evaluate the formula
/// `S = T_seq (N_lookup + N_train) / (T_lookup N_lookup + (T_train + T_learn) N_train)`.
pub fn effective_speedup(
    times: &SpeedupTimes,
    n_lookup: f64,
    n_train: f64,
) -> Result<EffectiveSpeedup> {
    times.validate()?;
    if n_lookup < 0.0 || n_train < 0.0 || (n_lookup + n_train) == 0.0 { // lint:allow(float-hygiene): integer-valued counts, zero total is exact
        return Err(PerfError::Invalid(format!(
            "need non-negative counts with a positive total: N_lookup={n_lookup}, N_train={n_train}"
        )));
    }
    let numerator = times.t_seq * (n_lookup + n_train);
    let denominator = times.t_lookup * n_lookup + (times.t_train + times.t_learn) * n_train;
    if denominator <= 0.0 {
        return Err(PerfError::Invalid(
            "zero total cost — need t_lookup > 0 or n_train > 0".into(),
        ));
    }
    Ok(EffectiveSpeedup {
        times: *times,
        n_lookup,
        n_train,
        speedup: numerator / denominator,
    })
}

/// The no-ML limit: `S → T_seq / T_train` (classic parallel speedup).
pub fn no_ml_limit(times: &SpeedupTimes) -> Result<f64> {
    times.validate()?;
    Ok(times.t_seq / times.t_train)
}

/// The lookup-dominated limit: `S → T_seq / T_lookup`.
pub fn lookup_limit(times: &SpeedupTimes) -> Result<f64> {
    times.validate()?;
    if times.t_lookup <= 0.0 {
        return Err(PerfError::Invalid(
            "lookup limit undefined for t_lookup = 0".into(),
        ));
    }
    Ok(times.t_seq / times.t_lookup)
}

/// Break-even lookup count: the N_lookup at which the hybrid halves the gap
/// between the no-ML and the asymptotic limit is a smooth crossover, so we
/// report the N_lookup at which S reaches `fraction` (0 < fraction < 1) of
/// the asymptotic limit. Returns `None` if the target is unreachable.
pub fn lookups_to_reach_fraction(
    times: &SpeedupTimes,
    n_train: f64,
    fraction: f64,
) -> Result<Option<f64>> {
    times.validate()?;
    if !(0.0..1.0).contains(&fraction) || n_train <= 0.0 {
        return Err(PerfError::Invalid(format!(
            "fraction {fraction} must be in (0,1), n_train {n_train} > 0"
        )));
    }
    if times.t_lookup <= 0.0 {
        return Ok(Some(0.0));
    }
    let target = fraction * times.t_seq / times.t_lookup;
    // Solve S(N) = target for N = n_lookup:
    // T_seq (N + M) = target (T_lookup N + C M), with M = n_train,
    // C = t_train + t_learn.
    let c = times.t_train + times.t_learn;
    let a = times.t_seq - target * times.t_lookup;
    let b = n_train * (target * c - times.t_seq);
    if a <= 0.0 {
        // Even infinite lookups cannot reach the target.
        return Ok(None);
    }
    let n = b / a;
    Ok(Some(n.max(0.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_times() -> SpeedupTimes {
        // Shaped like the nanoconfinement example: lookup ~10⁵× faster than
        // the sequential simulation.
        SpeedupTimes {
            t_seq: 100.0,
            t_train: 10.0,
            t_learn: 0.1,
            t_lookup: 1e-3,
        }
    }

    #[test]
    fn validation() {
        let mut t = paper_times();
        t.t_seq = 0.0;
        assert!(t.validate().is_err());
        let mut t2 = paper_times();
        t2.t_lookup = f64::NAN;
        assert!(t2.validate().is_err());
        assert!(effective_speedup(&paper_times(), -1.0, 10.0).is_err());
        assert!(effective_speedup(&paper_times(), 0.0, 0.0).is_err());
    }

    #[test]
    fn reduces_to_classic_speedup_without_ml() {
        let t = paper_times();
        let s = effective_speedup(&t, 0.0, 50.0).unwrap();
        assert!(
            (s.speedup - t.t_seq / (t.t_train + t.t_learn)).abs() < 1e-12,
            "N_lookup = 0 gives T_seq/(T_train+T_learn): {}",
            s.speedup
        );
        // And with negligible learning time it is exactly the paper's
        // T_seq/T_train limit.
        let t0 = SpeedupTimes {
            t_learn: 0.0,
            ..t
        };
        let s0 = effective_speedup(&t0, 0.0, 50.0).unwrap();
        assert!((s0.speedup - no_ml_limit(&t0).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn approaches_lookup_limit_for_many_lookups() {
        let t = paper_times();
        let asymptote = lookup_limit(&t).unwrap();
        assert!((asymptote - 1e5).abs() < 1e-6);
        let s_small = effective_speedup(&t, 1e2, 100.0).unwrap().speedup;
        let s_large = effective_speedup(&t, 1e9, 100.0).unwrap().speedup;
        assert!(s_small < s_large);
        assert!(
            s_large > 0.99 * asymptote,
            "at N_lookup = 1e9 the speedup {s_large} should be within 1% of {asymptote}"
        );
    }

    #[test]
    fn speedup_is_monotone_in_lookup_count() {
        let t = paper_times();
        let mut prev = 0.0;
        for exp in 0..8 {
            let n = 10f64.powi(exp);
            let s = effective_speedup(&t, n, 100.0).unwrap().speedup;
            assert!(s > prev, "monotone increase: {s} after {prev}");
            prev = s;
        }
    }

    #[test]
    fn training_overhead_lowers_speedup() {
        let cheap = paper_times();
        let costly = SpeedupTimes {
            t_learn: 10.0,
            ..cheap
        };
        let s_cheap = effective_speedup(&cheap, 1e4, 100.0).unwrap().speedup;
        let s_costly = effective_speedup(&costly, 1e4, 100.0).unwrap().speedup;
        assert!(s_costly < s_cheap);
    }

    #[test]
    fn lookups_to_reach_fraction_is_consistent() {
        let t = paper_times();
        let n_train = 100.0;
        let n = lookups_to_reach_fraction(&t, n_train, 0.5)
            .unwrap()
            .expect("reachable");
        let s = effective_speedup(&t, n, n_train).unwrap().speedup;
        let target = 0.5 * lookup_limit(&t).unwrap();
        assert!(
            (s - target).abs() < 1e-6 * target,
            "S({n}) = {s} should equal the target {target}"
        );
    }

    #[test]
    fn unreachable_fraction_returns_none() {
        // If t_lookup ≥ t_seq the "limit" is below 1 and any fraction of it
        // is trivially reached; make t_lookup huge relative to the target so
        // a > 0 fails… construct: fraction such that target > t_seq/t_lookup
        // is impossible by definition (target = fraction × limit < limit),
        // so instead check the a ≤ 0 path with fraction → 1 and t_lookup
        // comparable to t_seq where the formula's a becomes ≤ 0 only when
        // fraction = 1 − ε and costs balance. Simpler: verify Some(0) for
        // t_lookup = 0.
        let t = SpeedupTimes {
            t_lookup: 0.0,
            ..paper_times()
        };
        assert_eq!(lookups_to_reach_fraction(&t, 10.0, 0.9).unwrap(), Some(0.0));
    }

    #[test]
    fn paper_magnitude_example() {
        // With lookup 10⁵× faster and abundant lookups, effective speedup
        // reaches the "Exa or even Zetta scale equivalent" regime the paper
        // describes (here: ≫ 10³ with just 10⁶ lookups per 100 trainings).
        let t = paper_times();
        let s = effective_speedup(&t, 1e6, 100.0).unwrap().speedup;
        assert!(s > 4e4, "speedup {s} should be within reach of the limit");
    }
}
