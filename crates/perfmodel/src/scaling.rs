//! Sweep series for the E1 bench: effective speedup as a function of the
//! lookup-to-training ratio, across lookup-cost regimes.

use crate::speedup::{effective_speedup, SpeedupTimes};
use crate::Result;

/// One point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// N_lookup / N_train ratio.
    pub ratio: f64,
    /// Effective speedup at that ratio.
    pub speedup: f64,
}

/// Sweep the lookup/train ratio logarithmically from `10^lo` to `10^hi`
/// with `points_per_decade` samples per decade, at fixed `n_train`.
pub fn sweep_ratio(
    times: &SpeedupTimes,
    n_train: f64,
    lo_exp: i32,
    hi_exp: i32,
    points_per_decade: usize,
) -> Result<Vec<SweepPoint>> {
    if hi_exp < lo_exp || points_per_decade == 0 {
        return Err(crate::PerfError::Invalid(format!(
            "bad sweep range {lo_exp}..{hi_exp} × {points_per_decade}"
        )));
    }
    let n_points = ((hi_exp - lo_exp) as usize) * points_per_decade + 1;
    let mut out = Vec::with_capacity(n_points);
    for i in 0..n_points {
        let exp = lo_exp as f64 + i as f64 / points_per_decade as f64;
        let ratio = 10f64.powf(exp);
        let s = effective_speedup(times, ratio * n_train, n_train)?;
        out.push(SweepPoint {
            ratio,
            speedup: s.speedup,
        });
    }
    Ok(out)
}

/// Find the ratio at which the speedup crosses `threshold` by linear
/// interpolation in log-ratio (`None` if never crossed in the sweep).
pub fn crossover_ratio(points: &[SweepPoint], threshold: f64) -> Option<f64> {
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a.speedup < threshold && b.speedup >= threshold {
            let la = a.ratio.ln();
            let lb = b.ratio.ln();
            let frac = (threshold - a.speedup) / (b.speedup - a.speedup);
            return Some((la + frac * (lb - la)).exp());
        }
    }
    if points.first().is_some_and(|p| p.speedup >= threshold) {
        return points.first().map(|p| p.ratio);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times() -> SpeedupTimes {
        SpeedupTimes {
            t_seq: 100.0,
            t_train: 10.0,
            t_learn: 0.1,
            t_lookup: 1e-3,
        }
    }

    #[test]
    fn sweep_is_monotone_and_bounded() {
        let pts = sweep_ratio(&times(), 100.0, -2, 6, 4).unwrap();
        assert_eq!(pts.len(), 8 * 4 + 1);
        for w in pts.windows(2) {
            assert!(w[1].speedup >= w[0].speedup, "monotone in ratio");
        }
        let limit = 100.0 / 1e-3;
        assert!(pts.last().unwrap().speedup <= limit);
        assert!(pts.last().unwrap().speedup > 0.9 * limit);
    }

    #[test]
    fn sweep_validation() {
        assert!(sweep_ratio(&times(), 100.0, 3, 1, 4).is_err());
        assert!(sweep_ratio(&times(), 100.0, 0, 2, 0).is_err());
    }

    #[test]
    fn crossover_found_and_consistent() {
        let pts = sweep_ratio(&times(), 100.0, -2, 6, 8).unwrap();
        let threshold = 1000.0;
        let ratio = crossover_ratio(&pts, threshold).expect("crossed");
        // Evaluate at the crossover: should be near the threshold.
        let s = effective_speedup(&times(), ratio * 100.0, 100.0)
            .unwrap()
            .speedup;
        assert!(
            (s - threshold).abs() < 0.2 * threshold,
            "speedup at crossover {s} vs threshold {threshold}"
        );
    }

    #[test]
    fn crossover_none_when_unreachable() {
        let pts = sweep_ratio(&times(), 100.0, -2, 2, 4).unwrap();
        // The asymptote is 1e5 but at ratio 100 the speedup is far below
        // 9e4.
        assert!(crossover_ratio(&pts, 9e4).is_none());
    }

    #[test]
    fn crossover_at_first_point() {
        let pts = vec![
            SweepPoint {
                ratio: 0.1,
                speedup: 50.0,
            },
            SweepPoint {
                ratio: 1.0,
                speedup: 60.0,
            },
        ];
        assert_eq!(crossover_ratio(&pts, 10.0), Some(0.1));
    }
}
