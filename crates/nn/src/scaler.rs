//! Feature/target standardization. Simulator inputs span wildly different
//! physical units (nanometers, valencies, molarities), so both inputs and
//! outputs are z-scored before training and predictions are mapped back.

use le_linalg::Matrix;

use crate::{NnError, Result};

/// Per-column affine scaler: `scaled = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Scaler {
    /// Fit a scaler to the columns of `data`. Columns with zero variance get
    /// std 1 so they pass through unchanged (after centering).
    pub fn fit(data: &Matrix) -> Result<Self> {
        if data.rows() == 0 {
            return Err(NnError::Shape("cannot fit scaler to empty data".into()));
        }
        let n = data.rows() as f64;
        let cols = data.cols();
        let mut means = vec![0.0; cols];
        for r in 0..data.rows() {
            for (m, &v) in means.iter_mut().zip(data.row(r).iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; cols];
        for r in 0..data.rows() {
            for ((s, &v), &m) in stds.iter_mut().zip(data.row(r).iter()).zip(means.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Ok(Self { means, stds })
    }

    /// Identity scaler for `cols` columns.
    pub fn identity(cols: usize) -> Self {
        Self {
            means: vec![0.0; cols],
            stds: vec![1.0; cols],
        }
    }

    /// Construct from explicit means/stds (deserialization).
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> Result<Self> {
        if means.len() != stds.len() {
            return Err(NnError::Shape("means/stds length mismatch".into()));
        }
        if stds.iter().any(|&s| s <= 0.0 || !s.is_finite()) {
            return Err(NnError::InvalidConfig("stds must be positive finite".into()));
        }
        Ok(Self { means, stds })
    }

    /// Column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Number of columns this scaler applies to.
    pub fn cols(&self) -> usize {
        self.means.len()
    }

    /// Transform a batch into scaled space.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix> {
        self.check(data)?;
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Map a scaled batch back to original units.
    pub fn inverse_transform(&self, data: &Matrix) -> Result<Matrix> {
        self.check(data)?;
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, &m), &s) in row.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
                *v = *v * s + m;
            }
        }
        Ok(out)
    }

    /// Transform a single sample in place.
    pub fn transform_slice(&self, x: &mut [f64]) -> Result<()> {
        if x.len() != self.cols() {
            return Err(NnError::Shape(format!(
                "scaler expects {} columns, got {}",
                self.cols(),
                x.len()
            )));
        }
        for ((v, &m), &s) in x.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
            *v = (*v - m) / s;
        }
        Ok(())
    }

    /// Inverse-transform a single sample in place.
    pub fn inverse_transform_slice(&self, x: &mut [f64]) -> Result<()> {
        if x.len() != self.cols() {
            return Err(NnError::Shape(format!(
                "scaler expects {} columns, got {}",
                self.cols(),
                x.len()
            )));
        }
        for ((v, &m), &s) in x.iter_mut().zip(self.means.iter()).zip(self.stds.iter()) {
            *v = *v * s + m;
        }
        Ok(())
    }

    /// Scale a *standard deviation* from scaled space back to original units
    /// (pure multiplication — no mean shift). Used by the UQ crate.
    pub fn inverse_scale_std(&self, col: usize, std_scaled: f64) -> f64 {
        std_scaled * self.stds[col]
    }

    fn check(&self, data: &Matrix) -> Result<()> {
        if data.cols() != self.cols() {
            return Err(NnError::Shape(format!(
                "scaler expects {} columns, got {}",
                self.cols(),
                data.cols()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_transform_standardizes() {
        let data = Matrix::from_rows(&[&[1.0, 10.0], &[2.0, 20.0], &[3.0, 30.0]]);
        let scaler = Scaler::fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        // Each column: mean 0, population std 1.
        for c in 0..2 {
            let col: Vec<f64> = (0..3).map(|r| t.get(r, c)).collect();
            let mean = col.iter().sum::<f64>() / 3.0;
            let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let data = Matrix::from_rows(&[&[1.5, -2.0, 7.0], &[0.0, 3.0, -1.0], &[2.2, 0.1, 4.0]]);
        let scaler = Scaler::fit(&data).unwrap();
        let back = scaler
            .inverse_transform(&scaler.transform(&data).unwrap())
            .unwrap();
        for (a, b) in back.as_slice().iter().zip(data.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_column_passes_through() {
        let data = Matrix::from_rows(&[&[5.0, 1.0], &[5.0, 2.0], &[5.0, 3.0]]);
        let scaler = Scaler::fit(&data).unwrap();
        let t = scaler.transform(&data).unwrap();
        for r in 0..3 {
            assert_eq!(t.get(r, 0), 0.0, "constant column centers to 0");
        }
        let back = scaler.inverse_transform(&t).unwrap();
        for r in 0..3 {
            assert_eq!(back.get(r, 0), 5.0);
        }
    }

    #[test]
    fn slice_variants_match_matrix() {
        let data = Matrix::from_rows(&[&[1.0, -4.0], &[3.0, 2.0], &[-1.0, 0.0]]);
        let scaler = Scaler::fit(&data).unwrap();
        let mut x = [3.0, 2.0];
        scaler.transform_slice(&mut x).unwrap();
        let t = scaler.transform(&data).unwrap();
        assert!((x[0] - t.get(1, 0)).abs() < 1e-12);
        assert!((x[1] - t.get(1, 1)).abs() < 1e-12);
        scaler.inverse_transform_slice(&mut x).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shape_validation() {
        let scaler = Scaler::identity(3);
        assert!(scaler.transform(&Matrix::zeros(2, 2)).is_err());
        assert!(scaler.transform_slice(&mut [0.0, 0.0]).is_err());
        assert!(Scaler::from_parts(vec![0.0], vec![1.0, 1.0]).is_err());
        assert!(Scaler::from_parts(vec![0.0], vec![0.0]).is_err());
        assert!(Scaler::from_parts(vec![0.0], vec![f64::NAN]).is_err());
    }

    #[test]
    fn empty_fit_errors() {
        assert!(Scaler::fit(&Matrix::zeros(0, 3)).is_err());
    }

    #[test]
    fn inverse_scale_std_is_multiplicative() {
        let scaler = Scaler::from_parts(vec![10.0, 20.0], vec![2.0, 4.0]).unwrap();
        assert_eq!(scaler.inverse_scale_std(0, 1.5), 3.0);
        assert_eq!(scaler.inverse_scale_std(1, 0.5), 2.0);
    }
}
