//! Dense layers, activations, and inverted dropout.
//!
//! Layers operate on batches: a batch is a `Matrix` of shape
//! `(batch, features)`. Each layer caches what it needs during `forward` so
//! that `backward` can run without re-computation; callers must pair each
//! `forward` with at most one `backward` (the trainer does).

use le_linalg::{Matrix, Rng};

use crate::{NnError, Result};

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// max(0, x) — default for hidden layers; pairs with He init.
    Relu,
    /// Leaky ReLU with slope 0.01 for x < 0.
    LeakyRelu,
    /// Hyperbolic tangent — what the companion papers' Keras nets use.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no-op) — output layers of regression nets.
    Identity,
}

impl Activation {
    /// Apply the activation to one value.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
            // Hermetic rational tanh (not libm): bit-stable across hosts
            // and vectorizable inside the batch engine's activation loop;
            // max error vs libm is 2.6e-8 — see [`crate::math::tanh`].
            Activation::Tanh => crate::math::tanh(x),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Identity => x,
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)` where
    /// possible (tanh, sigmoid) and the input `x` otherwise. Both are
    /// supplied so each variant can use whichever is exact.
    #[inline]
    pub fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Identity => 1.0,
        }
    }

    /// Stable name used by the checkpoint format.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
            Activation::Identity => "identity",
        }
    }

    /// Inverse of [`Activation::name`].
    pub fn from_name(name: &str) -> Result<Self> {
        Ok(match name {
            "relu" => Activation::Relu,
            "leaky_relu" => Activation::LeakyRelu,
            "tanh" => Activation::Tanh,
            "sigmoid" => Activation::Sigmoid,
            "identity" => Activation::Identity,
            other => return Err(NnError::Parse(format!("unknown activation `{other}`"))),
        })
    }
}

/// A fully connected layer `y = act(x W + b)` with cached forward state and
/// accumulated gradients.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, shape `(in_dim, out_dim)`.
    pub w: Matrix,
    /// Bias, length `out_dim`.
    pub b: Vec<f64>,
    /// Activation applied after the affine map.
    pub activation: Activation,
    /// Gradient of the loss w.r.t. `w` from the last backward pass.
    pub grad_w: Matrix,
    /// Gradient of the loss w.r.t. `b` from the last backward pass.
    pub grad_b: Vec<f64>,
    // Cached forward state.
    input: Option<Matrix>,
    pre_act: Option<Matrix>,
    post_act: Option<Matrix>,
}

impl Dense {
    /// New dense layer with activation-appropriate initialization:
    /// He-uniform for ReLU-family, Xavier-uniform otherwise.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut Rng) -> Self {
        let w = match activation {
            Activation::Relu | Activation::LeakyRelu => {
                Matrix::he_uniform(in_dim, out_dim, in_dim, rng)
            }
            _ => Matrix::xavier_uniform(in_dim, out_dim, in_dim, out_dim, rng),
        };
        Self {
            w,
            b: vec![0.0; out_dim],
            activation,
            grad_w: Matrix::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
            input: None,
            pre_act: None,
            post_act: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass for a batch; caches state for `backward`.
    pub fn forward(&mut self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.in_dim() {
            return Err(NnError::Shape(format!(
                "dense layer expects {} features, got {}",
                self.in_dim(),
                x.cols()
            )));
        }
        let mut z = x.matmul(&self.w).map_err(|e| NnError::Shape(e.to_string()))?;
        z.add_row_broadcast(&self.b)
            .map_err(|e| NnError::Shape(e.to_string()))?;
        let act = self.activation;
        let a = z.map(|v| act.apply(v));
        self.input = Some(x.clone());
        self.pre_act = Some(z);
        self.post_act = Some(a.clone());
        Ok(a)
    }

    /// Inference-only forward: no caching, no allocation of gradient state.
    pub fn infer(&self, x: &Matrix) -> Result<Matrix> {
        if x.cols() != self.in_dim() {
            return Err(NnError::Shape(format!(
                "dense layer expects {} features, got {}",
                self.in_dim(),
                x.cols()
            )));
        }
        let mut z = x.matmul(&self.w).map_err(|e| NnError::Shape(e.to_string()))?;
        z.add_row_broadcast(&self.b)
            .map_err(|e| NnError::Shape(e.to_string()))?;
        let act = self.activation;
        z.map_mut(|v| act.apply(v));
        Ok(z)
    }

    /// Backward pass: takes `dL/dy` (gradient w.r.t. this layer's output),
    /// stores `grad_w`/`grad_b`, and returns `dL/dx`.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix> {
        let input = self
            .input
            .take()
            .ok_or_else(|| NnError::Shape("backward without forward".into()))?;
        let pre = self
            .pre_act
            .take()
            .ok_or_else(|| NnError::Shape("backward without forward".into()))?;
        let post = self
            .post_act
            .take()
            .ok_or_else(|| NnError::Shape("backward without forward".into()))?;
        if grad_out.shape() != post.shape() {
            return Err(NnError::Shape(format!(
                "grad shape {:?} != output shape {:?}",
                grad_out.shape(),
                post.shape()
            )));
        }
        // dL/dz = dL/dy * f'(z)
        let act = self.activation;
        let mut grad_z = grad_out.clone();
        {
            let gz = grad_z.as_mut_slice();
            let zs = pre.as_slice();
            let ys = post.as_slice();
            for ((g, &z), &y) in gz.iter_mut().zip(zs.iter()).zip(ys.iter()) {
                *g *= act.derivative(z, y);
            }
        }
        // dL/dW = x^T dL/dz ; dL/db = column sums of dL/dz ; dL/dx = dL/dz W^T
        self.grad_w = input
            .t_matmul(&grad_z)
            .map_err(|e| NnError::Shape(e.to_string()))?;
        self.grad_b = grad_z.col_sums();
        grad_z
            .matmul_t(&self.w)
            .map_err(|e| NnError::Shape(e.to_string()))
    }

    /// Total number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }
}

/// Inverted dropout: at train time each unit is zeroed with probability
/// `rate` and survivors are scaled by `1/(1-rate)`, so inference needs no
/// rescaling. The same path is reused *at inference* for MC-dropout UQ.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub rate: f64,
    mask: Option<Matrix>,
}

impl Dropout {
    /// New dropout layer. Errors if `rate` is outside `[0, 1)`.
    pub fn new(rate: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&rate) {
            return Err(NnError::InvalidConfig(format!(
                "dropout rate must be in [0,1), got {rate}"
            )));
        }
        Ok(Self { rate, mask: None })
    }

    /// Stochastic forward (training or MC-dropout inference).
    pub fn forward(&mut self, x: &Matrix, rng: &mut Rng) -> Matrix {
        if self.rate == 0.0 { // lint:allow(float-hygiene): exact-zero rate disables dropout entirely
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.rate;
        let scale = 1.0 / keep;
        let mut mask = Matrix::zeros(x.rows(), x.cols());
        {
            let ms = mask.as_mut_slice();
            for m in ms.iter_mut() {
                *m = if rng.bernoulli(keep) { scale } else { 0.0 };
            }
        }
        let out = x.hadamard(&mask).expect("same shape by construction"); // lint:allow(no-panic): mask sampled with the input's shape
        self.mask = Some(mask);
        out
    }

    /// Deterministic forward (standard inference): identity under inverted
    /// dropout.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    /// Backward: gradient flows only through kept units, with the same
    /// scaling.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match self.mask.take() {
            Some(mask) => grad_out.hadamard(&mask).expect("same shape"), // lint:allow(no-panic): mask cached from the forward pass
            None => grad_out.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(activation: Activation) {
        // Numerical gradient check of a single dense layer under L = sum(y).
        let mut rng = Rng::new(500);
        let mut layer = Dense::new(4, 3, activation, &mut rng);
        let x = Matrix::from_vec(2, 4, (0..8).map(|i| 0.1 * i as f64 - 0.35).collect()).unwrap();
        let ones = Matrix::filled(2, 3, 1.0);
        let _ = layer.forward(&x).unwrap();
        let _ = layer.backward(&ones).unwrap();
        let analytic = layer.grad_w.clone();
        let eps = 1e-6;
        for r in 0..4 {
            for c in 0..3 {
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + eps);
                let up = layer.infer(&x).unwrap().sum();
                layer.w.set(r, c, orig - eps);
                let down = layer.infer(&x).unwrap().sum();
                layer.w.set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-5,
                    "{activation:?} grad_w[{r},{c}]: numeric {numeric} vs analytic {}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn dense_gradient_matches_finite_difference_tanh() {
        finite_diff_check(Activation::Tanh);
    }

    #[test]
    fn dense_gradient_matches_finite_difference_sigmoid() {
        finite_diff_check(Activation::Sigmoid);
    }

    #[test]
    fn dense_gradient_matches_finite_difference_identity() {
        finite_diff_check(Activation::Identity);
    }

    #[test]
    fn dense_bias_gradient_is_column_sum() {
        let mut rng = Rng::new(501);
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut rng);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = Matrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]);
        let _ = layer.forward(&x).unwrap();
        let _ = layer.backward(&g).unwrap();
        assert!((layer.grad_b[0] - 3.0).abs() < 1e-12);
        assert!((layer.grad_b[1] - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn forward_shape_validation() {
        let mut rng = Rng::new(502);
        let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
        let bad = Matrix::zeros(1, 4);
        assert!(layer.forward(&bad).is_err());
        assert!(layer.infer(&bad).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = Rng::new(503);
        let mut layer = Dense::new(2, 2, Activation::Relu, &mut rng);
        assert!(layer.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = Rng::new(504);
        let mut layer = Dense::new(3, 5, Activation::Tanh, &mut rng);
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.2 - 1.0).collect()).unwrap();
        let f = layer.forward(&x).unwrap();
        let i = layer.infer(&x).unwrap();
        for (a, b) in f.as_slice().iter().zip(i.as_slice()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn relu_kills_negative() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0, 0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0, 1.0), 1.0);
    }

    #[test]
    fn activation_name_roundtrip() {
        for act in [
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Identity,
        ] {
            assert_eq!(Activation::from_name(act.name()).unwrap(), act);
        }
        assert!(Activation::from_name("swish").is_err());
    }

    #[test]
    fn dropout_rate_validation() {
        assert!(Dropout::new(-0.1).is_err());
        assert!(Dropout::new(1.0).is_err());
        assert!(Dropout::new(0.0).is_ok());
        assert!(Dropout::new(0.5).is_ok());
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut rng = Rng::new(505);
        let mut d = Dropout::new(0.3).unwrap();
        let x = Matrix::filled(200, 50, 1.0);
        let mut total = 0.0;
        let reps = 20;
        for _ in 0..reps {
            total += d.forward(&x, &mut rng).sum();
        }
        let mean = total / (reps * 200 * 50) as f64;
        assert!((mean - 1.0).abs() < 0.02, "inverted dropout mean {mean}");
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = Rng::new(506);
        let mut d = Dropout::new(0.0).unwrap();
        let x = Matrix::from_rows(&[&[1.0, -2.0, 3.0]]);
        assert_eq!(d.forward(&x, &mut rng), x);
        assert_eq!(d.infer(&x), x);
    }

    #[test]
    fn dropout_backward_uses_same_mask() {
        let mut rng = Rng::new(507);
        let mut d = Dropout::new(0.5).unwrap();
        let x = Matrix::filled(1, 100, 1.0);
        let y = d.forward(&x, &mut rng);
        let g = d.backward(&Matrix::filled(1, 100, 1.0));
        // Where the output was zeroed, the gradient must be zeroed too.
        for (yv, gv) in y.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*yv == 0.0, *gv == 0.0);
            if *yv != 0.0 {
                assert!((gv - 2.0).abs() < 1e-12, "kept grad should be scaled by 1/keep");
            }
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::new(508);
        let layer = Dense::new(6, 30, Activation::Tanh, &mut rng);
        assert_eq!(layer.param_count(), 6 * 30 + 30);
    }
}
