//! Hermetic elementary functions for the inference hot path.
//!
//! The only transcendental on the surrogate's forward pass is `tanh` on
//! every hidden unit, and routing it through the platform libm has two
//! costs this crate refuses to pay:
//!
//! * **Hermeticity** — libm's `tanh` is whatever the host glibc ships, so
//!   a glibc upgrade could silently move every inference digest this
//!   workspace pins (golden outputs, thread-invariance digests, committed
//!   observability baselines). The polynomial below is plain Rust
//!   arithmetic: the same bits on every host, forever.
//! * **Throughput** — a libm call is an opaque scalar boundary: the
//!   compiler can neither inline nor vectorize across it, and at ~128
//!   hidden units per surrogate row it dominates the forward pass. The
//!   rational form below is branch-free straight-line code that
//!   auto-vectorizes with the surrounding loop.
//!
//! Accuracy: max absolute error vs libm `tanh` is **2.6e-8** over the
//! whole real line (worst near |x| ≈ 0.3; the saturated tail sits a
//! constant 2.5e-8 below ±1) — four orders of magnitude below the
//! surrogate models' own RMSE, and far inside the MC-dropout noise
//! floor. The approximation is exactly odd, monotone-saturating (a
//! constant just inside ±1 for |x| ≥ 9, never outside `[-1, 1]`), and
//! passes NaN through.

/// Degree-13/6 rational minimax approximation of `tanh(x)`.
///
/// `p(x)/q(x)` with an odd numerator and even denominator (both in
/// `x²`), evaluated by Horner's rule after clamping to `[-9, 9]` — past
/// the clamp the output is the constant `p(±9)/q(±9) = ±(1 − 2.5e-8)`,
/// inside the fit's global error bound and strictly inside `[-1, 1]`.
/// The coefficient set is the widely used Cephes/Eigen-style fit. NaN
/// survives the clamp (`f64::clamp` propagates it) and yields NaN,
/// matching libm.
///
/// Callers that backpropagate through this (`Activation::derivative`)
/// keep using the analytic `1 - y²`; the ~1e-8 mismatch between that and
/// this polynomial's true derivative is noise relative to SGD's own
/// stochasticity.
#[inline]
pub fn tanh(x: f64) -> f64 {
    const A1: f64 = 4.893_524_558_917_86e-3;
    const A3: f64 = 6.372_619_288_754_36e-4;
    const A5: f64 = 1.485_722_357_179_79e-5;
    const A7: f64 = 5.122_297_090_371_14e-8;
    const A9: f64 = -8.604_671_522_137_35e-11;
    const A11: f64 = 2.000_187_904_824_77e-13;
    const A13: f64 = -2.760_768_477_423_55e-16;
    const B0: f64 = 4.893_525_185_543_85e-3;
    const B2: f64 = 2.268_434_632_439_00e-3;
    const B4: f64 = 1.185_347_056_866_54e-4;
    const B6: f64 = 1.198_258_394_667_02e-6;

    let xc = x.clamp(-9.0, 9.0);
    let x2 = xc * xc;
    let p = xc * (A1 + x2 * (A3 + x2 * (A5 + x2 * (A7 + x2 * (A9 + x2 * (A11 + x2 * A13))))));
    let q = B0 + x2 * (B2 + x2 * (B4 + x2 * B6));
    p / q
}

#[cfg(test)]
mod tests {
    #[test]
    fn tracks_libm_tanh_to_3e8_everywhere() {
        let mut worst = 0.0f64;
        let mut i = -200_000i64;
        while i <= 200_000 {
            let x = i as f64 * 1e-4; // dense grid over [-20, 20]
            let err = (super::tanh(x) - x.tanh()).abs();
            worst = worst.max(err);
            i += 1;
        }
        assert!(worst < 3e-8, "max error {worst:e} vs libm");
    }

    #[test]
    fn saturates_to_a_constant_inside_the_unit_interval() {
        let plateau = super::tanh(9.0);
        assert!(plateau < 1.0 && (1.0 - plateau) < 3e-8, "plateau {plateau}");
        for x in [9.5, 20.0, 1e6, f64::INFINITY] {
            assert_eq!(super::tanh(x).to_bits(), plateau.to_bits());
            assert_eq!(super::tanh(-x).to_bits(), (-plateau).to_bits());
        }
    }

    #[test]
    fn is_exactly_odd_and_fixes_zero() {
        for x in [1e-8, 0.1, 0.5, 1.0, 3.0, 8.99] {
            assert_eq!(super::tanh(-x).to_bits(), (-super::tanh(x)).to_bits());
        }
        assert_eq!(super::tanh(0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(super::tanh(-0.0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn nan_passes_through() {
        assert!(super::tanh(f64::NAN).is_nan());
    }

    #[test]
    fn stays_inside_unit_interval() {
        let mut i = -90_000i64;
        while i <= 90_000 {
            let y = super::tanh(i as f64 * 1e-4);
            assert!((-1.0..=1.0).contains(&y));
            i += 1;
        }
    }
}
