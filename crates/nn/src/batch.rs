//! Batch-first, arena-backed inference engine for [`Mlp`] networks.
//!
//! The per-sample path (`Mlp::predict_one`, K separate `predict_mc` calls)
//! allocates a fresh `Matrix` per layer per call and never hands the blocked
//! GEMM a matrix taller than one row. [`BatchScratch`] fixes both: it
//! snapshots the network's weights in their natural `(in, out)` layout —
//! exactly what the register-tiled [`le_linalg::matrix::gemm_rm_into`]
//! kernel streams — and owns flat, contiguous activation arenas that are
//! reused across calls, so after warm-up a forward pass — batched or
//! single-row — allocates nothing and transposes nothing.
//!
//! # Fused MC-dropout
//!
//! [`BatchScratch::mc_predict_into`] evaluates all `K` stochastic passes for
//! all `B` input rows in one fused `(K·B, width)` batch per layer, so every
//! layer rides the blocked parallel GEMM instead of `K·B` row-vector
//! matvecs. Because no dropout precedes the first dense layer, its output is
//! identical across the `K` passes of a row; the engine therefore runs the
//! first layer on the `B` distinct rows only and replicates its activations
//! into the `(K·B, ·)` arena afterwards — bit-identical to evaluating the
//! replicated input, at 1/K of the first layer's cost.
//!
//! # Determinism contract (canonical mask order)
//!
//! Dropout masks are **not** drawn from a shared stateful generator — that
//! would make results depend on how queries are grouped into batches.
//! Instead every input row is assigned a *consult ordinal* by the caller and
//! draws its masks from the stateless substream
//! [`le_linalg::Rng::substream`]`(mask_seed, ordinal)`. Within one row's
//! stream the draw order is canonical:
//!
//! 1. per stochastic pass `p` in `0..K`,
//! 2. per dropout layer in network order,
//! 3. per unit, row-major (ascending unit index),
//!
//! and layers with dropout rate 0 draw nothing (they are identity under
//! inverted dropout). A mask value is `1/keep` with probability
//! `keep = 1 - rate` and `0.0` otherwise — exactly the inverted-dropout
//! convention of [`crate::layer::Dropout`]. Consequences:
//!
//! * a batch of `B` rows at ordinals `o..o+B` is **bit-identical** to `B`
//!   single-row calls at those ordinals — batching is unobservable;
//! * masks are drawn sequentially and the GEMM kernel is bit-identical
//!   between its sequential and pool-parallel paths, so results do not
//!   depend on `LE_POOL_THREADS`;
//! * the mean/std reduction runs per row in ascending-pass order, off the
//!   parallel path, so it is exact replication territory too.
//!
//! The engine snapshots weights at construction; callers that mutate or
//! replace the model must rebuild the scratch (see [`BatchScratch::new`]).

use le_linalg::matrix::gemm_rm_into;
use le_linalg::{Matrix, Rng};

use crate::layer::Activation;
use crate::model::Mlp;
use crate::{NnError, Result};

/// Arena-backed batch engine: natural-layout weight snapshot plus reusable
/// flat activation/mask/accumulator buffers.
#[derive(Debug, Clone)]
pub struct BatchScratch {
    /// Per layer: weights in natural `(in_dim, out_dim)` layout — the `b`
    /// operand of the register-tiled GEMM kernel.
    w: Vec<Matrix>,
    /// Per layer: bias, length `out_dim`.
    bias: Vec<Vec<f64>>,
    /// Per layer: activation applied after the affine map.
    act: Vec<Activation>,
    /// Per hidden layer `i` (`i + 1 < n_layers`): dropout rate.
    drop_rate: Vec<f64>,
    /// Layer widths `[input, hidden…, output]`.
    dims: Vec<usize>,
    // Ping-pong activation arenas (flat, row-major).
    cur: Vec<f64>,
    nxt: Vec<f64>,
    /// Per dropout layer: flat `(rows, width)` mask arena.
    masks: Vec<Vec<f64>>,
    /// Flat `(K·B, out_dim)` MC sample arena for the fused pass.
    mc_out: Vec<f64>,
}

impl BatchScratch {
    /// Snapshot `model`'s weights (natural layout, GEMM-ready) and set up
    /// empty arenas. Call again whenever the model's parameters change —
    /// the scratch holds copies, not references.
    pub fn new(model: &Mlp) -> Self {
        let layers = model.layers();
        let w: Vec<Matrix> = layers.iter().map(|d| d.w.clone()).collect();
        let bias: Vec<Vec<f64>> = layers.iter().map(|d| d.b.clone()).collect();
        let act: Vec<Activation> = layers.iter().map(|d| d.activation).collect();
        let drop_rate: Vec<f64> = model.dropout.iter().map(|d| d.rate).collect();
        let dims = model.config().layers.clone();
        let n_drop = drop_rate.len();
        Self {
            w,
            bias,
            act,
            drop_rate,
            dims,
            cur: Vec::new(),
            nxt: Vec::new(),
            masks: vec![Vec::new(); n_drop],
            mc_out: Vec::new(),
        }
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.dims[self.dims.len() - 1]
    }

    fn check_io(&self, x_len: usize, rows: usize, out_len: usize, passes: usize) -> Result<()> {
        if x_len != rows * self.in_dim() {
            return Err(NnError::Shape(format!(
                "batch input length {} != rows {} × in_dim {}",
                x_len,
                rows,
                self.in_dim()
            )));
        }
        if out_len != rows * passes * self.out_dim() {
            return Err(NnError::Shape(format!(
                "batch output length {} != rows {} × passes {} × out_dim {}",
                out_len,
                rows,
                passes,
                self.out_dim()
            )));
        }
        Ok(())
    }

    /// Bias add + activation over `(·, n)` rows of `dst`, branching on the
    /// activation **once** so the per-element loop is straight-line code
    /// the compiler can vectorize — dispatching `Activation::apply` per
    /// element would keep the hermetic tanh polynomial scalar and costs
    /// ~3× on the tanh-heavy hidden layers.
    fn bias_act(dst: &mut [f64], n: usize, bias: &[f64], act: Activation) {
        match act {
            Activation::Tanh => {
                for row in dst.chunks_exact_mut(n) {
                    for (v, &b) in row.iter_mut().zip(bias.iter()) {
                        *v = crate::math::tanh(*v + b);
                    }
                }
            }
            Activation::Identity => {
                for row in dst.chunks_exact_mut(n) {
                    for (v, &b) in row.iter_mut().zip(bias.iter()) {
                        *v += b;
                    }
                }
            }
            other => {
                for row in dst.chunks_exact_mut(n) {
                    for (v, &b) in row.iter_mut().zip(bias.iter()) {
                        *v = other.apply(*v + b);
                    }
                }
            }
        }
    }

    /// Affine map + activation for layer `l` over `m` rows of `src`,
    /// written into `dst` (resized to `m × dims[l+1]`).
    fn dense_layer(src: &[f64], dst: &mut Vec<f64>, w: &Matrix, bias: &[f64], act: Activation, m: usize, k: usize) -> Result<()> {
        let n = w.cols();
        dst.resize(m * n, 0.0);
        gemm_rm_into(src, m, k, w, dst)
            .map_err(|e| NnError::Shape(e.to_string()))?;
        Self::bias_act(dst, n, bias, act);
        Ok(())
    }

    /// Deterministic batch forward (dropout off): `x` is a flat row-major
    /// `(rows, in_dim)` slice, `out` a flat `(rows, out_dim)` slice. Writes
    /// results bit-identical to [`Mlp::predict`] on the same rows; after
    /// warm-up no allocation happens.
    pub fn forward_into(&mut self, x: &[f64], rows: usize, out: &mut [f64]) -> Result<()> {
        self.check_io(x.len(), rows, out.len(), 1)?;
        let n_layers = self.w.len();
        self.cur.clear();
        self.cur.extend_from_slice(x);
        for l in 0..n_layers {
            let (m, k) = (rows, self.dims[l]);
            if l + 1 == n_layers {
                // Final layer writes straight into the caller's buffer.
                gemm_rm_into(&self.cur[..m * k], m, k, &self.w[l], out)
                    .map_err(|e| NnError::Shape(e.to_string()))?;
                Self::bias_act(out, self.dims[l + 1], &self.bias[l], self.act[l]);
            } else {
                Self::dense_layer(
                    &self.cur[..m * k],
                    &mut self.nxt,
                    &self.w[l],
                    &self.bias[l],
                    self.act[l],
                    m,
                    k,
                )?;
                std::mem::swap(&mut self.cur, &mut self.nxt);
            }
        }
        Ok(())
    }

    /// Draw the fused mask arenas for `rows` inputs × `passes` passes, in
    /// the canonical order documented at module level: one substream per
    /// row (`Rng::substream(mask_seed, first_ordinal + r)`), then per pass,
    /// per dropout layer, per unit. Rate-0 layers draw nothing and keep an
    /// empty arena.
    fn draw_masks(&mut self, rows: usize, passes: usize, mask_seed: u64, first_ordinal: u64) {
        let total = rows * passes;
        for (l, &rate) in self.drop_rate.iter().enumerate() {
            if rate > 0.0 {
                self.masks[l].resize(total * self.dims[l + 1], 0.0);
            } else {
                self.masks[l].clear();
            }
        }
        for r in 0..rows {
            let mut rng = Rng::substream(mask_seed, first_ordinal.wrapping_add(r as u64));
            for p in 0..passes {
                let fused_row = r * passes + p;
                for (l, &rate) in self.drop_rate.iter().enumerate() {
                    if rate <= 0.0 {
                        continue;
                    }
                    let keep = 1.0 - rate;
                    let scale = 1.0 / keep;
                    let width = self.dims[l + 1];
                    let row = &mut self.masks[l][fused_row * width..(fused_row + 1) * width];
                    for m in row.iter_mut() {
                        *m = if rng.bernoulli(keep) { scale } else { 0.0 };
                    }
                }
            }
        }
    }

    /// Fused MC-dropout forward: all `passes` stochastic passes for all
    /// `rows` inputs in one batched evaluation. `out` receives the flat
    /// `(rows × passes, out_dim)` samples with row layout
    /// `fused_row = r * passes + p` (the `passes` samples of input `r` are
    /// contiguous). Masks come from the per-row substreams of
    /// `(mask_seed, first_ordinal + r)` — see the module docs for the
    /// determinism contract.
    pub fn mc_forward_into(
        &mut self,
        x: &[f64],
        rows: usize,
        passes: usize,
        mask_seed: u64,
        first_ordinal: u64,
        out: &mut [f64],
    ) -> Result<()> {
        self.check_io(x.len(), rows, out.len(), passes)?;
        if passes == 0 {
            return Err(NnError::Shape("mc pass count must be ≥ 1".into()));
        }
        let n_layers = self.w.len();
        if n_layers == 1 {
            // No hidden layers → no dropout: every pass is the plain
            // deterministic forward. Compute each row once and replicate.
            let od = self.out_dim();
            self.mc_out.resize(rows * od, 0.0);
            let mut det = std::mem::take(&mut self.mc_out);
            self.forward_into(x, rows, &mut det)?;
            for r in 0..rows {
                for p in 0..passes {
                    let dst = (r * passes + p) * od;
                    out[dst..dst + od].copy_from_slice(&det[r * od..(r + 1) * od]);
                }
            }
            self.mc_out = det;
            return Ok(());
        }
        self.draw_masks(rows, passes, mask_seed, first_ordinal);
        // First hidden layer on the B distinct rows only (no dropout
        // upstream of it, so its activations are pass-invariant)…
        Self::dense_layer(x, &mut self.nxt, &self.w[0], &self.bias[0], self.act[0], rows, self.dims[0])?;
        std::mem::swap(&mut self.cur, &mut self.nxt);
        // …then replicate each row's activations `passes` times into the
        // fused arena.
        let total = rows * passes;
        let w1 = self.dims[1];
        self.nxt.resize(total * w1, 0.0);
        for r in 0..rows {
            let src = &self.cur[r * w1..(r + 1) * w1];
            for p in 0..passes {
                let dst = (r * passes + p) * w1;
                self.nxt[dst..dst + w1].copy_from_slice(src);
            }
        }
        std::mem::swap(&mut self.cur, &mut self.nxt);
        // Remaining layers run fused over (K·B) rows, each preceded by its
        // dropout mask.
        for l in 1..n_layers {
            // Apply dropout `l-1` (after hidden layer `l-1`'s activation).
            let rate = self.drop_rate[l - 1];
            if rate > 0.0 {
                let width = self.dims[l];
                for (v, &m) in self.cur[..total * width]
                    .iter_mut()
                    .zip(self.masks[l - 1].iter())
                {
                    *v *= m;
                }
            }
            let (m, k) = (total, self.dims[l]);
            if l + 1 == n_layers {
                gemm_rm_into(&self.cur[..m * k], m, k, &self.w[l], out)
                    .map_err(|e| NnError::Shape(e.to_string()))?;
                Self::bias_act(out, self.dims[l + 1], &self.bias[l], self.act[l]);
            } else {
                Self::dense_layer(
                    &self.cur[..m * k],
                    &mut self.nxt,
                    &self.w[l],
                    &self.bias[l],
                    self.act[l],
                    m,
                    k,
                )?;
                std::mem::swap(&mut self.cur, &mut self.nxt);
            }
        }
        Ok(())
    }

    /// Fused MC-dropout mean/std: runs [`BatchScratch::mc_forward_into`]
    /// into the internal sample arena, then reduces per row with the
    /// two-pass Bessel-corrected estimator (mean first, then
    /// `√(Σ(v−m)²/(K−1))`), accumulating passes in ascending order so the
    /// reduction replicates bit-for-bit at any pool width. `mean` and `std`
    /// are flat `(rows, out_dim)` slices.
    pub fn mc_predict_into(
        &mut self,
        x: &[f64],
        rows: usize,
        passes: usize,
        mask_seed: u64,
        first_ordinal: u64,
        mean: &mut [f64],
        std: &mut [f64],
    ) -> Result<()> {
        let od = self.out_dim();
        if mean.len() != rows * od || std.len() != rows * od {
            return Err(NnError::Shape(format!(
                "mean/std length {}/{} != rows {} × out_dim {}",
                mean.len(),
                std.len(),
                rows,
                od
            )));
        }
        if passes < 2 {
            return Err(NnError::Shape("mc std needs ≥ 2 passes".into()));
        }
        let mut samples = std::mem::take(&mut self.mc_out);
        samples.resize(rows * passes * od, 0.0);
        let res = self.mc_forward_into(x, rows, passes, mask_seed, first_ordinal, &mut samples);
        if let Err(e) = res {
            self.mc_out = samples;
            return Err(e);
        }
        let nf = passes as f64;
        for r in 0..rows {
            let base = r * passes * od;
            let m_row = &mut mean[r * od..(r + 1) * od];
            m_row.fill(0.0);
            for p in 0..passes {
                let s_row = &samples[base + p * od..base + (p + 1) * od];
                for (m, &v) in m_row.iter_mut().zip(s_row.iter()) {
                    *m += v;
                }
            }
            for m in m_row.iter_mut() {
                *m /= nf;
            }
            let s_out = &mut std[r * od..(r + 1) * od];
            s_out.fill(0.0);
            for p in 0..passes {
                let s_row = &samples[base + p * od..base + (p + 1) * od];
                for ((s, &v), &m) in s_out.iter_mut().zip(s_row.iter()).zip(mean[r * od..(r + 1) * od].iter()) {
                    *s += (v - m) * (v - m);
                }
            }
            for s in s_out.iter_mut() {
                *s = (*s / (nf - 1.0)).sqrt();
            }
        }
        self.mc_out = samples;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MlpConfig;

    fn net(widths: &[usize], dropout: f64, seed: u64) -> Mlp {
        let mut rng = Rng::new(seed);
        Mlp::new(MlpConfig::regression_with_dropout(widths, dropout), &mut rng).unwrap()
    }

    #[test]
    fn forward_matches_predict_bitwise() {
        let model = net(&[3, 17, 9, 2], 0.0, 41);
        let mut scratch = BatchScratch::new(&model);
        let rows = 5;
        let x: Vec<f64> = (0..rows * 3).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut out = vec![0.0; rows * 2];
        scratch.forward_into(&x, rows, &mut out).unwrap();
        let xm = Matrix::from_vec(rows, 3, x.clone()).unwrap();
        let want = model.predict(&xm).unwrap();
        assert_eq!(out, want.as_slice().to_vec(), "engine must replicate Mlp::predict bitwise");
    }

    #[test]
    fn single_row_matches_predict_one_bitwise() {
        let model = net(&[4, 33, 1], 0.1, 42);
        let mut scratch = BatchScratch::new(&model);
        let x = [0.2, -0.4, 0.9, 0.01];
        let mut out = [0.0; 1];
        scratch.forward_into(&x, 1, &mut out).unwrap();
        assert_eq!(out.to_vec(), model.predict_one(&x).unwrap());
    }

    #[test]
    fn batch_of_b_equals_b_batches_of_one() {
        // The determinism contract: fused evaluation at ordinals o..o+B is
        // bit-identical to B single-row evaluations at those ordinals.
        let model = net(&[2, 24, 24, 3], 0.3, 43);
        let mut fused = BatchScratch::new(&model);
        let mut single = BatchScratch::new(&model);
        let rows = 6;
        let k = 9;
        let x: Vec<f64> = (0..rows * 2).map(|i| (i as f64 * 0.11).cos()).collect();
        let (seed, first) = (0xFEED, 7u64);
        let mut mean_b = vec![0.0; rows * 3];
        let mut std_b = vec![0.0; rows * 3];
        fused
            .mc_predict_into(&x, rows, k, seed, first, &mut mean_b, &mut std_b)
            .unwrap();
        for r in 0..rows {
            let mut mean_1 = vec![0.0; 3];
            let mut std_1 = vec![0.0; 3];
            single
                .mc_predict_into(&x[r * 2..(r + 1) * 2], 1, k, seed, first + r as u64, &mut mean_1, &mut std_1)
                .unwrap();
            assert_eq!(mean_1, mean_b[r * 3..(r + 1) * 3].to_vec(), "row {r} mean");
            assert_eq!(std_1, std_b[r * 3..(r + 1) * 3].to_vec(), "row {r} std");
        }
    }

    #[test]
    fn fused_pass_is_replicable() {
        let model = net(&[3, 16, 1], 0.2, 44);
        let mut s1 = BatchScratch::new(&model);
        let mut s2 = BatchScratch::new(&model);
        let x = [0.5, -0.5, 0.25, 1.0, 0.0, -1.0];
        let mut a = vec![0.0; 2 * 4 * 1];
        let mut b = vec![0.0; 2 * 4 * 1];
        s1.mc_forward_into(&x, 2, 4, 99, 0, &mut a).unwrap();
        s2.mc_forward_into(&x, 2, 4, 99, 0, &mut b).unwrap();
        assert_eq!(a, b);
        // And reuse of the same scratch replicates too (arena hygiene).
        let mut c = vec![0.0; 2 * 4 * 1];
        s1.mc_forward_into(&x, 2, 4, 99, 0, &mut c).unwrap();
        assert_eq!(a, c);
    }

    #[test]
    fn zero_dropout_fused_std_is_zero() {
        let model = net(&[2, 8, 1], 0.0, 45);
        let mut scratch = BatchScratch::new(&model);
        let x = [0.3, 0.7];
        let mut mean = [0.0; 1];
        let mut std = [0.0; 1];
        scratch.mc_predict_into(&x, 1, 20, 1, 0, &mut mean, &mut std).unwrap();
        assert!(std[0] < 1e-12, "no dropout ⇒ zero spread, got {}", std[0]);
    }

    #[test]
    fn no_hidden_layer_net_is_deterministic() {
        let model = net(&[3, 2], 0.0, 46);
        let mut scratch = BatchScratch::new(&model);
        let x = [0.1, 0.2, 0.3];
        let mut out = vec![0.0; 5 * 2];
        scratch.mc_forward_into(&x, 1, 5, 7, 0, &mut out).unwrap();
        let point = model.predict_one(&x).unwrap();
        for p in 0..5 {
            assert_eq!(out[p * 2..(p + 1) * 2].to_vec(), point, "pass {p}");
        }
    }

    #[test]
    fn shape_errors_are_reported() {
        let model = net(&[3, 4, 2], 0.1, 47);
        let mut scratch = BatchScratch::new(&model);
        let mut out = vec![0.0; 2];
        assert!(scratch.forward_into(&[0.0; 5], 1, &mut out).is_err());
        assert!(scratch.forward_into(&[0.0; 3], 1, &mut [0.0; 3]).is_err());
        let (mut mean, mut std) = ([0.0; 2], [0.0; 2]);
        assert!(scratch
            .mc_predict_into(&[0.0; 3], 1, 1, 0, 0, &mut mean, &mut std)
            .is_err(), "passes < 2 must be rejected");
    }
}
