//! Regression losses. Each loss returns both the scalar value (mean over the
//! batch) and the gradient w.r.t. the predictions, so the trainer makes one
//! call per step.

use le_linalg::Matrix;

use crate::{NnError, Result};

/// Supported loss functions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loss {
    /// Mean squared error, `mean((p - t)^2)`.
    Mse,
    /// Huber loss with the given transition point `delta`; quadratic near
    /// zero, linear in the tails — robust to the occasional diverged
    /// simulation sample ("training needs both successful and unsuccessful
    /// runs").
    Huber(f64),
}

impl Loss {
    /// Scalar loss (mean over all elements) and gradient w.r.t. predictions.
    pub fn evaluate(&self, pred: &Matrix, target: &Matrix) -> Result<(f64, Matrix)> {
        if pred.shape() != target.shape() {
            return Err(NnError::Shape(format!(
                "loss: pred {:?} vs target {:?}",
                pred.shape(),
                target.shape()
            )));
        }
        if pred.rows() * pred.cols() == 0 {
            return Err(NnError::Shape("loss on empty batch".into()));
        }
        let n = (pred.rows() * pred.cols()) as f64;
        let mut grad = Matrix::zeros(pred.rows(), pred.cols());
        let mut total = 0.0;
        let gs = grad.as_mut_slice();
        for ((g, &p), &t) in gs
            .iter_mut()
            .zip(pred.as_slice().iter())
            .zip(target.as_slice().iter())
        {
            let e = p - t;
            match *self {
                Loss::Mse => {
                    total += e * e;
                    *g = 2.0 * e / n;
                }
                Loss::Huber(delta) => {
                    if e.abs() <= delta {
                        total += 0.5 * e * e;
                        *g = e / n;
                    } else {
                        total += delta * (e.abs() - 0.5 * delta);
                        *g = delta * e.signum() / n;
                    }
                }
            }
        }
        Ok((total / n, grad))
    }

    /// Scalar loss only (no gradient allocation) — for validation loops.
    pub fn value(&self, pred: &Matrix, target: &Matrix) -> Result<f64> {
        if pred.shape() != target.shape() {
            return Err(NnError::Shape(format!(
                "loss: pred {:?} vs target {:?}",
                pred.shape(),
                target.shape()
            )));
        }
        if pred.rows() * pred.cols() == 0 {
            return Err(NnError::Shape("loss on empty batch".into()));
        }
        let n = (pred.rows() * pred.cols()) as f64;
        let mut total = 0.0;
        for (&p, &t) in pred.as_slice().iter().zip(target.as_slice().iter()) {
            let e = p - t;
            match *self {
                Loss::Mse => total += e * e,
                Loss::Huber(delta) => {
                    if e.abs() <= delta {
                        total += 0.5 * e * e;
                    } else {
                        total += delta * (e.abs() - 0.5 * delta);
                    }
                }
            }
        }
        Ok(total / n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_rows(&[&[1.0, 2.0]]);
        let target = Matrix::from_rows(&[&[0.0, 4.0]]);
        let (l, g) = Loss::Mse.evaluate(&pred, &target).unwrap();
        assert!((l - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        assert!((g.get(0, 0) - 1.0).abs() < 1e-12); // 2*(1-0)/2
        assert!((g.get(0, 1) + 2.0).abs() < 1e-12); // 2*(2-4)/2
    }

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let p = Matrix::from_rows(&[&[3.0, -1.0], &[0.5, 2.0]]);
        let (l, g) = Loss::Mse.evaluate(&p, &p).unwrap();
        assert_eq!(l, 0.0);
        assert!(g.max_abs() < 1e-15);
    }

    #[test]
    fn huber_quadratic_inside_linear_outside() {
        let delta = 1.0;
        let loss = Loss::Huber(delta);
        // Inside: e = 0.5 -> 0.5*0.25 = 0.125
        let (l_in, g_in) = loss
            .evaluate(
                &Matrix::from_rows(&[&[0.5]]),
                &Matrix::from_rows(&[&[0.0]]),
            )
            .unwrap();
        assert!((l_in - 0.125).abs() < 1e-12);
        assert!((g_in.get(0, 0) - 0.5).abs() < 1e-12);
        // Outside: e = 3 -> 1*(3-0.5) = 2.5, grad = sign(e)*delta
        let (l_out, g_out) = loss
            .evaluate(
                &Matrix::from_rows(&[&[3.0]]),
                &Matrix::from_rows(&[&[0.0]]),
            )
            .unwrap();
        assert!((l_out - 2.5).abs() < 1e-12);
        assert!((g_out.get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn huber_gradient_bounded() {
        let loss = Loss::Huber(0.5);
        let pred = Matrix::from_rows(&[&[100.0, -100.0]]);
        let target = Matrix::from_rows(&[&[0.0, 0.0]]);
        let (_, g) = loss.evaluate(&pred, &target).unwrap();
        // Per-element grad magnitude is delta / n.
        assert!(g.max_abs() <= 0.5 / 2.0 + 1e-12);
    }

    #[test]
    fn value_matches_evaluate() {
        let pred = Matrix::from_rows(&[&[1.0, -2.0], &[0.3, 4.0]]);
        let target = Matrix::from_rows(&[&[0.9, -1.0], &[0.0, 5.0]]);
        for loss in [Loss::Mse, Loss::Huber(0.7)] {
            let (l, _) = loss.evaluate(&pred, &target).unwrap();
            assert!((l - loss.value(&pred, &target).unwrap()).abs() < 1e-15);
        }
    }

    #[test]
    fn shape_mismatch_errors() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(Loss::Mse.evaluate(&a, &b).is_err());
        assert!(Loss::Mse.value(&a, &b).is_err());
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let target = Matrix::from_rows(&[&[0.3, -1.2, 2.0]]);
        let pred = Matrix::from_rows(&[&[0.5, 0.5, 0.5]]);
        let (_, g) = Loss::Mse.evaluate(&pred, &target).unwrap();
        let eps = 1e-7;
        for c in 0..3 {
            let mut up = pred.clone();
            up.set(0, c, pred.get(0, c) + eps);
            let mut down = pred.clone();
            down.set(0, c, pred.get(0, c) - eps);
            let numeric = (Loss::Mse.value(&up, &target).unwrap()
                - Loss::Mse.value(&down, &target).unwrap())
                / (2.0 * eps);
            assert!((numeric - g.get(0, c)).abs() < 1e-6);
        }
    }
}
