//! The multi-layer perceptron used for every surrogate in the workspace.
//!
//! An [`Mlp`] is a stack of dense layers with a shared hidden activation, an
//! output activation (identity for regression), and optional inverted
//! dropout after each hidden layer. Dropout can be kept active at inference
//! (`predict_mc`) to implement the MC-dropout UQ of §III-B.

use le_linalg::{Matrix, Rng};

use crate::layer::{Activation, Dense, Dropout};
use crate::{NnError, Result};

/// Architecture and regularization for an [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpConfig {
    /// Layer widths, `[input, hidden..., output]`; must have ≥ 2 entries.
    pub layers: Vec<usize>,
    /// Activation for the hidden layers.
    pub hidden_activation: Activation,
    /// Activation for the output layer (identity for regression).
    pub output_activation: Activation,
    /// Dropout probability applied after each hidden layer; 0 disables.
    pub dropout: f64,
}

impl MlpConfig {
    /// Regression-net config: tanh hidden layers, identity output — the
    /// architecture family used by the companion papers (refs [9], [26]).
    pub fn regression(layers: &[usize]) -> Self {
        Self {
            layers: layers.to_vec(),
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Identity,
            dropout: 0.0,
        }
    }

    /// Same but with dropout for MC-dropout UQ.
    pub fn regression_with_dropout(layers: &[usize], dropout: f64) -> Self {
        Self {
            dropout,
            ..Self::regression(layers)
        }
    }

    fn validate(&self) -> Result<()> {
        if self.layers.len() < 2 {
            return Err(NnError::InvalidConfig(
                "need at least input and output layer widths".into(),
            ));
        }
        if self.layers.contains(&0) {
            return Err(NnError::InvalidConfig("zero-width layer".into()));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(NnError::InvalidConfig(format!(
                "dropout must be in [0,1), got {}",
                self.dropout
            )));
        }
        Ok(())
    }
}

/// A feed-forward network: dense layers interleaved with dropout.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub(crate) dense: Vec<Dense>,
    pub(crate) dropout: Vec<Dropout>,
    config: MlpConfig,
}

impl Mlp {
    /// Build a network with deterministic initialization from `rng`.
    pub fn new(config: MlpConfig, rng: &mut Rng) -> Result<Self> {
        config.validate()?;
        let n_layers = config.layers.len() - 1;
        let mut dense = Vec::with_capacity(n_layers);
        let mut dropout = Vec::with_capacity(n_layers.saturating_sub(1));
        for i in 0..n_layers {
            let act = if i + 1 == n_layers {
                config.output_activation
            } else {
                config.hidden_activation
            };
            dense.push(Dense::new(config.layers[i], config.layers[i + 1], act, rng));
            if i + 1 < n_layers {
                dropout.push(Dropout::new(config.dropout)?);
            }
        }
        Ok(Self {
            dense,
            dropout,
            config,
        })
    }

    /// The architecture this network was built with.
    pub fn config(&self) -> &MlpConfig {
        &self.config
    }

    /// Input feature count.
    pub fn in_dim(&self) -> usize {
        self.config.layers[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        *self.config.layers.last().expect("validated non-empty") // lint:allow(no-panic): config validated at construction
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.dense.iter().map(|d| d.param_count()).sum()
    }

    /// Number of optimizer parameter blocks (weights + biases per layer).
    pub fn n_param_blocks(&self) -> usize {
        self.dense.len() * 2
    }

    /// Training forward pass: dropout active, state cached for `backward`.
    pub fn forward_train(&mut self, x: &Matrix, rng: &mut Rng) -> Result<Matrix> {
        let mut h = x.clone();
        let n = self.dense.len();
        for i in 0..n {
            h = self.dense[i].forward(&h)?;
            if i + 1 < n {
                h = self.dropout[i].forward(&h, rng);
            }
        }
        Ok(h)
    }

    /// Backward pass through the whole stack; fills each layer's gradients
    /// and returns the gradient w.r.t. the input batch.
    pub fn backward(&mut self, grad_out: &Matrix) -> Result<Matrix> {
        let mut g = grad_out.clone();
        let n = self.dense.len();
        for i in (0..n).rev() {
            if i + 1 < n {
                g = self.dropout[i].backward(&g);
            }
            g = self.dense[i].backward(&g)?;
        }
        Ok(g)
    }

    /// Deterministic inference (dropout off — identity under inverted
    /// dropout).
    pub fn predict(&self, x: &Matrix) -> Result<Matrix> {
        let mut h = self.dense[0].infer(x)?;
        for d in &self.dense[1..] {
            h = d.infer(&h)?;
        }
        Ok(h)
    }

    /// Single-sample convenience wrapper around [`Mlp::predict`].
    pub fn predict_one(&self, x: &[f64]) -> Result<Vec<f64>> {
        let xm = Matrix::from_vec(1, x.len(), x.to_vec())
            .map_err(|e| NnError::Shape(e.to_string()))?;
        Ok(self.predict(&xm)?.as_slice().to_vec())
    }

    /// Stochastic inference with dropout *kept on* — one MC-dropout sample.
    /// The UQ crate calls this repeatedly to form a predictive distribution.
    pub fn predict_mc(&mut self, x: &Matrix, rng: &mut Rng) -> Result<Matrix> {
        let mut h = x.clone();
        let n = self.dense.len();
        for i in 0..n {
            h = self.dense[i].infer(&h)?;
            if i + 1 < n {
                h = self.dropout[i].forward(&h, rng);
            }
        }
        Ok(h)
    }

    /// Visit every parameter block (weights then bias, per layer, in order)
    /// together with its gradient. Block indices are stable across calls,
    /// matching `OptimizerState` registration.
    pub fn for_each_param_block(
        &mut self,
        mut f: impl FnMut(usize, &mut [f64], &[f64]),
    ) {
        for (i, layer) in self.dense.iter_mut().enumerate() {
            let grad_w = layer.grad_w.as_slice().to_vec();
            f(2 * i, layer.w.as_mut_slice(), &grad_w);
            let grad_b = layer.grad_b.clone();
            f(2 * i + 1, &mut layer.b, &grad_b);
        }
    }

    /// L2 norm of the most recent gradient (diagnostic / clipping).
    pub fn grad_norm(&self) -> f64 {
        let mut ss = 0.0;
        for layer in &self.dense {
            ss += layer.grad_w.as_slice().iter().map(|g| g * g).sum::<f64>();
            ss += layer.grad_b.iter().map(|g| g * g).sum::<f64>();
        }
        ss.sqrt()
    }

    /// Immutable view of the dense layers (serialization, inspection).
    pub fn layers(&self) -> &[Dense] {
        &self.dense
    }

    /// Mutable view of the dense layers (deserialization fills weights).
    pub(crate) fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        let mut rng = Rng::new(1);
        assert!(Mlp::new(MlpConfig::regression(&[5]), &mut rng).is_err());
        assert!(Mlp::new(MlpConfig::regression(&[5, 0, 3]), &mut rng).is_err());
        assert!(Mlp::new(
            MlpConfig::regression_with_dropout(&[5, 4, 3], 1.0),
            &mut rng
        )
        .is_err());
        assert!(Mlp::new(MlpConfig::regression(&[5, 4, 3]), &mut rng).is_ok());
    }

    #[test]
    fn paper_architectures_construct() {
        let mut rng = Rng::new(2);
        // Ref [26]: 5 inputs -> 3 density outputs.
        let surrogate = Mlp::new(MlpConfig::regression(&[5, 64, 64, 3]), &mut rng).unwrap();
        assert_eq!(surrogate.in_dim(), 5);
        assert_eq!(surrogate.out_dim(), 3);
        // Ref [9]: 6 -> 30 -> 48 -> 3.
        let autotune = Mlp::new(MlpConfig::regression(&[6, 30, 48, 3]), &mut rng).unwrap();
        assert_eq!(
            autotune.param_count(),
            6 * 30 + 30 + 30 * 48 + 48 + 48 * 3 + 3
        );
        assert_eq!(autotune.n_param_blocks(), 6);
    }

    #[test]
    fn predict_shapes() {
        let mut rng = Rng::new(3);
        let net = Mlp::new(MlpConfig::regression(&[4, 8, 2]), &mut rng).unwrap();
        let x = Matrix::zeros(7, 4);
        let y = net.predict(&x).unwrap();
        assert_eq!(y.shape(), (7, 2));
        assert!(net.predict(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn predict_one_matches_batch() {
        let mut rng = Rng::new(4);
        let net = Mlp::new(MlpConfig::regression(&[3, 6, 2]), &mut rng).unwrap();
        let x = [0.2, -0.4, 1.0];
        let single = net.predict_one(&x).unwrap();
        let batch = net
            .predict(&Matrix::from_vec(1, 3, x.to_vec()).unwrap())
            .unwrap();
        assert_eq!(single, batch.as_slice().to_vec());
    }

    #[test]
    fn forward_train_without_dropout_matches_predict() {
        let mut rng = Rng::new(5);
        let mut net = Mlp::new(MlpConfig::regression(&[3, 5, 5, 2]), &mut rng).unwrap();
        let x = Matrix::from_vec(4, 3, (0..12).map(|i| i as f64 * 0.1).collect()).unwrap();
        let mut drop_rng = Rng::new(99);
        let train_out = net.forward_train(&x, &mut drop_rng).unwrap();
        let infer_out = net.predict(&x).unwrap();
        for (a, b) in train_out.as_slice().iter().zip(infer_out.as_slice()) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn mc_dropout_varies_deterministic_does_not() {
        let mut rng = Rng::new(6);
        let mut net =
            Mlp::new(MlpConfig::regression_with_dropout(&[3, 32, 32, 1], 0.4), &mut rng).unwrap();
        let x = Matrix::from_rows(&[&[0.5, -0.5, 1.0]]);
        let d1 = net.predict(&x).unwrap().get(0, 0);
        let d2 = net.predict(&x).unwrap().get(0, 0);
        assert_eq!(d1, d2, "deterministic inference must be stable");
        let mut mc_rng = Rng::new(7);
        let m1 = net.predict_mc(&x, &mut mc_rng).unwrap().get(0, 0);
        let m2 = net.predict_mc(&x, &mut mc_rng).unwrap().get(0, 0);
        assert_ne!(m1, m2, "MC-dropout samples should differ");
    }

    #[test]
    fn full_network_gradient_matches_finite_difference() {
        let mut rng = Rng::new(8);
        let mut net = Mlp::new(MlpConfig::regression(&[2, 4, 1]), &mut rng).unwrap();
        let x = Matrix::from_rows(&[&[0.3, -0.7], &[1.0, 0.2]]);
        // Loss = sum of outputs -> dL/dy = 1.
        let mut no_drop = Rng::new(0);
        let _ = net.forward_train(&x, &mut no_drop).unwrap();
        let ones = Matrix::filled(2, 1, 1.0);
        let _ = net.backward(&ones).unwrap();
        // Check the first layer's weight gradients numerically.
        let analytic = net.dense[0].grad_w.clone();
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..4 {
                let orig = net.dense[0].w.get(r, c);
                net.dense[0].w.set(r, c, orig + eps);
                let up = net.predict(&x).unwrap().sum();
                net.dense[0].w.set(r, c, orig - eps);
                let down = net.predict(&x).unwrap().sum();
                net.dense[0].w.set(r, c, orig);
                let numeric = (up - down) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-5,
                    "grad[{r},{c}] numeric {numeric} analytic {}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = Rng::new(9);
        let mut net = Mlp::new(MlpConfig::regression(&[3, 5, 2]), &mut rng).unwrap();
        let x = Matrix::from_rows(&[&[0.1, 0.2, -0.3]]);
        let mut no_drop = Rng::new(0);
        let _ = net.forward_train(&x, &mut no_drop).unwrap();
        let ones = Matrix::filled(1, 2, 1.0);
        let gx = net.backward(&ones).unwrap();
        let eps = 1e-6;
        for c in 0..3 {
            let mut up = x.clone();
            up.set(0, c, x.get(0, c) + eps);
            let mut down = x.clone();
            down.set(0, c, x.get(0, c) - eps);
            let numeric =
                (net.predict(&up).unwrap().sum() - net.predict(&down).unwrap().sum()) / (2.0 * eps);
            assert!((numeric - gx.get(0, c)).abs() < 1e-5);
        }
    }

    #[test]
    fn seeded_construction_is_deterministic() {
        let mut r1 = Rng::new(42);
        let mut r2 = Rng::new(42);
        let a = Mlp::new(MlpConfig::regression(&[4, 8, 2]), &mut r1).unwrap();
        let b = Mlp::new(MlpConfig::regression(&[4, 8, 2]), &mut r2).unwrap();
        let x = Matrix::filled(1, 4, 0.5);
        assert_eq!(
            a.predict(&x).unwrap().as_slice(),
            b.predict(&x).unwrap().as_slice()
        );
    }
}
