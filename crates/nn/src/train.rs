//! Mini-batch training loop with shuffling, validation split, early
//! stopping, and gradient clipping.

use le_linalg::{Matrix, Rng};

use crate::loss::Loss;
use crate::model::Mlp;
use crate::optimizer::{Optimizer, OptimizerState};
use crate::{NnError, Result};

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimizer rule.
    pub optimizer: Optimizer,
    /// Loss function.
    pub loss: Loss,
    /// Fraction of the data held out for validation (0 disables).
    pub validation_fraction: f64,
    /// Stop if validation loss has not improved for this many epochs
    /// (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Clip the global gradient norm to this value (`None` disables).
    pub grad_clip: Option<f64>,
    /// Seed for shuffling, dropout, and the validation split.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            batch_size: 32,
            optimizer: Optimizer::adam(1e-3),
            loss: Loss::Mse,
            validation_fraction: 0.15,
            patience: Some(25),
            grad_clip: Some(10.0),
            seed: 0,
        }
    }
}

/// Per-epoch history and final summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub train_loss: Vec<f64>,
    /// Validation loss per epoch (empty if no validation split).
    pub val_loss: Vec<f64>,
    /// Epoch index of the best validation loss (or last epoch).
    pub best_epoch: usize,
    /// Best validation loss (or final training loss without validation).
    pub best_loss: f64,
    /// Number of epochs actually run.
    pub epochs_run: usize,
    /// True if early stopping triggered.
    pub early_stopped: bool,
}

/// Stateful trainer binding a model to a config.
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// New trainer with the given config.
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// Train `model` on `(x, y)` in place and return the history.
    ///
    /// Inputs are in *scaled* space — callers use [`crate::Scaler`] first.
    /// The model with the best validation loss is the one left in `model`
    /// (weights are restored at the end if early stopping kept a snapshot).
    pub fn fit(&self, model: &mut Mlp, x: &Matrix, y: &Matrix) -> Result<TrainReport> {
        if x.rows() != y.rows() {
            return Err(NnError::Shape(format!(
                "x has {} rows but y has {}",
                x.rows(),
                y.rows()
            )));
        }
        if x.rows() == 0 {
            return Err(NnError::Shape("cannot train on empty dataset".into()));
        }
        if x.cols() != model.in_dim() || y.cols() != model.out_dim() {
            return Err(NnError::Shape(format!(
                "model is {}→{} but data is {}→{}",
                model.in_dim(),
                model.out_dim(),
                x.cols(),
                y.cols()
            )));
        }
        let cfg = &self.config;
        if cfg.batch_size == 0 {
            return Err(NnError::InvalidConfig("batch_size must be > 0".into()));
        }
        if !(0.0..1.0).contains(&cfg.validation_fraction) {
            return Err(NnError::InvalidConfig(
                "validation_fraction must be in [0,1)".into(),
            ));
        }

        let mut rng = Rng::new(cfg.seed);
        let n = x.rows();
        let n_val = ((n as f64) * cfg.validation_fraction).round() as usize;
        let n_val = if n_val >= n { n - 1 } else { n_val };
        let mut indices: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut indices);
        let (val_idx, train_idx) = indices.split_at(n_val);
        let x_train = x.gather_rows(train_idx);
        let y_train = y.gather_rows(train_idx);
        let (x_val, y_val) = if n_val > 0 {
            (Some(x.gather_rows(val_idx)), Some(y.gather_rows(val_idx)))
        } else {
            (None, None)
        };

        let mut opt = OptimizerState::new(cfg.optimizer, model.n_param_blocks());
        let mut report = TrainReport {
            train_loss: Vec::with_capacity(cfg.epochs),
            val_loss: Vec::with_capacity(cfg.epochs),
            best_epoch: 0,
            best_loss: f64::INFINITY,
            epochs_run: 0,
            early_stopped: false,
        };
        let mut best_snapshot: Option<Mlp> = None;
        let mut since_best = 0usize;
        let n_train = x_train.rows();
        let mut order: Vec<usize> = (0..n_train).collect();

        for epoch in 0..cfg.epochs {
            rng.shuffle(&mut order);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let xb = x_train.gather_rows(chunk);
                let yb = y_train.gather_rows(chunk);
                let pred = model.forward_train(&xb, &mut rng)?;
                let (loss, grad) = cfg.loss.evaluate(&pred, &yb)?;
                model.backward(&grad)?;
                if let Some(clip) = cfg.grad_clip {
                    let norm = model.grad_norm();
                    if norm > clip {
                        let scale = clip / norm;
                        for layer in model.layers_mut() {
                            layer.grad_w.scale_mut(scale);
                            for g in &mut layer.grad_b {
                                *g *= scale;
                            }
                        }
                    }
                }
                opt.begin_step();
                model.for_each_param_block(|block, params, grads| {
                    opt.update_slice(block, params, grads);
                });
                epoch_loss += loss;
                batches += 1;
            }
            epoch_loss /= batches.max(1) as f64;
            report.train_loss.push(epoch_loss);
            report.epochs_run = epoch + 1;

            // Validation / early stopping.
            let monitored = if let (Some(xv), Some(yv)) = (&x_val, &y_val) {
                let pred = model.predict(xv)?;
                let vl = cfg.loss.value(&pred, yv)?;
                report.val_loss.push(vl);
                vl
            } else {
                epoch_loss
            };
            if monitored < report.best_loss {
                report.best_loss = monitored;
                report.best_epoch = epoch;
                since_best = 0;
                if cfg.patience.is_some() {
                    best_snapshot = Some(model.clone());
                }
            } else {
                since_best += 1;
                if let Some(patience) = cfg.patience {
                    if since_best >= patience {
                        report.early_stopped = true;
                        break;
                    }
                }
            }
        }
        if let Some(best) = best_snapshot {
            *model = best;
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MlpConfig;
    use le_linalg::stats;

    /// Build a toy regression dataset y = f(x) + noise.
    fn make_dataset(
        n: usize,
        f: impl Fn(f64, f64) -> f64,
        noise: f64,
        seed: u64,
    ) -> (Matrix, Matrix) {
        let mut rng = Rng::new(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            let a = rng.uniform_in(-1.0, 1.0);
            let b = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, a);
            x.set(i, 1, b);
            y.set(i, 0, f(a, b) + noise * rng.gaussian());
        }
        (x, y)
    }

    #[test]
    fn learns_linear_function() {
        let (x, y) = make_dataset(512, |a, b| 2.0 * a - 3.0 * b + 0.5, 0.0, 1);
        let mut rng = Rng::new(2);
        let mut model = Mlp::new(MlpConfig::regression(&[2, 16, 1]), &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 500,
            optimizer: Optimizer::adam(5e-3),
            patience: Some(80),
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(
            report.best_loss < 2e-3,
            "linear fn should be learnable, got {}",
            report.best_loss
        );
    }

    #[test]
    fn learns_nonlinear_function() {
        let (x, y) = make_dataset(1024, |a, b| (3.0 * a).sin() * b, 0.01, 3);
        let mut rng = Rng::new(4);
        let mut model = Mlp::new(MlpConfig::regression(&[2, 32, 32, 1]), &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 400,
            batch_size: 64,
            optimizer: Optimizer::adam(3e-3),
            patience: Some(60),
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(
            report.best_loss < 5e-3,
            "sin(3a)*b should be learnable, got {}",
            report.best_loss
        );
        // Out-of-sample check.
        let (xt, yt) = make_dataset(256, |a, b| (3.0 * a).sin() * b, 0.0, 5);
        let pred = model.predict(&xt).unwrap();
        let rmse = stats::rmse(pred.as_slice(), yt.as_slice()).unwrap();
        assert!(rmse < 0.12, "test rmse {rmse}");
    }

    #[test]
    fn training_loss_decreases() {
        let (x, y) = make_dataset(256, |a, b| a * b, 0.0, 6);
        let mut rng = Rng::new(7);
        let mut model = Mlp::new(MlpConfig::regression(&[2, 16, 1]), &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            patience: None,
            validation_fraction: 0.0,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &x, &y).unwrap();
        assert_eq!(report.epochs_run, 50);
        assert!(report.val_loss.is_empty());
        let first = report.train_loss[0];
        let last = *report.train_loss.last().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last} should halve");
    }

    #[test]
    fn early_stopping_triggers_and_restores_best() {
        // Tiny noisy dataset, oversized net -> overfits, val loss rises.
        let (x, y) = make_dataset(60, |a, _| a, 0.3, 8);
        let mut rng = Rng::new(9);
        let mut model = Mlp::new(MlpConfig::regression(&[2, 64, 64, 1]), &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 2000,
            batch_size: 8,
            optimizer: Optimizer::adam(1e-2),
            validation_fraction: 0.3,
            patience: Some(10),
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(report.early_stopped, "should early-stop on noisy tiny data");
        assert!(report.epochs_run < 2000);
        assert_eq!(report.best_epoch + 10 + 1, report.epochs_run);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = make_dataset(128, |a, b| a + b, 0.05, 10);
        let run = || {
            let mut rng = Rng::new(11);
            let mut model = Mlp::new(MlpConfig::regression(&[2, 8, 1]), &mut rng).unwrap();
            let trainer = Trainer::new(TrainConfig {
                epochs: 20,
                seed: 123,
                ..Default::default()
            });
            trainer.fit(&mut model, &x, &y).unwrap();
            model
                .predict(&Matrix::from_rows(&[&[0.3, -0.3]]))
                .unwrap()
                .get(0, 0)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn shape_validation() {
        let mut rng = Rng::new(12);
        let mut model = Mlp::new(MlpConfig::regression(&[2, 4, 1]), &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig::default());
        // Mismatched rows.
        assert!(trainer
            .fit(&mut model, &Matrix::zeros(10, 2), &Matrix::zeros(9, 1))
            .is_err());
        // Wrong feature count.
        assert!(trainer
            .fit(&mut model, &Matrix::zeros(10, 3), &Matrix::zeros(10, 1))
            .is_err());
        // Empty.
        assert!(trainer
            .fit(&mut model, &Matrix::zeros(0, 2), &Matrix::zeros(0, 1))
            .is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = Rng::new(13);
        let mut model = Mlp::new(MlpConfig::regression(&[2, 4, 1]), &mut rng).unwrap();
        let bad_batch = Trainer::new(TrainConfig {
            batch_size: 0,
            ..Default::default()
        });
        assert!(bad_batch
            .fit(&mut model, &Matrix::zeros(4, 2), &Matrix::zeros(4, 1))
            .is_err());
        let bad_val = Trainer::new(TrainConfig {
            validation_fraction: 1.5,
            ..Default::default()
        });
        assert!(bad_val
            .fit(&mut model, &Matrix::zeros(4, 2), &Matrix::zeros(4, 1))
            .is_err());
    }

    #[test]
    fn dropout_training_still_converges() {
        let (x, y) = make_dataset(512, |a, b| a - b, 0.02, 14);
        let mut rng = Rng::new(15);
        let mut model =
            Mlp::new(MlpConfig::regression_with_dropout(&[2, 32, 1], 0.1), &mut rng).unwrap();
        let trainer = Trainer::new(TrainConfig {
            epochs: 300,
            optimizer: Optimizer::adam(3e-3),
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &x, &y).unwrap();
        assert!(report.best_loss < 0.02, "dropout net loss {}", report.best_loss);
    }
}
