#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed dimensions (k in 0..3, stencils) are the
// clearer idiom in numeric kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! `le-nn` — a from-scratch feed-forward neural-network library.
//!
//! The paper's ML loads are small multi-layer perceptrons — e.g. the
//! nanoconfinement surrogate (5 inputs → 3 density outputs, ref \[26\]) and
//! the MLautotuning net (6 inputs → hidden 30 → hidden 48 → 3 outputs,
//! ref \[9\]). This crate implements exactly that function class with:
//!
//! * dense layers with He/Xavier initialization ([`layer`]),
//! * tanh/ReLU/sigmoid/identity activations,
//! * inverted dropout usable at inference time for MC-dropout UQ (§III-B),
//! * MSE and Huber losses ([`loss`]),
//! * SGD, momentum, and Adam optimizers ([`optimizer`]),
//! * a mini-batch trainer with shuffling, validation split and early
//!   stopping ([`train`]),
//! * feature/target standardization ([`scaler`]),
//! * a versioned, dependency-free text checkpoint format ([`serialize`]).
//!
//! Determinism: every stochastic element (init, shuffling, dropout masks)
//! is driven by an explicit [`le_linalg::Rng`].

pub mod batch;
pub mod layer;
pub mod loss;
pub mod math;
pub mod model;
pub mod optimizer;
pub mod scaler;
pub mod serialize;
pub mod train;

pub use batch::BatchScratch;
pub use layer::Activation;
pub use loss::Loss;
pub use model::{Mlp, MlpConfig};
pub use optimizer::Optimizer;
pub use scaler::Scaler;
pub use train::{TrainConfig, TrainReport, Trainer};

/// Errors produced by the neural-network crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Input/target shapes do not match the network or each other.
    Shape(String),
    /// Invalid hyperparameter (e.g. dropout rate outside [0, 1)).
    InvalidConfig(String),
    /// Checkpoint parsing failed.
    Parse(String),
    /// Underlying I/O failure while reading/writing a checkpoint.
    Io(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Shape(s) => write!(f, "shape error: {s}"),
            NnError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            NnError::Parse(s) => write!(f, "checkpoint parse error: {s}"),
            NnError::Io(s) => write!(f, "io error: {s}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;
