//! First-order optimizers: plain SGD, SGD with momentum, and Adam.
//!
//! Optimizers keep their own per-parameter state, keyed by the order in
//! which parameter blocks are registered (the model registers its layers in
//! a fixed order, so state stays aligned across steps).

use le_linalg::Matrix;

/// Optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent with the given learning rate.
    Sgd {
        /// Learning rate.
        lr: f64,
    },
    /// Heavy-ball momentum.
    Momentum {
        /// Learning rate.
        lr: f64,
        /// Momentum coefficient (typically 0.9).
        beta: f64,
    },
    /// Adam (Kingma & Ba) with bias correction.
    Adam {
        /// Learning rate (typically 1e-3).
        lr: f64,
        /// First-moment decay (typically 0.9).
        beta1: f64,
        /// Second-moment decay (typically 0.999).
        beta2: f64,
        /// Numerical floor (typically 1e-8).
        eps: f64,
    },
}

impl Optimizer {
    /// Adam with standard hyperparameters.
    pub fn adam(lr: f64) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Momentum with beta = 0.9.
    pub fn momentum(lr: f64) -> Self {
        Optimizer::Momentum { lr, beta: 0.9 }
    }
}

/// Per-parameter-block optimizer state.
#[derive(Debug, Clone, Default)]
struct BlockState {
    /// Momentum / first moment.
    m: Vec<f64>,
    /// Second moment (Adam only).
    v: Vec<f64>,
}

/// Stateful executor for an [`Optimizer`] over a fixed sequence of parameter
/// blocks.
#[derive(Debug, Clone)]
pub struct OptimizerState {
    config: Optimizer,
    blocks: Vec<BlockState>,
    /// Global step count (for Adam bias correction).
    t: u64,
}

impl OptimizerState {
    /// Create state for `n_blocks` parameter blocks.
    pub fn new(config: Optimizer, n_blocks: usize) -> Self {
        Self {
            config,
            blocks: vec![BlockState::default(); n_blocks],
            t: 0,
        }
    }

    /// Begin a new optimization step (call once per mini-batch, before the
    /// per-block updates).
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Apply the update rule to one parameter block given its gradient.
    /// `block` indexes the registration order; `params`/`grads` must have
    /// equal, stable lengths across calls.
    pub fn update_slice(&mut self, block: usize, params: &mut [f64], grads: &[f64]) {
        debug_assert_eq!(params.len(), grads.len());
        let state = &mut self.blocks[block];
        match self.config {
            Optimizer::Sgd { lr } => {
                for (p, &g) in params.iter_mut().zip(grads.iter()) {
                    *p -= lr * g;
                }
            }
            Optimizer::Momentum { lr, beta } => {
                if state.m.len() != params.len() {
                    state.m = vec![0.0; params.len()];
                }
                for ((p, &g), m) in params.iter_mut().zip(grads.iter()).zip(state.m.iter_mut()) {
                    *m = beta * *m + g;
                    *p -= lr * *m;
                }
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                if state.m.len() != params.len() {
                    state.m = vec![0.0; params.len()];
                    state.v = vec![0.0; params.len()];
                }
                let t = self.t.max(1) as i32;
                let bc1 = 1.0 - beta1.powi(t);
                let bc2 = 1.0 - beta2.powi(t);
                for (((p, &g), m), v) in params
                    .iter_mut()
                    .zip(grads.iter())
                    .zip(state.m.iter_mut())
                    .zip(state.v.iter_mut())
                {
                    *m = beta1 * *m + (1.0 - beta1) * g;
                    *v = beta2 * *v + (1.0 - beta2) * g * g;
                    let m_hat = *m / bc1;
                    let v_hat = *v / bc2;
                    *p -= lr * m_hat / (v_hat.sqrt() + eps);
                }
            }
        }
    }

    /// Convenience: update a matrix block.
    pub fn update_matrix(&mut self, block: usize, params: &mut Matrix, grads: &Matrix) {
        debug_assert_eq!(params.shape(), grads.shape());
        // Split borrows: temporarily move data out is unnecessary; operate on
        // raw slices directly.
        let g = grads.as_slice().to_vec();
        self.update_slice(block, params.as_mut_slice(), &g);
    }

    /// The configured rule.
    pub fn config(&self) -> Optimizer {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)^2 with each optimizer; all should converge.
    fn run_quadratic(config: Optimizer, steps: usize) -> f64 {
        let mut state = OptimizerState::new(config, 1);
        let mut x = [0.0f64];
        for _ in 0..steps {
            state.begin_step();
            let g = [2.0 * (x[0] - 3.0)];
            state.update_slice(0, &mut x, &g);
        }
        x[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = run_quadratic(Optimizer::Sgd { lr: 0.1 }, 200);
        assert!((x - 3.0).abs() < 1e-6, "sgd got {x}");
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        let x = run_quadratic(Optimizer::momentum(0.02), 400);
        assert!((x - 3.0).abs() < 1e-4, "momentum got {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = run_quadratic(Optimizer::adam(0.1), 600);
        assert!((x - 3.0).abs() < 1e-3, "adam got {x}");
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first Adam step has magnitude ~lr.
        let mut state = OptimizerState::new(Optimizer::adam(0.01), 1);
        let mut x = [0.0f64];
        state.begin_step();
        state.update_slice(0, &mut x, &[5.0]);
        assert!((x[0].abs() - 0.01).abs() < 1e-6, "step {}", x[0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut state = OptimizerState::new(
            Optimizer::Momentum { lr: 1.0, beta: 0.5 },
            1,
        );
        let mut x = [0.0f64];
        state.begin_step();
        state.update_slice(0, &mut x, &[1.0]);
        assert!((x[0] + 1.0).abs() < 1e-12); // v=1 -> x -= 1
        state.begin_step();
        state.update_slice(0, &mut x, &[1.0]);
        assert!((x[0] + 2.5).abs() < 1e-12); // v=1.5 -> x -= 1.5
    }

    #[test]
    fn blocks_have_independent_state() {
        let mut state = OptimizerState::new(Optimizer::momentum(1.0), 2);
        let mut a = [0.0f64];
        let mut b = [0.0f64];
        state.begin_step();
        state.update_slice(0, &mut a, &[1.0]);
        state.update_slice(1, &mut b, &[0.0]);
        state.begin_step();
        state.update_slice(0, &mut a, &[0.0]);
        state.update_slice(1, &mut b, &[1.0]);
        // Block 0 velocity decayed from 1; block 1 started fresh.
        assert!(a[0] < -1.0, "momentum carried for block 0");
        assert!((b[0] + 1.0).abs() < 1e-12, "block 1 unaffected by block 0");
    }

    #[test]
    fn matrix_update_matches_slice_update() {
        let mut state_a = OptimizerState::new(Optimizer::adam(0.05), 1);
        let mut state_b = OptimizerState::new(Optimizer::adam(0.05), 1);
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let g = Matrix::from_rows(&[&[0.1, -0.2], &[0.3, 0.0]]);
        let mut flat = m.as_slice().to_vec();
        state_a.begin_step();
        state_a.update_matrix(0, &mut m, &g);
        state_b.begin_step();
        state_b.update_slice(0, &mut flat, g.as_slice());
        assert_eq!(m.as_slice(), &flat[..]);
    }
}
