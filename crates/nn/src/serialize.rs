//! Versioned, dependency-free text checkpoint format for [`Mlp`] models and
//! scalers. Line-oriented:
//!
//! ```text
//! le-nn-checkpoint v1
//! layers 5 64 64 3
//! hidden_activation tanh
//! output_activation identity
//! dropout 0.2
//! layer 0 weights <in*out hex-encoded f64 bit patterns, space separated>
//! layer 0 bias <...>
//! ...
//! end
//! ```
//!
//! Weights are stored as hexadecimal `f64` bit patterns so round-trips are
//! exact (no decimal parsing loss).

use le_linalg::Matrix;

use crate::layer::Activation;
use crate::model::{Mlp, MlpConfig};
use crate::scaler::Scaler;
use crate::{NnError, Result};
use le_linalg::Rng;

const MAGIC: &str = "le-nn-checkpoint v1";

fn encode_f64s(vals: &[f64]) -> String {
    let mut s = String::with_capacity(vals.len() * 17);
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(&format!("{:016x}", v.to_bits()));
    }
    s
}

fn decode_f64s(s: &str) -> Result<Vec<f64>> {
    s.split_whitespace()
        .map(|tok| {
            u64::from_str_radix(tok, 16)
                .map(f64::from_bits)
                .map_err(|e| NnError::Parse(format!("bad f64 token `{tok}`: {e}")))
        })
        .collect()
}

/// Serialize a model to the text checkpoint format.
pub fn model_to_string(model: &Mlp) -> String {
    let cfg = model.config();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str("layers");
    for w in &cfg.layers {
        out.push_str(&format!(" {w}"));
    }
    out.push('\n');
    out.push_str(&format!(
        "hidden_activation {}\n",
        cfg.hidden_activation.name()
    ));
    out.push_str(&format!(
        "output_activation {}\n",
        cfg.output_activation.name()
    ));
    out.push_str(&format!("dropout {:016x}\n", cfg.dropout.to_bits()));
    for (i, layer) in model.layers().iter().enumerate() {
        out.push_str(&format!(
            "layer {i} weights {}\n",
            encode_f64s(layer.w.as_slice())
        ));
        out.push_str(&format!("layer {i} bias {}\n", encode_f64s(&layer.b)));
    }
    out.push_str("end\n");
    out
}

/// Parse a model from the text checkpoint format.
pub fn model_from_string(s: &str) -> Result<Mlp> {
    let mut lines = s.lines();
    let magic = lines.next().ok_or_else(|| NnError::Parse("empty checkpoint".into()))?;
    if magic.trim() != MAGIC {
        return Err(NnError::Parse(format!("bad magic line `{magic}`")));
    }
    let mut layers: Option<Vec<usize>> = None;
    let mut hidden_act = Activation::Tanh;
    let mut output_act = Activation::Identity;
    let mut dropout = 0.0f64;
    let mut weights: Vec<(usize, bool, Vec<f64>)> = Vec::new(); // (layer, is_weights, data)
    let mut saw_end = false;
    for line in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.splitn(2, ' ');
        let key = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("");
        match key {
            "layers" => {
                let widths: std::result::Result<Vec<usize>, _> =
                    rest.split_whitespace().map(str::parse::<usize>).collect();
                layers = Some(widths.map_err(|e| NnError::Parse(format!("bad layers: {e}")))?);
            }
            "hidden_activation" => hidden_act = Activation::from_name(rest.trim())?,
            "output_activation" => output_act = Activation::from_name(rest.trim())?,
            "dropout" => {
                let bits = u64::from_str_radix(rest.trim(), 16)
                    .map_err(|e| NnError::Parse(format!("bad dropout: {e}")))?;
                dropout = f64::from_bits(bits);
            }
            "layer" => {
                let mut toks = rest.splitn(3, ' ');
                let idx: usize = toks
                    .next()
                    .ok_or_else(|| NnError::Parse("layer line missing index".into()))?
                    .parse()
                    .map_err(|e| NnError::Parse(format!("bad layer index: {e}")))?;
                let kind = toks
                    .next()
                    .ok_or_else(|| NnError::Parse("layer line missing kind".into()))?;
                let data = decode_f64s(toks.next().unwrap_or(""))?;
                match kind {
                    "weights" => weights.push((idx, true, data)),
                    "bias" => weights.push((idx, false, data)),
                    other => {
                        return Err(NnError::Parse(format!("unknown layer field `{other}`")))
                    }
                }
            }
            "end" => {
                saw_end = true;
                break;
            }
            other => return Err(NnError::Parse(format!("unknown key `{other}`"))),
        }
    }
    if !saw_end {
        return Err(NnError::Parse("checkpoint truncated (no `end`)".into()));
    }
    let layers = layers.ok_or_else(|| NnError::Parse("missing `layers` line".into()))?;
    let config = MlpConfig {
        layers: layers.clone(),
        hidden_activation: hidden_act,
        output_activation: output_act,
        dropout,
    };
    // Build with throwaway init, then fill.
    let mut scratch_rng = Rng::new(0);
    let mut model = Mlp::new(config, &mut scratch_rng)?;
    let n_layers = layers.len() - 1;
    let mut filled = vec![(false, false); n_layers];
    for (idx, is_w, data) in weights {
        if idx >= n_layers {
            return Err(NnError::Parse(format!(
                "layer index {idx} out of range ({n_layers} layers)"
            )));
        }
        let layer = &mut model.layers_mut()[idx];
        if is_w {
            let expect = layer.w.rows() * layer.w.cols();
            if data.len() != expect {
                return Err(NnError::Parse(format!(
                    "layer {idx} weights: expected {expect} values, got {}",
                    data.len()
                )));
            }
            layer.w = Matrix::from_vec(layer.w.rows(), layer.w.cols(), data)
                .map_err(|e| NnError::Parse(e.to_string()))?;
            filled[idx].0 = true;
        } else {
            if data.len() != layer.b.len() {
                return Err(NnError::Parse(format!(
                    "layer {idx} bias: expected {} values, got {}",
                    layer.b.len(),
                    data.len()
                )));
            }
            layer.b = data;
            filled[idx].1 = true;
        }
    }
    if let Some(missing) = filled.iter().position(|&(w, b)| !w || !b) {
        return Err(NnError::Parse(format!(
            "layer {missing} missing weights or bias"
        )));
    }
    Ok(model)
}

/// Serialize a scaler (one line of means, one of stds).
pub fn scaler_to_string(scaler: &Scaler) -> String {
    format!(
        "le-nn-scaler v1\nmeans {}\nstds {}\nend\n",
        encode_f64s(scaler.means()),
        encode_f64s(scaler.stds())
    )
}

/// Parse a scaler.
pub fn scaler_from_string(s: &str) -> Result<Scaler> {
    let mut lines = s.lines();
    let magic = lines.next().ok_or_else(|| NnError::Parse("empty scaler".into()))?;
    if magic.trim() != "le-nn-scaler v1" {
        return Err(NnError::Parse(format!("bad scaler magic `{magic}`")));
    }
    let mut means = None;
    let mut stds = None;
    for line in lines {
        let line = line.trim();
        if line == "end" {
            break;
        }
        if let Some(rest) = line.strip_prefix("means ") {
            means = Some(decode_f64s(rest)?);
        } else if let Some(rest) = line.strip_prefix("stds ") {
            stds = Some(decode_f64s(rest)?);
        }
    }
    match (means, stds) {
        (Some(m), Some(s)) => Scaler::from_parts(m, s),
        _ => Err(NnError::Parse("scaler missing means or stds".into())),
    }
}

/// Write a model checkpoint to a file.
pub fn save_model(model: &Mlp, path: &std::path::Path) -> Result<()> {
    std::fs::write(path, model_to_string(model)).map_err(|e| NnError::Io(e.to_string()))
}

/// Load a model checkpoint from a file.
pub fn load_model(path: &std::path::Path) -> Result<Mlp> {
    let s = std::fs::read_to_string(path).map_err(|e| NnError::Io(e.to_string()))?;
    model_from_string(&s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_model(seed: u64) -> Mlp {
        let mut rng = Rng::new(seed);
        Mlp::new(
            MlpConfig::regression_with_dropout(&[5, 16, 8, 3], 0.25),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn model_roundtrip_is_exact() {
        let model = example_model(1);
        let text = model_to_string(&model);
        let restored = model_from_string(&text).unwrap();
        assert_eq!(restored.config().layers, model.config().layers);
        assert_eq!(restored.config().dropout, model.config().dropout);
        let x = Matrix::from_rows(&[&[0.1, -0.2, 0.3, 0.4, -0.5]]);
        // Exact bit-for-bit: predictions identical.
        assert_eq!(
            model.predict(&x).unwrap().as_slice(),
            restored.predict(&x).unwrap().as_slice()
        );
    }

    #[test]
    fn file_roundtrip() {
        let model = example_model(2);
        let dir = std::env::temp_dir().join("le_nn_serialize_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        save_model(&model, &path).unwrap();
        let restored = load_model(&path).unwrap();
        let x = Matrix::filled(1, 5, 0.7);
        assert_eq!(
            model.predict(&x).unwrap().as_slice(),
            restored.predict(&x).unwrap().as_slice()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            model_from_string("not a checkpoint\n"),
            Err(NnError::Parse(_))
        ));
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let model = example_model(3);
        let text = model_to_string(&model);
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(model_from_string(&truncated).is_err());
    }

    #[test]
    fn missing_layer_rejected() {
        let model = example_model(4);
        let text = model_to_string(&model);
        // Drop the layer-1 bias line.
        let filtered: String = text
            .lines()
            .filter(|l| !l.starts_with("layer 1 bias"))
            .collect::<Vec<_>>()
            .join("\n");
        assert!(model_from_string(&filtered).is_err());
    }

    #[test]
    fn wrong_sized_weights_rejected() {
        let model = example_model(5);
        let mut text = model_to_string(&model);
        // Corrupt: truncate the weight payload of layer 0 (remove last token).
        let lines: Vec<String> = text
            .lines()
            .map(|l| {
                if l.starts_with("layer 0 weights") {
                    let mut toks: Vec<&str> = l.split(' ').collect();
                    toks.pop();
                    toks.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect();
        text = lines.join("\n");
        assert!(model_from_string(&text).is_err());
    }

    #[test]
    fn scaler_roundtrip_exact() {
        let scaler = Scaler::from_parts(
            vec![1.0, -2.5, std::f64::consts::PI],
            vec![0.5, 3.0, 1e-7],
        )
        .unwrap();
        let restored = scaler_from_string(&scaler_to_string(&scaler)).unwrap();
        assert_eq!(restored, scaler);
    }

    #[test]
    fn special_float_values_roundtrip() {
        // Hex-bit encoding must preserve subnormals and extremes.
        let vals = [
            f64::MIN_POSITIVE,
            f64::MAX,
            -0.0,
            1e-320, // subnormal
        ];
        let decoded = decode_f64s(&encode_f64s(&vals)).unwrap();
        for (a, b) in vals.iter().zip(decoded.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn garbage_tokens_rejected() {
        assert!(decode_f64s("zzzz").is_err());
    }
}
