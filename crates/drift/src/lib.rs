#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `le-drift` — deterministic, seeded distribution-drift schedules for the
//! MLaroundHPC stack.
//!
//! A surrogate is only as good as the distribution it was trained on; the
//! paper's "effective performance" collapses silently when the parameter
//! stream drifts away from that distribution and the model keeps answering
//! confidently wrong. This crate supplies the reproducible *drift stimulus*
//! the staleness detector and rolling-retrain path in `le-core` are tested
//! and gated against — the distribution-shift sibling of `le-faults`:
//!
//! * [`DriftWave`] — a primitive shape over logical time: a [`DriftWave::Step`]
//!   shift, a linear [`DriftWave::Ramp`], or a periodic
//!   [`DriftWave::Oscillation`].
//! * [`AxisDrift`] — a wave bound to one input-feature axis.
//! * [`DriftSchedule`] — a seed plus a set of axis waves and an optional
//!   per-`(axis, t)` jitter. Every offset is a **pure function** of
//!   `(seed, axis, t)` via a splitmix64-style hash: no state, no wall clock,
//!   no ambient entropy, so the exact same logical times drift by the exact
//!   same amounts at any thread count, in any execution order.
//! * [`presets`] — ready-made schedules for the two paper substrates: the
//!   nanoconfinement MD parameter distribution (`[h, z_p, z_n, c, d]`) and
//!   the epidemic surveillance stream, plus range-respecting appliers
//!   ([`presets::shift_nano`], [`presets::shift_surveillance`]) that keep
//!   drifted parameters physically valid.
//!
//! Everything here passes the le-lint determinism and wallclock rules by
//! construction: the only inputs are the seed, the axis, and the logical
//! time index the caller already counts.

use learning_everywhere::{LeError, Result};

/// Domain-separation salt for the per-`(axis, t)` jitter stream, mixed with
/// the axis index so each axis gets an independent stream.
const SALT_JITTER: u64 = 0xD21F_7A11_5EED_0001;

/// splitmix64 finalizer: a well-mixed 64-bit hash of its input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A primitive drift shape: the additive offset it contributes to one
/// feature axis as a pure function of logical time `t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftWave {
    /// Zero before `at`, a constant `amplitude` from `at` onward — the
    /// abrupt regime change (new instrument, new variant, new substrate).
    Step {
        /// Logical time at which the shift lands.
        at: u64,
        /// Offset applied from `at` onward.
        amplitude: f64,
    },
    /// Zero before `start`, linear from 0 to `amplitude` over
    /// `[start, end)`, then a constant `amplitude` — slow secular drift.
    Ramp {
        /// Logical time the ramp begins.
        start: u64,
        /// Logical time the ramp saturates (must be `> start`).
        end: u64,
        /// Offset reached at `end` and held thereafter.
        amplitude: f64,
    },
    /// `amplitude * sin(2π t / period)` — seasonal / cyclic drift the
    /// detector must flag repeatedly, not once.
    Oscillation {
        /// Full cycle length in logical time steps (must be `>= 2`).
        period: u64,
        /// Peak offset.
        amplitude: f64,
    },
}

impl DriftWave {
    fn validate(&self) -> Result<()> {
        let amp = match self {
            DriftWave::Step { amplitude, .. } => *amplitude,
            DriftWave::Ramp {
                start,
                end,
                amplitude,
            } => {
                if end <= start {
                    return Err(LeError::InvalidConfig(format!(
                        "drift ramp must have end > start, got [{start}, {end})"
                    )));
                }
                *amplitude
            }
            DriftWave::Oscillation { period, amplitude } => {
                if *period < 2 {
                    return Err(LeError::InvalidConfig(format!(
                        "drift oscillation period must be >= 2, got {period}"
                    )));
                }
                *amplitude
            }
        };
        if !amp.is_finite() {
            return Err(LeError::InvalidConfig(format!(
                "drift amplitude must be finite, got {amp}"
            )));
        }
        Ok(())
    }

    /// The offset this wave contributes at logical time `t`. Pure.
    pub fn offset_at(&self, t: u64) -> f64 {
        match *self {
            DriftWave::Step { at, amplitude } => {
                if t >= at {
                    amplitude
                } else {
                    0.0
                }
            }
            DriftWave::Ramp {
                start,
                end,
                amplitude,
            } => {
                if t < start {
                    0.0
                } else if t >= end {
                    amplitude
                } else {
                    amplitude * (t - start) as f64 / (end - start) as f64
                }
            }
            DriftWave::Oscillation { period, amplitude } => {
                let phase = (t % period) as f64 / period as f64;
                amplitude * (2.0 * std::f64::consts::PI * phase).sin()
            }
        }
    }
}

/// A [`DriftWave`] bound to one input-feature axis. Several waves may share
/// an axis; their offsets add.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisDrift {
    /// Index of the feature axis the wave shifts.
    pub axis: usize,
    /// The shape of the shift over logical time.
    pub wave: DriftWave,
}

/// A seeded drift schedule: which feature axes shift, by how much, at which
/// logical times — decided statelessly so the drifted stream reproduces
/// bit-for-bit across runs, thread counts, and execution orders.
#[derive(Debug, Clone)]
pub struct DriftSchedule {
    seed: u64,
    axes: Vec<AxisDrift>,
    jitter: f64,
}

impl DriftSchedule {
    /// Build a schedule from a seed, a set of axis waves, and a jitter
    /// half-width (each `(axis, t)` additionally receives a deterministic
    /// uniform offset in `[-jitter, jitter]`; pass `0.0` for none).
    pub fn new(seed: u64, axes: Vec<AxisDrift>, jitter: f64) -> Result<Self> {
        if !(jitter.is_finite() && jitter >= 0.0) {
            return Err(LeError::InvalidConfig(format!(
                "drift jitter must be finite and >= 0, got {jitter}"
            )));
        }
        for a in &axes {
            a.wave.validate()?;
        }
        Ok(Self { seed, axes, jitter })
    }

    /// A schedule that shifts nothing (useful as a control arm).
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            axes: Vec::new(),
            jitter: 0.0,
        }
    }

    /// The schedule's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured axis waves.
    pub fn axes(&self) -> &[AxisDrift] {
        &self.axes
    }

    /// A uniform variate in `[0, 1)` for `(axis, t)` — the one source of
    /// randomness behind the jitter term.
    fn unit(&self, axis: usize, t: u64) -> f64 {
        let salt = SALT_JITTER ^ splitmix64(axis as u64);
        let h = splitmix64(self.seed ^ splitmix64(salt ^ splitmix64(t)));
        // 53 high bits -> [0, 1) exactly as le_linalg's Rng does.
        (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
    }

    /// The total additive offset for `axis` at logical time `t`: the sum of
    /// every wave bound to that axis, plus the jitter term. Pure — calling
    /// it twice (or from different threads, in any order) gives the same
    /// answer.
    pub fn offset(&self, axis: usize, t: u64) -> f64 {
        let mut total: f64 = self
            .axes
            .iter()
            .filter(|a| a.axis == axis)
            .map(|a| a.wave.offset_at(t))
            .sum();
        if self.jitter > 0.0 {
            total += self.jitter * (2.0 * self.unit(axis, t) - 1.0);
        }
        total
    }

    /// Shift a feature row in place as of logical time `t`. Axes configured
    /// beyond the row's length are ignored, so one schedule can serve
    /// projections of the same stream.
    pub fn shift_row(&self, row: &mut [f64], t: u64) {
        for axis in 0..row.len() {
            row[axis] += self.offset(axis, t);
        }
    }

    /// [`DriftSchedule::shift_row`] on a copy.
    pub fn shifted(&self, row: &[f64], t: u64) -> Vec<f64> {
        let mut out = row.to_vec();
        self.shift_row(&mut out, t);
        out
    }
}

/// Ready-made schedules for the two paper substrates, plus appliers that
/// keep the drifted parameters physically valid.
pub mod presets {
    use super::{AxisDrift, DriftSchedule, DriftWave};
    use le_mdsim::nanoconfinement::NanoParams;
    use le_netdyn::surveillance::Surveillance;

    /// Feature axes of [`NanoParams::to_features`]: `[h, z_p, z_n, c, d]`.
    const NANO_H: usize = 0;
    const NANO_C: usize = 3;
    const NANO_D: usize = 4;

    /// The drift-campaign schedule for the nanoconfinement MD substrate:
    /// the slab height ramps upward across `[warmup, warmup + span)`, the
    /// salt concentration picks up a seasonal oscillation, and the ion
    /// diameter takes an abrupt step at `warmup + span / 2` — all scaled so
    /// a pre-drift surrogate sees genuinely out-of-distribution parameters
    /// after the schedule saturates, while [`shift_nano`] keeps every point
    /// physically valid.
    pub fn nanoconfinement(seed: u64, warmup: u64, span: u64) -> DriftSchedule {
        let span = span.max(2);
        DriftSchedule::new(
            seed,
            vec![
                AxisDrift {
                    axis: NANO_H,
                    wave: DriftWave::Ramp {
                        start: warmup,
                        end: warmup + span,
                        amplitude: 1.6,
                    },
                },
                AxisDrift {
                    axis: NANO_C,
                    wave: DriftWave::Oscillation {
                        period: span,
                        amplitude: 0.25,
                    },
                },
                AxisDrift {
                    axis: NANO_D,
                    wave: DriftWave::Step {
                        at: warmup + span / 2,
                        amplitude: 0.12,
                    },
                },
            ],
            0.02,
        )
        .expect("preset amplitudes are finite") // lint:allow(no-panic): static config
    }

    /// Apply `schedule` to a nanoconfinement parameter point as of logical
    /// time `t`, clamping each drifted axis back into the physical study
    /// ranges (`H_RANGE`/`C_RANGE`/`D_RANGE`, which also preserve the
    /// `d < h/2` packing constraint). Valencies are discrete and never
    /// drift.
    pub fn shift_nano(schedule: &DriftSchedule, params: &NanoParams, t: u64) -> NanoParams {
        let clamp = |v: f64, (lo, hi): (f64, f64)| v.max(lo).min(hi);
        NanoParams {
            h: clamp(params.h + schedule.offset(NANO_H, t), NanoParams::H_RANGE),
            z_p: params.z_p,
            z_n: params.z_n,
            c: clamp(params.c + schedule.offset(NANO_C, t), NanoParams::C_RANGE),
            d: clamp(params.d + schedule.offset(NANO_D, t), NanoParams::D_RANGE),
        }
    }

    /// Surveillance-stream axes: reporting fraction, noise, delay (weeks).
    const SURV_REPORTING: usize = 0;
    const SURV_NOISE: usize = 1;
    const SURV_DELAY: usize = 2;

    /// The drift-campaign schedule for the epidemic surveillance stream:
    /// reporting completeness decays on a ramp (fatigue), observation noise
    /// steps up mid-campaign (instrument change), and the reporting delay
    /// oscillates with the season.
    pub fn surveillance(seed: u64, warmup: u64, span: u64) -> DriftSchedule {
        let span = span.max(2);
        DriftSchedule::new(
            seed,
            vec![
                AxisDrift {
                    axis: SURV_REPORTING,
                    wave: DriftWave::Ramp {
                        start: warmup,
                        end: warmup + span,
                        amplitude: -0.35,
                    },
                },
                AxisDrift {
                    axis: SURV_NOISE,
                    wave: DriftWave::Step {
                        at: warmup + span / 2,
                        amplitude: 0.15,
                    },
                },
                AxisDrift {
                    axis: SURV_DELAY,
                    wave: DriftWave::Oscillation {
                        period: span,
                        amplitude: 1.5,
                    },
                },
            ],
            0.01,
        )
        .expect("preset amplitudes are finite") // lint:allow(no-panic): static config
    }

    /// Apply `schedule` to a surveillance model as of logical week `t`,
    /// clamping the drifted parameters to their valid ranges (reporting
    /// fraction in `[0.05, 1.0]`, noise in `[0.0, 2.0]`, delay in
    /// `0..=8` weeks, rounded to whole weeks).
    pub fn shift_surveillance(
        schedule: &DriftSchedule,
        base: &Surveillance,
        t: u64,
    ) -> Surveillance {
        let rf = (base.reporting_fraction + schedule.offset(SURV_REPORTING, t)).clamp(0.05, 1.0);
        let noise = (base.noise + schedule.offset(SURV_NOISE, t)).clamp(0.0, 2.0);
        let delay = (base.delay_weeks as f64 + schedule.offset(SURV_DELAY, t))
            .round()
            .clamp(0.0, 8.0) as usize;
        Surveillance {
            reporting_fraction: rf,
            noise,
            delay_weeks: delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::presets::{nanoconfinement, shift_nano, shift_surveillance, surveillance};
    use super::*;
    use le_mdsim::nanoconfinement::NanoParams;
    use le_netdyn::surveillance::Surveillance;

    #[test]
    fn config_validation() {
        assert!(DriftSchedule::new(1, vec![], f64::NAN).is_err());
        assert!(DriftSchedule::new(1, vec![], -0.1).is_err());
        let bad_ramp = AxisDrift {
            axis: 0,
            wave: DriftWave::Ramp {
                start: 10,
                end: 10,
                amplitude: 1.0,
            },
        };
        assert!(DriftSchedule::new(1, vec![bad_ramp], 0.0).is_err());
        let bad_osc = AxisDrift {
            axis: 0,
            wave: DriftWave::Oscillation {
                period: 1,
                amplitude: 1.0,
            },
        };
        assert!(DriftSchedule::new(1, vec![bad_osc], 0.0).is_err());
        let bad_amp = AxisDrift {
            axis: 0,
            wave: DriftWave::Step {
                at: 0,
                amplitude: f64::INFINITY,
            },
        };
        assert!(DriftSchedule::new(1, vec![bad_amp], 0.0).is_err());
    }

    #[test]
    fn wave_shapes() {
        let step = DriftWave::Step {
            at: 10,
            amplitude: 2.0,
        };
        assert_eq!(step.offset_at(9), 0.0);
        assert_eq!(step.offset_at(10), 2.0);
        assert_eq!(step.offset_at(1000), 2.0);

        let ramp = DriftWave::Ramp {
            start: 10,
            end: 20,
            amplitude: 1.0,
        };
        assert_eq!(ramp.offset_at(0), 0.0);
        assert_eq!(ramp.offset_at(10), 0.0);
        assert!((ramp.offset_at(15) - 0.5).abs() < 1e-12);
        assert_eq!(ramp.offset_at(20), 1.0);
        assert_eq!(ramp.offset_at(99), 1.0);

        let osc = DriftWave::Oscillation {
            period: 8,
            amplitude: 3.0,
        };
        assert!(osc.offset_at(0).abs() < 1e-12);
        assert!((osc.offset_at(2) - 3.0).abs() < 1e-12); // quarter period
        assert!((osc.offset_at(6) + 3.0).abs() < 1e-12); // three quarters
        assert!((osc.offset_at(8) - osc.offset_at(0)).abs() < 1e-12); // periodic
    }

    #[test]
    fn offsets_replay_identically() {
        let mk = || {
            DriftSchedule::new(
                77,
                vec![
                    AxisDrift {
                        axis: 0,
                        wave: DriftWave::Ramp {
                            start: 5,
                            end: 50,
                            amplitude: 2.0,
                        },
                    },
                    AxisDrift {
                        axis: 2,
                        wave: DriftWave::Oscillation {
                            period: 16,
                            amplitude: 0.5,
                        },
                    },
                ],
                0.05,
            )
            .unwrap()
        };
        let a = mk();
        let b = mk();
        // Pure in (axis, t): identical across instances, repeat calls, and
        // any query order — the property the thread-sweep digest gate rests
        // on.
        for t in (0..200).rev() {
            for axis in 0..4 {
                assert_eq!(a.offset(axis, t).to_bits(), b.offset(axis, t).to_bits());
                assert_eq!(a.offset(axis, t).to_bits(), a.offset(axis, t).to_bits());
            }
        }
    }

    #[test]
    fn jitter_is_bounded_and_seed_separated() {
        let base = DriftSchedule::new(3, vec![], 0.25).unwrap();
        let other = DriftSchedule::new(4, vec![], 0.25).unwrap();
        let mut differs = false;
        for t in 0..500 {
            let o = base.offset(0, t);
            assert!(o.abs() <= 0.25, "jitter {o} out of bound");
            if o.to_bits() != other.offset(0, t).to_bits() {
                differs = true;
            }
        }
        assert!(differs, "different seeds must give different jitter");
        // Axes get independent streams.
        assert_ne!(base.offset(0, 7).to_bits(), base.offset(1, 7).to_bits());
    }

    #[test]
    fn quiet_schedule_is_identity() {
        let q = DriftSchedule::quiet(9);
        let row = [1.0, 2.0, 3.0];
        assert_eq!(q.shifted(&row, 123), row.to_vec());
    }

    #[test]
    fn shift_row_applies_per_axis_offsets() {
        let s = DriftSchedule::new(
            5,
            vec![AxisDrift {
                axis: 1,
                wave: DriftWave::Step {
                    at: 0,
                    amplitude: 10.0,
                },
            }],
            0.0,
        )
        .unwrap();
        let out = s.shifted(&[1.0, 1.0], 3);
        assert_eq!(out, vec![1.0, 11.0]);
        // Axis 1 is beyond a 1-wide row: ignored, not a panic.
        assert_eq!(s.shifted(&[1.0], 3), vec![1.0]);
    }

    #[test]
    fn nano_preset_keeps_params_physical() {
        let schedule = nanoconfinement(11, 20, 100);
        let mut rng = le_linalg::Rng::new(42);
        for i in 0..50 {
            let p = NanoParams::sample(&mut rng);
            for t in [0, 19, 20, 55, 70, 120, 400, i] {
                let shifted = shift_nano(&schedule, &p, t);
                shifted
                    .validate()
                    .unwrap_or_else(|e| panic!("t={t}: {e:?}"));
                assert_eq!(shifted.z_p, p.z_p);
                assert_eq!(shifted.z_n, p.z_n);
            }
        }
        // After saturation the ramp genuinely moves the distribution.
        let p = NanoParams {
            h: 2.5,
            z_p: 1,
            z_n: 1,
            c: 0.5,
            d: 0.6,
        };
        let late = shift_nano(&schedule, &p, 10_000);
        assert!(late.h > p.h + 1.0, "h should have ramped up: {}", late.h);
    }

    #[test]
    fn surveillance_preset_keeps_stream_valid() {
        let schedule = surveillance(13, 10, 52);
        let base = Surveillance {
            reporting_fraction: 0.8,
            noise: 0.1,
            delay_weeks: 1,
        };
        for t in 0..200 {
            let s = shift_surveillance(&schedule, &base, t);
            assert!((0.05..=1.0).contains(&s.reporting_fraction));
            assert!((0.0..=2.0).contains(&s.noise));
            assert!(s.delay_weeks <= 8);
        }
        // Reporting fatigue is real after the ramp saturates.
        let late = shift_surveillance(&schedule, &base, 10_000);
        assert!(late.reporting_fraction < 0.55);
    }
}
