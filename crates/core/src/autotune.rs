//! MLautotuning (§I, ref [9]): "Using ML to configure (autotune) ML or HPC
//! simulations … using for example, the lowest allowable timestep dt and
//! 'good' simulation control parameters for high efficiency while retaining
//! the accuracy of the final result."
//!
//! The framework piece is generic: a [`TuningProblem`] supplies labelled
//! examples mapping *problem parameters* to *optimal run configurations*
//! (found offline by expensive search — e.g. bisection on the largest
//! stable timestep); [`Autotuner`] learns that map and suggests
//! configurations for unseen problems, falling back to a safe default when
//! its own uncertainty is too high.

use le_linalg::Matrix;

use crate::surrogate::{NnSurrogate, SurrogateConfig};
use crate::{LeError, Result};

/// A labelled autotuning example.
#[derive(Debug, Clone)]
pub struct TuningExample {
    /// Problem parameters (e.g. `[h, z_p, z_n, c, d, T]` — the companion
    /// paper's D = 6).
    pub params: Vec<f64>,
    /// Optimal run configuration found by expensive search (e.g.
    /// `[dt_max, gamma, sample_interval]` — 3 outputs).
    pub optimal: Vec<f64>,
}

/// The source of ground-truth labels.
pub trait TuningProblem {
    /// Parameter dimensionality.
    fn param_dim(&self) -> usize;
    /// Configuration dimensionality.
    fn config_dim(&self) -> usize;
    /// Expensive search for the optimal configuration of one problem
    /// instance (this is what the tuner amortizes away).
    fn search_optimal(&self, params: &[f64]) -> Result<Vec<f64>>;
    /// A safe (conservative) configuration that always works.
    fn safe_default(&self) -> Vec<f64>;
}

/// The learned parameter→configuration map.
pub struct Autotuner {
    surrogate: NnSurrogate,
    safe_default: Vec<f64>,
    /// Serve the learned suggestion only when the model's uncertainty is
    /// below this (natural units of the config vector).
    pub uncertainty_threshold: f64,
}

/// A configuration suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The suggested configuration.
    pub config: Vec<f64>,
    /// True if the learned model produced it (false = safe fallback).
    pub learned: bool,
}

impl Autotuner {
    /// Train from labelled examples.
    pub fn fit(
        examples: &[TuningExample],
        safe_default: Vec<f64>,
        surrogate_config: &SurrogateConfig,
        uncertainty_threshold: f64,
    ) -> Result<Self> {
        if examples.len() < 8 {
            return Err(LeError::InsufficientData(format!(
                "need ≥ 8 tuning examples, got {}",
                examples.len()
            )));
        }
        let pd = examples[0].params.len();
        let cd = examples[0].optimal.len();
        if safe_default.len() != cd {
            return Err(LeError::InvalidConfig(
                "safe default has wrong dimensionality".into(),
            ));
        }
        if examples
            .iter()
            .any(|e| e.params.len() != pd || e.optimal.len() != cd)
        {
            return Err(LeError::InvalidConfig("ragged tuning examples".into()));
        }
        let mut x = Matrix::zeros(examples.len(), pd);
        let mut y = Matrix::zeros(examples.len(), cd);
        for (i, e) in examples.iter().enumerate() {
            x.row_mut(i).copy_from_slice(&e.params);
            y.row_mut(i).copy_from_slice(&e.optimal);
        }
        let surrogate = NnSurrogate::fit(&x, &y, surrogate_config)?;
        Ok(Self {
            surrogate,
            safe_default,
            uncertainty_threshold,
        })
    }

    /// Suggest a configuration for a new problem instance. Falls back to
    /// the safe default when the model is too uncertain (an autotuner that
    /// crashes the simulation is worse than none).
    pub fn suggest(&mut self, params: &[f64]) -> Result<Suggestion> {
        let pred = self.surrogate.predict_with_uncertainty(params)?;
        if pred.max_std() < self.uncertainty_threshold {
            Ok(Suggestion {
                config: pred.mean,
                learned: true,
            })
        } else {
            Ok(Suggestion {
                config: self.safe_default.clone(),
                learned: false,
            })
        }
    }

    /// Point prediction without the safety gate (for analysis).
    pub fn predict_raw(&self, params: &[f64]) -> Result<Vec<f64>> {
        self.surrogate.predict(params)
    }
}

/// Generate a labelled training set by running the expensive search on a
/// set of parameter points (this is the offline campaign the paper
/// describes costing 28 M CPU-hours at production scale).
pub fn label_examples<P: TuningProblem + Sync>(
    problem: &P,
    params: &[Vec<f64>],
) -> Result<Vec<TuningExample>> {
    le_pool::par_map(params, |p| {
        Ok(TuningExample {
            params: p.clone(),
            optimal: problem.search_optimal(p)?,
        })
    })
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use le_linalg::Rng;

    /// A synthetic tuning problem with a known analytic optimum:
    /// dt_max = 0.1 / (1 + |stiffness|), gamma = 1 + 0.5 softness.
    struct FakeProblem;

    impl TuningProblem for FakeProblem {
        fn param_dim(&self) -> usize {
            2
        }
        fn config_dim(&self) -> usize {
            2
        }
        fn search_optimal(&self, params: &[f64]) -> Result<Vec<f64>> {
            let stiffness = params[0];
            let softness = params[1];
            Ok(vec![0.1 / (1.0 + stiffness.abs()), 1.0 + 0.5 * softness])
        }
        fn safe_default(&self) -> Vec<f64> {
            vec![0.001, 1.0]
        }
    }

    fn examples(n: usize, seed: u64) -> Vec<TuningExample> {
        let mut rng = Rng::new(seed);
        let params: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.uniform_in(0.0, 4.0), rng.uniform_in(0.0, 1.0)])
            .collect();
        label_examples(&FakeProblem, &params).unwrap()
    }

    #[test]
    fn fit_validation() {
        let few = examples(4, 1);
        assert!(Autotuner::fit(&few, vec![0.001, 1.0], &SurrogateConfig::default(), 0.1).is_err());
        let ex = examples(50, 2);
        assert!(Autotuner::fit(&ex, vec![0.001], &SurrogateConfig::default(), 0.1).is_err());
    }

    #[test]
    fn learned_suggestions_track_the_true_optimum() {
        let ex = examples(300, 3);
        let mut tuner = Autotuner::fit(
            &ex,
            FakeProblem.safe_default(),
            &SurrogateConfig {
                epochs: 300,
                dropout: 0.05,
                mc_samples: 20,
                ..Default::default()
            },
            0.5,
        )
        .unwrap();
        let mut rng = Rng::new(4);
        let mut learned = 0;
        for _ in 0..30 {
            let params = vec![rng.uniform_in(0.5, 3.5), rng.uniform_in(0.1, 0.9)];
            let truth = FakeProblem.search_optimal(&params).unwrap();
            let s = tuner.suggest(&params).unwrap();
            if s.learned {
                learned += 1;
                assert!(
                    (s.config[0] - truth[0]).abs() < 0.03,
                    "dt suggestion {} vs optimal {}",
                    s.config[0],
                    truth[0]
                );
                assert!((s.config[1] - truth[1]).abs() < 0.2);
            }
        }
        assert!(learned > 20, "most in-domain suggestions should be learned ({learned})");
    }

    #[test]
    fn out_of_domain_falls_back_to_safe_default() {
        let ex = examples(200, 5);
        let mut tuner = Autotuner::fit(
            &ex,
            FakeProblem.safe_default(),
            &SurrogateConfig {
                epochs: 150,
                dropout: 0.2,
                mc_samples: 40,
                ..Default::default()
            },
            0.05,
        )
        .unwrap();
        // Parameters far outside the training domain.
        let s = tuner.suggest(&[50.0, -30.0]).unwrap();
        assert!(!s.learned, "extrapolation must fall back");
        assert_eq!(s.config, FakeProblem.safe_default());
    }

    #[test]
    fn labelling_is_parallel_and_ordered() {
        let params: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1, 0.5]).collect();
        let ex = label_examples(&FakeProblem, &params).unwrap();
        assert_eq!(ex.len(), 20);
        // Order preserved.
        for (e, p) in ex.iter().zip(params.iter()) {
            assert_eq!(&e.params, p);
            assert_eq!(e.optimal, FakeProblem.search_optimal(p).unwrap());
        }
    }
}
