//! Distribution-drift staleness detection for the hybrid engine.
//!
//! The degradation ladder ([`crate::supervisor`]) covers *crashes*: injected
//! errors, NaN outputs, failed retrains. In production a surrogate more
//! often dies of *drift* — the parameter distribution moves away from the
//! training manifold and the model silently extrapolates. This module
//! watches the two observable symptoms over sliding windows:
//!
//! * **Gate-std inflation** — the MC-dropout uncertainty the UQ gate sees
//!   rises relative to the post-(re)train baseline. Extrapolation shows up
//!   as epistemic uncertainty before it shows up as error.
//! * **Calibration decay** — observed interval coverage on labelled pairs
//!   (queries that carried a gate prediction *and* were then simulated, so
//!   the truth is known) falls below a floor at the nominal level, via the
//!   typed `uq::calibration` diagnostics.
//!
//! Either symptom fires a [`StalenessSignal`], which the engine surfaces as
//! a typed [`LeError::Stale`] anomaly through the supervisor and converts
//! into a pending rolling retrain serviced at the next deterministic wave
//! boundary (see [`crate::HybridEngine::enable_rolling_retrain`]).
//!
//! The detector is a pure function of the query stream it is fed: no
//! clocks, no entropy, bounded memory. Replaying the same stream produces
//! the same flags at any pool width — the property the drift-campaign
//! digest gate in `scripts/verify.sh` pins.

use std::collections::VecDeque;

use le_uq::{coverage, Prediction};

use crate::{LeError, Result};

/// Knobs of the staleness detector.
#[derive(Debug, Clone, Copy)]
pub struct StalenessConfig {
    /// Sliding-window length for the *recent* gate-std mean and the
    /// labelled calibration pairs.
    pub window: usize,
    /// Gate-std samples collected right after each (re)train to form the
    /// baseline the recent window is compared against.
    pub baseline: usize,
    /// Flag [`StalenessSignal::StdInflation`] when
    /// `recent mean / baseline mean` exceeds this ratio (must be > 1).
    pub std_ratio: f64,
    /// Nominal central-interval level probed for calibration decay
    /// (strictly inside (0, 1)).
    pub nominal_coverage: f64,
    /// Flag [`StalenessSignal::CalibrationDecay`] when observed coverage
    /// at the nominal level falls below this floor.
    pub min_coverage: f64,
    /// Labelled (prediction, truth) pairs required before the calibration
    /// check is consulted at all.
    pub min_labelled: usize,
}

impl Default for StalenessConfig {
    fn default() -> Self {
        Self {
            window: 64,
            baseline: 32,
            std_ratio: 2.0,
            nominal_coverage: 0.9,
            min_coverage: 0.5,
            min_labelled: 16,
        }
    }
}

impl StalenessConfig {
    /// Validate the knobs.
    pub fn validate(&self) -> Result<()> {
        if self.window == 0 || self.baseline == 0 {
            return Err(LeError::InvalidConfig(
                "staleness window and baseline must be at least 1".into(),
            ));
        }
        if self.std_ratio <= 1.0 {
            return Err(LeError::InvalidConfig(
                "staleness std_ratio must exceed 1".into(),
            ));
        }
        if !(self.nominal_coverage > 0.0 && self.nominal_coverage < 1.0) {
            return Err(LeError::InvalidConfig(
                "nominal_coverage must lie strictly inside (0, 1)".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_coverage) {
            return Err(LeError::InvalidConfig(
                "min_coverage must lie in [0, 1]".into(),
            ));
        }
        if self.min_labelled == 0 {
            return Err(LeError::InvalidConfig(
                "min_labelled must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Which symptom fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StalenessSignal {
    /// Recent gate uncertainty inflated relative to the post-train
    /// baseline.
    StdInflation {
        /// Mean gate std over the recent window.
        recent: f64,
        /// Mean gate std over the post-train baseline.
        baseline: f64,
    },
    /// Observed interval coverage decayed below the configured floor.
    CalibrationDecay {
        /// Observed coverage at the nominal level.
        observed: f64,
        /// The nominal level probed.
        nominal: f64,
    },
}

impl StalenessSignal {
    /// Stable counter suffix for the signal kind.
    pub fn kind(&self) -> &'static str {
        match self {
            StalenessSignal::StdInflation { .. } => "std_inflation",
            StalenessSignal::CalibrationDecay { .. } => "calibration_decay",
        }
    }

    /// The typed error this signal surfaces as.
    pub fn to_error(&self) -> LeError {
        match self {
            StalenessSignal::StdInflation { recent, baseline } => LeError::Stale(format!(
                "gate std inflated: recent mean {recent:.6} vs baseline {baseline:.6}"
            )),
            StalenessSignal::CalibrationDecay { observed, nominal } => LeError::Stale(format!(
                "calibration decayed: observed coverage {observed:.3} at nominal {nominal:.2}"
            )),
        }
    }
}

/// Sliding-window drift monitor (see the module docs). Fed by the engine's
/// gated query path; fires at most one signal per window fill, then
/// re-baselines.
#[derive(Debug)]
pub struct StalenessDetector {
    config: StalenessConfig,
    baseline_stds: Vec<f64>,
    recent_stds: VecDeque<f64>,
    labelled: VecDeque<(Prediction, Vec<f64>)>,
    flags: u64,
}

impl StalenessDetector {
    /// Build from a validated config.
    pub fn new(config: StalenessConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            baseline_stds: Vec::new(),
            recent_stds: VecDeque::new(),
            labelled: VecDeque::new(),
            flags: 0,
        })
    }

    /// The configured knobs.
    pub fn config(&self) -> StalenessConfig {
        self.config
    }

    /// Signals fired so far.
    pub fn flags(&self) -> u64 {
        self.flags
    }

    /// Forget everything and start a fresh baseline — called after a
    /// successful (rolling) retrain installs a new model, whose
    /// uncertainty profile supersedes the old baseline.
    pub fn reset(&mut self) {
        self.baseline_stds.clear();
        self.recent_stds.clear();
        self.labelled.clear();
    }

    /// Record one finite gate std from the UQ gate. The first
    /// `config.baseline` samples after a reset form the baseline; later
    /// samples roll through the recent window.
    pub fn note_gate_std(&mut self, std: f64) {
        if !std.is_finite() {
            return; // non-finite stds are the supervisor's (anomaly) lane
        }
        if self.baseline_stds.len() < self.config.baseline {
            self.baseline_stds.push(std);
            return;
        }
        self.recent_stds.push_back(std);
        while self.recent_stds.len() > self.config.window {
            self.recent_stds.pop_front();
        }
    }

    /// Record one labelled pair: a gate prediction whose query then ran the
    /// simulator, so the ground truth is known.
    pub fn note_labelled(&mut self, pred: Prediction, truth: Vec<f64>) {
        self.labelled.push_back((pred, truth));
        while self.labelled.len() > self.config.window {
            self.labelled.pop_front();
        }
    }

    /// Consult the windows; on a flag, the detector re-baselines itself
    /// (so one drift episode fires once, not once per subsequent query).
    pub fn check(&mut self) -> Option<StalenessSignal> {
        let signal = self.evaluate()?;
        self.flags += 1;
        self.reset();
        Some(signal)
    }

    fn evaluate(&self) -> Option<StalenessSignal> {
        if self.baseline_stds.len() < self.config.baseline {
            return None;
        }
        // Symptom 1: gate-std inflation over a full recent window.
        if self.recent_stds.len() >= self.config.window {
            let baseline = mean(self.baseline_stds.iter());
            let recent = mean(self.recent_stds.iter());
            if baseline > 0.0 && recent / baseline > self.config.std_ratio {
                return Some(StalenessSignal::StdInflation { recent, baseline });
            }
        }
        // Symptom 2: coverage decay over the labelled pairs.
        if self.labelled.len() >= self.config.min_labelled {
            let preds: Vec<Prediction> = self.labelled.iter().map(|(p, _)| p.clone()).collect();
            let targets: Vec<Vec<f64>> = self.labelled.iter().map(|(_, t)| t.clone()).collect();
            let width = preds
                .iter()
                .map(|p| p.mean.len().min(p.std.len()))
                .chain(targets.iter().map(|t| t.len()))
                .min()
                .unwrap_or(0);
            let mut worst: Option<f64> = None;
            for dim in 0..width {
                // A malformed window is skipped, never a panic: the typed
                // uq::calibration contract guards every edge case.
                if let Ok(obs) = coverage(&preds, &targets, dim, self.config.nominal_coverage) {
                    worst = Some(worst.map_or(obs, |w: f64| w.min(obs)));
                }
            }
            if let Some(observed) = worst {
                if observed < self.config.min_coverage {
                    return Some(StalenessSignal::CalibrationDecay {
                        observed,
                        nominal: self.config.nominal_coverage,
                    });
                }
            }
        }
        None
    }
}

fn mean<'a>(it: impl Iterator<Item = &'a f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(cfg: StalenessConfig) -> StalenessDetector {
        StalenessDetector::new(cfg).unwrap()
    }

    fn small() -> StalenessConfig {
        StalenessConfig {
            window: 8,
            baseline: 4,
            std_ratio: 2.0,
            nominal_coverage: 0.9,
            min_coverage: 0.5,
            min_labelled: 4,
        }
    }

    #[test]
    fn config_validation() {
        assert!(StalenessConfig { window: 0, ..small() }.validate().is_err());
        assert!(StalenessConfig { baseline: 0, ..small() }.validate().is_err());
        assert!(StalenessConfig { std_ratio: 1.0, ..small() }.validate().is_err());
        assert!(StalenessConfig { nominal_coverage: 1.0, ..small() }.validate().is_err());
        assert!(StalenessConfig { min_coverage: 1.5, ..small() }.validate().is_err());
        assert!(StalenessConfig { min_labelled: 0, ..small() }.validate().is_err());
        assert!(small().validate().is_ok());
        assert!(StalenessConfig::default().validate().is_ok());
    }

    #[test]
    fn stable_stds_never_flag() {
        let mut d = det(small());
        for _ in 0..100 {
            d.note_gate_std(0.1);
            assert!(d.check().is_none());
        }
        assert_eq!(d.flags(), 0);
    }

    #[test]
    fn inflated_stds_flag_once_then_rebaseline() {
        let mut d = det(small());
        for _ in 0..4 {
            d.note_gate_std(0.1); // baseline
        }
        let mut fired = 0;
        for _ in 0..16 {
            d.note_gate_std(0.5); // 5x the baseline
            if let Some(sig) = d.check() {
                assert!(matches!(sig, StalenessSignal::StdInflation { .. }));
                assert_eq!(sig.kind(), "std_inflation");
                fired += 1;
            }
        }
        // Fires exactly once per episode: the reset re-baselines at the
        // new (inflated) level, which is then self-consistent.
        assert_eq!(fired, 1);
        assert_eq!(d.flags(), 1);
    }

    #[test]
    fn calibration_decay_flags_overconfident_windows() {
        let mut d = det(small());
        for _ in 0..4 {
            d.note_gate_std(0.1);
        }
        // Predictions claim ±0.01 around 0 but the truth sits at 1.0:
        // observed coverage 0 at nominal 0.9.
        for _ in 0..4 {
            d.note_labelled(
                Prediction {
                    mean: vec![0.0],
                    std: vec![0.01],
                },
                vec![1.0],
            );
        }
        let sig = d.check().expect("coverage collapse must flag");
        match sig {
            StalenessSignal::CalibrationDecay { observed, nominal } => {
                assert_eq!(observed, 0.0);
                assert!((nominal - 0.9).abs() < 1e-12);
            }
            other => panic!("expected CalibrationDecay, got {other:?}"),
        }
        assert!(matches!(sig.to_error(), LeError::Stale(_)));
    }

    #[test]
    fn well_calibrated_labels_do_not_flag() {
        let mut d = det(small());
        for _ in 0..4 {
            d.note_gate_std(0.1);
        }
        for _ in 0..8 {
            d.note_labelled(
                Prediction {
                    mean: vec![1.0],
                    std: vec![0.5],
                },
                vec![1.1], // well inside the 90% interval
            );
        }
        assert!(d.check().is_none());
    }

    #[test]
    fn non_finite_stds_are_ignored() {
        let mut d = det(small());
        for _ in 0..4 {
            d.note_gate_std(0.1);
        }
        for _ in 0..20 {
            d.note_gate_std(f64::NAN);
        }
        assert!(d.check().is_none());
    }

    #[test]
    fn detector_replays_identically() {
        let run = || {
            let mut d = det(small());
            let mut fired = Vec::new();
            for i in 0..200u64 {
                let s = 0.1 + 0.01 * (i as f64);
                d.note_gate_std(s);
                if let Some(sig) = d.check() {
                    fired.push((i, sig.kind()));
                }
            }
            (fired, d.flags())
        };
        assert_eq!(run(), run());
    }
}
