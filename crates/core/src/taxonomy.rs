//! The paper's taxonomy of ML–HPC interaction, as a typed vocabulary.
//!
//! "We define two broad categories: HPCforML and MLforHPC", each with
//! sub-categories (§I). The enums are used by reports and examples to
//! label which mode a component operates in; `describe()` carries the
//! paper's own definitions.

/// Top-level categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Using HPC to execute and enhance ML performance, or using HPC
    /// simulations to train ML algorithms.
    HpcForMl,
    /// Using ML to enhance HPC applications and systems.
    MlForHpc,
}

/// The six interaction modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Using HPC to execute ML with high performance.
    HpcRunsMl,
    /// Using HPC simulations to train ML algorithms, which are then used to
    /// understand experimental data or simulations.
    SimulationTrainedMl,
    /// Using ML to configure (autotune) ML or HPC simulations.
    MlAutotuning,
    /// ML analyzing results of HPC, as in trajectory analysis and structure
    /// identification.
    MlAfterHpc,
    /// Using ML to learn from simulations and produce learned surrogates
    /// for the simulations.
    MlAroundHpc,
    /// Using simulations (with HPC) in control of experiments and in
    /// objective-driven computational campaigns.
    MlControl,
}

impl Mode {
    /// All six modes in the paper's order of introduction.
    pub const ALL: [Mode; 6] = [
        Mode::HpcRunsMl,
        Mode::SimulationTrainedMl,
        Mode::MlAutotuning,
        Mode::MlAfterHpc,
        Mode::MlAroundHpc,
        Mode::MlControl,
    ];

    /// Which top-level category the mode belongs to.
    pub fn category(&self) -> Category {
        match self {
            Mode::HpcRunsMl | Mode::SimulationTrainedMl => Category::HpcForMl,
            Mode::MlAutotuning | Mode::MlAfterHpc | Mode::MlAroundHpc | Mode::MlControl => {
                Category::MlForHpc
            }
        }
    }

    /// Stable short name.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::HpcRunsMl => "HPCrunsML",
            Mode::SimulationTrainedMl => "SimulationTrainedML",
            Mode::MlAutotuning => "MLautotuning",
            Mode::MlAfterHpc => "MLafterHPC",
            Mode::MlAroundHpc => "MLaroundHPC",
            Mode::MlControl => "MLControl",
        }
    }

    /// The paper's definition of the mode.
    pub fn describe(&self) -> &'static str {
        match self {
            Mode::HpcRunsMl => "Using HPC to execute ML with high performance",
            Mode::SimulationTrainedMl => {
                "Using HPC simulations to train ML algorithms, which are then used to \
                 understand experimental data or simulations"
            }
            Mode::MlAutotuning => "Using ML to configure (autotune) ML or HPC simulations",
            Mode::MlAfterHpc => {
                "ML analyzing results of HPC as in trajectory analysis and structure \
                 identification in biomolecular simulations"
            }
            Mode::MlAroundHpc => {
                "Using ML to learn from simulations and produce learned surrogates for \
                 the simulations"
            }
            Mode::MlControl => {
                "Using simulations (with HPC) in control of experiments and in objective \
                 driven computational campaigns"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_modes_split_two_four() {
        let hpc_for_ml = Mode::ALL
            .iter()
            .filter(|m| m.category() == Category::HpcForMl)
            .count();
        let ml_for_hpc = Mode::ALL
            .iter()
            .filter(|m| m.category() == Category::MlForHpc)
            .count();
        assert_eq!(hpc_for_ml, 2);
        assert_eq!(ml_for_hpc, 4);
    }

    #[test]
    fn names_unique_and_nonempty() {
        let names: std::collections::HashSet<_> = Mode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), 6);
        assert!(Mode::ALL.iter().all(|m| !m.describe().is_empty()));
    }

    #[test]
    fn surrogates_are_ml_for_hpc() {
        assert_eq!(Mode::MlAroundHpc.category(), Category::MlForHpc);
        assert_eq!(Mode::MlAutotuning.category(), Category::MlForHpc);
    }
}
