//! MLControl (§I, ref [12]): "Using simulations (with HPC) in control of
//! experiments and in objective driven computational campaigns. Here the
//! simulation surrogates are very valuable to allow real-time predictions."
//!
//! The campaign inverts a surrogate: given a target output `y*`, scan a
//! candidate input grid through the (microsecond) surrogate, verify the
//! best candidates with the (expensive) real simulator, fold the verified
//! runs back into the training set, and repeat. Converges to an input
//! achieving the target with only a handful of real simulations.

use le_linalg::{Matrix, Rng};

use crate::simulator::Simulator;
use crate::surrogate::{NnSurrogate, SurrogateConfig};
use crate::{LeError, Result};

/// Objective-driven campaign configuration.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// Initial random designs simulated before the first surrogate fit.
    pub initial_runs: usize,
    /// Candidates scanned through the surrogate per round.
    pub scan_size: usize,
    /// Real verifications per round.
    pub verify_per_round: usize,
    /// Campaign rounds.
    pub rounds: usize,
    /// Surrogate settings.
    pub surrogate: SurrogateConfig,
    /// Seed.
    pub seed: u64,
}

impl Default for ControlConfig {
    fn default() -> Self {
        Self {
            initial_runs: 32,
            scan_size: 2000,
            verify_per_round: 4,
            rounds: 4,
            surrogate: SurrogateConfig::default(),
            seed: 0,
        }
    }
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct ControlOutcome {
    /// Best input found.
    pub best_input: Vec<f64>,
    /// Its *verified* (simulated) output.
    pub best_output: Vec<f64>,
    /// Distance of the verified output from the target.
    pub best_error: f64,
    /// Real simulations consumed.
    pub simulations_used: usize,
    /// Best verified error after each round.
    pub error_history: Vec<f64>,
}

/// Euclidean distance between an output and the target.
fn target_error(output: &[f64], target: &[f64]) -> f64 {
    output
        .iter()
        .zip(target.iter())
        .map(|(&o, &t)| (o - t) * (o - t))
        .sum::<f64>()
        .sqrt()
}

/// Run an objective-driven campaign: find `input ∈ [lo, hi]^D` whose
/// simulated output is closest to `target`.
pub fn run_campaign<S: Simulator>(
    simulator: &S,
    target: &[f64],
    bounds: &[(f64, f64)],
    cfg: &ControlConfig,
) -> Result<ControlOutcome> {
    if target.len() != simulator.output_dim() {
        return Err(LeError::InvalidConfig(format!(
            "target has {} entries, simulator outputs {}",
            target.len(),
            simulator.output_dim()
        )));
    }
    if bounds.len() != simulator.input_dim() {
        return Err(LeError::InvalidConfig(format!(
            "bounds cover {} dims, simulator takes {}",
            bounds.len(),
            simulator.input_dim()
        )));
    }
    if bounds.iter().any(|&(lo, hi)| lo >= hi) {
        return Err(LeError::InvalidConfig("empty bound interval".into()));
    }
    if cfg.initial_runs < 4 || cfg.verify_per_round == 0 || cfg.rounds == 0 {
        return Err(LeError::InvalidConfig(
            "initial_runs ≥ 4, verify_per_round ≥ 1, rounds ≥ 1".into(),
        ));
    }
    let mut rng = Rng::new(cfg.seed);
    let sample_input = |rng: &mut Rng| -> Vec<f64> {
        bounds.iter().map(|&(lo, hi)| rng.uniform_in(lo, hi)).collect()
    };
    // Initial design.
    let mut xs: Vec<Vec<f64>> = (0..cfg.initial_runs).map(|_| sample_input(&mut rng)).collect();
    let mut ys: Vec<Vec<f64>> = Vec::with_capacity(cfg.initial_runs);
    let mut sim_seed = cfg.seed ^ 0x9999;
    for x in &xs {
        sim_seed += 1;
        ys.push(
            simulator
                .simulate(x, sim_seed)
                .map_err(|e| LeError::Simulation(e.to_string()))?,
        );
    }
    let mut best_idx = (0..ys.len())
        .min_by(|&a, &b| {
            target_error(&ys[a], target).total_cmp(&target_error(&ys[b], target))
        })
        .expect("non-empty design"); // lint:allow(no-panic): design size checked by config validation
    let mut best_input = xs[best_idx].clone();
    let mut best_output = ys[best_idx].clone();
    let mut best_error = target_error(&best_output, target);
    let mut error_history = Vec::with_capacity(cfg.rounds);

    for round in 0..cfg.rounds {
        // Fit the surrogate on all verified runs.
        let n = xs.len();
        let mut xm = Matrix::zeros(n, simulator.input_dim());
        let mut ym = Matrix::zeros(n, simulator.output_dim());
        for i in 0..n {
            xm.row_mut(i).copy_from_slice(&xs[i]);
            ym.row_mut(i).copy_from_slice(&ys[i]);
        }
        let sconfig = SurrogateConfig {
            seed: cfg.surrogate.seed ^ (round as u64),
            ..cfg.surrogate.clone()
        };
        let surrogate = NnSurrogate::fit(&xm, &ym, &sconfig)?;
        // Scan candidates through the surrogate (cheap lookups).
        let mut scored: Vec<(f64, Vec<f64>)> = (0..cfg.scan_size)
            .map(|_| {
                let x = sample_input(&mut rng);
                let pred = surrogate.predict(&x).expect("dims fixed"); // lint:allow(no-panic): surrogate trained on this exact width
                (target_error(&pred, target), x)
            })
            .collect();
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        // Verify the most promising few with real simulations.
        for (_, x) in scored.into_iter().take(cfg.verify_per_round) {
            sim_seed += 1;
            let y = simulator
                .simulate(&x, sim_seed)
                .map_err(|e| LeError::Simulation(e.to_string()))?;
            let err = target_error(&y, target);
            if err < best_error {
                best_error = err;
                best_input = x.clone();
                best_output = y.clone();
            }
            xs.push(x);
            ys.push(y);
        }
        error_history.push(best_error);
        best_idx = best_idx.min(xs.len() - 1); // keep clippy quiet about unused var pattern
    }
    let _ = best_idx;
    Ok(ControlOutcome {
        best_input,
        best_output,
        best_error,
        simulations_used: xs.len(),
        error_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SyntheticSimulator;

    #[test]
    fn validation() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let cfg = ControlConfig::default();
        assert!(run_campaign(&sim, &[0.0, 1.0], &[(0.0, 1.0), (0.0, 1.0)], &cfg).is_err());
        assert!(run_campaign(&sim, &[0.0], &[(0.0, 1.0)], &cfg).is_err());
        assert!(run_campaign(&sim, &[0.0], &[(1.0, 1.0), (0.0, 1.0)], &cfg).is_err());
        let bad = ControlConfig {
            rounds: 0,
            ..Default::default()
        };
        assert!(run_campaign(&sim, &[0.0], &[(0.0, 1.0), (0.0, 1.0)], &bad).is_err());
    }

    #[test]
    fn campaign_reaches_an_achievable_target() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        // Pick the target as the truth at a known point, so error → 0 is
        // achievable.
        let target = sim.truth(&[0.6, -0.4]);
        let out = run_campaign(
            &sim,
            &target,
            &[(-1.0, 1.0), (-1.0, 1.0)],
            &ControlConfig {
                initial_runs: 40,
                scan_size: 3000,
                verify_per_round: 6,
                rounds: 4,
                surrogate: SurrogateConfig {
                    epochs: 150,
                    dropout: 0.05,
                    ..Default::default()
                },
                seed: 11,
            },
        )
        .unwrap();
        assert!(
            out.best_error < 0.15,
            "campaign should hit the target, error {}",
            out.best_error
        );
        // Verified output consistent with the claim.
        assert!((target_error(&out.best_output, &target) - out.best_error).abs() < 1e-12);
        // The campaign used far fewer simulations than the scan size — the
        // surrogate did the searching.
        assert!(out.simulations_used < 100);
    }

    #[test]
    fn error_history_is_monotone_nonincreasing() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let target = sim.truth(&[0.2, 0.2]);
        let out = run_campaign(
            &sim,
            &target,
            &[(-1.0, 1.0), (-1.0, 1.0)],
            &ControlConfig {
                initial_runs: 24,
                scan_size: 500,
                verify_per_round: 3,
                rounds: 5,
                surrogate: SurrogateConfig {
                    epochs: 80,
                    ..Default::default()
                },
                seed: 13,
            },
        )
        .unwrap();
        assert_eq!(out.error_history.len(), 5);
        for w in out.error_history.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "best error can only improve");
        }
    }

    #[test]
    fn campaign_is_deterministic() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let target = sim.truth(&[0.0, 0.5]);
        let cfg = ControlConfig {
            initial_runs: 16,
            scan_size: 200,
            verify_per_round: 2,
            rounds: 2,
            surrogate: SurrogateConfig {
                epochs: 40,
                ..Default::default()
            },
            seed: 17,
        };
        let a = run_campaign(&sim, &target, &[(-1.0, 1.0), (-1.0, 1.0)], &cfg).unwrap();
        let b = run_campaign(&sim, &target, &[(-1.0, 1.0), (-1.0, 1.0)], &cfg).unwrap();
        assert_eq!(a.best_input, b.best_input);
        assert_eq!(a.best_error, b.best_error);
    }
}
