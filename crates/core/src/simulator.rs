//! The [`Simulator`] trait — the contract an expensive computation
//! implements to be wrapped by the Learning-Everywhere machinery — plus a
//! cheap analytic test simulator used throughout the framework's own tests
//! and benches.

use crate::{LeError, Result};

/// An expensive, deterministic-given-seed computation mapping a fixed-size
/// input vector to a fixed-size output vector.
///
/// Implementations in this workspace: the nanoconfinement MD scenario
/// (inputs `[h, z_p, z_n, c, d]` → densities), the tissue transport burst,
/// and the synthetic functions below.
pub trait Simulator: Sync {
    /// Input dimensionality D (the paper's "size of data set specifying
    /// each sample").
    fn input_dim(&self) -> usize;

    /// Output dimensionality.
    fn output_dim(&self) -> usize;

    /// Run the simulation. Must be deterministic given `(input, seed)`.
    fn simulate(&self, input: &[f64], seed: u64) -> Result<Vec<f64>>;

    /// Human-readable name for reports.
    fn name(&self) -> &str {
        "simulator"
    }
}

/// A synthetic analytic "simulation" with a controllable artificial cost:
/// `y_k = Σ_d sin(ω_kd x_d) + x·a_k` plus optional noise, with a spin-loop
/// of `cost_iters` transcendental evaluations to emulate expense. Used by
/// framework tests and the E1/E5 benches where the *shape* of the learning
/// problem matters but an MD engine would be overkill.
#[derive(Debug, Clone)]
pub struct SyntheticSimulator {
    in_dim: usize,
    out_dim: usize,
    /// Artificial work per call (transcendental evaluations).
    pub cost_iters: usize,
    /// Observation noise standard deviation.
    pub noise: f64,
}

impl SyntheticSimulator {
    /// Build with the given dimensions.
    pub fn new(in_dim: usize, out_dim: usize, cost_iters: usize, noise: f64) -> Self {
        Self {
            in_dim,
            out_dim,
            cost_iters,
            noise,
        }
    }

    /// The exact (noise-free) response — for evaluating surrogate accuracy.
    pub fn truth(&self, input: &[f64]) -> Vec<f64> {
        (0..self.out_dim)
            .map(|k| {
                let mut acc = 0.0;
                for (d, &x) in input.iter().enumerate() {
                    let omega = 1.0 + 0.7 * ((k + 2 * d) % 5) as f64;
                    acc += (omega * x).sin() + 0.3 * x * ((k + d) % 3) as f64;
                }
                acc
            })
            .collect()
    }
}

impl Simulator for SyntheticSimulator {
    fn input_dim(&self) -> usize {
        self.in_dim
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn simulate(&self, input: &[f64], seed: u64) -> Result<Vec<f64>> {
        if input.len() != self.in_dim {
            return Err(LeError::InvalidConfig(format!(
                "expected {} inputs, got {}",
                self.in_dim,
                input.len()
            )));
        }
        // Artificial expense (kept observable so it is not optimized away).
        let mut sink = 0.0f64;
        for i in 0..self.cost_iters {
            sink += ((i as f64) * 1e-3).sin();
        }
        let mut out = self.truth(input);
        if self.noise > 0.0 {
            let mut rng = le_linalg::Rng::new(seed);
            for v in &mut out {
                *v += self.noise * rng.gaussian();
            }
        }
        // Fold the sink in at zero weight to keep the loop alive.
        if sink.is_nan() {
            out[0] += 1e-300;
        }
        Ok(out)
    }

    fn name(&self) -> &str {
        "synthetic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_and_validation() {
        let sim = SyntheticSimulator::new(3, 2, 0, 0.0);
        assert_eq!(sim.input_dim(), 3);
        assert_eq!(sim.output_dim(), 2);
        assert!(sim.simulate(&[1.0, 2.0], 0).is_err());
        assert_eq!(sim.simulate(&[0.1, 0.2, 0.3], 0).unwrap().len(), 2);
    }

    #[test]
    fn noise_free_matches_truth_and_is_deterministic() {
        let sim = SyntheticSimulator::new(2, 2, 100, 0.0);
        let x = [0.4, -0.9];
        assert_eq!(sim.simulate(&x, 1).unwrap(), sim.truth(&x));
        assert_eq!(sim.simulate(&x, 1).unwrap(), sim.simulate(&x, 2).unwrap());
    }

    #[test]
    fn noisy_outputs_depend_on_seed_only() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.1);
        let x = [0.5, 0.5];
        assert_eq!(sim.simulate(&x, 7).unwrap(), sim.simulate(&x, 7).unwrap());
        assert_ne!(sim.simulate(&x, 7).unwrap(), sim.simulate(&x, 8).unwrap());
    }

    #[test]
    fn truth_is_smooth_in_inputs() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let y0 = sim.truth(&[0.5, 0.5])[0];
        let y1 = sim.truth(&[0.5001, 0.5])[0];
        assert!((y0 - y1).abs() < 1e-2);
    }

    #[test]
    fn cost_iters_increase_wall_time() {
        let cheap = SyntheticSimulator::new(2, 1, 0, 0.0);
        let costly = SyntheticSimulator::new(2, 1, 2_000_000, 0.0);
        let x = [0.1, 0.2];
        let t0 = std::time::Instant::now();
        for _ in 0..5 {
            let _ = cheap.simulate(&x, 0).unwrap();
        }
        let t_cheap = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..5 {
            let _ = costly.simulate(&x, 0).unwrap();
        }
        let t_costly = t1.elapsed();
        assert!(t_costly > t_cheap, "{t_costly:?} vs {t_cheap:?}");
    }
}
