//! Active learning for surrogate training (E5).
//!
//! §II-C2 (ref [34]): "The AL approach reduced the amount of required
//! training data to 10% of the original model by iteratively adding
//! training data calculations for regions of chemical space where the
//! current ML model could not make good predictions." The loop:
//!
//! 1. train a surrogate on the runs so far,
//! 2. score a candidate pool with the configured UQ backend,
//! 3. run the simulator on the `batch` most uncertain candidates
//!    (in parallel — they are independent simulations),
//! 4. repeat until the budget is exhausted, recording a learning curve.
//!
//! Two UQ backends are provided, mirroring the paper's research issue 10
//! (dropout-based UQ "does not always mean that the quality of the
//! distribution is dependent on the quality/quantity of data"):
//! [`UqBackend::McDropout`] — cheap, but its spread tracks activation
//! magnitude more than fit error; and [`UqBackend::Ensemble`] — member
//! disagreement, which concentrates exactly where the fit is wrong and is
//! the backend that realizes the paper's data-reduction claim.

use le_linalg::{Matrix, Rng};
use le_nn::{Activation, MlpConfig, Optimizer, Scaler, TrainConfig};

use le_uq::{select_batch, AcquisitionStrategy, DeepEnsemble, Prediction, UncertainModel};

use crate::simulator::Simulator;
use crate::surrogate::{NnSurrogate, SurrogateConfig};
use crate::{LeError, Result};

/// Which uncertainty estimator drives acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UqBackend {
    /// MC-dropout on a single network (cheap; needs `dropout > 0`).
    McDropout,
    /// A deep ensemble of independently initialized networks; member
    /// disagreement is the uncertainty (reliable; `members`× training
    /// cost).
    Ensemble {
        /// Ensemble size (≥ 2).
        members: usize,
    },
}

/// Active-learning loop configuration.
#[derive(Debug, Clone)]
pub struct ActiveConfig {
    /// Initial random design size.
    pub initial: usize,
    /// Simulations added per round.
    pub batch: usize,
    /// Total simulation budget (including the initial design).
    pub budget: usize,
    /// Acquisition strategy.
    pub strategy: AcquisitionStrategy,
    /// Uncertainty backend.
    pub backend: UqBackend,
    /// Surrogate settings (architecture shared by both backends).
    pub surrogate: SurrogateConfig,
    /// Seed.
    pub seed: u64,
}

/// One point on the learning curve.
#[derive(Debug, Clone, Copy)]
pub struct CurvePoint {
    /// Simulations consumed so far.
    pub n_runs: usize,
    /// Validation RMSE (pooled over outputs) at this point.
    pub rmse: f64,
}

/// A fitted surrogate from either backend.
pub enum FittedSurrogate {
    /// Single dropout network.
    Dropout(NnSurrogate),
    /// Scaled deep ensemble.
    Ensemble(EnsembleSurrogate),
}

impl FittedSurrogate {
    /// Point prediction in natural units.
    pub fn predict(&self, x: &[f64]) -> Result<Vec<f64>> {
        match self {
            FittedSurrogate::Dropout(s) => s.predict(x),
            FittedSurrogate::Ensemble(e) => Ok(e.predict_point(x)),
        }
    }
}

impl UncertainModel for FittedSurrogate {
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
        match self {
            FittedSurrogate::Dropout(s) => UncertainModel::predict_with_uncertainty(s, x),
            FittedSurrogate::Ensemble(e) => e.predict_with_uncertainty(x),
        }
    }

    fn predict_point(&self, x: &[f64]) -> Vec<f64> {
        match self {
            FittedSurrogate::Dropout(s) => s.predict_point(x),
            FittedSurrogate::Ensemble(e) => e.predict_point(x),
        }
    }

    fn out_dim(&self) -> usize {
        match self {
            FittedSurrogate::Dropout(s) => UncertainModel::out_dim(s),
            FittedSurrogate::Ensemble(e) => UncertainModel::out_dim(e),
        }
    }
}

/// A deep ensemble wrapped with input/output standardization so it works
/// in the simulator's natural units (like [`NnSurrogate`]).
pub struct EnsembleSurrogate {
    ensemble: DeepEnsemble,
    x_scaler: Scaler,
    y_scaler: Scaler,
}

impl EnsembleSurrogate {
    /// Train `members` networks on `(x, y)` in natural units.
    pub fn fit(
        x: &Matrix,
        y: &Matrix,
        config: &SurrogateConfig,
        members: usize,
        seed: u64,
    ) -> Result<Self> {
        if members < 2 {
            return Err(LeError::InvalidConfig("ensemble needs ≥ 2 members".into()));
        }
        if x.rows() != y.rows() || x.rows() == 0 {
            return Err(LeError::InsufficientData(format!(
                "{} inputs vs {} outputs",
                x.rows(),
                y.rows()
            )));
        }
        let x_scaler = Scaler::fit(x).map_err(|e| LeError::Model(e.to_string()))?;
        let y_scaler = Scaler::fit(y).map_err(|e| LeError::Model(e.to_string()))?;
        let xs = x_scaler.transform(x).map_err(|e| LeError::Model(e.to_string()))?;
        let ys = y_scaler.transform(y).map_err(|e| LeError::Model(e.to_string()))?;
        let mut layers = vec![x.cols()];
        layers.extend_from_slice(&config.hidden);
        layers.push(y.cols());
        let mlp_config = MlpConfig {
            layers,
            hidden_activation: Activation::Tanh,
            output_activation: Activation::Identity,
            dropout: 0.0, // ensembles need no dropout
        };
        let train_config = TrainConfig {
            epochs: config.epochs,
            optimizer: Optimizer::adam(config.lr),
            ..Default::default()
        };
        let ensemble =
            DeepEnsemble::train(&mlp_config, &train_config, &xs, &ys, members, true, seed)
                .map_err(|e| LeError::Model(e.to_string()))?;
        Ok(Self {
            ensemble,
            x_scaler,
            y_scaler,
        })
    }
}

impl UncertainModel for EnsembleSurrogate {
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
        let mut xs = x.to_vec();
        self.x_scaler
            .transform_slice(&mut xs)
            .expect("caller checked dims"); // lint:allow(no-panic): dims validated at loop entry
        let p = self.ensemble.predict_with_uncertainty(&xs);
        let mut mean = p.mean;
        self.y_scaler
            .inverse_transform_slice(&mut mean)
            .expect("widths fixed"); // lint:allow(no-panic): scaler fitted on the same width
        let std = p
            .std
            .iter()
            .enumerate()
            .map(|(k, &s)| self.y_scaler.inverse_scale_std(k, s))
            .collect();
        Prediction { mean, std }
    }

    fn predict_point(&self, x: &[f64]) -> Vec<f64> {
        let mut xs = x.to_vec();
        self.x_scaler
            .transform_slice(&mut xs)
            .expect("caller checked dims"); // lint:allow(no-panic): dims validated at loop entry
        let mut y = self.ensemble.predict_point(&xs);
        self.y_scaler
            .inverse_transform_slice(&mut y)
            .expect("widths fixed"); // lint:allow(no-panic): scaler fitted on the same width
        y
    }

    fn out_dim(&self) -> usize {
        self.ensemble.out_dim()
    }
}

/// The result of an active-learning campaign.
pub struct ActiveOutcome {
    /// The final surrogate.
    pub surrogate: FittedSurrogate,
    /// Learning curve after each round.
    pub curve: Vec<CurvePoint>,
}

/// Pooled RMSE of a surrogate on a labelled validation set. The dropout
/// backend scores the whole set with one fused batch evaluation (bit-
/// identical to per-point prediction); the ensemble backend stays
/// per-point.
pub fn validation_rmse(surrogate: &FittedSurrogate, val_x: &[Vec<f64>], val_y: &[Vec<f64>]) -> f64 {
    let preds: Vec<Vec<f64>> = match surrogate {
        FittedSurrogate::Dropout(s) => {
            s.predict_batch(val_x).expect("validated dims") // lint:allow(no-panic): dims validated at loop entry
        }
        FittedSurrogate::Ensemble(_) => val_x
            .iter()
            .map(|x| surrogate.predict(x).expect("validated dims")) // lint:allow(no-panic): dims validated at loop entry
            .collect(),
    };
    let mut ss = 0.0;
    let mut n = 0usize;
    for (p, y) in preds.iter().zip(val_y.iter()) {
        for (&pi, &yi) in p.iter().zip(y.iter()) {
            ss += (pi - yi) * (pi - yi);
            n += 1;
        }
    }
    (ss / n.max(1) as f64).sqrt()
}

fn fit_backend(
    x: &Matrix,
    y: &Matrix,
    cfg: &ActiveConfig,
    round: u64,
) -> Result<FittedSurrogate> {
    let seed = cfg.surrogate.seed ^ round;
    match cfg.backend {
        UqBackend::McDropout => {
            let sconfig = SurrogateConfig {
                seed,
                ..cfg.surrogate.clone()
            };
            Ok(FittedSurrogate::Dropout(NnSurrogate::fit(x, y, &sconfig)?))
        }
        UqBackend::Ensemble { members } => Ok(FittedSurrogate::Ensemble(
            EnsembleSurrogate::fit(x, y, &cfg.surrogate, members, seed)?,
        )),
    }
}

/// Run the active-learning campaign against `simulator` using `pool` as the
/// candidate set and `(val_x, val_y)` as the held-out validation set.
pub fn run_active_learning<S: Simulator>(
    simulator: &S,
    pool: &[Vec<f64>],
    val_x: &[Vec<f64>],
    val_y: &[Vec<f64>],
    cfg: &ActiveConfig,
) -> Result<ActiveOutcome> {
    if cfg.initial < 4 || cfg.batch == 0 || cfg.budget <= cfg.initial {
        return Err(LeError::InvalidConfig(format!(
            "initial {} (≥4), batch {} (>0), budget {} (> initial)",
            cfg.initial, cfg.batch, cfg.budget
        )));
    }
    if pool.len() < cfg.budget {
        return Err(LeError::InsufficientData(format!(
            "pool of {} cannot supply budget {}",
            pool.len(),
            cfg.budget
        )));
    }
    if val_x.is_empty() || val_x.len() != val_y.len() {
        return Err(LeError::InvalidConfig("bad validation set".into()));
    }
    let mut rng = Rng::new(cfg.seed);
    // Initial random design from the pool.
    let mut remaining: Vec<usize> = (0..pool.len()).collect();
    rng.shuffle(&mut remaining);
    let mut chosen: Vec<usize> = remaining.drain(..cfg.initial).collect();

    let simulate_batch = |indices: &[usize], base_seed: u64| -> Result<Vec<Vec<f64>>> {
        le_pool::par_map_index(indices.len(), |k| {
            let i = indices[k];
            simulator
                .simulate(&pool[i], base_seed.wrapping_add(k as u64))
                .map_err(|e| LeError::Simulation(e.to_string()))
        })
        .into_iter()
        .collect()
    };

    let mut labels: Vec<Vec<f64>> = simulate_batch(&chosen, cfg.seed ^ 0x1111)?;
    let mut curve = Vec::new();
    let mut round = 0u64;
    loop {
        // Fit on everything labelled so far.
        let n = chosen.len();
        let mut x = Matrix::zeros(n, simulator.input_dim());
        let mut y = Matrix::zeros(n, simulator.output_dim());
        for (r, (&i, lab)) in chosen.iter().zip(labels.iter()).enumerate() {
            x.row_mut(r).copy_from_slice(&pool[i]);
            y.row_mut(r).copy_from_slice(lab);
        }
        let mut surrogate = fit_backend(&x, &y, cfg, round)?;
        curve.push(CurvePoint {
            n_runs: n,
            rmse: validation_rmse(&surrogate, val_x, val_y),
        });
        if n >= cfg.budget || remaining.is_empty() {
            return Ok(ActiveOutcome { surrogate, curve });
        }
        // Acquire the next batch from the remaining pool.
        let candidates: Vec<Vec<f64>> = remaining.iter().map(|&i| pool[i].clone()).collect();
        let take = cfg.batch.min(cfg.budget - n).min(remaining.len());
        let picked_local = select_batch(
            &mut surrogate,
            &candidates,
            take,
            cfg.strategy,
            cfg.seed ^ (round << 8),
        );
        // Map back to pool indices and remove from `remaining`
        // (descending order so removal indices stay valid).
        let mut picked_sorted = picked_local.clone();
        picked_sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut new_indices = Vec::with_capacity(picked_sorted.len());
        for local in picked_sorted {
            new_indices.push(remaining.remove(local));
        }
        let new_labels = simulate_batch(&new_indices, cfg.seed ^ (0x2222 + round))?;
        chosen.extend(new_indices);
        labels.extend(new_labels);
        round += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SyntheticSimulator;

    fn make_pool(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| vec![rng.uniform_in(-1.5, 1.5), rng.uniform_in(-1.5, 1.5)])
            .collect()
    }

    fn validation(sim: &SyntheticSimulator, n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let xs = make_pool(n, seed);
        let ys = xs.iter().map(|x| sim.truth(x)).collect();
        (xs, ys)
    }

    fn quick_cfg(strategy: AcquisitionStrategy, backend: UqBackend, seed: u64) -> ActiveConfig {
        ActiveConfig {
            initial: 24,
            batch: 16,
            budget: 88,
            strategy,
            backend,
            surrogate: SurrogateConfig {
                epochs: 100,
                dropout: 0.15,
                mc_samples: 15,
                ..Default::default()
            },
            seed,
        }
    }

    #[test]
    fn validation_of_config() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let pool = make_pool(100, 1);
        let (vx, vy) = validation(&sim, 20, 2);
        let mut bad = quick_cfg(AcquisitionStrategy::Random, UqBackend::McDropout, 0);
        bad.initial = 2;
        assert!(run_active_learning(&sim, &pool, &vx, &vy, &bad).is_err());
        let mut bad2 = quick_cfg(AcquisitionStrategy::Random, UqBackend::McDropout, 0);
        bad2.budget = 10_000;
        assert!(run_active_learning(&sim, &pool, &vx, &vy, &bad2).is_err());
        assert!(run_active_learning(
            &sim,
            &pool,
            &[],
            &[],
            &quick_cfg(AcquisitionStrategy::Random, UqBackend::McDropout, 0)
        )
        .is_err());
        // Ensemble backend needs ≥ 2 members.
        let bad3 = quick_cfg(
            AcquisitionStrategy::MaxUncertainty,
            UqBackend::Ensemble { members: 1 },
            0,
        );
        assert!(run_active_learning(&sim, &pool, &vx, &vy, &bad3).is_err());
    }

    #[test]
    fn curve_improves_with_more_data() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let pool = make_pool(300, 3);
        let (vx, vy) = validation(&sim, 60, 4);
        let out = run_active_learning(
            &sim,
            &pool,
            &vx,
            &vy,
            &quick_cfg(
                AcquisitionStrategy::MaxUncertainty,
                UqBackend::McDropout,
                5,
            ),
        )
        .unwrap();
        assert!(out.curve.len() >= 3);
        let first = out.curve[0].rmse;
        let last = out.curve.last().unwrap().rmse;
        assert!(
            last < first,
            "active learning should improve: {first} -> {last}"
        );
        // Budget respected.
        assert_eq!(out.curve.last().unwrap().n_runs, 88);
        // Runs strictly increase along the curve.
        assert!(out.curve.windows(2).all(|w| w[1].n_runs > w[0].n_runs));
    }

    #[test]
    fn ensemble_backend_completes_and_improves() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let pool = make_pool(300, 6);
        let (vx, vy) = validation(&sim, 40, 7);
        let out = run_active_learning(
            &sim,
            &pool,
            &vx,
            &vy,
            &quick_cfg(
                AcquisitionStrategy::MaxUncertainty,
                UqBackend::Ensemble { members: 3 },
                8,
            ),
        )
        .unwrap();
        assert_eq!(out.curve.last().unwrap().n_runs, 88);
        assert!(out.curve.last().unwrap().rmse < out.curve[0].rmse);
        // The final surrogate predicts sensibly.
        let p = out.surrogate.predict(&[0.2, 0.2]).unwrap();
        assert!((p[0] - sim.truth(&[0.2, 0.2])[0]).abs() < 1.0);
    }

    #[test]
    fn both_strategies_complete_with_same_budget() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let pool = make_pool(300, 6);
        let (vx, vy) = validation(&sim, 40, 7);
        for strategy in [AcquisitionStrategy::Random, AcquisitionStrategy::MaxUncertainty] {
            let out = run_active_learning(
                &sim,
                &pool,
                &vx,
                &vy,
                &quick_cfg(strategy, UqBackend::McDropout, 8),
            )
            .unwrap();
            assert_eq!(out.curve.last().unwrap().n_runs, 88);
            assert!(out.curve.last().unwrap().rmse.is_finite());
        }
    }

    #[test]
    fn ensemble_surrogate_units_roundtrip() {
        // Outputs on very different scales: natural-unit predictions and
        // stds must reflect them.
        let mut rng = Rng::new(9);
        let n = 200;
        let mut x = Matrix::zeros(n, 1);
        let mut y = Matrix::zeros(n, 2);
        for i in 0..n {
            let v = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, v);
            y.set(i, 0, v);
            y.set(i, 1, 1000.0 * v);
        }
        let mut ens = EnsembleSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                epochs: 80,
                ..Default::default()
            },
            3,
            11,
        )
        .unwrap();
        let p = ens.predict_with_uncertainty(&[0.5]);
        assert!((p.mean[0] - 0.5).abs() < 0.2, "output 0: {}", p.mean[0]);
        assert!((p.mean[1] - 500.0).abs() < 200.0, "output 1: {}", p.mean[1]);
        assert!(
            p.std[1] > p.std[0],
            "std must be in natural units: {:?}",
            p.std
        );
    }

    #[test]
    fn validation_rmse_zero_for_perfect_model() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let pool = make_pool(400, 9);
        let labels: Vec<Vec<f64>> = pool.iter().map(|x| sim.truth(x)).collect();
        let mut x = Matrix::zeros(400, 2);
        let mut y = Matrix::zeros(400, 1);
        for i in 0..400 {
            x.row_mut(i).copy_from_slice(&pool[i]);
            y.row_mut(i).copy_from_slice(&labels[i]);
        }
        let s = NnSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                epochs: 250,
                dropout: 0.05,
                ..Default::default()
            },
        )
        .unwrap();
        let (vx, vy) = validation(&sim, 50, 10);
        let rmse = validation_rmse(&FittedSurrogate::Dropout(s), &vx, &vy);
        assert!(rmse < 0.4, "well-trained surrogate rmse {rmse}");
    }
}
