//! [`NnSurrogate`] — the learned stand-in for a simulator: input/output
//! standardization + an MLP with dropout + MC-dropout uncertainty, all in
//! the simulator's native units.
//!
//! All inference rides the arena-backed batch engine
//! ([`le_nn::BatchScratch`]): point predictions reuse one flat scratch (no
//! per-query `Matrix` or `Vec` churn after warm-up), and MC-dropout
//! uncertainty runs all `mc_samples` passes for all queried rows as one
//! fused GEMM batch. Dropout masks come from stateless per-consult
//! substreams — consult `i` draws from `Rng::substream(mask_seed, i)` — so
//! a batched uncertainty query over B rows is bit-identical to B
//! sequential single-row queries (see `le_nn::batch` for the canonical
//! mask order and the full determinism contract).

use std::cell::RefCell;

use le_linalg::{Matrix, Rng};
use le_nn::{BatchScratch, Mlp, MlpConfig, Optimizer, Scaler, TrainConfig, Trainer};
use le_uq::{Prediction, UncertainModel};

use crate::{LeError, Result};

/// Architecture and training settings for a surrogate.
#[derive(Debug, Clone)]
pub struct SurrogateConfig {
    /// Hidden-layer widths.
    pub hidden: Vec<usize>,
    /// Dropout rate (must be > 0 for MC-dropout UQ to carry signal).
    pub dropout: f64,
    /// Training epochs per (re)fit.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// MC-dropout samples per uncertainty query.
    pub mc_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SurrogateConfig {
    fn default() -> Self {
        Self {
            hidden: vec![64, 64],
            dropout: 0.1,
            epochs: 200,
            lr: 3e-3,
            mc_samples: 30,
            seed: 0,
        }
    }
}

/// Reusable flat staging buffers for scaling inputs/outputs around the
/// batch engine. Lives behind a `RefCell` so `&self` point predictions can
/// reuse it without reallocating.
#[derive(Debug, Clone, Default)]
struct Stage {
    x: Vec<f64>,
    y: Vec<f64>,
    mean: Vec<f64>,
    std: Vec<f64>,
}

/// A trained surrogate: scalers + MLP + the fused batch engine and the
/// stateless MC-dropout mask-stream seed.
#[derive(Debug, Clone)]
pub struct NnSurrogate {
    net: Mlp,
    x_scaler: Scaler,
    y_scaler: Scaler,
    mc_samples: usize,
    /// Seed of the stateless mask-substream family; consult `i` draws its
    /// dropout masks from `Rng::substream(mask_seed, i)`.
    mask_seed: u64,
    /// Next unconsumed consult ordinal; advanced by B on every successful
    /// B-row uncertainty evaluation (point predictions draw no masks).
    mc_ordinal: u64,
    in_dim: usize,
    out_dim: usize,
    scratch: RefCell<BatchScratch>,
    stage: RefCell<Stage>,
}

impl NnSurrogate {
    /// Fit a surrogate to `(x, y)` rows in natural units.
    pub fn fit(x: &Matrix, y: &Matrix, config: &SurrogateConfig) -> Result<Self> {
        if x.rows() != y.rows() || x.rows() == 0 {
            return Err(LeError::InsufficientData(format!(
                "{} inputs vs {} outputs",
                x.rows(),
                y.rows()
            )));
        }
        if x.as_slice().iter().chain(y.as_slice()).any(|v| !v.is_finite()) {
            return Err(LeError::Model(
                "training data contains non-finite values".into(),
            ));
        }
        let x_scaler = Scaler::fit(x).map_err(|e| LeError::Model(e.to_string()))?;
        let y_scaler = Scaler::fit(y).map_err(|e| LeError::Model(e.to_string()))?;
        let xs = x_scaler.transform(x).map_err(|e| LeError::Model(e.to_string()))?;
        let ys = y_scaler.transform(y).map_err(|e| LeError::Model(e.to_string()))?;
        let mut layers = vec![x.cols()];
        layers.extend_from_slice(&config.hidden);
        layers.push(y.cols());
        let mut rng = Rng::new(config.seed);
        let mut net = Mlp::new(
            MlpConfig::regression_with_dropout(&layers, config.dropout),
            &mut rng,
        )
        .map_err(|e| LeError::Model(e.to_string()))?;
        Trainer::new(TrainConfig {
            epochs: config.epochs,
            optimizer: Optimizer::adam(config.lr),
            seed: config.seed ^ 0xDADA,
            ..Default::default()
        })
        .fit(&mut net, &xs, &ys)
        .map_err(|e| LeError::Model(e.to_string()))?;
        let scratch = RefCell::new(BatchScratch::new(&net));
        Ok(Self {
            net,
            x_scaler,
            y_scaler,
            mc_samples: config.mc_samples.max(2),
            mask_seed: rng.split().next_u64(),
            mc_ordinal: 0,
            in_dim: x.cols(),
            out_dim: y.cols(),
            scratch,
            stage: RefCell::new(Stage::default()),
        })
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.out_dim
    }

    /// The trained network (weights in natural `(in, out)` layout per
    /// layer). Exposed read-only so harnesses can reconstruct reference
    /// implementations — e.g. the surrogate-batch bench replays the
    /// pre-batch-engine per-query path against the same parameters.
    pub fn model(&self) -> &Mlp {
        &self.net
    }

    /// The fitted input standardizer (see [`NnSurrogate::model`]).
    pub fn x_scaler(&self) -> &Scaler {
        &self.x_scaler
    }

    /// The fitted output standardizer (see [`NnSurrogate::model`]).
    pub fn y_scaler(&self) -> &Scaler {
        &self.y_scaler
    }

    /// Number of stochastic passes per uncertainty evaluation.
    pub fn mc_samples(&self) -> usize {
        self.mc_samples
    }

    /// Stage `inputs` as one flat scaled batch in `stage.x`. Validates every
    /// row's width first so nothing is consumed on a dimension error.
    fn stage_scaled_inputs(&self, inputs: &[&[f64]]) -> Result<()> {
        for row in inputs {
            if row.len() != self.in_dim {
                return Err(LeError::InvalidConfig(format!(
                    "expected {} inputs, got {}",
                    self.in_dim,
                    row.len()
                )));
            }
        }
        let mut stage = self.stage.borrow_mut();
        stage.x.clear();
        for row in inputs {
            stage.x.extend_from_slice(row);
        }
        for chunk in stage.x.chunks_exact_mut(self.in_dim) {
            self.x_scaler
                .transform_slice(chunk)
                .map_err(|e| LeError::Model(e.to_string()))?;
        }
        Ok(())
    }

    /// Deterministic point prediction written into `out` (length
    /// `output_dim`), natural units. This is the allocation-free primitive
    /// behind [`NnSurrogate::predict`]: after warm-up the staging buffers
    /// and the engine arenas are reused, so a point prediction allocates
    /// nothing.
    pub fn predict_into(&self, input: &[f64], out: &mut [f64]) -> Result<()> {
        if out.len() != self.out_dim {
            return Err(LeError::InvalidConfig(format!(
                "expected {} outputs, got {}",
                self.out_dim,
                out.len()
            )));
        }
        self.stage_scaled_inputs(&[input])?;
        let stage = self.stage.borrow();
        self.scratch
            .borrow_mut()
            .forward_into(&stage.x, 1, out)
            .map_err(|e| LeError::Model(e.to_string()))?;
        self.y_scaler
            .inverse_transform_slice(out)
            .map_err(|e| LeError::Model(e.to_string()))?;
        Ok(())
    }

    /// Deterministic point prediction in natural units.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>> {
        let mut y = vec![0.0; self.out_dim];
        self.predict_into(input, &mut y)?;
        Ok(y)
    }

    /// Deterministic point predictions for a flat row-major `(rows,
    /// input_dim)` batch, written into the flat `(rows, output_dim)` `out`
    /// slice with one batched engine pass. Allocation-free after warm-up.
    pub fn predict_batch_into(&self, x: &[f64], rows: usize, out: &mut [f64]) -> Result<()> {
        if x.len() != rows * self.in_dim || out.len() != rows * self.out_dim {
            return Err(LeError::InvalidConfig(format!(
                "batch shape mismatch: x {} vs rows {} × {}, out {} vs rows × {}",
                x.len(),
                rows,
                self.in_dim,
                out.len(),
                self.out_dim
            )));
        }
        let mut stage = self.stage.borrow_mut();
        stage.x.clear();
        stage.x.extend_from_slice(x);
        for chunk in stage.x.chunks_exact_mut(self.in_dim) {
            self.x_scaler
                .transform_slice(chunk)
                .map_err(|e| LeError::Model(e.to_string()))?;
        }
        self.scratch
            .borrow_mut()
            .forward_into(&stage.x, rows, out)
            .map_err(|e| LeError::Model(e.to_string()))?;
        for chunk in out.chunks_exact_mut(self.out_dim) {
            self.y_scaler
                .inverse_transform_slice(chunk)
                .map_err(|e| LeError::Model(e.to_string()))?;
        }
        Ok(())
    }

    /// Deterministic point predictions for many inputs with one batched
    /// engine pass; row `r` of the result is bit-identical to
    /// `predict(&inputs[r])`.
    pub fn predict_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        self.stage_scaled_inputs(&refs)?;
        let rows = inputs.len();
        let mut stage = self.stage.borrow_mut();
        let Stage { x, y, .. } = &mut *stage;
        y.resize(rows * self.out_dim, 0.0);
        self.scratch
            .borrow_mut()
            .forward_into(x, rows, y)
            .map_err(|e| LeError::Model(e.to_string()))?;
        for chunk in y.chunks_exact_mut(self.out_dim) {
            self.y_scaler
                .inverse_transform_slice(chunk)
                .map_err(|e| LeError::Model(e.to_string()))?;
        }
        Ok(y.chunks_exact(self.out_dim).map(|c| c.to_vec()).collect())
    }

    /// MC-dropout prediction with per-output mean and std, natural units.
    /// A batch of one: consumes one consult ordinal.
    pub fn predict_with_uncertainty(&mut self, input: &[f64]) -> Result<Prediction> {
        let mut preds = self.predict_with_uncertainty_rows(&[input])?;
        Ok(preds.pop().expect("one row in, one prediction out")) // lint:allow(no-panic): rows len 1 is checked by construction
    }

    /// Fused MC-dropout predictions for a whole batch: all `mc_samples`
    /// passes for all rows run as one `(K·B, ·)` GEMM batch. Row `r`
    /// consumes consult ordinal `mc_ordinal + r`, so the result is
    /// bit-identical to B sequential [`NnSurrogate::predict_with_uncertainty`]
    /// calls; the ordinal counter commits only after a successful
    /// evaluation (a failed or panicked evaluation consumes nothing).
    pub fn predict_with_uncertainty_batch(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<Prediction>> {
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        self.predict_with_uncertainty_rows(&refs)
    }

    /// Shared fused-UQ path over borrowed rows (see
    /// [`NnSurrogate::predict_with_uncertainty_batch`]).
    pub fn predict_with_uncertainty_rows(&mut self, inputs: &[&[f64]]) -> Result<Vec<Prediction>> {
        self.stage_scaled_inputs(inputs)?;
        let rows = inputs.len();
        let mut stage = self.stage.borrow_mut();
        let Stage { x, mean, std, .. } = &mut *stage;
        mean.resize(rows * self.out_dim, 0.0);
        std.resize(rows * self.out_dim, 0.0);
        self.scratch
            .borrow_mut()
            .mc_predict_into(x, rows, self.mc_samples, self.mask_seed, self.mc_ordinal, mean, std)
            .map_err(|e| LeError::Model(e.to_string()))?;
        self.mc_ordinal = self.mc_ordinal.wrapping_add(rows as u64);
        // Back to natural units: mean affine, std multiplicative.
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let mut m = mean[r * self.out_dim..(r + 1) * self.out_dim].to_vec();
            self.y_scaler
                .inverse_transform_slice(&mut m)
                .map_err(|e| LeError::Model(e.to_string()))?;
            let s: Vec<f64> = std[r * self.out_dim..(r + 1) * self.out_dim]
                .iter()
                .enumerate()
                .map(|(k, &v)| self.y_scaler.inverse_scale_std(k, v))
                .collect();
            out.push(Prediction { mean: m, std: s });
        }
        Ok(out)
    }
}

impl NnSurrogate {
    /// Serialize the surrogate (network + both scalers) to a single
    /// self-describing text blob.
    pub fn to_string_blob(&self) -> String {
        format!(
            "le-surrogate v1\nmc_samples {}\n--model--\n{}--x-scaler--\n{}--y-scaler--\n{}",
            self.mc_samples,
            le_nn::serialize::model_to_string(&self.net),
            le_nn::serialize::scaler_to_string(&self.x_scaler),
            le_nn::serialize::scaler_to_string(&self.y_scaler),
        )
    }

    /// Restore a surrogate from [`NnSurrogate::to_string_blob`] output.
    /// `seed` re-seeds the MC-dropout stream (predictions are unaffected;
    /// only the UQ sampling noise differs).
    pub fn from_string_blob(blob: &str, seed: u64) -> Result<Self> {
        let mut lines = blob.lines();
        let magic = lines.next().unwrap_or("");
        if magic.trim() != "le-surrogate v1" {
            return Err(LeError::Model(format!("bad surrogate magic `{magic}`")));
        }
        let mc_line = lines.next().unwrap_or("");
        let mc_samples: usize = mc_line
            .strip_prefix("mc_samples ")
            .and_then(|s| s.trim().parse().ok())
            .ok_or_else(|| LeError::Model(format!("bad mc_samples line `{mc_line}`")))?;
        // Split on the section markers.
        let rest: String = blob.split_once("--model--\n").map(|x| x.1)
            .ok_or_else(|| LeError::Model("missing model section".into()))?
            .to_string();
        let (model_part, rest) = rest
            .split_once("--x-scaler--\n")
            .ok_or_else(|| LeError::Model("missing x-scaler section".into()))?;
        let (x_part, y_part) = rest
            .split_once("--y-scaler--\n")
            .ok_or_else(|| LeError::Model("missing y-scaler section".into()))?;
        let net = le_nn::serialize::model_from_string(model_part)
            .map_err(|e| LeError::Model(e.to_string()))?;
        let x_scaler = le_nn::serialize::scaler_from_string(x_part)
            .map_err(|e| LeError::Model(e.to_string()))?;
        let y_scaler = le_nn::serialize::scaler_from_string(y_part)
            .map_err(|e| LeError::Model(e.to_string()))?;
        let in_dim = net.in_dim();
        let out_dim = net.out_dim();
        if x_scaler.cols() != in_dim || y_scaler.cols() != out_dim {
            return Err(LeError::Model(format!(
                "scaler/model width mismatch: x {} vs {}, y {} vs {}",
                x_scaler.cols(),
                in_dim,
                y_scaler.cols(),
                out_dim
            )));
        }
        let scratch = RefCell::new(BatchScratch::new(&net));
        Ok(Self {
            net,
            x_scaler,
            y_scaler,
            mc_samples: mc_samples.max(2),
            mask_seed: seed,
            mc_ordinal: 0,
            in_dim,
            out_dim,
            scratch,
            stage: RefCell::new(Stage::default()),
        })
    }

    /// Save to a file.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_string_blob()).map_err(|e| LeError::Model(e.to_string()))
    }

    /// Load from a file.
    pub fn load(path: &std::path::Path, seed: u64) -> Result<Self> {
        let blob =
            std::fs::read_to_string(path).map_err(|e| LeError::Model(e.to_string()))?;
        Self::from_string_blob(&blob, seed)
    }
}

impl UncertainModel for NnSurrogate {
    fn predict_with_uncertainty(&mut self, x: &[f64]) -> Prediction {
        NnSurrogate::predict_with_uncertainty(self, x)
            .expect("dimension checked by acquisition caller") // lint:allow(no-panic): acquisition validates dims first
    }

    fn predict_point(&self, x: &[f64]) -> Vec<f64> {
        self.predict(x).expect("dimension checked by caller") // lint:allow(no-panic): public entry validates dims first
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize, seed: u64) -> (Matrix, Matrix) {
        // y0 = 10 + 5 sin(x0) + x1 ; y1 = 100 x0 (different output scales).
        let mut rng = Rng::new(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = Matrix::zeros(n, 2);
        for i in 0..n {
            let a = rng.uniform_in(-2.0, 2.0);
            let b = rng.uniform_in(-1.0, 1.0);
            x.set(i, 0, a);
            x.set(i, 1, b);
            y.set(i, 0, 10.0 + 5.0 * a.sin() + b);
            y.set(i, 1, 100.0 * a);
        }
        (x, y)
    }

    #[test]
    fn fit_and_predict_in_natural_units() {
        let (x, y) = dataset(600, 1);
        let s = NnSurrogate::fit(&x, &y, &SurrogateConfig::default()).unwrap();
        assert_eq!(s.input_dim(), 2);
        assert_eq!(s.output_dim(), 2);
        let p = s.predict(&[1.0, 0.5]).unwrap();
        let want0 = 10.0 + 5.0 * 1.0f64.sin() + 0.5;
        let want1 = 100.0;
        assert!((p[0] - want0).abs() < 1.0, "y0 {} vs {want0}", p[0]);
        assert!((p[1] - want1).abs() < 12.0, "y1 {} vs {want1}", p[1]);
    }

    #[test]
    fn uncertainty_in_natural_units_scales_with_output() {
        let (x, y) = dataset(400, 2);
        let mut s = NnSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                dropout: 0.2,
                mc_samples: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let p = NnSurrogate::predict_with_uncertainty(&mut s, &[0.5, 0.0]).unwrap();
        assert_eq!(p.mean.len(), 2);
        assert!(p.std.iter().all(|&v| v > 0.0));
        // Output 1 spans hundreds while output 0 spans ~10: natural-unit
        // uncertainty should reflect that scale difference.
        assert!(
            p.std[1] > p.std[0],
            "std must be unscaled to natural units: {:?}",
            p.std
        );
    }

    #[test]
    fn extrapolation_more_uncertain() {
        let (x, y) = dataset(400, 3);
        let mut s = NnSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                dropout: 0.25,
                mc_samples: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let inside = NnSurrogate::predict_with_uncertainty(&mut s, &[0.0, 0.0])
            .unwrap()
            .max_std();
        let outside = NnSurrogate::predict_with_uncertainty(&mut s, &[8.0, 8.0])
            .unwrap()
            .max_std();
        assert!(outside > inside, "outside {outside} vs inside {inside}");
    }

    #[test]
    fn validation_errors() {
        let (x, y) = dataset(50, 4);
        assert!(NnSurrogate::fit(&Matrix::zeros(0, 2), &Matrix::zeros(0, 2), &SurrogateConfig::default()).is_err());
        assert!(NnSurrogate::fit(&x, &Matrix::zeros(10, 2), &SurrogateConfig::default()).is_err());
        let s = NnSurrogate::fit(&x, &y, &SurrogateConfig {
            epochs: 5,
            ..Default::default()
        })
        .unwrap();
        assert!(s.predict(&[1.0]).is_err());
    }

    #[test]
    fn blob_roundtrip_preserves_predictions() {
        let (x, y) = dataset(200, 6);
        let s = NnSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                epochs: 50,
                dropout: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let blob = s.to_string_blob();
        let restored = NnSurrogate::from_string_blob(&blob, 99).unwrap();
        assert_eq!(restored.input_dim(), 2);
        assert_eq!(restored.output_dim(), 2);
        let probe = [0.4, -0.2];
        assert_eq!(
            s.predict(&probe).unwrap(),
            restored.predict(&probe).unwrap(),
            "bit-exact point predictions after round-trip"
        );
    }

    #[test]
    fn blob_rejects_corruption() {
        let (x, y) = dataset(60, 7);
        let s = NnSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                epochs: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let blob = s.to_string_blob();
        assert!(NnSurrogate::from_string_blob("garbage", 0).is_err());
        let truncated: String = blob.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(NnSurrogate::from_string_blob(&truncated, 0).is_err());
        let no_y = blob.replace("--y-scaler--", "--nope--");
        assert!(NnSurrogate::from_string_blob(&no_y, 0).is_err());
    }

    #[test]
    fn file_save_load() {
        let (x, y) = dataset(60, 8);
        let s = NnSurrogate::fit(
            &x,
            &y,
            &SurrogateConfig {
                epochs: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let dir = std::env::temp_dir().join("le_surrogate_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("surrogate.txt");
        s.save(&path).unwrap();
        let restored = NnSurrogate::load(&path, 1).unwrap();
        let probe = [0.1, 0.1];
        assert_eq!(s.predict(&probe).unwrap(), restored.predict(&probe).unwrap());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn deterministic_point_predictions() {
        let (x, y) = dataset(100, 5);
        let s = NnSurrogate::fit(&x, &y, &SurrogateConfig {
            epochs: 30,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(s.predict(&[0.3, 0.3]).unwrap(), s.predict(&[0.3, 0.3]).unwrap());
    }
}
