//! [`HybridEngine`] — the MLaroundHPC execution engine.
//!
//! Every query goes through the gate:
//!
//! 1. If a surrogate exists, evaluate it with MC-dropout uncertainty.
//! 2. If the largest per-output std is below the threshold τ, serve the
//!    prediction (a **lookup** — microseconds).
//! 3. Otherwise run the real simulator, serve its result, and append the
//!    pair to the training buffer — "no run is wasted. Training needs both
//!    successful and unsuccessful runs" (§II-C1).
//! 4. Retrain when the buffer has grown by the configured fraction.
//!
//! All four §III-D phase times are recorded into a
//! [`le_perfmodel::CampaignAccounting`], so the engine reports its own
//! effective speedup. The UQ gate also implements §III-B's proposal that
//! UQ should decide when "the training routine might less likely need
//! more data".
//!
//! Failure handling is delegated to the [`crate::supervisor`] degradation
//! ladder: finiteness guards on both gate predictions and simulator
//! outputs, bounded seeded retries (absorbing simulator panics), surrogate
//! quarantine with re-admission, and a terminal simulator-only `Degraded`
//! mode — a faulty simulator degrades the campaign, it does not kill it.

use std::panic::{catch_unwind, AssertUnwindSafe};

use le_linalg::Matrix;
use le_perfmodel::CampaignAccounting;

use crate::simulator::Simulator;
use crate::staleness::{StalenessConfig, StalenessDetector};
use crate::supervisor::{Supervisor, SupervisorConfig};
use crate::surrogate::{NnSurrogate, SurrogateConfig};
use crate::{LeError, Result};

/// Where a query's answer came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySource {
    /// Served by the trained surrogate.
    Lookup,
    /// Served by the real simulator (and added to the training buffer).
    Simulated,
}

/// One answered query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The output vector.
    pub output: Vec<f64>,
    /// Lookup or simulated.
    pub source: QuerySource,
    /// The uncertainty the gate saw (`None` before the first training).
    pub gate_std: Option<f64>,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Serve from the surrogate when max per-output std < τ (natural
    /// units).
    pub uncertainty_threshold: f64,
    /// Minimum buffered runs before the first training.
    pub min_training_runs: usize,
    /// Retrain when the buffer grows by this factor since the last fit.
    pub retrain_growth: f64,
    /// Surrogate architecture/training settings.
    pub surrogate: SurrogateConfig,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            uncertainty_threshold: 0.1,
            min_training_runs: 32,
            retrain_growth: 1.5,
            surrogate: SurrogateConfig::default(),
        }
    }
}

/// Opt-in rolling-retrain configuration
/// ([`HybridEngine::enable_rolling_retrain`]).
///
/// With rolling retrain enabled the engine retrains **without pausing
/// serving**: a mid-wave retrain trigger is *deferred* — the in-flight wave
/// keeps answering from the frozen surrogate snapshot — and the swap runs
/// at the deterministic wave boundary (the end of the current
/// `query`/`query_batch`/`query_each` invocation). The training buffer
/// becomes a recency-weighted sliding window: bounded at `buffer_cap` runs
/// (oldest evicted first, `hybrid.rolling.evicted`), with the newest
/// `recent_boost` runs duplicated into each fit so the model tracks the
/// drifted distribution faster than a uniform window would.
///
/// Growth-based retrain triggers count *total* runs seen
/// ([`HybridEngine::runs_seen`]), not the capped buffer length — otherwise
/// a full window would never trigger again.
///
/// `audit_every` adds deterministic **audit sampling**: every Nth query
/// (by the engine's serial query index) is simulated even when the UQ gate
/// would have served the surrogate. An MC-dropout net extrapolating onto a
/// drifted distribution is often *overconfidently wrong* — its gate std
/// barely moves while its error explodes — so a drifting stream can starve
/// both the staleness detector and the rolling buffer of ground truth.
/// Audit rows supply that truth at a bounded, seedless, thread-invariant
/// cadence (pure function of the query index), counted as
/// `hybrid.audit.simulated`. `0` disables auditing.
#[derive(Debug, Clone, Copy)]
pub struct RollingRetrainConfig {
    /// Maximum training-buffer length; older runs are evicted first.
    pub buffer_cap: usize,
    /// Newest runs duplicated into each rolling fit (recency weighting);
    /// clamped to the buffer length, must not exceed `buffer_cap`.
    pub recent_boost: usize,
    /// Simulate every Nth query regardless of the gate (0 = off).
    pub audit_every: u64,
}

impl Default for RollingRetrainConfig {
    fn default() -> Self {
        Self {
            buffer_cap: 256,
            recent_boost: 32,
            audit_every: 0,
        }
    }
}

/// The MLaroundHPC engine wrapping a [`Simulator`].
pub struct HybridEngine<S: Simulator> {
    simulator: S,
    config: HybridConfig,
    surrogate: Option<NnSurrogate>,
    buffer_x: Vec<Vec<f64>>,
    buffer_y: Vec<Vec<f64>>,
    runs_at_last_fit: usize,
    accounting: CampaignAccounting,
    seed_counter: u64,
    n_lookups: u64,
    n_simulations: u64,
    failed_retrains: u64,
    /// Bumped every time a freshly trained surrogate is installed; the
    /// batched query path uses it to invalidate gate predictions cached
    /// from a superseded model (see `query_rows`).
    surrogate_generation: u64,
    supervisor: Supervisor,
    /// Rolling-retrain mode, off by default (see
    /// [`HybridEngine::enable_rolling_retrain`]). When off, every legacy
    /// code path is bit-identical to the pre-rolling engine.
    rolling: Option<RollingRetrainConfig>,
    /// Drift staleness detector, off by default
    /// ([`HybridEngine::enable_staleness`]).
    staleness: Option<StalenessDetector>,
    /// A retrain is due but deferred to the next wave boundary.
    retrain_pending: bool,
    /// Total runs ever appended to the buffer (survives rolling eviction).
    runs_seen: u64,
    /// Serial query index (every row of every wave); drives audit sampling.
    queries_seen: u64,
    rolling_swaps: u64,
    rolling_deferrals: u64,
    rolling_evictions: u64,
}

impl<S: Simulator> HybridEngine<S> {
    /// Wrap a simulator with the default degradation ladder
    /// ([`SupervisorConfig::default`]).
    pub fn new(simulator: S, config: HybridConfig) -> Result<Self> {
        Self::with_supervisor(simulator, config, SupervisorConfig::default())
    }

    /// Wrap a simulator with an explicit supervision configuration.
    pub fn with_supervisor(
        simulator: S,
        config: HybridConfig,
        supervision: SupervisorConfig,
    ) -> Result<Self> {
        if config.uncertainty_threshold <= 0.0 {
            return Err(LeError::InvalidConfig(
                "uncertainty threshold must be positive".into(),
            ));
        }
        if config.min_training_runs < 4 {
            return Err(LeError::InvalidConfig(
                "need at least 4 runs before training".into(),
            ));
        }
        if config.retrain_growth <= 1.0 {
            return Err(LeError::InvalidConfig(
                "retrain growth factor must exceed 1".into(),
            ));
        }
        Ok(Self {
            simulator,
            config,
            surrogate: None,
            buffer_x: Vec::new(),
            buffer_y: Vec::new(),
            runs_at_last_fit: 0,
            accounting: CampaignAccounting::new(),
            seed_counter: 0,
            n_lookups: 0,
            n_simulations: 0,
            failed_retrains: 0,
            surrogate_generation: 0,
            supervisor: Supervisor::new(supervision)?,
            rolling: None,
            staleness: None,
            retrain_pending: false,
            runs_seen: 0,
            queries_seen: 0,
            rolling_swaps: 0,
            rolling_deferrals: 0,
            rolling_evictions: 0,
        })
    }

    /// Switch the engine into rolling-retrain mode (see
    /// [`RollingRetrainConfig`]): bounded recency-weighted buffer, deferred
    /// retrains, swap at the deterministic wave boundary. Opt-in so the
    /// legacy inline-retrain path (and every digest pinned to it) is
    /// untouched unless a caller asks for it.
    pub fn enable_rolling_retrain(&mut self, config: RollingRetrainConfig) -> Result<()> {
        if config.buffer_cap < 4 {
            return Err(LeError::InvalidConfig(
                "rolling buffer_cap must be at least 4".into(),
            ));
        }
        if config.recent_boost > config.buffer_cap {
            return Err(LeError::InvalidConfig(
                "rolling recent_boost must not exceed buffer_cap".into(),
            ));
        }
        self.rolling = Some(config);
        self.enforce_rolling_cap();
        Ok(())
    }

    /// Attach a drift staleness detector ([`crate::staleness`]): rising
    /// gate-std and decaying interval calibration over sliding windows
    /// raise a typed [`LeError::Stale`] supervisor anomaly
    /// (`supervisor.stale`) and request a retrain at the next wave
    /// boundary.
    pub fn enable_staleness(&mut self, config: StalenessConfig) -> Result<()> {
        self.staleness = Some(StalenessDetector::new(config)?);
        Ok(())
    }

    /// The attached staleness detector, if any.
    pub fn staleness(&self) -> Option<&StalenessDetector> {
        self.staleness.as_ref()
    }

    /// Total runs ever appended to the training buffer (not reduced by
    /// rolling eviction).
    pub fn runs_seen(&self) -> u64 {
        self.runs_seen
    }

    /// Rolling-mode swaps: retrains executed at a wave boundary.
    pub fn rolling_swaps(&self) -> u64 {
        self.rolling_swaps
    }

    /// Rolling-mode deferrals: mid-wave retrain triggers pushed to the
    /// next wave boundary.
    pub fn rolling_deferrals(&self) -> u64 {
        self.rolling_deferrals
    }

    /// Runs evicted from the bounded rolling buffer.
    pub fn rolling_evictions(&self) -> u64 {
        self.rolling_evictions
    }

    /// Is a deferred retrain waiting for the next wave boundary?
    pub fn retrain_pending(&self) -> bool {
        self.retrain_pending
    }

    /// The degradation-ladder state machine (rung, retries, quarantines,
    /// last retrain error).
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &S {
        &self.simulator
    }

    /// Number of queries served from the surrogate.
    pub fn n_lookups(&self) -> u64 {
        self.n_lookups
    }

    /// Number of queries that ran the simulator.
    pub fn n_simulations(&self) -> u64 {
        self.n_simulations
    }

    /// Size of the training buffer.
    pub fn buffered_runs(&self) -> usize {
        self.buffer_x.len()
    }

    /// Whether a surrogate is currently trained.
    pub fn has_surrogate(&self) -> bool {
        self.surrogate.is_some()
    }

    /// The §III-D accounting gathered so far.
    pub fn accounting(&self) -> &CampaignAccounting {
        &self.accounting
    }

    /// Adjust the UQ gate at runtime (e.g. tightening as the campaign's
    /// accuracy requirements grow).
    pub fn set_uncertainty_threshold(&mut self, tau: f64) -> Result<()> {
        if tau <= 0.0 {
            return Err(LeError::InvalidConfig(
                "uncertainty threshold must be positive".into(),
            ));
        }
        self.config.uncertainty_threshold = tau;
        Ok(())
    }

    /// Answer a query through the UQ gate — a batch of one (see
    /// [`HybridEngine::query_batch`] for the batching/determinism
    /// contract).
    pub fn query(&mut self, input: &[f64]) -> Result<QueryResult> {
        let mut results = self.query_rows(&[input])?;
        Ok(results.pop().expect("one row in, one result out")) // lint:allow(no-panic): query_rows returns exactly one result per input row
    }

    /// Answer a whole batch of queries through the UQ gate with **one
    /// fused MC-dropout evaluation per wave** instead of one surrogate
    /// pass per query.
    ///
    /// Rows are processed strictly in index order and the result is
    /// **bit-identical** to issuing the same inputs through sequential
    /// [`HybridEngine::query`] calls: the surrogate draws its dropout
    /// masks from stateless per-consult substreams (row `r` of a wave
    /// consumes the same consult ordinal it would consume sequentially),
    /// and every per-row side effect — admit/reject accounting, lookup and
    /// simulation counters, supervisor anomaly reporting, retrain
    /// triggers, and the per-row `hybrid.query` trace root — fires in the
    /// same order with the same values. Only wall-clock attribution
    /// differs: the fused gate evaluation is timed once per wave and
    /// amortized uniformly over the wave's admitted rows.
    ///
    /// A *wave* is the maximal run of rows gated by one surrogate
    /// snapshot: a mid-batch retrain (a rejected row's simulation can
    /// trigger one) or a supervisor trust flip invalidates the cached
    /// predictions, and the next trusted row starts a new wave against the
    /// fresh surrogate — exactly what sequential queries would see. If a
    /// row's simulation exhausts its retry budget the error is returned
    /// immediately (earlier rows' side effects stand, as they would
    /// sequentially).
    pub fn query_batch(&mut self, inputs: &[Vec<f64>]) -> Result<Vec<QueryResult>> {
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        self.query_rows(&refs)
    }

    /// Serving-path variant of [`HybridEngine::query_batch`]: per-row
    /// results instead of all-or-nothing. A row whose simulation exhausts
    /// its retry budget yields `Err` *for that row* and serving continues
    /// with the next row — one poisoned request must not lose the whole
    /// wave. Every side effect (gate consults, counters, supervisor
    /// transitions, retrain triggers, seed-counter advances) fires in the
    /// same order with the same values as sequential queries, so served
    /// rows are bit-identical to the sequential/batched paths regardless
    /// of where earlier rows failed.
    ///
    /// The outer `Result` only reports up-front validation (an input row
    /// of the wrong dimension) — the serving layer screens dimensions at
    /// admission, so a well-formed wave never sees it.
    pub fn query_each(&mut self, inputs: &[&[f64]]) -> Result<Vec<Result<QueryResult>>> {
        self.query_rows_inner(inputs, false)
    }

    /// Shared row-slice implementation behind [`HybridEngine::query`] and
    /// [`HybridEngine::query_batch`]: stop-at-first-error semantics.
    fn query_rows(&mut self, inputs: &[&[f64]]) -> Result<Vec<QueryResult>> {
        // `stop_on_error` makes the first Err the last element, so
        // collecting reproduces the historical behaviour exactly: earlier
        // rows' side effects stand, the error surfaces, nothing after it
        // runs.
        self.query_rows_inner(inputs, true)?.into_iter().collect()
    }

    /// The gated wave loop behind both entry points.
    fn query_rows_inner(
        &mut self,
        inputs: &[&[f64]],
        stop_on_error: bool,
    ) -> Result<Vec<Result<QueryResult>>> {
        for input in inputs {
            if input.len() != self.simulator.input_dim() {
                return Err(LeError::InvalidConfig(format!(
                    "expected {} inputs, got {}",
                    self.simulator.input_dim(),
                    input.len()
                )));
            }
        }
        // The cached gate predictions for the current wave: filled by one
        // fused evaluation over all remaining rows, consumed per row, and
        // dropped as soon as the surrogate that produced it is replaced
        // (generation bump) — a stale prediction is never served.
        struct Wave {
            preds: Vec<le_uq::Prediction>,
            base: usize,
            generation: u64,
            per_row_secs: f64,
        }
        let mut wave: Option<Wave> = None;
        let mut results = Vec::with_capacity(inputs.len());
        for (i, input) in inputs.iter().enumerate() {
            // Each row is one causal trace: every phase span below — and
            // every pool task the simulator or trainer dispatches — carries
            // this root's trace_id (see le-obs's trace module). The fused
            // gate evaluation nests under the root of the row that starts
            // the wave.
            let _trace = le_obs::trace_root!("hybrid.query");
            // Gate on the surrogate's uncertainty — but only while the
            // supervisor trusts it (a quarantined or degraded surrogate is
            // never consulted). A non-finite prediction or std — or an
            // evaluate-time model error or panic — is a gate anomaly:
            // counted, reported to the supervisor, and answered by falling
            // through to the simulator rather than failing the query.
            let mut gate_std = None;
            let mut gate_pred: Option<le_uq::Prediction> = None;
            let mut served = None;
            // Audit sampling (rolling mode): every Nth query by serial
            // index is simulated even if the gate would admit it — the
            // ground truth the staleness detector and the rolling buffer
            // need when an extrapolating surrogate is overconfident. The
            // decision is a pure function of the index: thread-invariant.
            let audit = self
                .rolling
                .map_or(false, |c| c.audit_every > 0 && self.queries_seen % c.audit_every == 0);
            self.queries_seen += 1;
            if self.supervisor.trusts_surrogate() && self.surrogate.is_some() {
                let stale = wave
                    .as_ref()
                    .map_or(true, |w| w.generation != self.surrogate_generation);
                if stale {
                    wave = None;
                    let _t = le_obs::trace_span!("hybrid.lookup");
                    // Timed with a bare stopwatch, NOT a timed_span: the
                    // `hybrid.lookup` span must mirror the accounting (one
                    // record per *admitted* lookup — the conformance suite
                    // pins this), so the fused cost is recorded below,
                    // amortized, as each admitted row consumes its share.
                    let sw = le_obs::Stopwatch::start();
                    let remaining = &inputs[i..];
                    let surrogate = self
                        .surrogate
                        .as_mut()
                        .expect("checked is_some above"); // lint:allow(no-panic): guarded by the is_some() check above
                    match catch_unwind(AssertUnwindSafe(|| {
                        surrogate.predict_with_uncertainty_rows(remaining)
                    })) {
                        Ok(Ok(preds)) => {
                            wave = Some(Wave {
                                preds,
                                base: i,
                                generation: self.surrogate_generation,
                                per_row_secs: sw.elapsed_secs() / remaining.len() as f64,
                            });
                        }
                        Ok(Err(_)) | Err(_) => {
                            le_obs::counter!("gate.model_error").inc();
                            self.supervisor.note_gate_anomaly();
                        }
                    }
                }
                if let Some(w) = wave.as_ref() {
                    let pred = &w.preds[i - w.base];
                    let finite = pred.mean.iter().all(|v| v.is_finite())
                        && pred.std.iter().all(|v| v.is_finite());
                    if finite {
                        self.supervisor.note_gate_ok();
                        let std = pred.max_std();
                        gate_std = Some(std);
                        if self.staleness.is_some() {
                            gate_pred = Some(pred.clone());
                        }
                        if std < self.config.uncertainty_threshold && audit {
                            // The gate would have admitted this row; the
                            // audit cadence diverts it to the simulator.
                            le_obs::counter!("hybrid.audit.simulated").inc();
                        } else if std < self.config.uncertainty_threshold {
                            self.accounting.record_lookup(w.per_row_secs);
                            le_obs::global()
                                .span("hybrid.lookup")
                                .record_ns((w.per_row_secs * 1e9) as u64);
                            self.n_lookups += 1;
                            le_obs::counter!("hybrid.lookups").inc();
                            served = Some(QueryResult {
                                output: pred.mean.clone(),
                                source: QuerySource::Lookup,
                                gate_std,
                            });
                        }
                    } else {
                        le_obs::counter!("gate.nonfinite").inc();
                        self.supervisor.note_gate_anomaly();
                    }
                }
            }
            let result = match served {
                Some(r) => Ok(r),
                None => self.simulate_supervised(input, gate_std),
            };
            // Drift watch: every finite gate std feeds the sliding window,
            // and a gated-then-simulated row contributes a labelled
            // (prediction, truth) pair for the calibration check. A flag
            // raises the typed Stale anomaly through the supervisor and
            // requests a retrain at the wave boundary below — it never
            // fails or reroutes the query itself.
            if let Some(det) = self.staleness.as_mut() {
                if let Some(std) = gate_std {
                    det.note_gate_std(std);
                }
                if let (Some(pred), Ok(r)) = (gate_pred, &result) {
                    if r.source == QuerySource::Simulated {
                        det.note_labelled(pred, r.output.clone());
                    }
                }
                if let Some(signal) = det.check() {
                    le_obs::counter!("staleness.flagged").inc();
                    le_obs::global()
                        .counter(&format!("staleness.{}", signal.kind()))
                        .inc();
                    self.supervisor.note_staleness(signal.to_error());
                    self.retrain_pending = true;
                }
            }
            let failed = result.is_err();
            results.push(result);
            if failed && stop_on_error {
                break;
            }
            // With `stop_on_error` off, a failed row leaves the wave cache
            // untouched: failed simulations never retrain, and the
            // generation check above already guards every other staleness
            // path — the next row consults exactly the predictions it
            // would have seen sequentially.
        }
        // The deterministic wave boundary: a retrain that was deferred
        // mid-wave (rolling mode) or requested by the staleness detector
        // executes here, after every row of this invocation has been
        // answered from the frozen snapshot — serving never pauses.
        self.service_pending_retrain();
        Ok(results)
    }

    /// Execute a deferred retrain at the wave boundary, if one is pending.
    /// In rolling mode this is the snapshot *swap*: the freshly fitted
    /// surrogate (recency-weighted buffer) replaces the frozen one between
    /// waves, observable as `hybrid.rolling.swaps` and the
    /// `hybrid.rolling.swap` trace span.
    fn service_pending_retrain(&mut self) {
        if !self.retrain_pending {
            return;
        }
        self.retrain_pending = false;
        if !self.supervisor.wants_retrain() || self.buffer_x.len() < 4 {
            return;
        }
        let _t = le_obs::trace_span!("hybrid.rolling.swap");
        let outcome = if self.rolling.is_some() {
            self.retrain_rolling()
        } else {
            self.retrain()
        };
        if outcome.is_ok() {
            self.rolling_swaps += 1;
            le_obs::counter!("hybrid.rolling.swaps").inc();
        }
        // A failed boundary retrain was already counted and reported to
        // the supervisor inside the retrain path; the next growth trigger
        // (or staleness flag) retries.
    }

    /// Rolling-mode fit: the bounded buffer plus a duplicated tail of the
    /// newest `recent_boost` runs (recency weighting), marked against
    /// `runs_seen` so growth triggers keep firing as the window slides.
    fn retrain_rolling(&mut self) -> Result<()> {
        let cfg = match self.rolling {
            Some(c) => c,
            None => return self.retrain(),
        };
        let n = self.buffer_x.len();
        if n < 4 {
            return Err(LeError::InsufficientData(format!("{n} buffered runs")));
        }
        let boost = cfg.recent_boost.min(n);
        let rows = n + boost;
        let in_dim = self.simulator.input_dim();
        let out_dim = self.simulator.output_dim();
        let mut x = Matrix::zeros(rows, in_dim);
        let mut y = Matrix::zeros(rows, out_dim);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(&self.buffer_x[i]);
            y.row_mut(i).copy_from_slice(&self.buffer_y[i]);
        }
        for (k, i) in (n - boost..n).enumerate() {
            x.row_mut(n + k).copy_from_slice(&self.buffer_x[i]);
            y.row_mut(n + k).copy_from_slice(&self.buffer_y[i]);
        }
        let _t = le_obs::trace_span!("hybrid.retrain");
        let sp = le_obs::timed_span!("hybrid.retrain");
        let cfg_s = &self.config.surrogate;
        let fitted = catch_unwind(AssertUnwindSafe(|| NnSurrogate::fit(&x, &y, cfg_s)))
            .unwrap_or_else(|_| Err(LeError::Model("surrogate training panicked".into())));
        match fitted {
            Ok(surrogate) => {
                let secs = sp.finish_secs();
                self.install_surrogate(surrogate, secs, self.runs_seen as usize);
                Ok(())
            }
            Err(e) => {
                self.failed_retrains += 1;
                le_obs::counter!("hybrid.retrain_errors").inc();
                self.supervisor.note_retrain_failure(e.clone());
                // Push the next rolling attempt out by the growth factor.
                self.runs_at_last_fit = self.runs_seen as usize;
                Err(e)
            }
        }
    }

    /// Shared bookkeeping for installing a freshly fitted surrogate:
    /// accounting, generation bump (wave invalidation), growth mark,
    /// supervisor re-admission, and a staleness re-baseline.
    fn install_surrogate(&mut self, surrogate: NnSurrogate, secs: f64, fit_mark: usize) {
        self.accounting.record_learning(secs);
        self.surrogate = Some(surrogate);
        self.surrogate_generation = self.surrogate_generation.wrapping_add(1);
        self.runs_at_last_fit = fit_mark;
        self.supervisor.note_retrain_success();
        if let Some(det) = self.staleness.as_mut() {
            // The new model's uncertainty profile supersedes the old
            // baseline; stale evidence about the retired snapshot would
            // only re-fire spuriously.
            det.reset();
        }
    }

    /// Evict the oldest runs past the rolling buffer cap.
    fn enforce_rolling_cap(&mut self) {
        if let Some(cfg) = self.rolling {
            while self.buffer_x.len() > cfg.buffer_cap {
                self.buffer_x.remove(0);
                self.buffer_y.remove(0);
                self.rolling_evictions += 1;
                le_obs::counter!("hybrid.rolling.evicted").inc();
            }
        }
    }

    /// Run the simulator with the supervisor's retry budget: each failed,
    /// panicked, or non-finite attempt bumps `hybrid.sim_errors` and is
    /// retried with a fresh deterministic seed (the serial seed counter
    /// keeps advancing). Only a fully exhausted budget surfaces a typed
    /// [`LeError::Simulation`] to the caller.
    fn simulate_supervised(&mut self, input: &[f64], gate_std: Option<f64>) -> Result<QueryResult> {
        let attempts = self.supervisor.max_attempts();
        let mut last_err = LeError::Simulation("no simulation attempt made".into());
        for attempt in 0..attempts {
            if attempt > 0 {
                self.supervisor.note_retry();
            }
            // A failing attempt drops the spans unrecorded (accounting
            // records nothing either) and bumps the error counter instead.
            let trace_sp = le_obs::trace_span!("hybrid.simulate");
            let sp = le_obs::timed_span!("hybrid.simulate");
            self.seed_counter += 1;
            let seed = self.seed_counter;
            let sim = &self.simulator;
            // A panicking simulator (e.g. a worker panic propagated out of
            // a pool dispatch) is absorbed into the retry ladder: the next
            // attempt re-dispatches the work.
            let result = match catch_unwind(AssertUnwindSafe(|| sim.simulate(input, seed))) {
                Ok(r) => r,
                Err(_) => {
                    le_obs::counter!("hybrid.sim_panics").inc();
                    if attempt + 1 < attempts {
                        le_obs::counter!("pool.task_respawn").inc();
                    }
                    Err(LeError::Simulation(format!(
                        "simulator panicked (attempt {attempt})"
                    )))
                }
            };
            match result {
                Ok(output) if output.iter().all(|v| v.is_finite()) => {
                    self.accounting.record_training_sim(sp.finish_secs());
                    // Close the simulate trace span here so a retrain
                    // triggered below appears as a sibling phase of the
                    // query, not a child of the sim.
                    drop(trace_sp);
                    self.n_simulations += 1;
                    le_obs::counter!("hybrid.simulations").inc();
                    self.buffer_x.push(input.to_vec());
                    self.buffer_y.push(output.clone());
                    self.runs_seen += 1;
                    self.enforce_rolling_cap();
                    self.maybe_retrain();
                    return Ok(QueryResult {
                        output,
                        source: QuerySource::Simulated,
                        gate_std,
                    });
                }
                Ok(_) => {
                    // A diverged run reporting success: never buffered,
                    // never served.
                    le_obs::counter!("hybrid.sim_nonfinite").inc();
                    le_obs::counter!("hybrid.sim_errors").inc();
                    last_err = LeError::Simulation(format!(
                        "non-finite simulator output (attempt {attempt})"
                    ));
                }
                Err(e) => {
                    le_obs::counter!("hybrid.sim_errors").inc();
                    last_err = match e {
                        LeError::Simulation(s) => LeError::Simulation(s),
                        other => LeError::Simulation(other.to_string()),
                    };
                }
            }
        }
        Err(last_err)
    }

    /// Pre-seed the buffer with externally computed runs (e.g. an initial
    /// design-of-experiments campaign) and train immediately.
    pub fn seed_training(&mut self, x: &[Vec<f64>], y: &[Vec<f64>]) -> Result<()> {
        if x.len() != y.len() {
            return Err(LeError::InvalidConfig(
                "seed inputs/outputs length mismatch".into(),
            ));
        }
        self.buffer_x.extend_from_slice(x);
        self.buffer_y.extend_from_slice(y);
        self.runs_seen += x.len() as u64;
        self.enforce_rolling_cap();
        if self.buffer_x.len() >= self.config.min_training_runs {
            self.retrain()?;
        }
        Ok(())
    }

    /// Retrain if due. Training failures do not fail the query that
    /// triggered them — the simulated answer is still valid; the failure is
    /// counted, surfaced through the supervisor's quarantine path (the
    /// stale surrogate is no longer trusted; see
    /// [`Supervisor::last_retrain_error`] for the typed detail), and the
    /// next growth threshold retries. A Degraded engine stops retraining
    /// entirely.
    fn maybe_retrain(&mut self) {
        if !self.supervisor.wants_retrain() {
            return;
        }
        // Rolling mode counts total runs seen (the capped buffer length
        // plateaus); legacy mode counts the unbounded buffer, exactly as
        // before.
        let n = if self.rolling.is_some() {
            self.runs_seen as usize
        } else {
            self.buffer_x.len()
        };
        let due = if self.surrogate.is_none() {
            n >= self.config.min_training_runs
        } else {
            n as f64 >= self.runs_at_last_fit as f64 * self.config.retrain_growth
        };
        if !due {
            return;
        }
        if self.rolling.is_some() {
            // Never retrain mid-wave: the in-flight wave keeps answering
            // from the frozen snapshot; the swap happens at the wave
            // boundary (`service_pending_retrain`).
            if !self.retrain_pending {
                self.retrain_pending = true;
                self.rolling_deferrals += 1;
                le_obs::counter!("hybrid.rolling.deferred").inc();
            }
            return;
        }
        if self.retrain().is_err() {
            // Push the next attempt out by the growth factor. The
            // supervisor transition was already noted inside `retrain`.
            self.runs_at_last_fit = n;
        }
    }

    /// Number of retraining attempts that failed (diagnostics).
    pub fn failed_retrains(&self) -> u64 {
        self.failed_retrains
    }

    /// Force a (re)training of the surrogate on the current buffer.
    pub fn retrain(&mut self) -> Result<()> {
        let n = self.buffer_x.len();
        if n < 4 {
            return Err(LeError::InsufficientData(format!("{n} buffered runs")));
        }
        let in_dim = self.simulator.input_dim();
        let out_dim = self.simulator.output_dim();
        let mut x = Matrix::zeros(n, in_dim);
        let mut y = Matrix::zeros(n, out_dim);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(&self.buffer_x[i]);
            y.row_mut(i).copy_from_slice(&self.buffer_y[i]);
        }
        let _t = le_obs::trace_span!("hybrid.retrain");
        let sp = le_obs::timed_span!("hybrid.retrain");
        // A panic inside training (e.g. a worker panic out of the trainer's
        // pool dispatch) is a failed retrain like any other — the campaign
        // must survive it.
        let cfg = &self.config.surrogate;
        let fitted = catch_unwind(AssertUnwindSafe(|| NnSurrogate::fit(&x, &y, cfg)))
            .unwrap_or_else(|_| Err(LeError::Model("surrogate training panicked".into())));
        match fitted {
            Ok(surrogate) => {
                let secs = sp.finish_secs();
                // In rolling mode the growth mark tracks total runs seen
                // (the capped buffer length plateaus at the window size).
                let fit_mark = if self.rolling.is_some() {
                    self.runs_seen as usize
                } else {
                    n
                };
                self.install_surrogate(surrogate, secs, fit_mark);
                Ok(())
            }
            Err(e) => {
                self.failed_retrains += 1;
                le_obs::counter!("hybrid.retrain_errors").inc();
                self.supervisor.note_retrain_failure(e.clone());
                Err(e)
            }
        }
    }

    /// Fraction of queries served by lookup so far.
    pub fn lookup_fraction(&self) -> f64 {
        let total = self.n_lookups + self.n_simulations;
        if total == 0 {
            0.0
        } else {
            self.n_lookups as f64 / total as f64
        }
    }

    /// Calibrate the UQ gate from labelled validation pairs: choose the
    /// largest threshold τ such that, *on the validation set*, every query
    /// the gate would serve from the surrogate has error ≤ `max_error`
    /// (infinity-norm over outputs). Returns the chosen τ and the lookup
    /// fraction it achieves on the validation set; leaves the gate
    /// unchanged if no τ admits any lookups.
    ///
    /// This operationalizes §III-B: "once [the uncertainty] is low enough,
    /// the training routine might less likely need more data" — with "low
    /// enough" *measured* instead of guessed.
    pub fn calibrate_gate(
        &mut self,
        val_x: &[Vec<f64>],
        val_y: &[Vec<f64>],
        max_error: f64,
    ) -> Result<Option<(f64, f64)>> {
        if val_x.is_empty() || val_x.len() != val_y.len() {
            return Err(LeError::InvalidConfig("bad validation set".into()));
        }
        if max_error <= 0.0 {
            return Err(LeError::InvalidConfig("max_error must be positive".into()));
        }
        let surrogate = self
            .surrogate
            .as_mut()
            .ok_or_else(|| LeError::InsufficientData("no trained surrogate".into()))?;
        // Score every validation point with one fused MC-dropout
        // evaluation: (gate std, actual max error).
        let preds = surrogate.predict_with_uncertainty_batch(val_x)?;
        let mut scored: Vec<(f64, f64)> = Vec::with_capacity(val_x.len());
        for (pred, y) in preds.iter().zip(val_y.iter()) {
            let err = pred
                .mean
                .iter()
                .zip(y.iter())
                .map(|(&p, &t)| (p - t).abs())
                .fold(0.0f64, f64::max);
            scored.push((pred.max_std(), err));
        }
        // Sort by gate std ascending; the candidate thresholds are just
        // above each point's std. Walk upward while all admitted points
        // stay within the error budget.
        scored.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut best: Option<(f64, usize)> = None;
        for (i, &(std, _)) in scored.iter().enumerate() {
            // Admitting points 0..=i ⇔ τ slightly above scored[i].std.
            if scored[..=i].iter().any(|&(_, err)| err > max_error) {
                break;
            }
            best = Some((std * 1.0000001 + f64::MIN_POSITIVE, i + 1));
        }
        match best {
            Some((tau, admitted)) => {
                self.config.uncertainty_threshold = tau;
                Ok(Some((tau, admitted as f64 / scored.len() as f64)))
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulator::SyntheticSimulator;
    use le_linalg::Rng;

    fn engine(threshold: f64, seed: u64) -> HybridEngine<SyntheticSimulator> {
        let sim = SyntheticSimulator::new(2, 1, 20_000, 0.0);
        HybridEngine::new(
            sim,
            HybridConfig {
                uncertainty_threshold: threshold,
                min_training_runs: 48,
                retrain_growth: 2.0,
                surrogate: SurrogateConfig {
                    epochs: 120,
                    dropout: 0.1,
                    mc_samples: 20,
                    seed,
                    ..Default::default()
                },
            },
        )
        .unwrap()
    }

    #[test]
    fn config_validation() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        assert!(HybridEngine::new(
            sim.clone(),
            HybridConfig {
                uncertainty_threshold: 0.0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(HybridEngine::new(
            sim.clone(),
            HybridConfig {
                min_training_runs: 2,
                ..Default::default()
            }
        )
        .is_err());
        assert!(HybridEngine::new(
            sim,
            HybridConfig {
                retrain_growth: 0.9,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn cold_engine_simulates_everything() {
        let mut engine = engine(0.5, 1);
        let mut rng = Rng::new(2);
        for _ in 0..20 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let r = engine.query(&x).unwrap();
            assert_eq!(r.source, QuerySource::Simulated);
            assert!(r.gate_std.is_none(), "no surrogate yet");
        }
        assert_eq!(engine.n_lookups(), 0);
        assert!(!engine.has_surrogate());
    }

    #[test]
    fn engine_warms_up_and_serves_lookups() {
        let mut engine = engine(0.6, 3);
        let mut rng = Rng::new(4);
        let mut sources = Vec::new();
        for _ in 0..220 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            sources.push(engine.query(&x).unwrap().source);
        }
        assert!(engine.has_surrogate());
        assert!(
            engine.n_lookups() > 30,
            "warm engine should serve lookups, got {} of 220",
            engine.n_lookups()
        );
        // Early queries simulated, later ones increasingly looked up.
        let early = sources[..50]
            .iter()
            .filter(|&&s| s == QuerySource::Lookup)
            .count();
        let late = sources[170..]
            .iter()
            .filter(|&&s| s == QuerySource::Lookup)
            .count();
        assert!(late > early, "lookup rate should grow: {early} -> {late}");
    }

    #[test]
    fn lookups_are_accurate() {
        let mut engine = engine(0.4, 5);
        let mut rng = Rng::new(6);
        // Warm up.
        for _ in 0..200 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let _ = engine.query(&x).unwrap();
        }
        // Compare lookup answers against the analytic truth.
        let mut checked = 0;
        for _ in 0..60 {
            let x = [rng.uniform_in(-0.8, 0.8), rng.uniform_in(-0.8, 0.8)];
            let truth = engine.simulator().truth(&x)[0];
            let r = engine.query(&x).unwrap();
            if r.source == QuerySource::Lookup {
                checked += 1;
                assert!(
                    (r.output[0] - truth).abs() < 0.8,
                    "lookup {} vs truth {truth}",
                    r.output[0]
                );
            }
        }
        assert!(checked > 5, "need some lookups to check ({checked})");
    }

    #[test]
    fn out_of_domain_queries_fall_back_to_simulation() {
        let mut engine = engine(0.25, 7);
        let mut rng = Rng::new(8);
        let mut in_domain_stds = Vec::new();
        for _ in 0..200 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let r = engine.query(&x).unwrap();
            if let Some(s) = r.gate_std {
                in_domain_stds.push(s);
            }
        }
        // Moderate extrapolation (a few σ out, before tanh saturation
        // flattens the MC-dropout spread): the gate must see elevated
        // uncertainty relative to in-domain queries.
        let in_mean = in_domain_stds.iter().sum::<f64>() / in_domain_stds.len() as f64;
        let probe = [2.5, -2.5];
        // Read the gate's view without committing to a source.
        let r = engine.query(&probe).unwrap();
        let ood_std = r.gate_std.expect("surrogate is trained");
        assert!(
            ood_std > in_mean,
            "OOD std {ood_std} should exceed in-domain mean {in_mean}"
        );
        // With the gate tightened below the OOD uncertainty, a nearby OOD
        // query must be simulated, not looked up.
        engine.set_uncertainty_threshold(ood_std * 0.5).unwrap();
        let r2 = engine.query(&[2.6, -2.4]).unwrap();
        assert_eq!(
            r2.source,
            QuerySource::Simulated,
            "tight gate must reject extrapolation (std {:?})",
            r2.gate_std
        );
    }

    #[test]
    fn seed_training_trains_immediately() {
        let mut engine = engine(0.5, 9);
        let mut rng = Rng::new(10);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..60 {
            let x = vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let y = engine.simulator().truth(&x);
            xs.push(x);
            ys.push(y);
        }
        engine.seed_training(&xs, &ys).unwrap();
        assert!(engine.has_surrogate());
        assert_eq!(engine.buffered_runs(), 60);
    }

    #[test]
    fn accounting_tracks_phases() {
        // Use an expensive simulator so simulation time dominates lookup
        // time even in unoptimized builds — the regime the paper targets.
        let sim = SyntheticSimulator::new(2, 1, 5_000_000, 0.0);
        let mut engine = HybridEngine::new(
            sim,
            HybridConfig {
                uncertainty_threshold: 0.8,
                min_training_runs: 48,
                retrain_growth: 2.5,
                surrogate: SurrogateConfig {
                    epochs: 60,
                    dropout: 0.1,
                    mc_samples: 10,
                    seed: 11,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        let mut rng = Rng::new(12);
        for _ in 0..150 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let _ = engine.query(&x).unwrap();
        }
        let acc = engine.accounting();
        assert_eq!(acc.n_train(), engine.n_simulations());
        assert_eq!(acc.n_lookup(), engine.n_lookups());
        assert!(engine.n_lookups() > 0, "engine should warm up");
        let s = acc.effective_speedup().unwrap();
        assert!(
            s.speedup > 1.0,
            "hybrid should beat pure simulation, got {}",
            s.speedup
        );
        // The measured characteristic times are ordered as the paper
        // assumes: lookups far cheaper than simulations.
        assert!(s.times.t_lookup < s.times.t_train);
    }

    #[test]
    fn calibrate_gate_picks_a_safe_threshold() {
        let mut engine = engine(0.5, 21);
        let mut rng = Rng::new(22);
        // Warm up with enough data for a decent surrogate.
        for _ in 0..150 {
            let x = [rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let _ = engine.query(&x).unwrap();
        }
        assert!(engine.has_surrogate());
        // Validation pairs from the analytic truth.
        let mut val_x = Vec::new();
        let mut val_y = Vec::new();
        for _ in 0..60 {
            let x = vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let y = engine.simulator().truth(&x);
            val_x.push(x);
            val_y.push(y);
        }
        let max_error = 0.5;
        let result = engine.calibrate_gate(&val_x, &val_y, max_error).unwrap();
        if let Some((tau, lookup_frac)) = result {
            assert!(tau > 0.0 && tau.is_finite());
            assert!((0.0..=1.0).contains(&lookup_frac));
            // Verify the guarantee on the validation set itself: every
            // point the calibrated gate admits has error ≤ max_error.
            for (x, y) in val_x.iter().zip(val_y.iter()) {
                let r = engine.query(x).unwrap();
                if r.source == QuerySource::Lookup {
                    let err = r
                        .output
                        .iter()
                        .zip(y.iter())
                        .map(|(&p, &t)| (p - t).abs())
                        .fold(0.0f64, f64::max);
                    // MC noise between calibration pass and query pass can
                    // admit borderline points; allow modest slack.
                    assert!(
                        err <= max_error * 1.5,
                        "admitted lookup error {err} exceeds budget {max_error}"
                    );
                }
            }
        }
        // Error cases.
        assert!(engine.calibrate_gate(&[], &[], 0.1).is_err());
        assert!(engine.calibrate_gate(&val_x, &val_y, 0.0).is_err());
    }

    #[test]
    fn calibrate_gate_requires_a_surrogate() {
        let mut engine = engine(0.5, 23);
        let val = vec![vec![0.0, 0.0]];
        let val_y = vec![vec![0.0]];
        assert!(matches!(
            engine.calibrate_gate(&val, &val_y, 0.1),
            Err(LeError::InsufficientData(_))
        ));
    }

    #[test]
    fn wrong_input_dim_rejected() {
        let mut engine = engine(0.5, 13);
        assert!(engine.query(&[1.0]).is_err());
    }

    #[test]
    fn rolling_config_validation() {
        let mut e = engine(0.5, 31);
        assert!(e
            .enable_rolling_retrain(RollingRetrainConfig {
                buffer_cap: 3,
                recent_boost: 0,
                audit_every: 0,
            })
            .is_err());
        assert!(e
            .enable_rolling_retrain(RollingRetrainConfig {
                buffer_cap: 8,
                recent_boost: 9,
                audit_every: 0,
            })
            .is_err());
        assert!(e.enable_rolling_retrain(RollingRetrainConfig::default()).is_ok());
    }

    #[test]
    fn rolling_defers_the_midwave_retrain_to_the_boundary() {
        // One cold batch big enough to cross min_training_runs mid-wave.
        // Legacy behaviour retrains inline (later rows of the same batch
        // can be served as lookups); rolling mode must answer the whole
        // in-flight wave from the frozen (here: absent) snapshot and swap
        // only at the boundary.
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let mut engine = HybridEngine::new(
            sim,
            HybridConfig {
                uncertainty_threshold: 10.0, // everything passes the gate
                min_training_runs: 8,
                retrain_growth: 8.0,
                surrogate: SurrogateConfig {
                    epochs: 40,
                    mc_samples: 4,
                    seed: 33,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        engine
            .enable_rolling_retrain(RollingRetrainConfig {
                buffer_cap: 64,
                recent_boost: 8,
                audit_every: 0,
            })
            .unwrap();
        let mut rng = Rng::new(34);
        let batch: Vec<Vec<f64>> = (0..20)
            .map(|_| vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)])
            .collect();
        let results = engine.query_batch(&batch).unwrap();
        // Every row of the wave was simulated: the retrain due at row 8
        // was deferred, not executed mid-wave.
        assert!(results.iter().all(|r| r.source == QuerySource::Simulated));
        // …and the swap happened at the boundary.
        assert!(engine.has_surrogate());
        assert_eq!(engine.rolling_swaps(), 1);
        assert!(engine.rolling_deferrals() >= 1);
        assert!(!engine.retrain_pending());
        // The next wave is served by the swapped-in surrogate.
        let r = engine.query(&[0.1, 0.2]).unwrap();
        assert!(r.gate_std.is_some());
        assert_eq!(r.source, QuerySource::Lookup);
    }

    #[test]
    fn rolling_buffer_is_bounded_and_growth_keeps_firing() {
        let sim = SyntheticSimulator::new(2, 1, 0, 0.0);
        let mut engine = HybridEngine::new(
            sim,
            HybridConfig {
                // Impossible gate: every query simulates, so the buffer
                // keeps growing past the cap.
                uncertainty_threshold: 1e-12,
                min_training_runs: 8,
                retrain_growth: 1.5,
                surrogate: SurrogateConfig {
                    epochs: 10,
                    mc_samples: 4,
                    seed: 35,
                    ..Default::default()
                },
            },
        )
        .unwrap();
        engine
            .enable_rolling_retrain(RollingRetrainConfig {
                buffer_cap: 16,
                recent_boost: 4,
                audit_every: 0,
            })
            .unwrap();
        let mut rng = Rng::new(36);
        for _ in 0..8 {
            let batch: Vec<Vec<f64>> = (0..10)
                .map(|_| vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)])
                .collect();
            engine.query_batch(&batch).unwrap();
        }
        assert_eq!(engine.runs_seen(), 80);
        assert!(engine.buffered_runs() <= 16, "{}", engine.buffered_runs());
        assert!(engine.rolling_evictions() >= 64);
        // Growth triggers kept firing off runs_seen even though the
        // buffer length plateaued at the cap.
        assert!(engine.rolling_swaps() >= 3, "{}", engine.rolling_swaps());
    }

    #[test]
    fn staleness_flags_drift_and_boundary_retrain_follows() {
        let mut engine = engine(1e9_f64, 41); // huge τ: gate always serves
        engine
            .enable_staleness(crate::StalenessConfig {
                window: 8,
                baseline: 8,
                std_ratio: 1.3,
                nominal_coverage: 0.9,
                min_coverage: 0.0, // isolate the std-inflation symptom
                min_labelled: 64,
            })
            .unwrap();
        let mut rng = Rng::new(42);
        // Train on the unit box.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..60 {
            let x = vec![rng.uniform_in(-1.0, 1.0), rng.uniform_in(-1.0, 1.0)];
            let y = engine.simulator().truth(&x);
            xs.push(x);
            ys.push(y);
        }
        engine.seed_training(&xs, &ys).unwrap();
        // In-domain queries fill the baseline window with calm stds.
        for _ in 0..8 {
            let x = [rng.uniform_in(-0.5, 0.5), rng.uniform_in(-0.5, 0.5)];
            engine.query(&x).unwrap();
        }
        // Drift: moderate extrapolation inflates the gate std.
        for _ in 0..40 {
            let x = [rng.uniform_in(2.0, 3.0), rng.uniform_in(-3.0, -2.0)];
            engine.query(&x).unwrap();
            if engine.supervisor().stale_flags() > 0 {
                break;
            }
        }
        assert!(
            engine.supervisor().stale_flags() >= 1,
            "drifted queries must flag staleness"
        );
        // The flag requested a boundary retrain; with a well-stocked
        // buffer it executed at the end of the same (single-row) wave,
        // clearing both the pending latch and the typed evidence.
        assert!(!engine.retrain_pending());
        assert!(engine.rolling_swaps() >= 1);
        assert!(engine.supervisor().last_staleness().is_none());
    }
}
