//! Effective-performance accounting helpers. The heavy lifting lives in
//! [`le_perfmodel`]; this module re-exports it and adds a timing guard for
//! instrumenting arbitrary closures.

pub use le_perfmodel::{CampaignAccounting, EffectiveSpeedup, SpeedupTimes};

/// Time a closure, returning `(result, seconds)`. The clock read lives in
/// `le-obs` (the workspace's only wall-clock authority — see the le-lint
/// `wallclock` rule).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = le_obs::Stopwatch::start();
    let result = f();
    (result, sw.elapsed_secs())
}

/// Pretty one-line summary of a measured effective speedup.
pub fn summarize(s: &EffectiveSpeedup) -> String {
    format!(
        "effective speedup S = {:.3e} (N_lookup = {:.0}, N_train = {:.0}, T_seq = {:.3e}s, T_train = {:.3e}s, T_learn = {:.3e}s, T_lookup = {:.3e}s)",
        s.speedup, s.n_lookup, s.n_train, s.times.t_seq, s.times.t_train, s.times.t_learn, s.times.t_lookup
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_result_and_positive_time() {
        let (value, secs) = timed(|| {
            let mut acc = 0.0f64;
            for i in 0..100_000 {
                acc += (i as f64).sqrt();
            }
            acc
        });
        assert!(value > 0.0);
        assert!(secs > 0.0);
    }

    #[test]
    fn summary_contains_the_numbers() {
        let mut acc = CampaignAccounting::new();
        acc.record_training_sim(1.0);
        acc.record_lookup(0.001);
        let s = acc.effective_speedup().unwrap();
        let line = summarize(&s);
        assert!(line.contains("N_lookup = 1"));
        assert!(line.contains("N_train = 1"));
    }
}
