#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `learning-everywhere` — the paper's primary contribution as a library.
//!
//! *Learning Everywhere: Pervasive Machine Learning for Effective
//! High-Performance Computation* (Fox et al., 2019) argues that learned
//! surrogates should wrap simulations everywhere they pay off, and
//! introduces **effective performance**: the speedup the *user* sees when
//! most requests are served by a trained network instead of a full
//! simulation. This crate is that wrapper:
//!
//! * [`taxonomy`] — the paper's six-way HPCforML / MLforHPC classification,
//!   as a typed vocabulary used in reports.
//! * [`simulator`] — the [`simulator::Simulator`] trait any expensive
//!   computation implements to join the framework (the MD, epidemic, and
//!   tissue substrates in this workspace all do).
//! * [`surrogate`] — [`surrogate::NnSurrogate`]: a scaled MLP + MC-dropout
//!   UQ bundle trained from completed simulation runs ("no run is
//!   wasted").
//! * [`hybrid`] — [`hybrid::HybridEngine`], the MLaroundHPC execution
//!   engine: each query is served from the surrogate iff its MC-dropout
//!   uncertainty passes the gate; otherwise the real simulator runs and
//!   the result joins the training buffer; retraining triggers as the
//!   buffer grows. Every phase is timed into the §III-D accounting.
//! * [`active`] — the active-learning loop (§II-C2, ref [34]):
//!   uncertainty-driven acquisition versus random, with learning curves.
//! * [`autotune`] — MLautotuning: learn the map from problem parameters to
//!   optimal run configurations (e.g. the largest stable timestep).
//! * [`control`] — MLControl: objective-driven campaigns that invert the
//!   surrogate to find inputs achieving a target output, with simulation
//!   verification in the loop.
//! * [`accounting`] — re-exported effective-performance accounting
//!   ([`le_perfmodel::CampaignAccounting`]) plus timing helpers.
//! * [`supervisor`] — the degradation ladder ([`supervisor::Supervisor`])
//!   that keeps the engine answering under simulator faults, non-finite
//!   outputs, and failed retrains: bounded seeded retries, surrogate
//!   quarantine with re-admission, and a terminal sim-only `Degraded` mode.

pub mod accounting;
pub mod active;
pub mod autotune;
pub mod control;
pub mod hybrid;
pub mod simulator;
pub mod staleness;
pub mod supervisor;
pub mod surrogate;
pub mod taxonomy;

pub use hybrid::{HybridConfig, HybridEngine, QuerySource, RollingRetrainConfig};
pub use simulator::Simulator;
pub use staleness::{StalenessConfig, StalenessDetector, StalenessSignal};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorState};
pub use surrogate::{NnSurrogate, SurrogateConfig};

/// Errors from the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum LeError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// The wrapped simulator failed.
    Simulation(String),
    /// The ML layer failed.
    Model(String),
    /// Not enough data for the requested operation.
    InsufficientData(String),
    /// A serving-layer admission rejection: the request exceeded its
    /// tenant's quota (or the frontend's capacity) and was never executed.
    /// Typed so load generators and clients can distinguish backpressure
    /// from execution failures and retry/shed accordingly.
    Backpressure(String),
    /// The staleness detector flagged the surrogate: the parameter
    /// distribution has drifted away from what the model was trained on
    /// (rising gate uncertainty or decaying interval calibration). The
    /// engine keeps serving — uncertain queries fall through the UQ gate
    /// to the simulator — but a rolling retrain is requested; this variant
    /// carries the typed evidence.
    Stale(String),
}

impl LeError {
    /// Stable, lowercase kind label for counter/metric names (e.g.
    /// `supervisor.retrain_failed.model`). One word per variant, no
    /// payload, so OBS snapshot names stay deterministic.
    pub fn kind_label(&self) -> &'static str {
        match self {
            LeError::InvalidConfig(_) => "invalid_config",
            LeError::Simulation(_) => "simulation",
            LeError::Model(_) => "model",
            LeError::InsufficientData(_) => "insufficient_data",
            LeError::Backpressure(_) => "backpressure",
            LeError::Stale(_) => "stale",
        }
    }
}

impl std::fmt::Display for LeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            LeError::Simulation(s) => write!(f, "simulation error: {s}"),
            LeError::Model(s) => write!(f, "model error: {s}"),
            LeError::InsufficientData(s) => write!(f, "insufficient data: {s}"),
            LeError::Backpressure(s) => write!(f, "backpressure: {s}"),
            LeError::Stale(s) => write!(f, "stale surrogate: {s}"),
        }
    }
}

impl std::error::Error for LeError {}

/// Result alias for the framework.
pub type Result<T> = std::result::Result<T, LeError>;
