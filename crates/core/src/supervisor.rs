//! The [`Supervisor`] — the degradation ladder behind
//! [`crate::HybridEngine`].
//!
//! §II-C1's "no run is wasted" only holds for campaigns that *survive* bad
//! runs. The supervisor tracks the engine's health and walks a ladder of
//! increasingly conservative modes instead of erroring the campaign:
//!
//! ```text
//!        Normal ──(N consecutive gate anomalies,
//!          │        or a failed retrain)──────────▶ Quarantined
//!          ▲                                            │
//!          └──────(successful retrain: re-admit)────────┘
//!          │                                            │
//!          └──(M consecutive failed retrains)──▶ Degraded (terminal)
//! ```
//!
//! * **Normal** — the surrogate is trusted; the UQ gate decides per query.
//! * **Quarantined** — the surrogate is *not* consulted (every query is
//!   simulated) but retraining continues; a successful retrain re-admits.
//! * **Degraded** — terminal: retraining has failed `degrade_after`
//!   consecutive times, so the engine stops trying and serves every query
//!   from the simulator, forever. Queries still succeed.
//!
//! Orthogonally, the supervisor bounds per-query simulator retries
//! ([`SupervisorConfig::max_retries`]): each failed or panicked or
//! non-finite attempt is retried with a fresh deterministic seed (the
//! engine's serial seed counter keeps advancing, so attempt seeds are
//! reproducible) before the query returns a typed error.
//!
//! Every transition emits an `le-obs` counter (`supervisor.retry`,
//! `supervisor.quarantine`, `supervisor.readmit`, `supervisor.degraded`),
//! so the obsctl snapshot-diff gate locks in exact degradation behaviour.
//! Retrain failures additionally emit `supervisor.retrain_failed` plus a
//! kind-labelled `supervisor.retrain_failed.<kind>` counter (the
//! [`LeError::kind_label`] of the typed cause), making quarantine causes
//! visible in OBS snapshots rather than only in-process; staleness flags
//! from the drift detector arrive through [`Supervisor::note_staleness`]
//! and count under `supervisor.stale` without walking the ladder — drift
//! is remedied by a rolling retrain, not by benching the surrogate.

use crate::{LeError, Result};

/// Which rung of the ladder the engine currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorState {
    /// Surrogate trusted; UQ gate decides per query.
    Normal,
    /// Surrogate benched; simulate everything, retrain toward re-admission.
    Quarantined,
    /// Terminal simulator-only mode; retraining has been given up.
    Degraded,
}

/// Knobs of the degradation ladder.
#[derive(Debug, Clone, Copy)]
pub struct SupervisorConfig {
    /// Simulator retries per query after a failed/panicked/non-finite
    /// attempt (so a query makes at most `1 + max_retries` attempts, each
    /// with a fresh deterministic seed).
    pub max_retries: usize,
    /// Consecutive gate anomalies (non-finite prediction mean/std, or a
    /// predict-time model error) that quarantine the surrogate.
    pub quarantine_after: usize,
    /// Consecutive failed retrains that push the engine into terminal
    /// [`SupervisorState::Degraded`].
    pub degrade_after: usize,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_retries: 2,
            quarantine_after: 3,
            degrade_after: 3,
        }
    }
}

/// Ladder state machine + counters. Owned by the engine; all transitions
/// are driven by `note_*` calls from the query/retrain paths.
#[derive(Debug)]
pub struct Supervisor {
    config: SupervisorConfig,
    state: SupervisorState,
    consecutive_gate_anomalies: usize,
    consecutive_failed_retrains: usize,
    retries: u64,
    quarantines: u64,
    readmissions: u64,
    stale_flags: u64,
    last_retrain_error: Option<LeError>,
    last_staleness: Option<LeError>,
}

impl Supervisor {
    /// Build from a validated config.
    pub fn new(config: SupervisorConfig) -> Result<Self> {
        if config.quarantine_after == 0 {
            return Err(LeError::InvalidConfig(
                "quarantine_after must be at least 1".into(),
            ));
        }
        if config.degrade_after == 0 {
            return Err(LeError::InvalidConfig(
                "degrade_after must be at least 1".into(),
            ));
        }
        Ok(Self {
            config,
            state: SupervisorState::Normal,
            consecutive_gate_anomalies: 0,
            consecutive_failed_retrains: 0,
            retries: 0,
            quarantines: 0,
            readmissions: 0,
            stale_flags: 0,
            last_retrain_error: None,
            last_staleness: None,
        })
    }

    /// The configured knobs.
    pub fn config(&self) -> SupervisorConfig {
        self.config
    }

    /// Current ladder rung.
    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// Should the gate consult the surrogate at all?
    pub fn trusts_surrogate(&self) -> bool {
        self.state == SupervisorState::Normal
    }

    /// Should the engine keep (re)training? False only when Degraded.
    pub fn wants_retrain(&self) -> bool {
        self.state != SupervisorState::Degraded
    }

    /// Maximum simulate attempts per query.
    pub fn max_attempts(&self) -> usize {
        1 + self.config.max_retries
    }

    /// Total simulator retries performed (attempts beyond each first).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Times the surrogate entered quarantine.
    pub fn quarantines(&self) -> u64 {
        self.quarantines
    }

    /// Times a successful retrain re-admitted a quarantined surrogate.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    /// The typed detail of the most recent retrain failure, if any
    /// (cleared by the next successful retrain).
    pub fn last_retrain_error(&self) -> Option<&LeError> {
        self.last_retrain_error.as_ref()
    }

    /// Staleness signals the drift detector has raised so far.
    pub fn stale_flags(&self) -> u64 {
        self.stale_flags
    }

    /// The typed evidence of the most recent staleness flag
    /// ([`LeError::Stale`]; cleared by the next successful retrain).
    pub fn last_staleness(&self) -> Option<&LeError> {
        self.last_staleness.as_ref()
    }

    /// A simulate attempt failed and another attempt follows.
    pub(crate) fn note_retry(&mut self) {
        self.retries += 1;
        le_obs::counter!("supervisor.retry").inc();
    }

    /// The gate produced a finite, trustworthy prediction.
    pub(crate) fn note_gate_ok(&mut self) {
        self.consecutive_gate_anomalies = 0;
    }

    /// The gate produced a non-finite prediction/std or a model error.
    pub(crate) fn note_gate_anomaly(&mut self) {
        self.consecutive_gate_anomalies += 1;
        if self.state == SupervisorState::Normal
            && self.consecutive_gate_anomalies >= self.config.quarantine_after
        {
            self.enter_quarantine();
        }
    }

    /// The drift detector flagged the surrogate as stale. Counted and
    /// retained as typed evidence; the ladder does not move — staleness is
    /// remedied by the rolling retrain the engine schedules alongside this
    /// call, and uncertain queries already fall through the gate.
    pub(crate) fn note_staleness(&mut self, err: LeError) {
        self.stale_flags += 1;
        le_obs::counter!("supervisor.stale").inc();
        self.last_staleness = Some(err);
    }

    /// A retrain failed with `err`; walks the quarantine/degraded rungs.
    pub(crate) fn note_retrain_failure(&mut self, err: LeError) {
        le_obs::counter!("supervisor.retrain_failed").inc();
        // Kind-labelled companion counter: the OBS snapshot shows *why*
        // retrains fail (model vs insufficient_data vs …), not just that
        // they did. Dynamic name, same registry as the static counters.
        le_obs::global()
            .counter(&format!("supervisor.retrain_failed.{}", err.kind_label()))
            .inc();
        self.last_retrain_error = Some(err);
        self.consecutive_failed_retrains += 1;
        if self.state == SupervisorState::Normal {
            // The stale surrogate must not stay silently trusted.
            self.enter_quarantine();
        }
        if self.state == SupervisorState::Quarantined
            && self.consecutive_failed_retrains >= self.config.degrade_after
        {
            self.state = SupervisorState::Degraded;
            le_obs::counter!("supervisor.degraded").inc();
        }
    }

    /// A retrain succeeded: clear failure streaks, re-admit if benched.
    pub(crate) fn note_retrain_success(&mut self) {
        self.consecutive_failed_retrains = 0;
        self.consecutive_gate_anomalies = 0;
        self.last_retrain_error = None;
        self.last_staleness = None;
        if self.state == SupervisorState::Quarantined {
            self.state = SupervisorState::Normal;
            self.readmissions += 1;
            le_obs::counter!("supervisor.readmit").inc();
        }
    }

    fn enter_quarantine(&mut self) {
        self.state = SupervisorState::Quarantined;
        self.quarantines += 1;
        le_obs::counter!("supervisor.quarantine").inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup(max_retries: usize, quarantine_after: usize, degrade_after: usize) -> Supervisor {
        Supervisor::new(SupervisorConfig {
            max_retries,
            quarantine_after,
            degrade_after,
        })
        .unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(Supervisor::new(SupervisorConfig {
            quarantine_after: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Supervisor::new(SupervisorConfig {
            degrade_after: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Supervisor::new(SupervisorConfig::default()).is_ok());
    }

    #[test]
    fn gate_anomaly_streak_quarantines_and_ok_resets() {
        let mut s = sup(1, 3, 3);
        s.note_gate_anomaly();
        s.note_gate_anomaly();
        s.note_gate_ok(); // streak broken
        s.note_gate_anomaly();
        s.note_gate_anomaly();
        assert_eq!(s.state(), SupervisorState::Normal);
        s.note_gate_anomaly();
        assert_eq!(s.state(), SupervisorState::Quarantined);
        assert_eq!(s.quarantines(), 1);
        assert!(!s.trusts_surrogate());
        assert!(s.wants_retrain());
    }

    #[test]
    fn retrain_failure_quarantines_immediately_and_success_readmits() {
        let mut s = sup(1, 3, 3);
        s.note_retrain_failure(LeError::Model("bad fit".into()));
        assert_eq!(s.state(), SupervisorState::Quarantined);
        assert!(matches!(s.last_retrain_error(), Some(LeError::Model(_))));
        s.note_retrain_success();
        assert_eq!(s.state(), SupervisorState::Normal);
        assert_eq!(s.readmissions(), 1);
        assert!(s.last_retrain_error().is_none());
    }

    #[test]
    fn consecutive_retrain_failures_degrade_terminally() {
        let mut s = sup(1, 3, 2);
        s.note_retrain_failure(LeError::Model("a".into()));
        assert_eq!(s.state(), SupervisorState::Quarantined);
        s.note_retrain_failure(LeError::Model("b".into()));
        assert_eq!(s.state(), SupervisorState::Degraded);
        assert!(!s.wants_retrain());
        assert!(!s.trusts_surrogate());
        // Terminal: nothing re-admits.
        s.note_retrain_success();
        assert_eq!(s.state(), SupervisorState::Degraded);
    }

    #[test]
    fn retry_counter_counts() {
        let mut s = sup(2, 3, 3);
        assert_eq!(s.max_attempts(), 3);
        s.note_retry();
        s.note_retry();
        assert_eq!(s.retries(), 2);
    }

    #[test]
    fn staleness_is_counted_but_never_walks_the_ladder() {
        let mut s = sup(1, 3, 3);
        s.note_staleness(LeError::Stale("std inflation".into()));
        s.note_staleness(LeError::Stale("calibration decay".into()));
        assert_eq!(s.stale_flags(), 2);
        assert_eq!(s.state(), SupervisorState::Normal);
        assert!(s.trusts_surrogate());
        assert!(matches!(s.last_staleness(), Some(LeError::Stale(_))));
        // A successful retrain clears the evidence (flag count is history).
        s.note_retrain_success();
        assert!(s.last_staleness().is_none());
        assert_eq!(s.stale_flags(), 2);
    }

    #[test]
    fn retrain_failure_kinds_reach_labelled_counters() {
        let before = le_obs::snapshot()
            .counter("supervisor.retrain_failed.model")
            .unwrap_or(0);
        let before_total = le_obs::snapshot()
            .counter("supervisor.retrain_failed")
            .unwrap_or(0);
        let mut s = sup(1, 3, 9);
        s.note_retrain_failure(LeError::Model("nan loss".into()));
        s.note_retrain_failure(LeError::InsufficientData("2 runs".into()));
        // `>=`: other tests in this binary may fail retrains concurrently;
        // the registry is process-global.
        let snap = le_obs::snapshot();
        assert!(snap.counter("supervisor.retrain_failed").unwrap_or(0) - before_total >= 2);
        assert!(snap.counter("supervisor.retrain_failed.model").unwrap_or(0) - before >= 1);
        assert!(snap
            .counter("supervisor.retrain_failed.insufficient_data")
            .unwrap_or(0)
            >= 1);
    }
}
