#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Indexed loops over small fixed dimensions (k in 0..3, stencils) are the
// clearer idiom in numeric kernels; silence the pedantic lint crate-wide.
#![allow(clippy::needless_range_loop)]

//! `le-netdyn` — network dynamical systems (§II-A of the paper).
//!
//! "A network dynamical system is composed of a network where nodes of the
//! network are agents ... and the edges capture the interactions between
//! them. A popular example of such systems is the SEIR model of disease
//! spread in a social network."
//!
//! This crate builds everything the DEFSI experiment (E4) needs:
//!
//! * [`graph`] — a compact CSR undirected graph with random-graph builders.
//! * [`population`] — a two-level synthetic population: one "state" made of
//!   several "counties", wired as a stochastic block model (dense contacts
//!   within a county, sparse between).
//! * [`seir`] — discrete-time stochastic SEIR dynamics on the network,
//!   reporting daily per-county incidence.
//! * [`surveillance`] — degrades ground truth the way real CDC data is
//!   degraded: weekly aggregation, state-level only, under-reporting,
//!   noise (the "low resolution, not real time, incomplete, noisy" list).
//! * [`epifast`] — an EpiFast-style baseline: calibrate transmissibility
//!   against observed state-level incidence by simulation search, forecast
//!   by running the calibrated model forward.
//! * [`defsi`] — the DEFSI method (paper ref \[19\]): a two-branch neural
//!   network trained on *simulation-generated synthetic data* that maps
//!   coarse state-level observations to high-resolution county-level
//!   forecasts.
//! * [`baselines`] — naive persistence, AR(2) regression, and a pure-data
//!   MLP trained only on observed seasons.

pub mod baselines;
pub mod defsi;
pub mod epifast;
pub mod graph;
pub mod population;
pub mod seir;
pub mod surveillance;

pub use graph::Graph;
pub use population::{Population, PopulationConfig};
pub use seir::{SeirConfig, SeirOutcome};

/// Errors from the network-dynamics crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// Invalid configuration.
    InvalidConfig(String),
    /// Not enough data for the requested operation.
    InsufficientData(String),
    /// Internal invariant violation.
    Internal(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::InvalidConfig(s) => write!(f, "invalid config: {s}"),
            NetError::InsufficientData(s) => write!(f, "insufficient data: {s}"),
            NetError::Internal(s) => write!(f, "internal error: {s}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, NetError>;
