//! Compact undirected graph in CSR (compressed sparse row) form, plus the
//! random-graph constructions used to build synthetic contact networks.

use le_linalg::Rng;

/// An undirected graph stored in CSR form. Each undirected edge appears in
/// both endpoints' adjacency lists.
#[derive(Debug, Clone)]
pub struct Graph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Graph {
    /// Build from an edge list over `n` nodes. Self-loops are dropped and
    /// duplicate edges are kept at most once.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        // Deduplicate as normalized (min,max) pairs.
        let mut norm: Vec<(u32, u32)> = edges
            .iter()
            .filter(|&&(a, b)| a != b)
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        norm.sort_unstable();
        norm.dedup();
        let mut degree = vec![0usize; n];
        for &(a, b) in &norm {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut acc = 0;
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![0u32; offsets[n]];
        let mut cursor = offsets[..n].to_vec();
        for &(a, b) in &norm {
            targets[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            targets[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        Self { offsets, targets }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn n_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Neighbors of node `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n_nodes() == 0 {
            return 0.0;
        }
        self.targets.len() as f64 / self.n_nodes() as f64
    }

    /// Erdős–Rényi G(n, p) via geometric edge skipping (O(E) expected).
    pub fn erdos_renyi(n: usize, p: f64, rng: &mut Rng) -> Self {
        assert!((0.0..=1.0).contains(&p));
        let mut edges = Vec::new();
        if p > 0.0 && n > 1 {
            // Iterate candidate pairs (i,j), i<j, skipping geometrically.
            let log_q = (1.0 - p).ln();
            let total = n as u64 * (n as u64 - 1) / 2;
            let mut k: u64 = 0;
            loop {
                // Skip ~Geometric(p) candidates.
                let u = rng.uniform().max(f64::MIN_POSITIVE);
                let skip = if p >= 1.0 { 0 } else { (u.ln() / log_q).floor() as u64 };
                k = k.saturating_add(skip);
                if k >= total {
                    break;
                }
                // Map linear index k to pair (i, j).
                let (i, j) = pair_from_index(k, n as u64);
                edges.push((i as u32, j as u32));
                k += 1;
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Watts–Strogatz small-world: ring lattice with `k` nearest neighbors
    /// per side, each edge rewired with probability `beta`.
    pub fn watts_strogatz(n: usize, k: usize, beta: f64, rng: &mut Rng) -> Self {
        assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
        let mut edges = Vec::with_capacity(n * k);
        for i in 0..n {
            for d in 1..=k {
                let j = (i + d) % n;
                if rng.bernoulli(beta) {
                    // Rewire to a uniform random non-self target.
                    let mut t = rng.below(n);
                    while t == i {
                        t = rng.below(n);
                    }
                    edges.push((i as u32, t as u32));
                } else {
                    edges.push((i as u32, j as u32));
                }
            }
        }
        Self::from_edges(n, &edges)
    }

    /// Count of connected components (BFS).
    pub fn n_components(&self) -> usize {
        let n = self.n_nodes();
        let mut seen = vec![false; n];
        let mut components = 0;
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            queue.push_back(start);
            while let Some(v) = queue.pop_front() {
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        queue.push_back(w as usize);
                    }
                }
            }
        }
        components
    }
}

/// Map a linear index `k` over upper-triangle pairs of `n` items to (i, j).
fn pair_from_index(k: u64, n: u64) -> (u64, u64) {
    // Row i satisfies: S(i) <= k < S(i+1) where S(i) = i*n - i*(i+1)/2.
    // Solve by the quadratic formula then fix up.
    let kf = k as f64;
    let nf = n as f64;
    let mut i = ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * kf).sqrt()) / 2.0)
        .floor() as u64;
    // Fix up numerical error.
    let row_start = |i: u64| i * n - i * (i + 1) / 2;
    while row_start(i + 1) <= k {
        i += 1;
    }
    while row_start(i) > k {
        i -= 1;
    }
    let j = i + 1 + (k - row_start(i));
    (i, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedup_and_no_self_loops() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 0), (1, 1), (2, 3), (2, 3)]);
        assert_eq!(g.n_nodes(), 4);
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let mut rng = Rng::new(1);
        let g = Graph::erdos_renyi(200, 0.05, &mut rng);
        for v in 0..g.n_nodes() {
            for &w in g.neighbors(v) {
                assert!(
                    g.neighbors(w as usize).contains(&(v as u32)),
                    "edge ({v},{w}) not symmetric"
                );
            }
        }
    }

    #[test]
    fn pair_from_index_enumerates_all_pairs() {
        let n = 7u64;
        let mut seen = std::collections::HashSet::new();
        for k in 0..(n * (n - 1) / 2) {
            let (i, j) = pair_from_index(k, n);
            assert!(i < j && j < n, "bad pair ({i},{j}) at k={k}");
            assert!(seen.insert((i, j)), "pair ({i},{j}) duplicated");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn erdos_renyi_edge_count_near_expectation() {
        let mut rng = Rng::new(2);
        let n = 500;
        let p = 0.02;
        let g = Graph::erdos_renyi(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.n_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edges {got} vs expected {expected}"
        );
    }

    #[test]
    fn erdos_renyi_edge_probabilities_extremes() {
        let mut rng = Rng::new(3);
        assert_eq!(Graph::erdos_renyi(50, 0.0, &mut rng).n_edges(), 0);
        let full = Graph::erdos_renyi(20, 1.0, &mut rng);
        assert_eq!(full.n_edges(), 20 * 19 / 2);
    }

    #[test]
    fn watts_strogatz_degree_preserved_at_beta_zero() {
        let mut rng = Rng::new(4);
        let g = Graph::watts_strogatz(60, 3, 0.0, &mut rng);
        // Pure ring lattice: every node has degree 2k.
        for v in 0..60 {
            assert_eq!(g.degree(v), 6);
        }
        assert_eq!(g.n_components(), 1);
    }

    #[test]
    fn watts_strogatz_rewiring_keeps_edge_budget_close() {
        let mut rng = Rng::new(5);
        let g = Graph::watts_strogatz(200, 2, 0.3, &mut rng);
        // Rewiring can collide with existing edges (dedup), so the count is
        // bounded above by nk and not far below.
        assert!(g.n_edges() <= 400);
        assert!(g.n_edges() > 380, "few collisions expected, got {}", g.n_edges());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.n_nodes(), 0);
        assert_eq!(g.n_edges(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        assert_eq!(g.n_components(), 0);
    }

    #[test]
    fn components_counted() {
        // Two triangles, one isolated node.
        let g = Graph::from_edges(
            7,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)],
        );
        assert_eq!(g.n_components(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = Graph::erdos_renyi(100, 0.05, &mut Rng::new(42));
        let g2 = Graph::erdos_renyi(100, 0.05, &mut Rng::new(42));
        assert_eq!(g1.n_edges(), g2.n_edges());
        for v in 0..100 {
            assert_eq!(g1.neighbors(v), g2.neighbors(v));
        }
    }
}
