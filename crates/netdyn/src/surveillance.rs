//! Surveillance degradation: turns ground-truth daily county incidence into
//! the kind of data agencies actually publish. The paper's list (§II-A):
//! "of low spatial temporal resolution (weekly at state level), not real
//! time (at least one week delay), incomplete (reported cases are only a
//! small fraction of actual ones), and noisy".

use le_linalg::Rng;

use crate::seir::SeirOutcome;

/// Reporting model parameters.
#[derive(Debug, Clone, Copy)]
pub struct Surveillance {
    /// Fraction of true cases that get reported.
    pub reporting_fraction: f64,
    /// Multiplicative log-normal noise scale on weekly counts.
    pub noise: f64,
    /// Reporting delay in weeks (leading weeks dropped from view).
    pub delay_weeks: usize,
}

impl Default for Surveillance {
    fn default() -> Self {
        Self {
            reporting_fraction: 0.3,
            noise: 0.1,
            delay_weeks: 1,
        }
    }
}

impl Surveillance {
    /// Observe an epidemic: weekly, state-level, under-reported, noisy.
    /// Returns the series of weekly reported counts visible at the end of
    /// the season (delay trims the most recent weeks).
    pub fn observe_state(&self, outcome: &SeirOutcome, seed: u64) -> Vec<f64> {
        let weekly_true = SeirOutcome::weekly(&outcome.state_incidence());
        let mut rng = Rng::new(seed);
        let mut observed: Vec<f64> = weekly_true
            .iter()
            .map(|&w| {
                let reported = w * self.reporting_fraction;
                // Multiplicative log-normal noise.
                let factor = (self.noise * rng.gaussian()).exp();
                (reported * factor).max(0.0)
            })
            .collect();
        // Delay: the most recent `delay_weeks` are not yet visible.
        let keep = observed.len().saturating_sub(self.delay_weeks);
        observed.truncate(keep);
        observed
    }

    /// The true weekly county-level incidence (what a perfect system would
    /// see) — used as the forecasting target.
    pub fn true_weekly_by_county(outcome: &SeirOutcome) -> Vec<Vec<f64>> {
        outcome
            .incidence
            .iter()
            .map(|daily| SeirOutcome::weekly(daily))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_outcome() -> SeirOutcome {
        // Two counties, 21 days (3 weeks) of synthetic incidence.
        let c0: Vec<f64> = (0..21).map(|d| d as f64).collect();
        let c1: Vec<f64> = (0..21).map(|d| 2.0 * d as f64).collect();
        SeirOutcome {
            incidence: vec![c0, c1],
            attack_rate: 0.1,
            peak_day: 20,
        }
    }

    #[test]
    fn observation_is_weekly_and_delayed() {
        let s = Surveillance {
            reporting_fraction: 1.0,
            noise: 0.0,
            delay_weeks: 1,
        };
        let obs = s.observe_state(&fake_outcome(), 1);
        // 3 true weeks minus 1 week delay.
        assert_eq!(obs.len(), 2);
        // Week 0 state total: sum of both county daily 0..6 = 21 + 42 = 63.
        assert!((obs[0] - 63.0).abs() < 1e-9);
    }

    #[test]
    fn under_reporting_scales_counts() {
        let full = Surveillance {
            reporting_fraction: 1.0,
            noise: 0.0,
            delay_weeks: 0,
        };
        let half = Surveillance {
            reporting_fraction: 0.5,
            noise: 0.0,
            delay_weeks: 0,
        };
        let o_full = full.observe_state(&fake_outcome(), 2);
        let o_half = half.observe_state(&fake_outcome(), 2);
        for (f, h) in o_full.iter().zip(o_half.iter()) {
            assert!((h - 0.5 * f).abs() < 1e-9);
        }
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let s = Surveillance {
            reporting_fraction: 1.0,
            noise: 0.2,
            delay_weeks: 0,
        };
        let clean = Surveillance {
            reporting_fraction: 1.0,
            noise: 0.0,
            delay_weeks: 0,
        };
        let noisy = s.observe_state(&fake_outcome(), 3);
        let truth = clean.observe_state(&fake_outcome(), 3);
        assert_eq!(noisy.len(), truth.len());
        let mut any_diff = false;
        for (n, t) in noisy.iter().zip(truth.iter()) {
            if (n - t).abs() > 1e-9 {
                any_diff = true;
            }
            // Within a factor of e^{4σ}.
            if *t > 0.0 {
                assert!(*n / *t < (0.8f64).exp().powi(4) && *n / *t > (-0.8f64).exp());
            }
        }
        assert!(any_diff, "noise must actually perturb");
    }

    #[test]
    fn county_truth_preserves_structure() {
        let weekly = Surveillance::true_weekly_by_county(&fake_outcome());
        assert_eq!(weekly.len(), 2);
        assert_eq!(weekly[0].len(), 3);
        // County 1 doubles county 0 everywhere.
        for (a, b) in weekly[0].iter().zip(weekly[1].iter()) {
            assert!((b - 2.0 * a).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = Surveillance::default();
        assert_eq!(
            s.observe_state(&fake_outcome(), 42),
            s.observe_state(&fake_outcome(), 42)
        );
        assert_ne!(
            s.observe_state(&fake_outcome(), 42),
            s.observe_state(&fake_outcome(), 43)
        );
    }
}
