//! Purely data-driven forecasting baselines. These see only the coarse
//! observed series — exactly the paper's point that "completely data driven
//! models cannot discover higher resolution details (e.g. county level
//! incidence) from lower resolution ground truth data (e.g. state level
//! incidence)". Their county forecast is necessarily a uniform split of the
//! state forecast.

use std::cell::RefCell;

use le_linalg::{solve, Matrix, Rng};
use le_nn::{BatchScratch, Mlp, MlpConfig, Scaler, TrainConfig, Trainer};

use crate::{NetError, Result};

/// Naive persistence: next week = this week.
pub fn naive_forecast(observed: &[f64]) -> Result<f64> {
    observed
        .last()
        .copied()
        .ok_or_else(|| NetError::InsufficientData("empty series".into()))
}

/// AR(p) model fit by ridge least squares on historical state series.
#[derive(Debug, Clone)]
pub struct ArModel {
    /// Learned coefficients `[bias, w_1, …, w_p]` (w_1 multiplies the most
    /// recent value).
    pub coeffs: Vec<f64>,
    /// Order p.
    pub order: usize,
}

impl ArModel {
    /// Fit on a set of historical weekly series.
    pub fn fit(series: &[Vec<f64>], order: usize) -> Result<Self> {
        if order == 0 {
            return Err(NetError::InvalidConfig("AR order must be ≥ 1".into()));
        }
        let mut rows_x: Vec<Vec<f64>> = Vec::new();
        let mut rows_y: Vec<f64> = Vec::new();
        for s in series {
            for t in order..s.len() {
                let mut row = Vec::with_capacity(order + 1);
                row.push(1.0);
                for lag in 1..=order {
                    row.push(s[t - lag]);
                }
                rows_x.push(row);
                rows_y.push(s[t]);
            }
        }
        if rows_x.len() < order + 1 {
            return Err(NetError::InsufficientData(format!(
                "only {} rows for AR({order})",
                rows_x.len()
            )));
        }
        let n = rows_x.len();
        let mut x = Matrix::zeros(n, order + 1);
        for (i, row) in rows_x.iter().enumerate() {
            x.row_mut(i).copy_from_slice(row);
        }
        let coeffs = solve::least_squares(&x, &rows_y, 1e-6)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        Ok(Self { coeffs, order })
    }

    /// One-step-ahead forecast from the tail of `observed`.
    pub fn forecast(&self, observed: &[f64]) -> Result<f64> {
        if observed.len() < self.order {
            return Err(NetError::InsufficientData(format!(
                "need {} points for AR({}), have {}",
                self.order,
                self.order,
                observed.len()
            )));
        }
        let mut pred = self.coeffs[0];
        for lag in 1..=self.order {
            pred += self.coeffs[lag] * observed[observed.len() - lag];
        }
        Ok(pred.max(0.0))
    }
}

/// A pure-data MLP forecaster trained only on observed historical seasons:
/// window of recent weekly values → next weekly value (state level only).
#[derive(Debug, Clone)]
pub struct DataOnlyMlp {
    net: Mlp,
    /// Preallocated batch-engine arena reused across `forecast` calls.
    scratch: RefCell<BatchScratch>,
    x_scaler: Scaler,
    y_scaler: Scaler,
    /// Input window length.
    pub window: usize,
}

impl DataOnlyMlp {
    /// Train on historical state-level weekly series.
    pub fn fit(series: &[Vec<f64>], window: usize, seed: u64) -> Result<Self> {
        let mut rows_x: Vec<Vec<f64>> = Vec::new();
        let mut rows_y: Vec<f64> = Vec::new();
        for s in series {
            for t in window..s.len() {
                rows_x.push(s[t - window..t].to_vec());
                rows_y.push(s[t]);
            }
        }
        if rows_x.len() < 8 {
            return Err(NetError::InsufficientData(format!(
                "only {} rows to train the data-only MLP",
                rows_x.len()
            )));
        }
        let n = rows_x.len();
        let mut x = Matrix::zeros(n, window);
        let mut y = Matrix::zeros(n, 1);
        for i in 0..n {
            x.row_mut(i).copy_from_slice(&rows_x[i]);
            y.set(i, 0, rows_y[i]);
        }
        let x_scaler = Scaler::fit(&x).map_err(|e| NetError::Internal(e.to_string()))?;
        let y_scaler = Scaler::fit(&y).map_err(|e| NetError::Internal(e.to_string()))?;
        let xs = x_scaler.transform(&x).map_err(|e| NetError::Internal(e.to_string()))?;
        let ys = y_scaler.transform(&y).map_err(|e| NetError::Internal(e.to_string()))?;
        let mut rng = Rng::new(seed);
        let mut net = Mlp::new(MlpConfig::regression(&[window, 16, 16, 1]), &mut rng)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        Trainer::new(TrainConfig {
            epochs: 200,
            patience: Some(40),
            seed,
            ..Default::default()
        })
        .fit(&mut net, &xs, &ys)
        .map_err(|e| NetError::Internal(e.to_string()))?;
        Ok(Self {
            scratch: RefCell::new(BatchScratch::new(&net)),
            net,
            x_scaler,
            y_scaler,
            window,
        })
    }

    /// The underlying fitted network (the batch engine holds a snapshot of
    /// its weights).
    pub fn model(&self) -> &Mlp {
        &self.net
    }

    /// One-step-ahead state forecast.
    pub fn forecast(&self, observed: &[f64]) -> Result<f64> {
        if observed.len() < self.window {
            return Err(NetError::InsufficientData(format!(
                "need {} points, have {}",
                self.window,
                observed.len()
            )));
        }
        let mut x = observed[observed.len() - self.window..].to_vec();
        self.x_scaler
            .transform_slice(&mut x)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        let mut out = [0.0];
        self.scratch
            .borrow_mut()
            .forward_into(&x, 1, &mut out)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        self.y_scaler
            .inverse_transform_slice(&mut out)
            .map_err(|e| NetError::Internal(e.to_string()))?;
        Ok(out[0].max(0.0))
    }
}

/// Split a state-level forecast uniformly over `n_counties` — the only
/// county-resolution option a state-level-only model has.
pub fn uniform_county_split(state_forecast: f64, n_counties: usize) -> Vec<f64> {
    assert!(n_counties > 0);
    vec![state_forecast / n_counties as f64; n_counties]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_is_last_value() {
        assert_eq!(naive_forecast(&[1.0, 5.0, 3.0]).unwrap(), 3.0);
        assert!(naive_forecast(&[]).is_err());
    }

    #[test]
    fn ar_recovers_known_process() {
        // x_t = 2 + 0.6 x_{t-1} + 0.2 x_{t-2}, noiseless.
        let mut series = vec![5.0, 6.0];
        for _ in 0..200 {
            let n = series.len();
            series.push(2.0 + 0.6 * series[n - 1] + 0.2 * series[n - 2]);
        }
        let model = ArModel::fit(&[series.clone()], 2).unwrap();
        assert!((model.coeffs[0] - 2.0).abs() < 0.1, "bias {}", model.coeffs[0]);
        assert!((model.coeffs[1] - 0.6).abs() < 0.1, "w1 {}", model.coeffs[1]);
        assert!((model.coeffs[2] - 0.2).abs() < 0.1, "w2 {}", model.coeffs[2]);
        // Forecast matches the recurrence.
        let pred = model.forecast(&series).unwrap();
        let n = series.len();
        let expected = 2.0 + 0.6 * series[n - 1] + 0.2 * series[n - 2];
        assert!((pred - expected).abs() < 0.3);
    }

    #[test]
    fn ar_validation() {
        assert!(ArModel::fit(&[vec![1.0, 2.0, 3.0]], 0).is_err());
        assert!(ArModel::fit(&[vec![1.0]], 2).is_err());
        let model = ArModel::fit(&[(0..50).map(|i| i as f64).collect()], 2).unwrap();
        assert!(model.forecast(&[1.0]).is_err());
    }

    #[test]
    fn ar_forecast_clamped_nonnegative() {
        // Steeply decreasing series can extrapolate negative; we clamp.
        let series: Vec<f64> = (0..50).map(|i| 100.0 - 2.0 * i as f64).collect();
        let model = ArModel::fit(&[series], 2).unwrap();
        let pred = model.forecast(&[4.0, 2.0]).unwrap();
        assert!(pred >= 0.0);
    }

    #[test]
    fn data_only_mlp_learns_trend() {
        // Several sinusoid-like seasons.
        let seasons: Vec<Vec<f64>> = (0..5)
            .map(|s| {
                (0..20)
                    .map(|t| 50.0 + 30.0 * ((t as f64 + s as f64) * 0.5).sin())
                    .collect()
            })
            .collect();
        let model = DataOnlyMlp::fit(&seasons, 4, 3).unwrap();
        // Predict within a season; error should be modest relative to range.
        let test: Vec<f64> = (0..10)
            .map(|t| 50.0 + 30.0 * (t as f64 * 0.5).sin())
            .collect();
        let pred = model.forecast(&test[..8]).unwrap();
        let actual = test[8];
        assert!(
            (pred - actual).abs() < 20.0,
            "pred {pred} vs actual {actual}"
        );
    }

    #[test]
    fn data_only_mlp_needs_data() {
        assert!(DataOnlyMlp::fit(&[vec![1.0, 2.0, 3.0]], 4, 1).is_err());
    }

    #[test]
    fn uniform_split_sums_to_state() {
        let split = uniform_county_split(12.0, 4);
        assert_eq!(split, vec![3.0; 4]);
        assert!((split.iter().sum::<f64>() - 12.0).abs() < 1e-12);
    }
}
