//! Two-level synthetic population: one "state" partitioned into "counties",
//! wired as a stochastic block model — contacts are dense within a county
//! and sparse across counties. This is the (scaled-down) analogue of the
//! synthetic-information populations DEFSI builds on: detailed enough that
//! *county-level* dynamics exist, while surveillance only observes the
//! state-level aggregate.

use le_linalg::Rng;

use crate::graph::Graph;
use crate::{NetError, Result};

/// Configuration of the synthetic population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// People per county.
    pub county_sizes: Vec<usize>,
    /// Mean within-county contacts per person.
    pub mean_degree_within: f64,
    /// Mean cross-county contacts per person.
    pub mean_degree_across: f64,
}

impl PopulationConfig {
    /// A small state of `n_counties` equal counties.
    pub fn uniform(n_counties: usize, county_size: usize) -> Self {
        Self {
            county_sizes: vec![county_size; n_counties],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.county_sizes.is_empty() {
            return Err(NetError::InvalidConfig("no counties".into()));
        }
        if self.county_sizes.iter().any(|&s| s < 2) {
            return Err(NetError::InvalidConfig(
                "county sizes must be at least 2".into(),
            ));
        }
        if self.mean_degree_within < 0.0 || self.mean_degree_across < 0.0 {
            return Err(NetError::InvalidConfig("negative mean degree".into()));
        }
        Ok(())
    }
}

/// The generated population: contact network + county labels.
#[derive(Debug, Clone)]
pub struct Population {
    /// Contact network over all residents of the state.
    pub contacts: Graph,
    /// County index of each person.
    pub county: Vec<u16>,
    /// Number of counties.
    pub n_counties: usize,
}

impl Population {
    /// Generate a population from `config` with the given seed.
    pub fn generate(config: &PopulationConfig, seed: u64) -> Result<Self> {
        config.validate()?;
        let mut rng = Rng::new(seed);
        let n_counties = config.county_sizes.len();
        let n: usize = config.county_sizes.iter().sum();
        // County labels, people numbered county by county.
        let mut county = Vec::with_capacity(n);
        let mut county_start = Vec::with_capacity(n_counties + 1);
        county_start.push(0usize);
        let mut acc = 0usize;
        for (c, &size) in config.county_sizes.iter().enumerate() {
            county.extend(std::iter::repeat_n(c as u16, size));
            acc += size;
            county_start.push(acc);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Within-county: ER with p = mean_degree / (size - 1).
        for (c, &size) in config.county_sizes.iter().enumerate() {
            let p = (config.mean_degree_within / (size.max(2) - 1) as f64).min(1.0);
            let sub = Graph::erdos_renyi(size, p, &mut rng);
            let base = county_start[c] as u32;
            for v in 0..size {
                for &w in sub.neighbors(v) {
                    if (w as usize) > v {
                        edges.push((base + v as u32, base + w));
                    }
                }
            }
        }
        // Across-county: each person draws Poisson(mean_across) contacts in
        // other counties.
        if n_counties > 1 && config.mean_degree_across > 0.0 {
            for i in 0..n {
                let k = rng.poisson(config.mean_degree_across / 2.0);
                for _ in 0..k {
                    // Pick a random person in a different county.
                    loop {
                        let j = rng.below(n);
                        if county[j] != county[i] {
                            edges.push((i as u32, j as u32));
                            break;
                        }
                    }
                }
            }
        }
        Ok(Self {
            contacts: Graph::from_edges(n, &edges),
            county,
            n_counties,
        })
    }

    /// Total population size.
    pub fn size(&self) -> usize {
        self.county.len()
    }

    /// Population of one county.
    pub fn county_size(&self, c: usize) -> usize {
        self.county.iter().filter(|&&x| x as usize == c).count()
    }

    /// Fraction of edges that stay within a county.
    pub fn within_county_edge_fraction(&self) -> f64 {
        let mut within = 0usize;
        let mut total = 0usize;
        for v in 0..self.contacts.n_nodes() {
            for &w in self.contacts.neighbors(v) {
                if (w as usize) > v {
                    total += 1;
                    if self.county[v] == self.county[w as usize] {
                        within += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            within as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Population::generate(&PopulationConfig::uniform(0, 100), 1).is_err());
        let mut bad = PopulationConfig::uniform(2, 100);
        bad.county_sizes[0] = 1;
        assert!(Population::generate(&bad, 1).is_err());
        let mut neg = PopulationConfig::uniform(2, 100);
        neg.mean_degree_across = -1.0;
        assert!(Population::generate(&neg, 1).is_err());
    }

    #[test]
    fn sizes_and_labels() {
        let cfg = PopulationConfig {
            county_sizes: vec![100, 200, 50],
            mean_degree_within: 6.0,
            mean_degree_across: 0.5,
        };
        let pop = Population::generate(&cfg, 7).unwrap();
        assert_eq!(pop.size(), 350);
        assert_eq!(pop.n_counties, 3);
        assert_eq!(pop.county_size(0), 100);
        assert_eq!(pop.county_size(1), 200);
        assert_eq!(pop.county_size(2), 50);
        // Labels are contiguous blocks.
        assert_eq!(pop.county[0], 0);
        assert_eq!(pop.county[99], 0);
        assert_eq!(pop.county[100], 1);
        assert_eq!(pop.county[349], 2);
    }

    #[test]
    fn mean_degree_near_target() {
        let cfg = PopulationConfig {
            county_sizes: vec![400; 4],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        };
        let pop = Population::generate(&cfg, 11).unwrap();
        let md = pop.contacts.mean_degree();
        assert!(
            (md - 9.0).abs() < 1.0,
            "mean degree {md} should be near 8 + 1 = 9"
        );
    }

    #[test]
    fn most_edges_stay_within_county() {
        let cfg = PopulationConfig {
            county_sizes: vec![300; 5],
            mean_degree_within: 8.0,
            mean_degree_across: 1.0,
        };
        let pop = Population::generate(&cfg, 13).unwrap();
        let frac = pop.within_county_edge_fraction();
        assert!(
            frac > 0.8,
            "block structure: within fraction {frac} should be > 0.8"
        );
        assert!(frac < 1.0, "some cross-county edges must exist");
    }

    #[test]
    fn zero_cross_county_isolates_counties() {
        let cfg = PopulationConfig {
            county_sizes: vec![50; 3],
            mean_degree_within: 5.0,
            mean_degree_across: 0.0,
        };
        let pop = Population::generate(&cfg, 17).unwrap();
        assert_eq!(pop.within_county_edge_fraction(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = PopulationConfig::uniform(3, 100);
        let a = Population::generate(&cfg, 5).unwrap();
        let b = Population::generate(&cfg, 5).unwrap();
        assert_eq!(a.contacts.n_edges(), b.contacts.n_edges());
        let c = Population::generate(&cfg, 6).unwrap();
        assert_ne!(a.contacts.n_edges(), c.contacts.n_edges());
    }
}
